(* The experiment harness: regenerates every table and figure of
   "Soft Scheduling in High Level Synthesis" (Zhu & Gajski, DAC 1999)
   plus the ablations called out in DESIGN.md, and times the headline
   algorithms with Bechamel.

   Run with: dune exec bench/main.exe
   Sections (in order):
     1. Figure 3   — benchmarks x resource configs x meta schedules
     2. Figure 1c  — spill-code refinement strategies
     3. Figure 1d  — wire-delay refinement strategies
     4. Theorem 3  — complexity sweep, fast select vs naive speculation
     4b. Theorem 3/Lemma 7 — telemetry counters: scan work and degrees
     5. Theorem 2  — online-optimality audit on random graphs
     6. Ablation A — meta-schedule sensitivity (incl. random orders)
     7. Ablation B — resource sweep (units vs control steps)
     8. Ablation C — softness: how much order freedom the state keeps
        Ablation D — technology mapping with the scheduling kernel
        Ablation E — resource-constrained retiming
        Ablation F — pipelined multipliers
        Ablation G — register pressure across extraction policies
        Ablation H — meta-schedule search
        Ablation K — loop pipelining: II vs resources on loop kernels
     9. Bechamel   — wall-clock timings of the headline algorithms *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Reach = Dfg.Reach
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph
module Meta = Soft.Meta

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Machine-readable results, written out by [--json FILE]. Sections
   push (section, name, value, unit) rows as they print their tables;
   sections that only narrate push nothing. *)
let json_results : (string * string * float * string) list ref = ref []

let record ~sec ~name ~unit value =
  json_results := (sec, name, value, unit) :: !json_results

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Stamp results with the report schema version and the source
   revision, so archived BENCH_softsched.json files stay attributable
   long after the run. *)
let bench_schema_version = 1

(* Atomic: a crash (or a concurrent reader) never sees a half-written
   BENCH_softsched.json — the content lands under a tmp name and is
   renamed into place. *)
let write_json file =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  let rows = List.rev !json_results in
  Printf.fprintf oc
    "{\n  \"suite\": \"softsched\",\n  \"schema_version\": %d,\n  \
     \"git\": \"%s\",\n  \"results\": ["
    bench_schema_version
    (json_escape (Qor.Report.git_describe ()));
  List.iteri
    (fun i (sec, name, value, unit) ->
      Printf.fprintf oc
        "%s\n    { \"section\": \"%s\", \"name\": \"%s\", \"value\": %g, \
         \"unit\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape sec) (json_escape name) value (json_escape unit))
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Sys.rename tmp file;
  Printf.printf "\nwrote %d result rows to %s\n" (List.length rows) file

(* ------------------------------------------------------------------ *)
(* 1. Figure 3                                                         *)
(* ------------------------------------------------------------------ *)

(* Values printed in the paper (its benchmark netlists differ from our
   reconstructions in detail, so shapes — not absolute numbers — are
   the reproduction target; EXPERIMENTS.md discusses each row). *)
let paper_fig3 =
  [
    ("HAL", [ [ 8; 6; 14 ]; [ 8; 6; 14 ]; [ 8; 6; 13 ]; [ 8; 6; 13 ]; [ 8; 6; 13 ] ]);
    ("AR", [ [ 19; 11; 34 ]; [ 19; 11; 34 ]; [ 19; 11; 34 ]; [ 19; 11; 34 ]; [ 19; 11; 34 ] ]);
    ("EF", [ [ 19; 17; 24 ]; [ 19; 17; 24 ]; [ 19; 17; 24 ]; [ 19; 17; 24 ]; [ 19; 17; 24 ] ]);
    ("FIR", [ [ 11; 7; 19 ]; [ 11; 7; 19 ]; [ 11; 7; 19 ]; [ 11; 7; 19 ]; [ 11; 7; 19 ] ]);
  ]

let figure3 () =
  section "Figure 3: scheduling results under resource constraints";
  Printf.printf "%-4s %-12s" "BM" "Sched. Alg.";
  List.iter (fun (l, _) -> Printf.printf "  %8s" l) R.fig3_all;
  Printf.printf "   | paper\n";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let paper_rows = List.assoc e.name paper_fig3 in
      let print_row label row_index cells =
        Printf.printf "%-4s %-12s" e.name label;
        List.iter (fun c -> Printf.printf "  %8d" c) cells;
        Printf.printf "   | %s\n"
          (String.concat "/"
             (List.map string_of_int (List.nth paper_rows row_index)))
      in
      List.iteri
        (fun mi label ->
          let cells =
            List.map
              (fun (_, resources) ->
                let g = e.build () in
                let _, meta = List.nth (Meta.fig3 ~resources) mi in
                Soft.Scheduler.csteps ~meta ~resources g)
              R.fig3_all
          in
          print_row label mi cells)
        [ "meta sched1"; "meta sched2"; "meta sched3"; "meta sched4" ];
      let list_cells =
        List.map
          (fun (_, resources) ->
            S.length (Hard.List_sched.run ~resources (e.build ())))
          R.fig3_all
      in
      print_row "list sched" 4 list_cells)
    Hls_bench.Suite.fig3

(* ------------------------------------------------------------------ *)
(* 2. Figure 1(c): spill refinement                                    *)
(* ------------------------------------------------------------------ *)

let figure1_paper_example () =
  section "Figure 1: the paper's own 7-operation example";
  let g = Hls_bench.Fig1.graph () in
  let resources = Hls_bench.Fig1.resources in
  let state = Soft.Scheduler.run ~meta:Meta.dfs ~resources g in
  let base = T.diameter state in
  Printf.printf "soft schedule on two units: %d states (paper: 5)\n" base;
  (* (c): spill v3's value *)
  let spill_state = Soft.Scheduler.run ~meta:Meta.dfs ~resources
      (let g = Hls_bench.Fig1.graph () in g) in
  let g_spill = T.graph spill_state in
  let _ = Refine.Spill.apply spill_state ~value:(Hls_bench.Fig1.v3 g_spill) in
  Printf.printf "after spilling v3 (paper: 6):        %d states\n"
    (T.diameter spill_state);
  (* (d): wire delays on two cross-unit edges *)
  let wire_state = Soft.Scheduler.run ~meta:Meta.dfs ~resources
      (Hls_bench.Fig1.graph ()) in
  let fp = Refine.Floorplan.place wire_state in
  let report =
    Refine.Wire_insert.apply wire_state fp Refine.Floorplan.default_model
  in
  Printf.printf "after wire-delay refinement (paper: 5): %d states (%d wires)\n"
    (T.diameter wire_state)
    (List.length report.Refine.Wire_insert.inserted)

let figure1_spill () =
  section "Figure 1(c): spill-code refinement (steps before/after)";
  Printf.printf "%-4s %-10s %9s %9s %9s\n" "BM" "spilled" "original"
    "soft" "resched";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      (* Spill the register-busiest value: longest-lived computed one. *)
      let schedule = Hard.List_sched.run ~resources:R.fig3_2alu_2mul g in
      let victim =
        let ivs = Refine.Lifetime.intervals schedule in
        let computed =
          List.filter
            (fun (iv : Refine.Lifetime.interval) ->
              match Graph.op g iv.producer with
              | Op.Input _ | Op.Const _ -> false
              | _ -> true)
            ivs
        in
        match
          List.sort
            (fun (a : Refine.Lifetime.interval) b ->
              compare (b.death - b.birth, a.producer) (a.death - a.birth, b.producer))
            computed
        with
        | iv :: _ -> Some iv.producer
        | [] -> None
      in
      match victim with
      | None -> Printf.printf "%-4s (no spillable value)\n" e.name
      | Some v ->
        let cmp =
          Refine.Spill.compare_strategies ~resources:R.fig3_2alu_2mul
            ~meta:Meta.topological ~values:[ v ] (e.build ())
        in
        Printf.printf "%-4s %-10s %9d %9d %9d\n" e.name (Graph.name g v)
          cmp.Refine.Spill.original_csteps cmp.Refine.Spill.soft_csteps
          cmp.Refine.Spill.resched_csteps)
    Hls_bench.Suite.fig3;
  Printf.printf
    "(soft = refine the live state online; resched = throw the schedule\n\
    \ away and iterate the design — the expensive escape soft scheduling\n\
    \ avoids. The paper's 7-op example grows 5 -> 6 states; same shape.)\n"

(* ------------------------------------------------------------------ *)
(* 3. Figure 1(d): wire-delay refinement                               *)
(* ------------------------------------------------------------------ *)

let figure1_wire () =
  section "Figure 1(d): interconnect-delay refinement (steps)";
  Printf.printf "%-4s %9s %9s %12s\n" "BM" "no-wires" "soft" "pessimistic";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let cmp =
        Refine.Wire_insert.compare_strategies ~resources:R.fig3_2alu_2mul
          ~meta:Meta.topological (e.build ())
      in
      Printf.printf "%-4s %9d %9d %12d\n" e.name
        cmp.Refine.Wire_insert.original_csteps
        cmp.Refine.Wire_insert.soft_csteps
        cmp.Refine.Wire_insert.pessimistic_csteps)
    Hls_bench.Suite.fig3;
  Printf.printf
    "(soft inserts the floorplan's actual wire delays into the live\n\
    \ state; pessimistic pads every transfer with the worst case, the\n\
    \ escape a hard scheduler is forced into.)\n"

(* ------------------------------------------------------------------ *)
(* 4. Theorem 3: complexity sweep                                      *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let complexity_sweep () =
  section "Theorem 3: per-operation cost, fast select vs naive speculation";
  Printf.printf "%6s %10s %14s %14s %10s\n" "|V|" "edges" "fast total(s)"
    "naive total(s)" "ratio";
  let rng = Random.State.make [| 2026 |] in
  List.iter
    (fun n ->
      let g = Generate.layered rng ~layers:(n / 10) ~width:10 ~fanin:3 in
      let resources = R.fig3_2alu_2mul in
      let _, fast =
        time_once (fun () -> Soft.Scheduler.run ~resources g)
      in
      if n <= 200 then begin
        let _, naive =
          time_once (fun () -> Soft.Naive.run ~resources g)
        in
        Printf.printf "%6d %10d %14.4f %14.4f %9.1fx\n" n (Graph.n_edges g)
          fast naive
          (naive /. max fast 1e-9)
      end
      else
        Printf.printf "%6d %10d %14.4f %14s %10s\n" n (Graph.n_edges g) fast
          "(skipped)" "-")
    [ 50; 100; 200; 400; 800 ];
  Printf.printf
    "(the naive scheduler speculatively commits at every position and\n\
    \ re-measures the diameter: the ratio grows with |V|, the fast\n\
    \ select stays near-linear per operation.)\n"

(* ------------------------------------------------------------------ *)
(* 4b. Theorem 3 / Lemma 7, measured: telemetry counters               *)
(* ------------------------------------------------------------------ *)

(* The sweep above infers linearity from wall time; here the telemetry
   counters measure the select scan directly: positions scanned per
   [schedule] call should grow linearly with |V| (Theorem 3), and the
   observed thread in/out degrees must stay within Lemma 7's K bound
   (one edge per foreign thread) on every benchmark. *)

let telemetry_linearity () =
  section "Theorem 3 (telemetry): select-scan work measured, not modelled";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%6s %8s %10s %10s %14s %7s %8s\n" "|V|" "calls" "scanned"
    "per call" "per call/|V|" "max in" "max out";
  let rng = Random.State.make [| 2026 |] in
  List.iter
    (fun n ->
      let g = Generate.layered rng ~layers:(n / 10) ~width:10 ~fanin:3 in
      let c = Telemetry.Counters.create () in
      let _state =
        Soft.Scheduler.run_traced ~sink:(Telemetry.Counters.sink c) ~resources
          g
      in
      let s = Telemetry.Counters.snapshot c in
      let nv = Graph.n_vertices g in
      let per_call =
        float_of_int s.Telemetry.Counters.positions_scanned
        /. float_of_int (max 1 s.Telemetry.Counters.schedule_calls)
      in
      Printf.printf "%6d %8d %10d %10.1f %14.4f %7d %8d\n" nv
        s.Telemetry.Counters.schedule_calls
        s.Telemetry.Counters.positions_scanned per_call
        (per_call /. float_of_int nv)
        s.Telemetry.Counters.max_in_degree_observed
        s.Telemetry.Counters.max_out_degree_observed)
    [ 50; 100; 200; 400; 800 ];
  Printf.printf
    "(per-call/|V| stays flat as |V| grows 16x: the per-operation select\n\
    \ scan is linear in |V|, Theorem 3 observed rather than inferred.)\n";
  Printf.printf "\nLemma 7 audit: observed thread degrees vs the K bound\n";
  Printf.printf "%-4s %8s %8s %8s %10s\n" "BM" "K" "max in" "max out" "bound";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let c = Telemetry.Counters.create () in
      let state =
        Soft.Scheduler.run_traced ~sink:(Telemetry.Counters.sink c) ~resources
          g
      in
      let k = T.n_threads state in
      let s = Telemetry.Counters.snapshot c in
      let max_in = s.Telemetry.Counters.max_in_degree_observed in
      let max_out = s.Telemetry.Counters.max_out_degree_observed in
      Printf.printf "%-4s %8d %8d %8d %10s\n" e.name k max_in max_out
        (if max_in <= k && max_out <= k then "ok" else "VIOLATED"))
    Hls_bench.Suite.all

(* ------------------------------------------------------------------ *)
(* 5. Theorem 2: optimality audit                                      *)
(* ------------------------------------------------------------------ *)

let optimality_audit () =
  section "Theorem 2: online-optimality audit (fast select vs exhaustive)";
  let resources = R.fig3_2alu_2mul in
  let audited = ref 0 and agreed = ref 0 in
  for seed = 1 to 30 do
    let rng = Random.State.make [| seed |] in
    let g = Generate.random_dag rng ~n:16 ~edge_prob:0.25 in
    let state = T.create g ~resources in
    List.iter
      (fun v ->
        (match Soft.Naive.select state v with
        | None -> ()
        | Some (_, best) ->
          let trial = T.copy state in
          T.schedule trial v;
          incr audited;
          if T.diameter trial = best then incr agreed);
        T.schedule state v)
      (Meta.random ~seed g)
  done;
  Printf.printf "insertions audited: %d, optimal: %d (%.1f%%)\n" !audited
    !agreed
    (100.0 *. float_of_int !agreed /. float_of_int (max 1 !audited))

(* ------------------------------------------------------------------ *)
(* 6. Ablation A: meta-schedule sensitivity                            *)
(* ------------------------------------------------------------------ *)

let ablation_meta () =
  section "Ablation A: meta-schedule sensitivity (2 ALU, 2 MUL)";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-4s %6s %6s %6s %6s %6s %6s %6s %8s\n" "BM" "dfs" "topo"
    "paths" "list" "rnd1" "rnd2" "rnd3" "spread";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let run meta = Soft.Scheduler.csteps ~meta ~resources (e.build ()) in
      let values =
        [
          run Meta.dfs; run Meta.topological; run Meta.by_paths;
          run (Meta.list_like ~resources);
          run (Meta.random ~seed:1); run (Meta.random ~seed:2);
          run (Meta.random ~seed:3);
        ]
      in
      Printf.printf "%-4s" e.name;
      List.iter (fun v -> Printf.printf " %6d" v) values;
      let lo = List.fold_left min max_int values in
      let hi = List.fold_left max 0 values in
      Printf.printf " %7d%%\n" (100 * (hi - lo) / max lo 1))
    Hls_bench.Suite.all

(* ------------------------------------------------------------------ *)
(* 7. Ablation B: resource sweep                                       *)
(* ------------------------------------------------------------------ *)

let ablation_resources () =
  section "Ablation B: resource sweep (threaded vs list, csteps)";
  Printf.printf "%-4s" "BM";
  List.iter (fun k -> Printf.printf "  %7s" (Printf.sprintf "%da%dm" k k))
    [ 1; 2; 3; 4 ];
  Printf.printf "   (threaded/list per cell)\n";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      Printf.printf "%-4s" e.name;
      List.iter
        (fun k ->
          let resources =
            R.make [ (R.Alu, k); (R.Multiplier, k); (R.Memory, 1) ]
          in
          let threaded = Soft.Scheduler.csteps ~resources (e.build ()) in
          let list_len =
            S.length (Hard.List_sched.run ~resources (e.build ()))
          in
          Printf.printf "  %3d/%-3d" threaded list_len)
        [ 1; 2; 3; 4 ];
      Printf.printf "\n")
    Hls_bench.Suite.all

(* ------------------------------------------------------------------ *)
(* 8. Ablation C: softness of the final state                          *)
(* ------------------------------------------------------------------ *)

let ablation_softness () =
  section "Ablation C: order freedom kept by the soft state";
  Printf.printf "%-4s %8s %10s %10s %9s\n" "BM" "ops" "dag pairs"
    "state pairs" "hard pairs";
  let resources = R.fig3_2alu_2mul in
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let n = Graph.n_vertices g in
      let dag_pairs = Reach.count_pairs (Reach.of_graph g) in
      let state = Soft.Scheduler.run ~resources g in
      let state_pairs =
        Reach.count_pairs (Reach.of_graph (T.state_graph state))
      in
      let hard_pairs = n * (n - 1) / 2 in
      Printf.printf "%-4s %8d %10d %10d %9d\n" e.name n dag_pairs state_pairs
        hard_pairs)
    Hls_bench.Suite.fig3;
  Printf.printf
    "(a hard scheduler fixes all n(n-1)/2 pairs; the soft state only\n\
    \ adds the serialisation edges it needs on top of the dataflow\n\
    \ order — the unfixed remainder is the refinement headroom.)\n"

(* ------------------------------------------------------------------ *)
(* 8b. Ablation D: technology mapping with the scheduling kernel       *)
(* ------------------------------------------------------------------ *)

let ablation_techmap () =
  section "Ablation D: technology mapping (mac/msu cells), csteps";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-4s %9s %16s %18s\n" "BM" "unmapped" "greedy (cells)"
    "kernel-driven (cells)";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let unmapped = Soft.Scheduler.csteps ~resources g in
      let greedy = Techmap.Mapper.greedy g in
      let driven = Techmap.Mapper.schedule_driven ~resources g in
      Printf.printf "%-4s %9d %11d (%2d) %13d (%2d)\n" e.name unmapped
        (Techmap.Mapper.csteps ~resources greedy)
        (List.length greedy.Techmap.Mapper.accepted)
        (Techmap.Mapper.csteps ~resources driven)
        (List.length driven.Techmap.Mapper.accepted))
    Hls_bench.Suite.all;
  Printf.printf
    "(paper outlook #1: candidate fusions scored by re-running the\n\
    \ threaded scheduler; the kernel-driven mapper fuses fewer cells\n\
    \ than the structural greedy one but never schedules worse.)\n"

(* ------------------------------------------------------------------ *)
(* 8c. Ablation E: resource-constrained retiming                       *)
(* ------------------------------------------------------------------ *)

let ablation_retiming () =
  section "Ablation E: resource-constrained retiming (scheduler as kernel)";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-12s %8s %8s %10s %10s\n" "workload" "period" "period'"
    "csteps" "csteps'";
  List.iter
    (fun (name, g) ->
      let o = Retime.Retimer.constrained ~resources g in
      Printf.printf "%-12s %8d %8d %10d %10d\n" name
        o.Retime.Retimer.period_before o.Retime.Retimer.period_after
        o.Retime.Retimer.csteps_before o.Retime.Retimer.csteps_after)
    [
      ("ring8x2", Retime.Workloads.ring ~ops:8 ~registers:2);
      ("ring12x3", Retime.Workloads.ring ~ops:12 ~registers:3);
      ("ring16x4", Retime.Workloads.ring ~ops:16 ~registers:4);
      ("correlator6", Retime.Workloads.correlator ~taps:6);
      ("correlator8", Retime.Workloads.correlator ~taps:8);
      ("pipeline5+2", Retime.Workloads.pipeline ~stages:5 ~slack_registers:2);
    ];
  Printf.printf
    "(paper outlook #2: every feasible retiming target is evaluated by\n\
    \ actually scheduling the retimed loop body under the resource\n\
    \ constraints — csteps', not the combinational period, is optimised.)\n"

(* ------------------------------------------------------------------ *)
(* 8e. Ablation G: register pressure across extraction policies        *)
(* ------------------------------------------------------------------ *)

let ablation_pressure () =
  section "Ablation G: register pressure of the extracted hard schedule";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-4s %6s %6s %7s %22s\n" "BM" "asap" "alap" "aware"
    "aware+spill-to-budget";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let state () = Soft.Scheduler.run ~resources (e.build ()) in
      let asap =
        Refine.Lifetime.max_pressure (T.to_schedule (state ()))
      in
      let alap =
        Refine.Lifetime.max_pressure
          (T.to_schedule ~placement:`Alap (state ()))
      in
      let aware = Refine.Pressure.max_pressure_of_state (state ()) in
      (* one register fewer than the aware requirement, via spilling *)
      let budget = max 1 (aware - 1) in
      let with_spill =
        let s = state () in
        match Refine.Spill.until_fits ~registers:budget s with
        | spills ->
          Printf.sprintf "%d regs after %d spill(s)"
            (Refine.Lifetime.max_pressure (Refine.Pressure.extract s))
            (List.length spills)
        | exception Invalid_argument _ -> "budget unreachable"
      in
      Printf.printf "%-4s %6d %6d %7d %22s\n" e.name asap alap aware
        with_spill)
    Hls_bench.Suite.fig3;
  Printf.printf
    "(the partial order's slack lets the extraction choose where values\n\
    \ live; the aware policy places value-killing ops early and\n\
    \ everything else at its deadline. Spill-to-budget closes the loop\n\
    \ with the register allocator — Section 1's first coupling.)\n"

(* ------------------------------------------------------------------ *)
(* 8d. Ablation F: pipelined multipliers                                *)
(* ------------------------------------------------------------------ *)

let ablation_pipeline () =
  section "Ablation F: pipelined multipliers (II = 1), threaded csteps";
  Printf.printf "%-4s" "BM";
  List.iter (fun k -> Printf.printf "  %11s" (Printf.sprintf "%da%dm" 2 k))
    [ 1; 2 ];
  Printf.printf "   (plain -> pipelined per cell)\n";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      Printf.printf "%-4s" e.name;
      List.iter
        (fun muls ->
          let resources =
            R.make [ (R.Alu, 2); (R.Multiplier, muls); (R.Memory, 1) ]
          in
          let plain = Soft.Scheduler.csteps ~resources (e.build ()) in
          let pipelined =
            Hard.Pipeline.csteps
              ~scheduler:(Soft.Scheduler.run_to_schedule ~resources)
              (e.build ())
          in
          Printf.printf "  %4d -> %-4d" plain pipelined)
        [ 1; 2 ];
      Printf.printf "\n")
    Hls_bench.Suite.all;
  Printf.printf
    "(issue/drain splitting lets every scheduler handle pipelined\n\
    \ units; multiply-bound designs recover most of the gap to the\n\
    \ unconstrained critical path.)\n"

(* ------------------------------------------------------------------ *)
(* 8f. Ablation H: meta-schedule search                                 *)
(* ------------------------------------------------------------------ *)

let ablation_search () =
  section "Ablation H: meta-schedule search (the outer loop)";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-4s %6s %6s %8s %8s %8s\n" "BM" "topo" "list" "search"
    "exact" "orders";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let topo = Soft.Scheduler.csteps ~resources g in
      let list_len = S.length (Hard.List_sched.run ~resources g) in
      let o = Soft.Search.run ~restarts:24 ~resources g in
      let exact =
        if Graph.n_vertices g <= 40 then
          let r = Hard.Exact_bb.run ~node_limit:300_000 ~resources g in
          if r.Hard.Exact_bb.optimal then
            string_of_int (S.length r.Hard.Exact_bb.schedule)
          else Printf.sprintf "<=%d" (S.length r.Hard.Exact_bb.schedule)
        else "-"
      in
      Printf.printf "%-4s %6d %6d %8d %8s %8d\n" e.name topo list_len
        o.Soft.Search.best_csteps exact o.Soft.Search.evaluated)
    Hls_bench.Suite.all;
  Printf.printf
    "(sampling a couple dozen meta schedules closes the online-vs-global\n\
    \ gap the paper's Section 5 concedes; the exact column bounds what\n\
    \ is achievable at all.)\n"

(* ------------------------------------------------------------------ *)
(* 8g. Ablation I: if-conversion vs multi-block scheduling              *)
(* ------------------------------------------------------------------ *)

let ablation_cdfg () =
  section "Ablation I: if-conversion (super block) vs branching blocks";
  let programs =
    [
      ( "guard",
        "input a, b; output y;\n\
         if (a < b) { y = a * a; } else { y = b + 1; }" );
      ( "mul-branches",
        "input a, b; output y;\n\
         if (a < b) { y = a * a * a * a; } else { y = b * b * b * b; }" );
      ( "nested",
        "input a, b, c; output y, z;\n\
         t = a * b + c;\n\
         if (t < 0) { y = 0 - t; z = t * t; }\n\
         else { y = t; if (b < c) { z = t + b; } else { z = t + c; } }" );
      ( "loop-guarded",
        "input a; output y; y = a;\n\
         repeat 3 { if (y < 100) { y = y * 2; } else { y = y + 1; } }" );
    ]
  in
  Printf.printf "%-14s %-10s %8s %18s %8s\n" "program" "resources" "super"
    "multi best..worst" "blocks";
  List.iter
    (fun (label, source) ->
      List.iter
        (fun (rlabel, resources) ->
          let cmp =
            Cdfg.Block_sched.versus_if_conversion ~resources
              (Ir.Parser.parse source)
          in
          Printf.printf "%-14s %-10s %8d %10d..%-7d %8d\n" label rlabel
            cmp.Cdfg.Block_sched.superblock_csteps
            cmp.Cdfg.Block_sched.multi_block_best
            cmp.Cdfg.Block_sched.multi_block_worst
            cmp.Cdfg.Block_sched.blocks)
        [
          ("2alu,2mul", R.fig3_2alu_2mul);
          ("1alu,1mul", R.make [ (R.Alu, 1); (R.Multiplier, 1) ]);
        ])
    programs;
  Printf.printf
    "(speculating both branch arms is free when units are idle —\n\
    \ if-conversion wins — and expensive when they are scarce — the\n\
    \ branching schedule wins on the worst-case path.)\n"

(* ------------------------------------------------------------------ *)
(* 8h. Ablation J: VLIW emission metrics                                *)
(* ------------------------------------------------------------------ *)

let ablation_vliw () =
  section "Ablation J: VLIW code generation (Section 1's other domain)";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%-4s %8s %8s %8s %10s %8s\n" "BM" "bundles" "instrs"
    "slots" "registers" "density";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~resources g in
      let binding = Rtl.Binding.of_state state in
      let prog = Vliw.Emit.run binding in
      Printf.printf "%-4s %8d %8d %8d %10d %7.0f%%\n" e.name
        (Array.length prog.Vliw.Isa.bundles)
        (Vliw.Isa.n_instructions prog)
        prog.Vliw.Isa.n_slots prog.Vliw.Isa.n_registers
        (100.0 *. Vliw.Isa.slot_utilisation prog))
    Hls_bench.Suite.all;
  Printf.printf
    "(one bundle per control step; every program is validated and\n\
    \ executed against the dataflow semantics by the test suite.)\n"

(* ------------------------------------------------------------------ *)
(* 8i. Refinement loop: incremental closure vs rebuild-per-mutation    *)
(* ------------------------------------------------------------------ *)

(* The dependence core keeps the reachability index consistent across
   graph mutations either by replaying the mutation journal into the
   closure ([`Incremental], the default) or by rebuilding it from
   scratch at every sync ([`Rebuild], the pre-refactor behaviour).
   Both paths must produce bit-identical schedules; the sweep measures
   what the incremental path saves on a schedule-then-refine loop —
   the paper's Figure 1(e) usage pattern — as the design grows 16x. *)
let refinement_loop () =
  section "Refinement loop: incremental closure vs rebuild-per-mutation";
  let resources = R.fig3_2alu_2mul in
  Printf.printf "%6s %6s %12s %12s %8s %12s %12s %9s\n" "|V|" "ecos"
    "rebuild(s)" "incr(s)" "speedup" "incr words" "rebld words" "identical";
  let rng = Random.State.make [| 2026 |] in
  List.iter
    (fun n ->
      let g0 = Generate.layered rng ~layers:(n / 10) ~width:10 ~fanin:3 in
      (* a deterministic ECO sweep: splice a Mov into the first n/10
         original data edges, each absorbed online by the soft state *)
      let targets =
        List.filteri (fun i _ -> i < max 1 (n / 10)) (Graph.edges g0)
      in
      (* timed region: the ECO sweep only — scheduling cost is the
         same under both modes and would bury the closure delta *)
      let reps = max 1 (400 / n) in
      let run mode =
        T.set_reach_mode mode;
        Fun.protect
          ~finally:(fun () -> T.set_reach_mode `Incremental)
          (fun () ->
            let total = ref 0.0 in
            let last = ref None in
            for _ = 1 to reps do
              let g = Graph.copy g0 in
              let state = Soft.Scheduler.run ~resources g in
              let c = Telemetry.Counters.create () in
              let t0 = Sys.time () in
              Telemetry.with_sink (Telemetry.Counters.sink c) (fun () ->
                  List.iter
                    (fun (u, v) ->
                      ignore
                        (Refine.Eco.insert_on_edge state ~src:u ~dst:v
                           ~op:Op.Mov ()))
                    targets);
              total := !total +. (Sys.time () -. t0);
              last :=
                Some
                  ( Telemetry.Counters.snapshot c,
                    S.starts (T.to_schedule state) )
            done;
            let snap, starts = Option.get !last in
            (!total /. float_of_int reps, snap, starts))
      in
      let rebuild_t, rebuild_snap, rebuild_starts = run `Rebuild in
      let incr_t, snap, incr_starts = run `Incremental in
      let identical = rebuild_starts = incr_starts in
      let speedup = rebuild_t /. max incr_t 1e-9 in
      Printf.printf "%6d %6d %12.5f %12.5f %7.1fx %12d %12d %9s\n" n
        (List.length targets) rebuild_t incr_t speedup
        snap.Telemetry.Counters.closure_words_ored
        rebuild_snap.Telemetry.Counters.closure_words_ored
        (if identical then "yes" else "NO");
      let rec_row name unit v =
        record ~sec:"refine" ~name:(Printf.sprintf "refine/V=%d/%s" n name)
          ~unit v
      in
      rec_row "rebuild" "s" rebuild_t;
      rec_row "incremental" "s" incr_t;
      rec_row "speedup" "x" speedup;
      rec_row "closure_rows_touched" "count"
        (float_of_int snap.Telemetry.Counters.closure_rows_touched);
      rec_row "closure_words_ored" "count"
        (float_of_int snap.Telemetry.Counters.closure_words_ored);
      rec_row "closure_words_ored_rebuild" "count"
        (float_of_int rebuild_snap.Telemetry.Counters.closure_words_ored);
      rec_row "closure_rebuilds" "count"
        (float_of_int snap.Telemetry.Counters.closure_rebuilds);
      rec_row "closure_incremental_updates" "count"
        (float_of_int snap.Telemetry.Counters.closure_incremental_updates);
      rec_row "identical" "bool" (if identical then 1.0 else 0.0))
    [ 50; 100; 200; 400; 800 ];
  Printf.printf
    "(rebuild is the pre-refactor policy: every graph mutation observed\n\
    \ by the state pays a from-scratch transitive closure. The journal\n\
    \ replay touches only the rows the new edge actually orders, and\n\
    \ the schedules stay bit-identical either way.)\n"

(* ------------------------------------------------------------------ *)
(* 9. Bechamel wall-clock timings                                      *)
(* ------------------------------------------------------------------ *)

let bechamel_timings () =
  section "Bechamel: wall-clock timings (ns per run, OLS estimate)";
  let open Bechamel in
  let open Toolkit in
  let resources = R.fig3_2alu_2mul in
  let bench_graph name build =
    [
      Test.make
        ~name:(name ^ "/threaded")
        (Staged.stage (fun () ->
             ignore (Soft.Scheduler.run ~resources (build ()))));
      Test.make
        ~name:(name ^ "/list")
        (Staged.stage (fun () ->
             ignore (Hard.List_sched.run ~resources (build ()))));
    ]
  in
  let rng = Random.State.make [| 7 |] in
  let sized =
    List.map
      (fun n ->
        let g = Generate.layered rng ~layers:(n / 10) ~width:10 ~fanin:3 in
        Test.make
          ~name:(Printf.sprintf "scale/threaded/V=%d" n)
          (Staged.stage (fun () ->
               ignore (Soft.Scheduler.run ~resources g))))
      [ 100; 200; 400 ]
  in
  let naive_small =
    let g = Generate.layered rng ~layers:5 ~width:10 ~fanin:3 in
    [
      Test.make ~name:"scale/naive/V=50"
        (Staged.stage (fun () -> ignore (Soft.Naive.run ~resources g)));
    ]
  in
  let spill_bench =
    let build () =
      let g = (Hls_bench.Suite.find "HAL").build () in
      let state = Soft.Scheduler.run ~resources g in
      (g, state)
    in
    [
      Test.make ~name:"refine/spill-HAL"
        (Staged.stage (fun () ->
             let g, state = build () in
             let m2 =
               List.find
                 (fun v -> Graph.name g v = "m2")
                 (Graph.vertices g)
             in
             ignore (Refine.Spill.apply state ~value:m2)));
    ]
  in
  let extension_benches =
    [
      Test.make ~name:"techmap/EF"
        (Staged.stage (fun () ->
             ignore
               (Techmap.Mapper.schedule_driven ~resources
                  ((Hls_bench.Suite.find "EF").build ()))));
      Test.make ~name:"retime/ring12x3"
        (Staged.stage (fun () ->
             ignore
               (Retime.Retimer.constrained ~resources
                  (Retime.Workloads.ring ~ops:12 ~registers:3))));
      Test.make ~name:"search/EF-16-orders"
        (Staged.stage (fun () ->
             ignore
               (Soft.Search.run ~restarts:12 ~resources
                  ((Hls_bench.Suite.find "EF").build ()))));
      Test.make ~name:"vliw-emit/EF"
        (Staged.stage
           (let g = (Hls_bench.Suite.find "EF").build () in
            let state = Soft.Scheduler.run ~resources g in
            let binding = Rtl.Binding.of_state state in
            fun () -> ignore (Vliw.Emit.run binding)));
      Test.make ~name:"bind+sim/EF"
        (Staged.stage
           (let g = (Hls_bench.Suite.find "EF").build () in
            let state = Soft.Scheduler.run ~resources g in
            let binding = Rtl.Binding.of_state state in
            let env =
              List.filter_map
                (fun v ->
                  match Graph.op g v with
                  | Op.Input n -> Some (n, 3)
                  | _ -> None)
                (Graph.vertices g)
            in
            fun () -> ignore (Rtl.Sim.run binding ~env)));
    ]
  in
  let tests =
    List.concat
      [
        bench_graph "fig3/HAL" (Hls_bench.Suite.find "HAL").build;
        bench_graph "fig3/AR" (Hls_bench.Suite.find "AR").build;
        bench_graph "fig3/EF" (Hls_bench.Suite.find "EF").build;
        bench_graph "fig3/FIR" (Hls_bench.Suite.find "FIR").build;
        sized;
        naive_small;
        spill_bench;
        extension_benches;
      ]
  in
  let grouped = Test.make_grouped ~name:"softsched" tests in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ estimate ] ->
        Printf.printf "%-28s %14.0f ns/run\n" name estimate;
        record ~sec:"bechamel" ~name ~unit:"ns/run" estimate
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Scheduling service: batch throughput, cold vs warm cache            *)
(* ------------------------------------------------------------------ *)

(* All eight benchmark designs through the NDJSON batch path. Cold: a
   fresh service per pass, so every request runs graph construction,
   fingerprinting and the scheduler. Warm: one service whose cache (and
   name-memo) is primed, so a request is a memo lookup plus response
   rendering. The speedup row is the service's reason to exist. *)
let service_throughput () =
  section "Scheduling service (NDJSON batch, 8 designs per pass)";
  let lines =
    List.map
      (fun (e : Hls_bench.Suite.entry) ->
        Printf.sprintf {|{"design":%S}|} e.name)
      Hls_bench.Suite.all
  in
  let n = List.length lines in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let run service jobs = ignore (Serve.Batch.run_lines service ~jobs lines) in
  let cold_iters = 20 in
  let cold jobs =
    let s =
      time (fun () ->
          for _ = 1 to cold_iters do
            run (Serve.Service.create ()) jobs
          done)
    in
    float (cold_iters * n) /. s
  in
  let cold1 = cold 1 in
  let cold4 = cold 4 in
  let service = Serve.Service.create () in
  run service 1 (* prime the cache *);
  let warm_iters = 200 in
  let warm_s =
    time (fun () ->
        for _ = 1 to warm_iters do
          run service 1
        done)
  in
  let warm = float (warm_iters * n) /. warm_s in
  let speedup = warm /. cold1 in
  Printf.printf "  %-26s %12.0f requests/s\n" "cold, --jobs 1" cold1;
  Printf.printf "  %-26s %12.0f requests/s\n" "cold, --jobs 4" cold4;
  Printf.printf "  %-26s %12.0f requests/s\n" "warm cache, --jobs 1" warm;
  Printf.printf "  %-26s %12.1fx\n" "warm/cold speedup" speedup;
  record ~sec:"serve" ~name:"cold throughput" ~unit:"requests/s" cold1;
  record ~sec:"serve" ~name:"cold throughput jobs=4" ~unit:"requests/s" cold4;
  record ~sec:"serve" ~name:"warm throughput" ~unit:"requests/s" warm;
  record ~sec:"serve" ~name:"warm/cold speedup" ~unit:"x" speedup;
  (* Per-request latency through the full request path (parse, prepare,
     execute, render), one sample per request into a log-bucketed
     histogram — the tail is what the throughput means conceal. *)
  let one_request service h line =
    let module H = Telemetry.Histogram in
    let t0 = Telemetry.now_ns () in
    (match Serve.Protocol.request_of_line line with
    | Error _ -> ()
    | Ok req -> (
      match Serve.Service.prepare service req with
      | Error _ -> ()
      | Ok p ->
        let o, cached = Serve.Service.execute service p in
        ignore
          (Serve.Service.line ~trace:"bench" ~cached
             ~want_schedule:req.Serve.Protocol.want_schedule o)));
    H.record h (Telemetry.now_ns () - t0)
  in
  let h_cold = Telemetry.Histogram.create () in
  for _ = 1 to cold_iters do
    let service = Serve.Service.create () in
    List.iter (one_request service h_cold) lines
  done;
  let h_warm = Telemetry.Histogram.create () in
  for _ = 1 to warm_iters do
    List.iter (one_request service h_warm) lines
  done;
  let pct h p = float (Telemetry.Histogram.percentile h p) /. 1e6 in
  let report label h =
    Printf.printf "  %-26s %12.3f / %.3f / %.3f ms (p50/p95/p99)\n" label
      (pct h 50.0) (pct h 95.0) (pct h 99.0);
    List.iter
      (fun p ->
        record ~sec:"serve"
          ~name:(Printf.sprintf "%s latency p%.0f" label p)
          ~unit:"ms" (pct h p))
      [ 50.0; 95.0; 99.0 ]
  in
  report "cold" h_cold;
  report "warm" h_warm

(* Parallel-scaling sweep for the domains pool: cold throughput at
   jobs ∈ {1,2,4,N} (N = detected cores) over a persistent pool — the
   pool is created once per level and lent to every batch pass, so
   domain spawn cost stays out of the measurement — plus warm cached
   lookups/sec with that many concurrent workers hammering one primed
   service through the sharded cache. Rows land under the
   "serve_scaling" key in BENCH_softsched.json; CI gates the cold
   jobs=4 / jobs=1 ratio at >= 1.5x on OCaml 5.x (on the threads
   backend the ratio is ~1.0 — the GIL — which is the point of the
   domains port). *)
let service_scaling () =
  section
    (Printf.sprintf "Service parallel scaling (%s backend, %d cores detected)"
       Serve.Pool.backend
       (Serve.Pool.default_jobs ()));
  let lines =
    List.map
      (fun (e : Hls_bench.Suite.entry) ->
        Printf.sprintf {|{"design":%S}|} e.name)
      Hls_bench.Suite.all
  in
  let n = List.length lines in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let jobs_levels =
    List.sort_uniq compare [ 1; 2; 4; Serve.Pool.default_jobs () ]
  in
  let cold_iters = 20 in
  let cold jobs =
    let pool = Serve.Pool.create ~jobs () in
    let s =
      time (fun () ->
          for _ = 1 to cold_iters do
            ignore
              (Serve.Batch.run_lines ~pool (Serve.Service.create ()) ~jobs
                 lines)
          done)
    in
    Serve.Pool.shutdown pool;
    float (cold_iters * n) /. s
  in
  let colds = List.map (fun j -> (j, cold j)) jobs_levels in
  List.iter
    (fun (j, v) ->
      Printf.printf "  %-26s %12.0f requests/s\n"
        (Printf.sprintf "cold, --jobs %d" j)
        v;
      record ~sec:"serve_scaling"
        ~name:(Printf.sprintf "cold throughput jobs=%d" j)
        ~unit:"requests/s" v)
    colds;
  (match (List.assoc_opt 1 colds, List.assoc_opt 4 colds) with
  | Some c1, Some c4 when c1 > 0. ->
    let sp = c4 /. c1 in
    Printf.printf "  %-26s %12.2fx\n" "cold speedup jobs=4 vs 1" sp;
    record ~sec:"serve_scaling" ~name:"cold speedup jobs=4 vs 1" ~unit:"x" sp
  | _ -> ());
  (* Warm path: every worker loops prepare+execute over the primed
     service — pure name-memo + sharded-cache traffic, the regime the
     per-shard locks exist for. *)
  let service = Serve.Service.create () in
  ignore (Serve.Batch.run_lines service ~jobs:1 lines);
  let reqs =
    List.filter_map
      (fun l ->
        match Serve.Protocol.request_of_line l with
        | Ok r -> Some r
        | Error _ -> None)
      lines
  in
  let per_worker = 1000 in
  let warm_lookups jobs =
    let pool = Serve.Pool.create ~jobs () in
    let s =
      time (fun () ->
          let futs =
            List.init jobs (fun _ ->
                Serve.Pool.submit pool (fun () ->
                    for _ = 1 to per_worker do
                      List.iter
                        (fun r ->
                          match Serve.Service.prepare service r with
                          | Ok p -> ignore (Serve.Service.execute service p)
                          | Error _ -> ())
                        reqs
                    done))
          in
          List.iter (fun f -> ignore (Serve.Pool.await f)) futs)
    in
    Serve.Pool.shutdown pool;
    float (jobs * per_worker * List.length reqs) /. s
  in
  List.iter
    (fun j ->
      let v = warm_lookups j in
      Printf.printf "  %-26s %12.0f lookups/s\n"
        (Printf.sprintf "warm, %d workers" j)
        v;
      record ~sec:"serve_scaling"
        ~name:(Printf.sprintf "warm lookups jobs=%d" j)
        ~unit:"lookups/s" v)
    jobs_levels

(* Every registered engine over the whole benchmark suite: control
   steps per design plus the engine's total wall clock, and a race row
   (the default portfolio on the worker pool). The recorded rows land
   under the "portfolio" key in BENCH_softsched.json so later PRs can
   regression-gate engine quality. *)
let portfolio () =
  section "Scheduler portfolio: control steps per engine (2 ALU, 2 MUL, 1 MEM)";
  let resources =
    R.make [ (R.Alu, 2); (R.Multiplier, 2); (R.Memory, 1) ]
  in
  let designs = Hls_bench.Suite.all in
  Printf.printf "  %-16s" "engine";
  List.iter
    (fun (e : Hls_bench.Suite.entry) -> Printf.printf " %5s" e.name)
    designs;
  Printf.printf "  %10s\n" "total ms";
  (* Branch and bound gets a node budget so the big designs stay in
     incumbent-fallback territory instead of exploding the bench. *)
  let budget_for name = if name = "bnb" then Some 200_000 else None in
  List.iter
    (fun eng ->
      let name = Soft.Engine.name eng in
      let total = ref 0.0 in
      Printf.printf "  %-16s" name;
      List.iter
        (fun (e : Hls_bench.Suite.entry) ->
          let g = e.build () in
          let ctx = Soft.Engine.ctx ?budget:(budget_for name) () in
          let o = Soft.Engine.run ~ctx eng ~resources g in
          let a = o.Soft.Engine.annot in
          total := !total +. a.Soft.Engine.wall_s;
          Printf.printf " %5d" a.Soft.Engine.csteps;
          record ~sec:"portfolio"
            ~name:(Printf.sprintf "%s/%s csteps" e.name name)
            ~unit:"csteps"
            (float a.Soft.Engine.csteps))
        designs;
      Printf.printf "  %10.3f\n" (!total *. 1000.);
      record ~sec:"portfolio"
        ~name:(Printf.sprintf "%s total wall" name)
        ~unit:"ms" (!total *. 1000.))
    (Soft.Engine.all ());
  let total = ref 0.0 in
  Printf.printf "  %-16s" "race(default)";
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      match
        Serve.Race.run
          ~engines:(Serve.Race.default_portfolio ())
          ~resources g
      with
      | Error m -> failwith m
      | Ok r ->
        let a = r.Serve.Race.winner.Soft.Engine.annot in
        total := !total +. r.Serve.Race.wall_s;
        Printf.printf " %5d" a.Soft.Engine.csteps;
        record ~sec:"portfolio"
          ~name:(Printf.sprintf "%s/race csteps" e.name)
          ~unit:"csteps"
          (float a.Soft.Engine.csteps))
    designs;
  Printf.printf "  %10.3f\n" (!total *. 1000.);
  record ~sec:"portfolio" ~name:"race total wall" ~unit:"ms" (!total *. 1000.)

(* ------------------------------------------------------------------ *)
(* Ablation K: loop pipelining — II vs resources on the loop kernels   *)
(* ------------------------------------------------------------------ *)

(* The throughput counterpart of the resource sweep: for each loop
   kernel and each Figure 3 configuration, the MII bounds, the achieved
   initiation interval and the steady-state utilisation. The interesting
   number is ii - mii (zero everywhere: the scheduler meets the bound)
   and how II scales as multipliers are taken away. *)
let ablation_modulo () =
  section "Ablation K: loop pipelining (initiation interval vs resources)";
  Printf.printf "  %-10s %-10s %7s %7s %5s %5s %6s %6s  %s\n" "kernel"
    "config" "res_mii" "rec_mii" "mii" "ii" "span" "util" "fallback";
  List.iter
    (fun (e : Hls_bench.Suite.loop_entry) ->
      List.iter
        (fun (cname, resources) ->
          let g = e.build_loop () in
          match Modulo.Ims.run ~resources g with
          | Error m -> failwith m
          | Ok (ms, st) ->
            let util = Modulo.Mschedule.steady_state_util ~resources ms in
            Printf.printf "  %-10s %-10s %7d %7d %5d %5d %6d %6.3f  %s\n"
              e.loop_name cname st.Modulo.Ims.res_mii st.Modulo.Ims.rec_mii
              st.Modulo.Ims.mii st.Modulo.Ims.ii (Modulo.Mschedule.span ms)
              util
              (if st.Modulo.Ims.serial_fallback then "yes" else "no");
            let key metric = Printf.sprintf "%s/%s %s" e.loop_name cname metric in
            record ~sec:"modulo" ~name:(key "mii") ~unit:"cycles"
              (float st.Modulo.Ims.mii);
            record ~sec:"modulo" ~name:(key "ii") ~unit:"cycles"
              (float st.Modulo.Ims.ii);
            record ~sec:"modulo" ~name:(key "span") ~unit:"cycles"
              (float (Modulo.Mschedule.span ms));
            record ~sec:"modulo" ~name:(key "util") ~unit:"ratio" util)
        R.fig3_all)
    Hls_bench.Suite.loops

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig3", figure3);
    ("fig1", figure1_paper_example);
    ("spill", figure1_spill);
    ("wire", figure1_wire);
    ("complexity", complexity_sweep);
    ("telemetry", telemetry_linearity);
    ("optimality", optimality_audit);
    ("meta", ablation_meta);
    ("resources", ablation_resources);
    ("softness", ablation_softness);
    ("techmap", ablation_techmap);
    ("retime", ablation_retiming);
    ("pipeline", ablation_pipeline);
    ("pressure", ablation_pressure);
    ("search", ablation_search);
    ("cdfg", ablation_cdfg);
    ("vliw", ablation_vliw);
    ("refine", refinement_loop);
    ("serve", service_throughput);
    ("serve_scaling", service_scaling);
    ("portfolio", portfolio);
    ("modulo", ablation_modulo);
    ("bechamel", bechamel_timings);
  ]

let () =
  Modulo.Engine.ensure_registered ();
  let json_file = ref "" in
  let only = ref [] in
  let list_sections () =
    List.iter (fun (name, _) -> print_endline name) sections;
    exit 0
  in
  let spec =
    [
      ( "--json",
        Arg.Set_string json_file,
        "FILE write machine-readable results to FILE" );
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "SECTION run only SECTION (repeatable; see --list)" );
      ("--list", Arg.Unit list_sections, " list section names and exit");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [options]";
  let chosen =
    match !only with
    | [] -> sections
    | names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n sections) then begin
            Printf.eprintf "unknown section %s (try --list)\n" n;
            exit 2
          end)
        names;
      List.filter (fun (n, _) -> List.mem n names) sections
  in
  List.iter (fun (_, f) -> f ()) chosen;
  if !json_file <> "" then write_json !json_file;
  print_newline ()
