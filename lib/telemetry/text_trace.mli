(** Human-readable trace dump: one line per event, microsecond
    timestamps relative to the start of the recording. *)

val to_string :
  ?vertex:(int -> string) -> ?thread:(int -> string) ->
  Events.timed list -> string
(** [vertex]/[thread] render ids as names (defaults ["v7"], ["3"]);
    pass e.g. [Graph.name g] and a class-qualified thread printer to get
    a dump in the design's own vocabulary. *)

val write :
  ?vertex:(int -> string) -> ?thread:(int -> string) ->
  path:string -> Events.timed list -> unit
