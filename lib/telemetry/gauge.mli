(** Sampled point-in-time values (queue depth, in-flight requests,
    cache occupancy): one mutable float that goes up and down, where
    {!Counters} only go up. Writers needing coordination bring their
    own lock. *)

type t

val create : ?initial:float -> unit -> t
val set : t -> float -> unit
val set_int : t -> int -> unit
val get : t -> float
val add : t -> float -> unit

val to_json : t -> string
(** The value as a bare JSON number. *)
