(* A gauge is one mutable float: a point-in-time level (queue depth,
   in-flight requests, cache occupancy) that goes up and down, as
   opposed to the monotone Counters. A single word store/load per
   operation — writers that need coordination bring their own lock, the
   same contract as Counters. *)

type t = { mutable value : float }

let create ?(initial = 0.0) () = { value = initial }
let set g v = g.value <- v
let set_int g v = g.value <- float_of_int v
let get g = g.value
let add g d = g.value <- g.value +. d

let to_json g =
  if Float.is_integer g.value && Float.abs g.value < 1e15 then
    Printf.sprintf "%.0f" g.value
  else Printf.sprintf "%.12g" g.value
