(* Core of the telemetry subsystem: the event vocabulary the scheduler
   emits, the sink (a record of hooks, no-ops by default) the events are
   delivered to, and the process-global installation point guarded by a
   single mutable flag so an uninstrumented run pays one inlined boolean
   load per emission site and allocates nothing. *)

(* End-of-call summary. Computed by the scheduler itself (it owns the
   state) and only when a sink is installed, so the O(V+E) passes it
   needs never run in production. *)
type summary = {
  scanned : int;  (* candidate positions examined by this schedule call *)
  diameter : int;  (* ‖S‖ after the commit *)
  state_edges : int;  (* implicit thread edges + explicit cross edges *)
  max_thread_in_degree : int;  (* Lemma 7 observable, in-thread preds *)
  max_thread_out_degree : int;
  ordered_pairs : int option;  (* softness sample, when sampling is due *)
  elapsed_ns : int;  (* wall time spent inside the schedule call *)
}

(* Result-cache traffic (the serving layer's fingerprint cache). One
   hook covers all three outcomes so tee/null stay small; [key] is the
   cache key (fingerprint + configuration), useful in text traces. *)
type cache_op = [ `Hit | `Miss | `Evict ]

module Sink = struct
  type t = {
    schedule_start : v:int -> name:string -> unit;
        (** [schedule v] entered for a not-yet-scheduled vertex. *)
    candidate : v:int -> thread:int -> after:int option -> cost:int -> unit;
        (** One feasible position examined by the select scan.
            [after = None] is the head of the thread. *)
    tie_break : v:int -> rule:string -> ties:int -> unit;
        (** More than one position reached the minimum cost; [rule] is
            the tie-break in force (["first"|"balance"|"pack"]). *)
    chosen : v:int -> thread:int -> after:int option -> cost:int -> unit;
        (** The position select settled on, before the commit. *)
    edge_added : src:int -> dst:int -> unit;
        (** Explicit cross edge added during commit re-tightening. *)
    edge_removed : src:int -> dst:int -> unit;
        (** Explicit cross edge dropped because it became implied. *)
    free_placed : v:int -> name:string -> unit;
        (** Zero-resource vertex committed as a free (thread-less) op. *)
    schedule_done : v:int -> thread:int option -> summary:summary -> unit;
        (** The call returned; [thread = None] for free vertices. *)
    reach_update : rows:int -> words:int -> rebuilt:bool -> unit;
        (** Reachability index caught up with the graph journal:
            [rows] bitset rows touched and [words] 64-bit words OR'd by
            this sync; [rebuilt] is true when an uncovered edge removal
            forced a from-scratch closure instead of an incremental
            update. *)
    cache_event : op:cache_op -> key:string -> unit;
        (** Fingerprint-cache traffic from the serving layer: a lookup
            that hit, a lookup that missed, or an LRU eviction. *)
  }

  let null =
    {
      schedule_start = (fun ~v:_ ~name:_ -> ());
      candidate = (fun ~v:_ ~thread:_ ~after:_ ~cost:_ -> ());
      tie_break = (fun ~v:_ ~rule:_ ~ties:_ -> ());
      chosen = (fun ~v:_ ~thread:_ ~after:_ ~cost:_ -> ());
      edge_added = (fun ~src:_ ~dst:_ -> ());
      edge_removed = (fun ~src:_ ~dst:_ -> ());
      free_placed = (fun ~v:_ ~name:_ -> ());
      schedule_done = (fun ~v:_ ~thread:_ ~summary:_ -> ());
      reach_update = (fun ~rows:_ ~words:_ ~rebuilt:_ -> ());
      cache_event = (fun ~op:_ ~key:_ -> ());
    }

  let tee a b =
    {
      schedule_start =
        (fun ~v ~name ->
          a.schedule_start ~v ~name;
          b.schedule_start ~v ~name);
      candidate =
        (fun ~v ~thread ~after ~cost ->
          a.candidate ~v ~thread ~after ~cost;
          b.candidate ~v ~thread ~after ~cost);
      tie_break =
        (fun ~v ~rule ~ties ->
          a.tie_break ~v ~rule ~ties;
          b.tie_break ~v ~rule ~ties);
      chosen =
        (fun ~v ~thread ~after ~cost ->
          a.chosen ~v ~thread ~after ~cost;
          b.chosen ~v ~thread ~after ~cost);
      edge_added =
        (fun ~src ~dst ->
          a.edge_added ~src ~dst;
          b.edge_added ~src ~dst);
      edge_removed =
        (fun ~src ~dst ->
          a.edge_removed ~src ~dst;
          b.edge_removed ~src ~dst);
      free_placed =
        (fun ~v ~name ->
          a.free_placed ~v ~name;
          b.free_placed ~v ~name);
      schedule_done =
        (fun ~v ~thread ~summary ->
          a.schedule_done ~v ~thread ~summary;
          b.schedule_done ~v ~thread ~summary);
      reach_update =
        (fun ~rows ~words ~rebuilt ->
          a.reach_update ~rows ~words ~rebuilt;
          b.reach_update ~rows ~words ~rebuilt);
      cache_event =
        (fun ~op ~key ->
          a.cache_event ~op ~key;
          b.cache_event ~op ~key);
    }
end

(* --- global installation ------------------------------------------- *)

let enabled_flag = ref false
let current = ref Sink.null

let[@inline] enabled () = !enabled_flag

let install sink =
  current := sink;
  enabled_flag := true

let clear () =
  current := Sink.null;
  enabled_flag := false

let[@inline] emit f = f !current

let with_sink sink f =
  let saved_sink = !current and saved_flag = !enabled_flag in
  install sink;
  Fun.protect
    ~finally:(fun () ->
      current := saved_sink;
      enabled_flag := saved_flag)
    f

(* --- clock --------------------------------------------------------- *)

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* --- softness sampling --------------------------------------------- *)

(* [ordered_pairs] costs a transitive closure, far too much to compute
   on every commit; the scheduler asks [softness_due] once per call and
   samples only every [period] commits (0 = never, the default). *)

let softness_period = ref 0
let softness_tick = ref 0

let set_softness_period p =
  softness_period := max 0 p;
  softness_tick := 0

let softness_due () =
  if !softness_period <= 0 then false
  else begin
    incr softness_tick;
    if !softness_tick >= !softness_period then begin
      softness_tick := 0;
      true
    end
    else false
  end

(* --- recording ----------------------------------------------------- *)

(* The reified form of a sink invocation, for exporters that need the
   whole run at once (the text dump and the Chrome trace). *)
type event =
  | Schedule_start of { v : int; name : string }
  | Candidate of { v : int; thread : int; after : int option; cost : int }
  | Tie_break of { v : int; rule : string; ties : int }
  | Chosen of { v : int; thread : int; after : int option; cost : int }
  | Edge_added of { src : int; dst : int }
  | Edge_removed of { src : int; dst : int }
  | Free_placed of { v : int; name : string }
  | Schedule_done of { v : int; thread : int option; summary : summary }
  | Reach_update of { rows : int; words : int; rebuilt : bool }
  | Cache_event of { op : cache_op; key : string }

type timed = { at_ns : int; event : event }

module Recorder = struct
  type t = { mutable rev_events : timed list; mutable n : int }

  let create () = { rev_events = []; n = 0 }

  let push r event =
    r.rev_events <- { at_ns = now_ns (); event } :: r.rev_events;
    r.n <- r.n + 1

  let sink r =
    {
      Sink.schedule_start = (fun ~v ~name -> push r (Schedule_start { v; name }));
      candidate =
        (fun ~v ~thread ~after ~cost ->
          push r (Candidate { v; thread; after; cost }));
      tie_break = (fun ~v ~rule ~ties -> push r (Tie_break { v; rule; ties }));
      chosen =
        (fun ~v ~thread ~after ~cost ->
          push r (Chosen { v; thread; after; cost }));
      edge_added = (fun ~src ~dst -> push r (Edge_added { src; dst }));
      edge_removed = (fun ~src ~dst -> push r (Edge_removed { src; dst }));
      free_placed = (fun ~v ~name -> push r (Free_placed { v; name }));
      schedule_done =
        (fun ~v ~thread ~summary -> push r (Schedule_done { v; thread; summary }));
      reach_update =
        (fun ~rows ~words ~rebuilt -> push r (Reach_update { rows; words; rebuilt }));
      cache_event = (fun ~op ~key -> push r (Cache_event { op; key }));
    }

  let events r = List.rev r.rev_events
  let length r = r.n
end
