(** Log-bucketed, mergeable latency histogram.

    Values land in buckets with 8 sub-buckets per power of two, so any
    reported quantile overshoots the true value by at most 12.5% while
    the whole histogram stays a fixed few-hundred-word array. Recording
    allocates nothing and takes no lock — give each thread its own
    histogram and {!merge} on read: merging per-thread histograms is
    {e exactly} equivalent to one histogram recording the interleaved
    sequence (bucket sums are commutative), which the test suite checks
    as a QCheck property.

    Units are the caller's business; the serving layer records
    nanoseconds. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Negative values clamp to 0. *)

val count : t -> int
val sum : t -> int
val is_empty : t -> bool

val min_value : t -> int
(** 0 while empty. *)

val max_value : t -> int
(** 0 while empty. *)

val mean : t -> float
(** 0.0 while empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100] (clamped): the inclusive upper
    bound of the bucket holding the rank-⌈p/100·count⌉ value, clamped to
    the observed [min_value]/[max_value] — so [percentile t 0] and
    [percentile t 100] are exact, and the result is monotone in [p].
    0 while empty. *)

val merge : t -> t -> t
(** A fresh histogram holding both inputs' recordings; commutative and
    associative, neither input is modified. *)

val equal : t -> t -> bool
(** Bucket-exact equality (counts, sum, extrema, every bucket). *)

val fold_buckets : t -> init:'a -> f:('a -> upper:int -> count:int -> 'a) -> 'a
(** Fold over the non-empty buckets in ascending value order; [upper]
    is the bucket's inclusive upper bound. The Prometheus exporter's
    cumulative walk. *)

val to_json : t -> string
(** One JSON object: count, sum, min, max, mean, p50/p90/p95/p99 — the
    {!Counters.to_json} idiom. *)
