(** Scheduler telemetry: structured decision tracing for the threaded
    (soft) scheduler.

    The instrumented hot path ([Soft.Threaded_graph.schedule]) guards
    every emission site with the inlined {!enabled} check, so with no
    sink installed the cost is one boolean load and zero allocation —
    scheduler results are bit-identical either way, telemetry only
    observes.

    Typical use:
    {[
      let counters = Telemetry.Counters.create () in
      let recorder = Telemetry.Recorder.create () in
      let sink =
        Telemetry.Sink.tee
          (Telemetry.Counters.sink counters)
          (Telemetry.Recorder.sink recorder)
      in
      let state =
        Telemetry.with_sink sink (fun () ->
            Soft.Scheduler.run ~resources g)
      in
      print_string
        (Telemetry.Counters.to_string (Telemetry.Counters.snapshot counters));
      Telemetry.Chrome_trace.write ~path:"trace.json"
        (Telemetry.Recorder.events recorder)
    ]} *)

include module type of struct
  include Events
end

module Counters = Counters
module Histogram = Histogram
module Gauge = Gauge
module Chrome_trace = Chrome_trace
module Text_trace = Text_trace
