(* Root module of the telemetry library: re-export the event/sink core
   and surface the counter and exporter submodules under one name, so
   clients write [Telemetry.with_sink], [Telemetry.Counters.create],
   [Telemetry.Chrome_trace.write]. *)

include Events
module Counters = Counters
module Histogram = Histogram
module Gauge = Gauge
module Chrome_trace = Chrome_trace
module Text_trace = Text_trace
