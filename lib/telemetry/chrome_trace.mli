(** Chrome [trace_event] (catapult JSON) exporter.

    The output loads in [chrome://tracing] and Perfetto: one process,
    one track per functional-unit thread (named via [tracks]) plus a
    synthetic track for free placements, an ["X"] slice per [schedule]
    call on the track the operation landed in, and ["C"] counter series
    for diameter / state edges / softness samples. *)

val to_string :
  ?process_name:string -> ?tracks:(int * string) list ->
  Events.timed list -> string
(** [tracks] maps a thread id to its display name, e.g.
    [(0, "alu 0"); (2, "mul 0")]; threads absent from the list still
    render, under their numeric id. *)

val write :
  ?process_name:string -> ?tracks:(int * string) list ->
  path:string -> Events.timed list -> unit
(** {!to_string} straight to a file. *)
