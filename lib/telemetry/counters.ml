(* Monotonic counters over the scheduler's event stream. One mutable
   record per collection; [sink] wires it to the event hooks, [snapshot]
   freezes it. The [last_*] fields mirror the most recent end-of-call
   summary, so after a full run they agree with
   [Threaded_graph.stats] by construction. *)

type t = {
  mutable schedule_calls : int;
  mutable free_placements : int;
  mutable positions_scanned : int;
  mutable max_positions_in_call : int;
  mutable candidates : int;
  mutable tie_breaks : int;
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable max_in_degree_observed : int;
  mutable max_out_degree_observed : int;
  mutable last_diameter : int;
  mutable last_state_edges : int;
  mutable last_max_in_degree : int;
  mutable last_max_out_degree : int;
  mutable last_ordered_pairs : int option;
  mutable elapsed_ns : int;
  mutable closure_rows_touched : int;
  mutable closure_words_ored : int;
  mutable closure_rebuilds : int;
  mutable closure_incremental_updates : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

type snapshot = {
  schedule_calls : int;
  free_placements : int;
  positions_scanned : int;
  max_positions_in_call : int;
  candidates : int;
  tie_breaks : int;
  edges_added : int;
  edges_removed : int;
  cross_edges_touched : int;
  max_in_degree_observed : int;
  max_out_degree_observed : int;
  last_diameter : int;
  last_state_edges : int;
  last_max_in_degree : int;
  last_max_out_degree : int;
  last_ordered_pairs : int option;
  elapsed_ns : int;
  closure_rows_touched : int;
  closure_words_ored : int;
  closure_rebuilds : int;
  closure_incremental_updates : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

let create () =
  {
    schedule_calls = 0;
    free_placements = 0;
    positions_scanned = 0;
    max_positions_in_call = 0;
    candidates = 0;
    tie_breaks = 0;
    edges_added = 0;
    edges_removed = 0;
    max_in_degree_observed = 0;
    max_out_degree_observed = 0;
    last_diameter = 0;
    last_state_edges = 0;
    last_max_in_degree = 0;
    last_max_out_degree = 0;
    last_ordered_pairs = None;
    elapsed_ns = 0;
    closure_rows_touched = 0;
    closure_words_ored = 0;
    closure_rebuilds = 0;
    closure_incremental_updates = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
  }

let sink (c : t) =
  {
    Events.Sink.schedule_start = (fun ~v:_ ~name:_ -> c.schedule_calls <- c.schedule_calls + 1);
    candidate =
      (fun ~v:_ ~thread:_ ~after:_ ~cost:_ -> c.candidates <- c.candidates + 1);
    tie_break = (fun ~v:_ ~rule:_ ~ties:_ -> c.tie_breaks <- c.tie_breaks + 1);
    chosen = (fun ~v:_ ~thread:_ ~after:_ ~cost:_ -> ());
    edge_added = (fun ~src:_ ~dst:_ -> c.edges_added <- c.edges_added + 1);
    edge_removed = (fun ~src:_ ~dst:_ -> c.edges_removed <- c.edges_removed + 1);
    free_placed = (fun ~v:_ ~name:_ -> c.free_placements <- c.free_placements + 1);
    schedule_done =
      (fun ~v:_ ~thread:_ ~summary:(s : Events.summary) ->
        c.positions_scanned <- c.positions_scanned + s.scanned;
        if s.scanned > c.max_positions_in_call then
          c.max_positions_in_call <- s.scanned;
        if s.max_thread_in_degree > c.max_in_degree_observed then
          c.max_in_degree_observed <- s.max_thread_in_degree;
        if s.max_thread_out_degree > c.max_out_degree_observed then
          c.max_out_degree_observed <- s.max_thread_out_degree;
        c.last_diameter <- s.diameter;
        c.last_state_edges <- s.state_edges;
        c.last_max_in_degree <- s.max_thread_in_degree;
        c.last_max_out_degree <- s.max_thread_out_degree;
        (match s.ordered_pairs with
        | Some _ as p -> c.last_ordered_pairs <- p
        | None -> ());
        c.elapsed_ns <- c.elapsed_ns + s.elapsed_ns);
    reach_update =
      (fun ~rows ~words ~rebuilt ->
        c.closure_rows_touched <- c.closure_rows_touched + rows;
        c.closure_words_ored <- c.closure_words_ored + words;
        if rebuilt then c.closure_rebuilds <- c.closure_rebuilds + 1
        else
          c.closure_incremental_updates <- c.closure_incremental_updates + 1);
    cache_event =
      (fun ~op ~key:_ ->
        match op with
        | `Hit -> c.cache_hits <- c.cache_hits + 1
        | `Miss -> c.cache_misses <- c.cache_misses + 1
        | `Evict -> c.cache_evictions <- c.cache_evictions + 1);
  }

let snapshot (c : t) : snapshot =
  {
    schedule_calls = c.schedule_calls;
    free_placements = c.free_placements;
    positions_scanned = c.positions_scanned;
    max_positions_in_call = c.max_positions_in_call;
    candidates = c.candidates;
    tie_breaks = c.tie_breaks;
    edges_added = c.edges_added;
    edges_removed = c.edges_removed;
    cross_edges_touched = c.edges_added + c.edges_removed;
    max_in_degree_observed = c.max_in_degree_observed;
    max_out_degree_observed = c.max_out_degree_observed;
    last_diameter = c.last_diameter;
    last_state_edges = c.last_state_edges;
    last_max_in_degree = c.last_max_in_degree;
    last_max_out_degree = c.last_max_out_degree;
    last_ordered_pairs = c.last_ordered_pairs;
    elapsed_ns = c.elapsed_ns;
    closure_rows_touched = c.closure_rows_touched;
    closure_words_ored = c.closure_words_ored;
    closure_rebuilds = c.closure_rebuilds;
    closure_incremental_updates = c.closure_incremental_updates;
    cache_hits = c.cache_hits;
    cache_misses = c.cache_misses;
    cache_evictions = c.cache_evictions;
  }

(* Key/value view of a snapshot, keys sorted, used by the aligned
   [dump], the JSON export and the QoR report's per-phase counter
   deltas. Gauge-like fields keep their [last_] prefix so delta-taking
   clients can tell them from the monotone counters. *)
let to_alist (s : snapshot) : (string * float) list =
  let f = float_of_int in
  let rows =
    [
      ("candidates", f s.candidates);
      ("closure_incremental_updates", f s.closure_incremental_updates);
      ("closure_rebuilds", f s.closure_rebuilds);
      ("closure_rows_touched", f s.closure_rows_touched);
      ("closure_words_ored", f s.closure_words_ored);
      ("cross_edges_touched", f s.cross_edges_touched);
      ("edges_added", f s.edges_added);
      ("edges_removed", f s.edges_removed);
      ("elapsed_ns", f s.elapsed_ns);
      ("free_placements", f s.free_placements);
      ("last_diameter", f s.last_diameter);
      ("last_max_in_degree", f s.last_max_in_degree);
      ("last_max_out_degree", f s.last_max_out_degree);
      ("last_state_edges", f s.last_state_edges);
      ("max_in_degree_observed", f s.max_in_degree_observed);
      ("max_out_degree_observed", f s.max_out_degree_observed);
      ("max_positions_in_call", f s.max_positions_in_call);
      ("positions_scanned", f s.positions_scanned);
      ("schedule_calls", f s.schedule_calls);
      ("tie_breaks", f s.tie_breaks);
    ]
  in
  let rows =
    match s.last_ordered_pairs with
    | Some p -> ("last_ordered_pairs", f p) :: rows
    | None -> rows
  in
  (* Cache counters only appear when a cache was actually in play, so
     reports from the cache-less flow (and their committed baselines)
     keep their historical key set. *)
  let rows =
    if s.cache_hits + s.cache_misses + s.cache_evictions = 0 then rows
    else
      ("cache_evictions", f s.cache_evictions)
      :: ("cache_hits", f s.cache_hits)
      :: ("cache_misses", f s.cache_misses)
      :: rows
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let dump (s : snapshot) =
  let rows = to_alist s in
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
  in
  let b = Buffer.create 512 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "%-*s %12.0f\n" width k v))
    rows;
  Buffer.contents b

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_json (s : snapshot) =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" k (json_number v)))
    (to_alist s);
  Buffer.add_char b '}';
  Buffer.contents b

let to_string (s : snapshot) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "scheduler telemetry:";
  line "  schedule calls        %8d  (%d free placements)" s.schedule_calls
    s.free_placements;
  line "  positions scanned     %8d  (max %d in one call, %d feasible)"
    s.positions_scanned s.max_positions_in_call s.candidates;
  line "  tie-breaks taken      %8d" s.tie_breaks;
  line "  edges re-tightened    %8d  (+%d / -%d cross edges)"
    s.cross_edges_touched s.edges_added s.edges_removed;
  line "  state edges           %8d" s.last_state_edges;
  line "  max thread in-degree  %8d  (out-degree %d)" s.last_max_in_degree
    s.last_max_out_degree;
  line "  final diameter        %8d" s.last_diameter;
  (match s.last_ordered_pairs with
  | Some p -> line "  ordered pairs |≺_S|   %8d" p
  | None -> ());
  if s.closure_rebuilds + s.closure_incremental_updates > 0 then begin
    line "  closure updates       %8d  (%d full rebuilds)"
      s.closure_incremental_updates s.closure_rebuilds;
    line "  closure rows touched  %8d  (%d words OR'd)" s.closure_rows_touched
      s.closure_words_ored
  end;
  if s.cache_hits + s.cache_misses + s.cache_evictions > 0 then
    line "  result cache          %8d hits, %d misses, %d evictions"
      s.cache_hits s.cache_misses s.cache_evictions;
  line "  time in scheduler     %11.2f ms" (float_of_int s.elapsed_ns /. 1e6);
  Buffer.contents b
