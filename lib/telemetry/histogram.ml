(* Log-bucketed latency histogram: an HdrHistogram-style layout with
   [sub = 8] sub-buckets per power of two, so every recorded value lands
   in a bucket whose upper bound overshoots it by at most 12.5%. The
   bucket count is fixed at creation (a few hundred words), recording is
   two array loads, one store and four scalar updates — no allocation,
   no locking — and two histograms merge by summing buckets, which is
   what makes per-thread recording + a merge on read exact: the merged
   histogram is identical to one that saw the interleaved sequence. *)

let sub_bits = 3
let sub = 1 lsl sub_bits (* 8 sub-buckets per octave *)

(* Highest octave a native int can reach: [max_int] has [Sys.int_size-1]
   significand bits, so its most significant bit sits at index
   [Sys.int_size - 2]. *)
let max_msb = Sys.int_size - 2
let n_buckets = sub + ((max_msb - sub_bits + 1) * sub)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int; (* max_int while empty *)
  mutable max_v : int; (* min_int while empty *)
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = min_int;
    buckets = Array.make n_buckets 0 }

let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let msb v =
  (* index of the highest set bit; [v > 0] *)
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let index v =
  if v < sub then v
  else
    let m = msb v in
    let o = m - sub_bits in
    sub + (o * sub) + ((v lsr o) - sub)

(* Largest value mapping to bucket [i] — the bucket's inclusive upper
   bound, which percentile extraction reports (clamped to the observed
   extrema, so p0/p100 are exact). *)
let upper_bound i =
  if i < sub then i
  else
    let o = (i - sub) / sub in
    let si = (i - sub) mod sub in
    ((sub + si + 1) lsl o) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let merge a b =
  let m = create () in
  Array.iteri (fun i n -> m.buckets.(i) <- n + b.buckets.(i)) a.buckets;
  m.count <- a.count + b.count;
  m.sum <- a.sum + b.sum;
  m.min_v <- min a.min_v b.min_v;
  m.max_v <- max a.max_v b.max_v;
  m

let equal a b =
  a.count = b.count && a.sum = b.sum
  && min_value a = min_value b
  && max_value a = max_value b
  && a.buckets = b.buckets

let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + t.buckets.(!i);
      incr i
    done;
    let v = upper_bound (!i - 1) in
    if v > t.max_v then t.max_v else if v < t.min_v then t.min_v else v
  end

let fold_buckets t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i n -> if n > 0 then acc := f !acc ~upper:(upper_bound i) ~count:n)
    t.buckets;
  !acc

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_json t =
  let f = float_of_int in
  let rows =
    [
      ("count", f t.count);
      ("sum", f t.sum);
      ("min", f (min_value t));
      ("max", f (max_value t));
      ("mean", mean t);
      ("p50", f (percentile t 50.0));
      ("p90", f (percentile t 90.0));
      ("p95", f (percentile t 95.0));
      ("p99", f (percentile t 99.0));
    ]
  in
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" k (json_number v)))
    rows;
  Buffer.add_char b '}';
  Buffer.contents b
