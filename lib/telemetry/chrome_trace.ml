(* Chrome trace_event (catapult) exporter.

   The recorded run is rendered as one process ("softsched") whose
   threads are the functional-unit threads of the scheduling state, plus
   one extra track for free (zero-resource) placements. Every
   [schedule] call becomes a complete ("X") slice on the track of the
   thread the operation landed in, spanning the wall time the call took;
   diameter and state-edge counts are emitted as counter ("C") series so
   Perfetto plots them over the run. Load the file in chrome://tracing
   or https://ui.perfetto.dev. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type ctx = {
  buf : Buffer.t;
  mutable first : bool;
  t0 : int;  (* ns of the first event; traces start at ts = 0 *)
}

let record ctx fields =
  if ctx.first then ctx.first <- false else Buffer.add_string ctx.buf ",\n";
  Buffer.add_string ctx.buf "  {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char ctx.buf ',';
      Buffer.add_string ctx.buf (Printf.sprintf "\"%s\":%s" k v))
    fields;
  Buffer.add_char ctx.buf '}'

let str s = Printf.sprintf "\"%s\"" (escape s)
let us_of_ns ctx ns = Printf.sprintf "%.3f" (float_of_int (ns - ctx.t0) /. 1e3)

let meta ctx ~name ~tid ~value =
  record ctx
    [
      ("name", str name); ("ph", str "M"); ("pid", "1"); ("tid", string_of_int tid);
      ("args", Printf.sprintf "{\"name\":%s}" (str value));
    ]

let counter ctx ~ts ~series ~value =
  record ctx
    [
      ("name", str series); ("ph", str "C"); ("pid", "1"); ("tid", "0");
      ("ts", us_of_ns ctx ts);
      ("args", Printf.sprintf "{\"%s\":%d}" series value);
    ]

let to_string ?(process_name = "softsched scheduler") ?(tracks = [])
    (events : Events.timed list) =
  let free_tid =
    let max_tid =
      List.fold_left
        (fun acc (ev : Events.timed) ->
          match ev.event with
          | Events.Chosen { thread; _ } | Events.Candidate { thread; _ } ->
            max acc thread
          | Events.Schedule_done { thread = Some k; _ } -> max acc k
          | _ -> acc)
        (List.fold_left (fun acc (tid, _) -> max acc tid) (-1) tracks)
        events
    in
    max_tid + 1
  in
  let t0 = match events with [] -> 0 | e :: _ -> e.Events.at_ns in
  let ctx = { buf = Buffer.create 4096; first = true; t0 } in
  Buffer.add_string ctx.buf "{\"traceEvents\":[\n";
  meta ctx ~name:"process_name" ~tid:0 ~value:process_name;
  List.iter (fun (tid, name) -> meta ctx ~name:"thread_name" ~tid ~value:name) tracks;
  if not (List.mem_assoc free_tid tracks) then
    meta ctx ~name:"thread_name" ~tid:free_tid ~value:"free (zero-resource)";
  (* Pair Schedule_start with Schedule_done per vertex, accumulating the
     decision details events in between carry. *)
  let starts = Hashtbl.create 64 in
  (* v -> (ts, name) *)
  let chosen_cost = Hashtbl.create 64 in
  let edge_adds = ref 0 and edge_removes = ref 0 in
  List.iter
    (fun ({ at_ns; event } : Events.timed) ->
      match event with
      | Events.Schedule_start { v; name } ->
        Hashtbl.replace starts v (at_ns, name)
      | Events.Candidate _ -> ()
      | Events.Tie_break _ -> ()
      | Events.Chosen { v; cost; _ } -> Hashtbl.replace chosen_cost v cost
      | Events.Edge_added _ -> incr edge_adds
      | Events.Edge_removed _ -> incr edge_removes
      | Events.Free_placed _ -> ()
      | Events.Reach_update { rows; words; rebuilt } ->
        record ctx
          [
            ("name", str (if rebuilt then "reach rebuild" else "reach update"));
            ("cat", str "reach"); ("ph", str "i"); ("ts", us_of_ns ctx at_ns);
            ("pid", "1"); ("tid", "0"); ("s", str "p");
            ("args",
             Printf.sprintf "{\"rows\":%d,\"words\":%d}" rows words);
          ]
      | Events.Cache_event { op; key } ->
        record ctx
          [
            ("name",
             str
               (match op with
               | `Hit -> "cache hit"
               | `Miss -> "cache miss"
               | `Evict -> "cache evict"));
            ("cat", str "cache"); ("ph", str "i"); ("ts", us_of_ns ctx at_ns);
            ("pid", "1"); ("tid", "0"); ("s", str "p");
            ("args", Printf.sprintf "{\"key\":%s}" (str key));
          ]
      | Events.Schedule_done { v; thread; summary } ->
        let ts, name =
          match Hashtbl.find_opt starts v with
          | Some s -> s
          | None -> (at_ns, Printf.sprintf "v%d" v)
        in
        Hashtbl.remove starts v;
        let tid = match thread with Some k -> k | None -> free_tid in
        let cost =
          match Hashtbl.find_opt chosen_cost v with
          | Some c -> Printf.sprintf ",\"cost\":%d" c
          | None -> ""
        in
        let args =
          Printf.sprintf
            "{\"vertex\":%d,\"scanned\":%d,\"diameter\":%d,\"state_edges\":%d%s}"
            v summary.Events.scanned summary.Events.diameter
            summary.Events.state_edges cost
        in
        record ctx
          [
            ("name", str name); ("cat", str "schedule"); ("ph", str "X");
            ("ts", us_of_ns ctx ts);
            ("dur",
             Printf.sprintf "%.3f" (float_of_int (max 0 (at_ns - ts)) /. 1e3));
            ("pid", "1"); ("tid", string_of_int tid); ("args", args);
          ];
        counter ctx ~ts:at_ns ~series:"diameter" ~value:summary.Events.diameter;
        counter ctx ~ts:at_ns ~series:"state_edges"
          ~value:summary.Events.state_edges;
        (match summary.Events.ordered_pairs with
        | Some p -> counter ctx ~ts:at_ns ~series:"ordered_pairs" ~value:p
        | None -> ()))
    events;
  Buffer.add_string ctx.buf
    (Printf.sprintf
       "\n],\n\"displayTimeUnit\":\"ms\",\n\
        \"otherData\":{\"edges_added\":%d,\"edges_removed\":%d}}\n"
       !edge_adds !edge_removes);
  Buffer.contents ctx.buf

let write ?process_name ?tracks ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?process_name ?tracks events))
