(** Monotonic counters over the scheduler's telemetry stream.

    Create one, install {!sink} (possibly {!Events.Sink.tee}-ed with a
    recorder) and read {!snapshot} when the run is over. Counting is a
    handful of integer stores per event — cheap enough to leave on for
    whole benchmark sweeps. *)

type t

type snapshot = {
  schedule_calls : int;  (** [schedule] calls that did work *)
  free_placements : int;  (** zero-resource vertices placed free *)
  positions_scanned : int;  (** total select-scan work (Theorem 3) *)
  max_positions_in_call : int;
  candidates : int;  (** feasible positions reported to the sink *)
  tie_breaks : int;
  edges_added : int;  (** explicit cross edges added by commits *)
  edges_removed : int;  (** cross edges dropped as implied *)
  cross_edges_touched : int;  (** added + removed *)
  max_in_degree_observed : int;  (** running max over commits (Lemma 7) *)
  max_out_degree_observed : int;
  last_diameter : int;  (** diameter after the most recent commit *)
  last_state_edges : int;  (** agrees with [Threaded_graph.stats] *)
  last_max_in_degree : int;
  last_max_out_degree : int;
  last_ordered_pairs : int option;  (** most recent softness sample *)
  elapsed_ns : int;  (** wall time inside instrumented calls *)
  closure_rows_touched : int;  (** reachability rows unioned by syncs *)
  closure_words_ored : int;  (** 64-bit words OR'd by those unions *)
  closure_rebuilds : int;  (** syncs forced to rebuild from scratch *)
  closure_incremental_updates : int;  (** syncs served by journal replay *)
  cache_hits : int;  (** result-cache lookups served from memory *)
  cache_misses : int;  (** lookups that fell through to the scheduler *)
  cache_evictions : int;  (** LRU entries dropped to stay within capacity *)
}

val create : unit -> t

val sink : t -> Events.Sink.t
(** A sink that accumulates into [t]. *)

val snapshot : t -> snapshot

val to_string : snapshot -> string
(** Human-readable block, one counter per line (what [--stats] prints). *)

val to_alist : snapshot -> (string * float) list
(** Key/value view, keys sorted ascending. Gauge fields carry a [last_]
    prefix (most-recent value, not a monotone count);
    [last_ordered_pairs] is present only when a softness sample was
    taken, and the [cache_*] trio only when any cache traffic was
    observed (the cache-less flow keeps its historical key set). *)

val dump : snapshot -> string
(** One [key value] line per counter, keys sorted and aligned — the
    stable machine-greppable sibling of {!to_string}. *)

val to_json : snapshot -> string
(** The {!to_alist} rows as one JSON object (sorted keys). Embedded
    verbatim in the QoR run-report. *)
