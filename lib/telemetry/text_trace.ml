(* Human-readable dump of a recorded run: one line per event, indented
   under its schedule call, timestamps relative to the first event. *)

let default_vertex v = Printf.sprintf "v%d" v

let to_string ?(vertex = default_vertex) ?(thread = string_of_int)
    (events : Events.timed list) =
  let t0 = match events with [] -> 0 | e :: _ -> e.Events.at_ns in
  let b = Buffer.create 4096 in
  let line at fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "[%10.3fus] %s\n" (float_of_int (at - t0) /. 1e3) s))
      fmt
  in
  let position k after =
    match after with
    | None -> Printf.sprintf "thread %s head" (thread k)
    | Some w -> Printf.sprintf "thread %s after %s" (thread k) (vertex w)
  in
  List.iter
    (fun ({ at_ns = at; event } : Events.timed) ->
      match event with
      | Events.Schedule_start { v; name } ->
        line at "schedule %s (%s)" (vertex v) name
      | Events.Candidate { v = _; thread = k; after; cost } ->
        line at "  candidate %-24s cost %d" (position k after) cost
      | Events.Tie_break { v = _; rule; ties } ->
        line at "  tie-break: %d positions tie, rule %s" ties rule
      | Events.Chosen { v = _; thread = k; after; cost } ->
        line at "  chosen    %-24s cost %d" (position k after) cost
      | Events.Edge_added { src; dst } ->
        line at "  edge +  %s -> %s" (vertex src) (vertex dst)
      | Events.Edge_removed { src; dst } ->
        line at "  edge -  %s -> %s (implied)" (vertex src) (vertex dst)
      | Events.Free_placed { v; name } ->
        line at "  free placement of %s (%s)" (vertex v) name
      | Events.Reach_update { rows; words; rebuilt } ->
        line at "reach %s: %d rows, %d words OR'd"
          (if rebuilt then "rebuild" else "update")
          rows words
      | Events.Cache_event { op; key } ->
        line at "cache %s %s"
          (match op with `Hit -> "hit  " | `Miss -> "miss " | `Evict -> "evict")
          key
      | Events.Schedule_done { v = _; thread = k; summary } ->
        let where =
          match k with
          | Some k -> Printf.sprintf "thread %s" (thread k)
          | None -> "free"
        in
        line at
          "  done      %-24s diameter %d, %d state edges, %d scanned%s, %.1fus"
          where summary.Events.diameter summary.Events.state_edges
          summary.Events.scanned
          (match summary.Events.ordered_pairs with
          | Some p -> Printf.sprintf ", |pairs| %d" p
          | None -> "")
          (float_of_int summary.Events.elapsed_ns /. 1e3))
    events;
  Buffer.contents b

let write ?vertex ?thread ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?vertex ?thread events))
