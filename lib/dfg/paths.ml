let source_distances g =
  let sdist = Array.make (Graph.n_vertices g) 0 in
  let order = Topo.sort g in
  List.iter
    (fun v ->
      let best =
        Graph.fold_preds (fun acc p -> max acc sdist.(p)) 0 g v
      in
      sdist.(v) <- best + Graph.delay g v)
    order;
  sdist

let sink_distances g =
  let tdist = Array.make (Graph.n_vertices g) 0 in
  let order = List.rev (Topo.sort g) in
  List.iter
    (fun v ->
      let best =
        Graph.fold_succs (fun acc s -> max acc tdist.(s)) 0 g v
      in
      tdist.(v) <- best + Graph.delay g v)
    order;
  tdist

let distance_through g v =
  let sdist = source_distances g and tdist = sink_distances g in
  sdist.(v) + tdist.(v) - Graph.delay g v

let diameter g =
  if Graph.n_vertices g = 0 then 0
  else Array.fold_left max 0 (source_distances g)

let critical_path g =
  if Graph.n_vertices g = 0 then []
  else begin
    let sdist = source_distances g and tdist = sink_distances g in
    let dia = Array.fold_left max 0 sdist in
    (* Walk forward, at each step choosing the smallest-id successor that
       still lies on a maximal path. *)
    let on_critical v = sdist.(v) + tdist.(v) - Graph.delay g v = dia in
    let start =
      List.fold_left
        (fun acc v ->
          if Graph.in_degree g v = 0 && on_critical v then
            match acc with Some a when a < v -> Some a | _ -> Some v
          else acc)
        None (Graph.vertices g)
    in
    match start with
    | None -> []
    | Some start ->
      let rec walk v acc =
        let next =
          Graph.fold_succs
            (fun best s ->
              if on_critical s && sdist.(s) = sdist.(v) + Graph.delay g s then
                match best with Some b when b < s -> Some b | _ -> Some s
              else best)
            None g v
        in
        match next with
        | None -> List.rev (v :: acc)
        | Some s -> walk s (v :: acc)
      in
      walk start []
  end

let asap_starts g =
  let sdist = source_distances g in
  Array.mapi (fun v d -> d - Graph.delay g v) sdist

let alap_starts g ~deadline =
  let dia = diameter g in
  if deadline < dia then
    invalid_arg
      (Printf.sprintf "Paths.alap_starts: deadline %d < diameter %d" deadline
         dia);
  let tdist = sink_distances g in
  Array.map (fun d -> deadline - d) tdist

let slack g ~deadline =
  let asap = asap_starts g and alap = alap_starts g ~deadline in
  Array.init (Graph.n_vertices g) (fun v -> alap.(v) - asap.(v))
