(** Synthetic precedence graphs for property tests and scaling benches.

    All generators are deterministic given the supplied [Random.State];
    vertices carry arithmetic ops drawn so that ALU and multiplier
    classes both appear (mirroring the benchmark mix). *)

val random_dag :
  Random.State.t -> n:int -> edge_prob:float -> Graph.t
(** Erdős–Rényi-style DAG: vertices [0..n-1]; each forward pair [(i, j)],
    [i < j], becomes an edge with probability [edge_prob]. *)

val layered :
  Random.State.t -> layers:int -> width:int -> fanin:int -> Graph.t
(** [layers] ranks of [width] vertices; every non-first-layer vertex
    draws [min fanin width] distinct predecessors from the previous
    layer. The shape of typical dataflow extracted from loop bodies. *)

val chain : n:int -> Graph.t
(** A single dependence chain — worst case for parallelism. *)

val fork_join : width:int -> Graph.t
(** One source fanning out to [width] independent ops joined by a
    reduction tree — best case for parallelism. *)

val loop_body : Random.State.t -> n:int -> edge_prob:float -> Graph.t
(** Like {!random_dag}, but every vertex past the first draws at least
    one predecessor among the earlier vertices — the connected shape of
    a loop body. The substrate [lib/modulo]'s random loop kernels lift
    to a cyclic graph by adding loop-carried recurrences. *)

val expression_tree : Random.State.t -> depth:int -> Graph.t
(** Random binary expression tree of the given depth (leaves are
    inputs). *)

val series_parallel : Random.State.t -> size:int -> Graph.t
(** Random series-parallel DAG, the canonical shape of structured
    dataflow: recursively either a series composition (A then B) or a
    parallel composition (A beside B, sharing source and sink sides via
    fork/join ops), bottoming out in single operations. [size] bounds
    the recursion budget. *)

val random_op : Random.State.t -> Op.t
(** Uniform draw over {Add, Sub, Mul, Lt, And, Xor} — the mix used by
    all generators above. *)
