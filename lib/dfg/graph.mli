(** Precedence graphs (Definition 1 of the paper).

    A precedence graph is a DAG [G = (V, E, D)] whose vertices are
    operations, whose edges are data/serialisation dependences and whose
    delay function [D] gives each vertex a non-negative cycle count.

    Vertices are dense integer ids in [0 .. n_vertices g - 1]; ids are
    stable (vertices are never removed — refinement passes that "replace"
    behaviour build a new graph via {!Mutate}). The list of predecessors
    of a vertex is kept in insertion order because it doubles as the
    operand list for evaluation of non-commutative operations.

    Adjacency is stored in growable int arrays ({!Vec}), with a hashed
    edge set alongside, so [add_edge] and [mem_edge] are O(1) expected
    and amortised. Every structural change is appended to a mutation
    journal; incremental clients (notably the reachability index in
    [Soft.Threaded_graph]) read {!generation} and replay
    {!mutations_since} instead of diffing the whole graph. *)

type t
type vertex = int

type mutation =
  | Added_vertex of vertex
  | Added_edge of vertex * vertex
  | Removed_edge of vertex * vertex
      (** One entry per structural change, in application order.
          [replace_operand] journals as a removal and/or addition. *)

val create : unit -> t

val add_vertex : t -> ?delay:int -> ?name:string -> Op.t -> vertex
(** Adds an operation vertex. [delay] defaults to {!Delay.of_op}.
    [name] is a debugging / output label. *)

val add_edge : t -> vertex -> vertex -> unit
(** [add_edge g u v] records the dependence [u -> v] ("u before v").
    Duplicate edges are ignored. @raise Invalid_argument on a self loop
    or an unknown endpoint. Acyclicity is {e not} checked here (it would
    make construction quadratic); call {!is_dag} after construction, as
    every front end and generator in this repository does. *)

val remove_edge : t -> vertex -> vertex -> unit
(** @raise Invalid_argument if the edge is absent. *)

val replace_operand : t -> vertex -> old_pred:vertex -> new_pred:vertex -> unit
(** [replace_operand g v ~old_pred ~new_pred] rewires the first operand
    slot of [v] currently fed by [old_pred] to read from [new_pred],
    preserving operand order. The edge [old_pred -> v] is dropped only
    when no other operand slot of [v] still reads [old_pred], so edge
    accounting stays exact even after operand merges. @raise
    Invalid_argument if [old_pred] does not feed [v]. *)

val n_vertices : t -> int
val n_edges : t -> int

val generation : t -> int
(** Monotone mutation counter: the number of journal entries so far.
    Two observations of the same graph are structurally identical iff
    their generations are equal. *)

val mutations_since : t -> int -> mutation list
(** [mutations_since g gen] returns the journal suffix from generation
    [gen] (inclusive) to the present, oldest first. [mutations_since g
    (generation g)] is []. @raise Invalid_argument if [gen] is not in
    [0 .. generation g]. *)

val op : t -> vertex -> Op.t
val delay : t -> vertex -> int
val set_delay : t -> vertex -> int -> unit
val name : t -> vertex -> string
(** Vertex label; defaults to ["v<i>"]. *)

val preds : t -> vertex -> vertex list
(** Immediate predecessors in operand order. Allocates; prefer
    {!iter_preds} / {!fold_preds} in hot loops. *)

val succs : t -> vertex -> vertex list
(** Immediate successors in insertion order. Allocates; prefer
    {!iter_succs} / {!fold_succs} in hot loops. *)

val in_degree : t -> vertex -> int
(** O(1): the number of operand slots (duplicates counted). *)

val out_degree : t -> vertex -> int
(** O(1). *)

val mem_edge : t -> vertex -> vertex -> bool
(** O(1) expected. *)

val iter_preds : (vertex -> unit) -> t -> vertex -> unit
(** Array-walking variant of {!preds}: no allocation, operand order. *)

val iter_succs : (vertex -> unit) -> t -> vertex -> unit
val fold_preds : ('acc -> vertex -> 'acc) -> 'acc -> t -> vertex -> 'acc
val fold_succs : ('acc -> vertex -> 'acc) -> 'acc -> t -> vertex -> 'acc
val exists_pred : (vertex -> bool) -> t -> vertex -> bool
val exists_succ : (vertex -> bool) -> t -> vertex -> bool

val vertices : t -> vertex list
val iter_vertices : (vertex -> unit) -> t -> unit
val fold_vertices : ('acc -> vertex -> 'acc) -> 'acc -> t -> 'acc
val iter_edges : (vertex -> vertex -> unit) -> t -> unit
val edges : t -> (vertex * vertex) list

val sources : t -> vertex list
(** Vertices with no predecessors (the paper's "primary inputs"). *)

val sinks : t -> vertex list
(** Vertices with no successors (the paper's "primary outputs"). *)

val is_dag : t -> bool

val copy : t -> t

val total_delay : t -> int
(** Sum of all vertex delays — a lower bound on any 1-resource schedule. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump: one vertex per line with op, delay and successors. *)
