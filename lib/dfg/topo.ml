let indegrees g =
  let indeg = Array.make (Graph.n_vertices g) 0 in
  Graph.iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  indeg

let sort g =
  let indeg = indegrees g in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr count;
    Graph.iter_succs
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      g u
  done;
  if !count <> Graph.n_vertices g then
    invalid_arg "Topo.sort: graph has a cycle";
  List.rev !order

(* Priority-queue Kahn: the ready set is re-scanned for its minimum.
   O(V^2) worst case, fine for scheduling-sized graphs. *)
let sort_by g ~compare:cmp =
  let indeg = indegrees g in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) indeg;
  let rec take_min best = function
    | [] -> best
    | v :: rest -> take_min (if cmp v best < 0 then v else best) rest
  in
  let order = ref [] in
  let count = ref 0 in
  while !ready <> [] do
    let u =
      match !ready with
      | [] -> assert false
      | v :: rest -> take_min v rest
    in
    ready := List.filter (fun v -> v <> u) !ready;
    order := u :: !order;
    incr count;
    Graph.iter_succs
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := v :: !ready)
      g u
  done;
  if !count <> Graph.n_vertices g then
    invalid_arg "Topo.sort_by: graph has a cycle";
  List.rev !order

let dfs g ~pre ~post =
  let n = Graph.n_vertices g in
  let visited = Array.make n false in
  let rec visit v =
    if not visited.(v) then begin
      visited.(v) <- true;
      pre v;
      Graph.iter_succs visit g v;
      post v
    end
  in
  List.iter visit (Graph.sources g);
  (* Isolated cycles are impossible in a DAG but disconnected vertices
     whose component has no local source are; sweep the remainder. *)
  for v = 0 to n - 1 do
    visit v
  done

let dfs_preorder g =
  let order = ref [] in
  dfs g ~pre:(fun v -> order := v :: !order) ~post:(fun _ -> ());
  List.rev !order

let dfs_postorder g =
  let order = ref [] in
  dfs g ~pre:(fun _ -> ()) ~post:(fun v -> order := v :: !order);
  List.rev !order

let reverse_postorder g = List.rev (dfs_postorder g)

let is_topological g order =
  let n = Graph.n_vertices g in
  if List.length order <> n then false
  else begin
    let position = Array.make n (-1) in
    List.iteri (fun i v -> if v >= 0 && v < n then position.(v) <- i) order;
    Array.for_all (fun p -> p >= 0) position
    && List.for_all
         (fun (u, v) -> position.(u) < position.(v))
         (Graph.edges g)
  end
