type vertex = int

type mutation =
  | Added_vertex of vertex
  | Added_edge of vertex * vertex
  | Removed_edge of vertex * vertex

type node = {
  op : Op.t;
  mutable delay : int;
  name : string;
  preds : vertex Vec.t; (* operand order; may repeat a vertex after merges *)
  succs : vertex Vec.t; (* insertion order; duplicate-free *)
}

type t = {
  nodes : node Vec.t;
  mutable n_edges : int;
  edge_set : (vertex * vertex, unit) Hashtbl.t;
  journal : mutation Vec.t;
}

let dummy_vec : vertex Vec.t = Vec.create ~capacity:1 ~dummy:(-1) ()

let dummy_node =
  { op = Op.Const 0; delay = 0; name = ""; preds = dummy_vec; succs = dummy_vec }

let dummy_mutation = Added_vertex (-1)

let create () =
  {
    nodes = Vec.create ~dummy:dummy_node ();
    n_edges = 0;
    edge_set = Hashtbl.create 64;
    journal = Vec.create ~dummy:dummy_mutation ();
  }

let n_vertices g = Vec.length g.nodes
let n_edges g = g.n_edges
let generation g = Vec.length g.journal

let mutations_since g gen =
  let n = Vec.length g.journal in
  if gen < 0 || gen > n then
    invalid_arg
      (Printf.sprintf "Graph.mutations_since: generation %d not in [0,%d]" gen n);
  let rec loop i acc =
    if i < gen then acc else loop (i - 1) (Vec.get g.journal i :: acc)
  in
  loop (n - 1) []

let node g v =
  if v < 0 || v >= n_vertices g then
    invalid_arg (Printf.sprintf "Graph: unknown vertex %d" v);
  Vec.get g.nodes v

let add_vertex g ?delay ?name op =
  let delay = match delay with Some d -> d | None -> Delay.of_op op in
  if delay < 0 then invalid_arg "Graph.add_vertex: negative delay";
  let id = Vec.length g.nodes in
  let name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  let _index =
    Vec.push g.nodes
      {
        op;
        delay;
        name;
        preds = Vec.create ~capacity:2 ~dummy:(-1) ();
        succs = Vec.create ~capacity:2 ~dummy:(-1) ();
      }
  in
  ignore (Vec.push g.journal (Added_vertex id));
  id

let mem_edge g u v =
  ignore (node g u);
  Hashtbl.mem g.edge_set (u, v)

let add_edge g u v =
  if u = v then invalid_arg "Graph.add_edge: self loop";
  let nu = node g u and nv = node g v in
  if not (Hashtbl.mem g.edge_set (u, v)) then begin
    ignore (Vec.push nu.succs v);
    ignore (Vec.push nv.preds u);
    Hashtbl.add g.edge_set (u, v) ();
    ignore (Vec.push g.journal (Added_edge (u, v)));
    g.n_edges <- g.n_edges + 1
  end

(* In-place order-preserving removal of every occurrence of [x]. *)
let vec_remove_all vec x =
  let n = Vec.length vec in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let y = Vec.get vec i in
    if y <> x then begin
      if !j <> i then Vec.set vec !j y;
      incr j
    end
  done;
  for _ = !j to n - 1 do
    ignore (Vec.pop vec)
  done

let remove_edge g u v =
  let nu = node g u and nv = node g v in
  if not (Hashtbl.mem g.edge_set (u, v)) then
    invalid_arg (Printf.sprintf "Graph.remove_edge: no edge %d -> %d" u v);
  ignore (Vec.remove_first nu.succs v);
  (* The edge is gone entirely, so every operand slot reading [u] goes
     with it (they can only repeat after a {!replace_operand} merge). *)
  vec_remove_all nv.preds u;
  Hashtbl.remove g.edge_set (u, v);
  ignore (Vec.push g.journal (Removed_edge (u, v)));
  g.n_edges <- g.n_edges - 1

let replace_operand g v ~old_pred ~new_pred =
  let nv = node g v in
  if not (Vec.mem old_pred nv.preds) then
    invalid_arg
      (Printf.sprintf "Graph.replace_operand: %d does not feed %d" old_pred v);
  let n_old = node g old_pred and n_new = node g new_pred in
  if old_pred = new_pred then () (* rewiring a slot to itself: no-op *)
  else begin
    (* Replace the first operand slot reading [old_pred]. *)
    let replaced = ref false in
    Vec.iteri
      (fun i p ->
        if p = old_pred && not !replaced then begin
          replaced := true;
          Vec.set nv.preds i new_pred
        end)
      nv.preds;
    (* Drop the old edge only if no other operand slot still reads
       [old_pred]; a blanket removal would break the succs/preds
       invariant when operands were previously merged. *)
    if not (Vec.mem old_pred nv.preds) then begin
      ignore (Vec.remove_first n_old.succs v);
      Hashtbl.remove g.edge_set (old_pred, v);
      ignore (Vec.push g.journal (Removed_edge (old_pred, v)));
      g.n_edges <- g.n_edges - 1
    end;
    if not (Hashtbl.mem g.edge_set (new_pred, v)) then begin
      ignore (Vec.push n_new.succs v);
      Hashtbl.add g.edge_set (new_pred, v) ();
      ignore (Vec.push g.journal (Added_edge (new_pred, v)));
      g.n_edges <- g.n_edges + 1
    end
  end

let op g v = (node g v).op
let delay g v = (node g v).delay
let set_delay g v d =
  if d < 0 then invalid_arg "Graph.set_delay: negative delay";
  (node g v).delay <- d

let name g v = (node g v).name
let preds g v = Vec.to_list (node g v).preds
let succs g v = Vec.to_list (node g v).succs
let in_degree g v = Vec.length (node g v).preds
let out_degree g v = Vec.length (node g v).succs

let iter_preds f g v = Vec.iter f (node g v).preds
let iter_succs f g v = Vec.iter f (node g v).succs
let fold_preds f acc g v = Vec.fold_left f acc (node g v).preds
let fold_succs f acc g v = Vec.fold_left f acc (node g v).succs
let exists_succ p g v = Vec.exists p (node g v).succs
let exists_pred p g v = Vec.exists p (node g v).preds

let vertices g = List.init (n_vertices g) Fun.id

let iter_vertices f g =
  for v = 0 to n_vertices g - 1 do
    f v
  done

let fold_vertices f acc g =
  let acc = ref acc in
  iter_vertices (fun v -> acc := f !acc v) g;
  !acc

let iter_edges f g = iter_vertices (fun u -> iter_succs (f u) g u) g

let edges g =
  List.rev
    (fold_vertices
       (fun acc u -> fold_succs (fun acc v -> (u, v) :: acc) acc g u)
       [] g)

let sources g = List.filter (fun v -> in_degree g v = 0) (vertices g)
let sinks g = List.filter (fun v -> out_degree g v = 0) (vertices g)

(* Kahn's algorithm; a graph is a DAG iff every vertex gets popped. *)
let is_dag g =
  let n = n_vertices g in
  let indeg = Array.make n 0 in
  iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let popped = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr popped;
    iter_succs
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      g u
  done;
  !popped = n

let copy g =
  let nodes = Vec.create ~capacity:(max 1 (n_vertices g)) ~dummy:dummy_node () in
  Vec.iter
    (fun n ->
      ignore
        (Vec.push nodes
           { op = n.op; delay = n.delay; name = n.name;
             preds = Vec.copy n.preds; succs = Vec.copy n.succs }))
    g.nodes;
  {
    nodes;
    n_edges = g.n_edges;
    edge_set = Hashtbl.copy g.edge_set;
    journal = Vec.copy g.journal;
  }

let total_delay g = fold_vertices (fun acc v -> acc + delay g v) 0 g

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d vertices, %d edges" (n_vertices g)
    (n_edges g);
  iter_vertices
    (fun v ->
      Format.fprintf fmt "@,  %s [%a, d=%d] -> %s" (name g v) Op.pp (op g v)
        (delay g v)
        (String.concat ", " (List.map (name g) (succs g v))))
    g;
  Format.fprintf fmt "@]"
