(** Reachability (the partial order ≼ induced by a precedence graph).

    The threaded scheduler's feasibility test and the correctness
    invariant both need fast "does u precede v" queries. A bitset
    transitive closure answers them in O(1) after O(V·E/word) setup.

    The index is {e growable and monotone}: precedence graphs in this
    repository only ever gain vertices and edges, so {!add_vertex} and
    {!add_edge} extend the closure in place (OR-ing one descendant row
    into each ancestor row and vice versa) instead of forcing a rebuild.
    Clients replaying a {!Graph.mutations_since} journal keep queries
    exact at a per-mutation cost of O(ancestors + descendants) row
    unions rather than O(V·E/word) per rebuild. *)

type t

val of_graph : Graph.t -> t

val size : t -> int
(** Number of vertices currently covered by the index. *)

val add_vertex : t -> Graph.vertex
(** Extends the index with one isolated vertex and returns its id
    (always [size t] before the call). Amortised O(V/word). *)

val add_edge : t -> Graph.vertex -> Graph.vertex -> unit
(** [add_edge r u v] merges the dependence [u -> v] into the closure:
    every ancestor of [u] absorbs [v]'s descendant row, every descendant
    of [v] absorbs [u]'s ancestor row. No-op if [u] already reaches [v].
    Sound only for edge {e additions} on a DAG — removals require
    {!of_graph}. @raise Invalid_argument on a self loop or unknown
    vertex. *)

val update_stats : t -> int * int
(** [(rows_touched, words_ored)] accumulated by closure construction
    and maintenance on this index; monotone counters for telemetry. *)

val precedes : t -> Graph.vertex -> Graph.vertex -> bool
(** [precedes r u v] iff there is a non-empty path from [u] to [v]
    (strict: [precedes r v v = false]). *)

val preceq : t -> Graph.vertex -> Graph.vertex -> bool
(** Reflexive closure of {!precedes}. *)

val comparable : t -> Graph.vertex -> Graph.vertex -> bool
(** [u ≼ v] or [v ≼ u]. *)

val descendants : t -> Graph.vertex -> Graph.vertex list
(** Strict descendants, ascending id order. *)

val ancestors : t -> Graph.vertex -> Graph.vertex list

val count_pairs : t -> int
(** Number of ordered pairs [(u, v)] with [u ≺ v] — a measure of how
    constrained the partial order is; used by the flexibility ablation. *)
