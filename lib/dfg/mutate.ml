let insert_on_edge g ~src ~dst ~op ?delay ?name () =
  if not (Graph.mem_edge g src dst) then
    invalid_arg
      (Printf.sprintf "Mutate.insert_on_edge: no edge %d -> %d" src dst);
  let w = Graph.add_vertex g ?delay ?name op in
  Graph.add_edge g src w;
  Graph.replace_operand g dst ~old_pred:src ~new_pred:w;
  w

let insert_spill g ~value ~reload_for =
  List.iter
    (fun c ->
      if not (Graph.mem_edge g value c) then
        invalid_arg
          (Printf.sprintf "Mutate.insert_spill: %d is not a consumer of %d" c
             value))
    reload_for;
  let st =
    Graph.add_vertex g ~name:(Graph.name g value ^ "_st") Op.Store
  in
  Graph.add_edge g value st;
  let ld = Graph.add_vertex g ~name:(Graph.name g value ^ "_ld") Op.Load in
  Graph.add_edge g st ld;
  List.iter
    (fun c -> Graph.replace_operand g c ~old_pred:value ~new_pred:ld)
    reload_for;
  (st, ld)
