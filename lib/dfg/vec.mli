(** Growable array, the backing store for graph structures.

    A thin, predictable alternative to [Buffer] for arbitrary element
    types: amortised O(1) [push], O(1) random access, in-place update.
    Indices are dense: [0 .. length v - 1]. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty vector. [dummy] fills unused
    capacity and is never observable through the API. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val copy : 'a t -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val mem : 'a -> 'a t -> bool
(** Structural-equality membership, O(length). *)

val remove_first : 'a t -> 'a -> bool
(** [remove_first v x] removes the first occurrence of [x], shifting the
    tail left (order-preserving). Returns [false] if [x] is absent. *)
