(* For a DAG, edge (u, v) is redundant iff some other successor of u
   still reaches v. *)
let redundant_edges g =
  if not (Graph.is_dag g) then
    invalid_arg "Reduce: input graph is cyclic";
  let reach = Reach.of_graph g in
  List.filter
    (fun (u, v) ->
      Graph.exists_succ (fun w -> w <> v && Reach.preceq reach w v) g u)
    (Graph.edges g)

let transitive_reduction g =
  let redundant = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace redundant e ()) (redundant_edges g);
  let reduced = Graph.create () in
  Graph.iter_vertices
    (fun v ->
      let id =
        Graph.add_vertex reduced ~delay:(Graph.delay g v)
          ~name:(Graph.name g v) (Graph.op g v)
      in
      assert (id = v))
    g;
  Graph.iter_edges
    (fun u v ->
      if not (Hashtbl.mem redundant (u, v)) then Graph.add_edge reduced u v)
    g;
  reduced

let is_reduced g = redundant_edges g = []
