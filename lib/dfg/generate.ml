let op_pool = [| Op.Add; Op.Sub; Op.Mul; Op.Lt; Op.And; Op.Xor |]

let random_op rng = op_pool.(Random.State.int rng (Array.length op_pool))

let random_dag rng ~n ~edge_prob =
  if n < 0 then invalid_arg "Generate.random_dag: negative size";
  let g = Graph.create () in
  let ids = Array.init n (fun _ -> Graph.add_vertex g (random_op rng)) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < edge_prob then
        Graph.add_edge g ids.(i) ids.(j)
    done
  done;
  g

let layered rng ~layers ~width ~fanin =
  if layers < 0 || width <= 0 then invalid_arg "Generate.layered: bad shape";
  let g = Graph.create () in
  let previous = ref [||] in
  for _layer = 1 to layers do
    let current =
      Array.init width (fun _ -> Graph.add_vertex g (random_op rng))
    in
    let prev = !previous in
    if Array.length prev > 0 then
      Array.iter
        (fun v ->
          let wanted = min fanin (Array.length prev) in
          (* Sample [wanted] distinct predecessors by partial shuffle. *)
          let pool = Array.copy prev in
          for i = 0 to wanted - 1 do
            let j = i + Random.State.int rng (Array.length pool - i) in
            let tmp = pool.(i) in
            pool.(i) <- pool.(j);
            pool.(j) <- tmp;
            Graph.add_edge g pool.(i) v
          done)
        current;
    previous := current
  done;
  g

let chain ~n =
  let g = Graph.create () in
  let prev = ref None in
  for _i = 1 to n do
    let v = Graph.add_vertex g Op.Add in
    (match !prev with Some p -> Graph.add_edge g p v | None -> ());
    prev := Some v
  done;
  g

let fork_join ~width =
  if width <= 0 then invalid_arg "Generate.fork_join: width must be positive";
  let g = Graph.create () in
  let source = Graph.add_vertex g (Op.Input "x") in
  let middle =
    List.init width (fun i ->
        let v = Graph.add_vertex g (if i mod 2 = 0 then Op.Mul else Op.Add) in
        Graph.add_edge g source v;
        v)
  in
  (* Binary reduction tree over the middle layer. *)
  let rec reduce = function
    | [] -> ()
    | [ _last ] -> ()
    | nodes ->
      let rec pair acc = function
        | a :: b :: rest ->
          let j = Graph.add_vertex g Op.Add in
          Graph.add_edge g a j;
          Graph.add_edge g b j;
          pair (j :: acc) rest
        | [ a ] -> List.rev (a :: acc)
        | [] -> List.rev acc
      in
      reduce (pair [] nodes)
  in
  reduce middle;
  g

(* A component is (entry vertices, exit vertices). Series wires every
   exit of A to every entry of B (bounded fan); parallel unions. *)
let series_parallel rng ~size =
  if size < 1 then invalid_arg "Generate.series_parallel: size must be >= 1";
  let g = Graph.create () in
  let single () =
    let v = Graph.add_vertex g (random_op rng) in
    ([ v ], [ v ])
  in
  let rec build budget =
    if budget <= 1 then single ()
    else begin
      let left_budget = 1 + Random.State.int rng (budget - 1) in
      let right_budget = budget - left_budget in
      if Random.State.bool rng then begin
        (* series: A ; B *)
        let a_in, a_out = build left_budget in
        let b_in, b_out = build right_budget in
        List.iter
          (fun src ->
            List.iter (fun dst -> Graph.add_edge g src dst) b_in)
          a_out;
        (a_in, b_out)
      end
      else begin
        (* parallel: A || B *)
        let a_in, a_out = build left_budget in
        let b_in, b_out = build right_budget in
        (a_in @ b_in, a_out @ b_out)
      end
    end
  in
  let _ = build size in
  g

let loop_body rng ~n ~edge_prob =
  if n < 1 then invalid_arg "Generate.loop_body: size must be >= 1";
  let g = Graph.create () in
  let ids = Array.init n (fun _ -> Graph.add_vertex g (random_op rng)) in
  for j = 1 to n - 1 do
    (* every op reads at least one earlier op, like dataflow extracted
       from a real loop nest — no disconnected islands *)
    Graph.add_edge g ids.(Random.State.int rng j) ids.(j);
    for i = 0 to j - 1 do
      if Random.State.float rng 1.0 < edge_prob then
        Graph.add_edge g ids.(i) ids.(j)
    done
  done;
  g

let expression_tree rng ~depth =
  let g = Graph.create () in
  let counter = ref 0 in
  let rec build depth =
    if depth = 0 then begin
      incr counter;
      Graph.add_vertex g (Op.Input (Printf.sprintf "x%d" !counter))
    end
    else begin
      let l = build (depth - 1) in
      let r = build (depth - 1) in
      let op =
        match random_op rng with
        | Op.Lt -> Op.Add (* keep trees arithmetic *)
        | op -> op
      in
      let v = Graph.add_vertex g op in
      Graph.add_edge g l v;
      Graph.add_edge g r v;
      v
    end
  in
  if depth < 0 then invalid_arg "Generate.expression_tree: negative depth";
  let _root = build depth in
  g
