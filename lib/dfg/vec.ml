type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let mem x v =
  let rec loop i = i < v.len && (v.data.(i) = x || loop (i + 1)) in
  loop 0

let remove_first v x =
  let rec find i = if i >= v.len then -1 else if v.data.(i) = x then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    Array.blit v.data (i + 1) v.data i (v.len - i - 1);
    v.len <- v.len - 1;
    v.data.(v.len) <- v.dummy;
    true
  end
