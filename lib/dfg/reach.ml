(* Row v of [down] is a bitset over vertices: bit u set iff v reaches u.
   Rows are sized in whole 64-bit words so unions run 8 bytes at a time;
   the index is growable (vertices are only ever added) and supports
   monotone single-edge closure updates, so consumers that watch a
   mutation journal need not rebuild it from scratch. *)
type t = {
  mutable n : int; (* live vertices: rows 0 .. n-1 are valid *)
  mutable row_bytes : int; (* bytes per row; always a multiple of 8 *)
  mutable down : Bytes.t array; (* capacity >= n *)
  mutable up : Bytes.t array;
  mutable rows_touched : int; (* maintenance cost counters, monotone *)
  mutable words_ored : int;
}

let bit_set row u = Bytes.set_uint8 row (u lsr 3)
    (Bytes.get_uint8 row (u lsr 3) lor (1 lsl (u land 7)))

let bit_get row u = Bytes.get_uint8 row (u lsr 3) land (1 lsl (u land 7)) <> 0

(* Word-at-a-time union; both rows have the same (8-multiple) length. *)
let row_or ~into src =
  let len = Bytes.length into in
  let i = ref 0 in
  while !i < len do
    Bytes.set_int64_ne into !i
      (Int64.logor (Bytes.get_int64_ne into !i) (Bytes.get_int64_ne src !i));
    i := !i + 8
  done

let row_bytes_for n = max 8 (((n + 63) / 64) * 8)

let charge r rows =
  r.rows_touched <- r.rows_touched + rows;
  r.words_ored <- r.words_ored + (rows * (r.row_bytes / 8))

let of_graph g =
  let n = Graph.n_vertices g in
  let row_bytes = row_bytes_for n in
  let make () = Array.init (max n 1) (fun _ -> Bytes.make row_bytes '\000') in
  let r =
    { n; row_bytes; down = make (); up = make (); rows_touched = 0;
      words_ored = 0 }
  in
  let order = Topo.sort g in
  (* Reverse topological sweep: v reaches the union of its successors'
     reach sets plus the successors themselves. *)
  List.iter
    (fun v ->
      Graph.iter_succs
        (fun s ->
          bit_set r.down.(v) s;
          row_or ~into:r.down.(v) r.down.(s);
          charge r 1)
        g v)
    (List.rev order);
  List.iter
    (fun v ->
      Graph.iter_preds
        (fun p ->
          bit_set r.up.(v) p;
          row_or ~into:r.up.(v) r.up.(p);
          charge r 1)
        g v)
    order;
  r

let check r v =
  if v < 0 || v >= r.n then
    invalid_arg (Printf.sprintf "Reach: unknown vertex %d" v)

let size r = r.n

let add_vertex r =
  let v = r.n in
  if v >= r.row_bytes * 8 then begin
    (* Widen every live row to the next power-of-two word count. *)
    let row_bytes = max (2 * r.row_bytes) (row_bytes_for (v + 1)) in
    let widen rows =
      Array.mapi
        (fun i row ->
          if i >= r.n then Bytes.make row_bytes '\000'
          else begin
            let w = Bytes.make row_bytes '\000' in
            Bytes.blit row 0 w 0 r.row_bytes;
            w
          end)
        rows
    in
    r.down <- widen r.down;
    r.up <- widen r.up;
    r.row_bytes <- row_bytes
  end;
  if v >= Array.length r.down then begin
    let grow rows =
      let cap = max (2 * Array.length rows) (v + 1) in
      Array.init cap (fun i ->
          if i < Array.length rows then rows.(i)
          else Bytes.make r.row_bytes '\000')
    in
    r.down <- grow r.down;
    r.up <- grow r.up
  end;
  (* Rows beyond [n] may hold garbage from a previous widen; reset. *)
  Bytes.fill r.down.(v) 0 r.row_bytes '\000';
  Bytes.fill r.up.(v) 0 r.row_bytes '\000';
  r.n <- v + 1;
  v

let add_edge r u v =
  check r u;
  check r v;
  if u = v then invalid_arg "Reach.add_edge: self loop";
  if not (bit_get r.down.(u) v) then begin
    (* New paths created by u -> v all factor through it: an ancestor
       [a] of [u] (or [u] itself) gains exactly {v} ∪ down(v); dually a
       descendant [d] of [v] (or [v]) gains {u} ∪ up(u). Neither source
       row is among the mutated rows (the graph is acyclic), so no
       snapshot is needed. *)
    let dv = r.down.(v) and uu = r.up.(u) in
    let touch_down a =
      row_or ~into:r.down.(a) dv;
      bit_set r.down.(a) v;
      charge r 1
    in
    let touch_up d =
      row_or ~into:r.up.(d) uu;
      bit_set r.up.(d) u;
      charge r 1
    in
    touch_down u;
    for a = 0 to r.n - 1 do
      if bit_get uu a then touch_down a
    done;
    touch_up v;
    for d = 0 to r.n - 1 do
      if bit_get dv d then touch_up d
    done
  end

let update_stats r = (r.rows_touched, r.words_ored)

let precedes r u v =
  check r u;
  check r v;
  bit_get r.down.(u) v

let preceq r u v = u = v || precedes r u v
let comparable r u v = precedes r u v || precedes r v u

let collect row n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if bit_get row u then acc := u :: !acc
  done;
  !acc

let descendants r v =
  check r v;
  collect r.down.(v) r.n

let ancestors r v =
  check r v;
  collect r.up.(v) r.n

let count_pairs r =
  let count = ref 0 in
  for v = 0 to r.n - 1 do
    let row = r.down.(v) in
    let len = Bytes.length row in
    for i = 0 to len - 1 do
      let byte = Bytes.get_uint8 row i in
      for b = 0 to 7 do
        if byte land (1 lsl b) <> 0 then incr count
      done
    done
  done;
  !count
