(* The versioned QoR run-report: build, serialise, parse back,
   summarise. Parsing validates the schema discriminator and required
   fields so the diff gate can refuse incompatible files instead of
   silently comparing nonsense. *)

let tool = "softsched-report"
let schema_version = 1

type t = {
  design : string;
  resources : string;
  tool_version : string;
  git : string;
  spans : Metrics.span list;
  audit : Audit.summary option;
}

(* --- git stamp ------------------------------------------------------ *)

let git_describe () =
  match
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with
  | Some line -> line
  | None | (exception _) -> "unknown"

let make ?(tool_version = "dev") ?git ?audit ~design ~resources spans =
  let git = match git with Some g -> g | None -> git_describe () in
  { design; resources; tool_version; git; spans; audit }

(* --- serialisation -------------------------------------------------- *)

let direction_to_string = function
  | Metrics.Lower_better -> "lower"
  | Metrics.Higher_better -> "higher"
  | Metrics.Info -> "info"

let direction_of_string = function
  | "lower" -> Ok Metrics.Lower_better
  | "higher" -> Ok Metrics.Higher_better
  | "info" -> Ok Metrics.Info
  | other -> Error (Printf.sprintf "unknown direction %S" other)

let metric_to_json (m : Metrics.metric) =
  Json.Obj
    [
      ("name", Json.str m.name);
      ("value", Json.num m.value);
      ("units", Json.str m.units);
      ("better", Json.str (direction_to_string m.direction));
    ]

let span_to_json (s : Metrics.span) =
  Json.Obj
    [
      ("phase", Json.str s.phase);
      ("wall_ns", Json.int s.wall_ns);
      ("alloc_words", Json.num s.alloc_words);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) s.counters));
      ("metrics", Json.Arr (List.map metric_to_json s.metrics));
    ]

let audit_to_json (a : Audit.summary) =
  Json.Obj
    ([
       ("rate", Json.int a.rate);
       ("events_seen", Json.int a.events_seen);
       ("checks_run", Json.int a.checks_run);
       ("violations", Json.int a.violations);
     ]
    @
    match a.first_violation with
    | Some m -> [ ("first_violation", Json.str m) ]
    | None -> [])

let to_json r =
  Json.Obj
    [
      ("tool", Json.str tool);
      ("schema_version", Json.int schema_version);
      ("tool_version", Json.str r.tool_version);
      ("git", Json.str r.git);
      ("design", Json.str r.design);
      ("resources", Json.str r.resources);
      ("phases", Json.Arr (List.map span_to_json r.spans));
      ( "audit",
        match r.audit with Some a -> audit_to_json a | None -> Json.Null );
    ]

let to_string r = Json.to_string (to_json r) ^ "\n"

(* Atomic (tmp + rename): a report file either has the old content or
   the complete new one, never a torn write — these files feed the CI
   diff gate. *)
let write ~path r =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string r));
  Sys.rename tmp path

(* --- parsing -------------------------------------------------------- *)

let ( let* ) = Result.bind

let field_str j key =
  match Json.member key j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" key)

let field_num j key =
  match Option.bind (Json.member key j) Json.to_num with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" key)

let metric_of_json j =
  let* name = field_str j "name" in
  let* value = field_num j "value" in
  let* units = field_str j "units" in
  let* better = field_str j "better" in
  let* direction = direction_of_string better in
  Ok { Metrics.name; value; units; direction }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let span_of_json j =
  let* phase = field_str j "phase" in
  let* wall_ns = field_num j "wall_ns" in
  let* alloc_words = field_num j "alloc_words" in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      map_result
        (fun (k, v) ->
          match Json.to_num v with
          | Some f -> Ok (k, f)
          | None -> Error (Printf.sprintf "non-numeric counter %S" k))
        fields
    | _ -> Error (Printf.sprintf "phase %S: missing counters object" phase)
  in
  let* metrics =
    match Json.member "metrics" j with
    | Some (Json.Arr l) -> map_result metric_of_json l
    | _ -> Error (Printf.sprintf "phase %S: missing metrics array" phase)
  in
  Ok
    {
      Metrics.phase;
      wall_ns = int_of_float wall_ns;
      alloc_words;
      counters;
      metrics;
    }

let audit_of_json j =
  let* rate = field_num j "rate" in
  let* events_seen = field_num j "events_seen" in
  let* checks_run = field_num j "checks_run" in
  let* violations = field_num j "violations" in
  let first_violation =
    match Json.member "first_violation" j with
    | Some (Json.Str s) -> Some s
    | _ -> None
  in
  Ok
    {
      Audit.rate = int_of_float rate;
      events_seen = int_of_float events_seen;
      checks_run = int_of_float checks_run;
      violations = int_of_float violations;
      first_violation;
    }

let of_json j =
  let* t = field_str j "tool" in
  if t <> tool then
    Error (Printf.sprintf "not a QoR report: tool is %S, expected %S" t tool)
  else
    let* v = field_num j "schema_version" in
    if int_of_float v <> schema_version then
      Error
        (Printf.sprintf "schema version mismatch: file has %d, tool speaks %d"
           (int_of_float v) schema_version)
    else
      let* tool_version = field_str j "tool_version" in
      let* git = field_str j "git" in
      let* design = field_str j "design" in
      let* resources = field_str j "resources" in
      let* spans =
        match Json.member "phases" j with
        | Some (Json.Arr l) -> map_result span_of_json l
        | _ -> Error "missing phases array"
      in
      let* audit =
        match Json.member "audit" j with
        | Some Json.Null | None -> Ok None
        | Some a ->
          let* a = audit_of_json a in
          Ok (Some a)
      in
      Ok { design; resources; tool_version; git; spans; audit }

let of_string s =
  match Json.parse s with
  | j -> of_json j
  | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error m -> Error m

(* --- human-readable digest ------------------------------------------ *)

let summary r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "QoR report: %s under %s (tool %s, git %s)" r.design r.resources
    r.tool_version r.git;
  List.iter
    (fun (s : Metrics.span) ->
      line "  %-16s %9.3f ms  %10.0f words" s.phase
        (float_of_int s.wall_ns /. 1e6)
        s.alloc_words;
      List.iter
        (fun (m : Metrics.metric) ->
          line "    %-28s %12g %s%s" m.name m.value m.units
            (match m.direction with
            | Metrics.Lower_better -> "  [gated: lower is better]"
            | Metrics.Higher_better -> "  [gated: higher is better]"
            | Metrics.Info -> ""))
        s.metrics)
    r.spans;
  (match r.audit with
  | None -> line "audit: off"
  | Some a ->
    line
      "audit: rate %d, %d check(s) over %d commit(s), %d violation(s)%s"
      a.rate a.checks_run a.events_seen a.violations
      (match a.first_violation with
      | Some m -> Printf.sprintf " — first: %s" m
      | None -> ""));
  Buffer.contents b
