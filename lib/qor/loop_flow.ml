(* The loop-pipelining counterpart of Flow: lower the kernel, bound the
   II, modulo-schedule, verify — every stage a Metrics span so loop
   kernels ride the same report/diff rails as the DAG flow. *)

module L = Modulo.Loop_graph
module M = Metrics

let phases = [ "loop_lower"; "mii"; "modulo_schedule"; "verify" ]
let unroll_iterations = 3

let run ?budget ?tool_version ~resources ~design ~build () =
  let reg = M.create () in
  let counters = Telemetry.Counters.create () in
  let span name f = M.with_span ~counters reg name f in
  (* -- loop_lower: kernel construction and shape ---------------------- *)
  let g =
    span "loop_lower" (fun () ->
        let g = build () in
        let wf =
          match L.well_formed g with
          | Ok () -> 1
          | Error m -> invalid_arg ("Loop_flow.run: " ^ m)
        in
        ( g,
          [
            M.metric_i ~units:"vertices" "vertices" (L.n_vertices g);
            M.metric_i ~units:"edges" "edges" (L.n_edges g);
            M.metric_i ~units:"edges" "back_edges" (L.n_back_edges g);
            M.metric_i ~units:"iterations" "max_distance" (L.max_distance g);
            M.metric_i ~units:"cycles" "total_delay" (L.total_delay g);
            M.metric_i ~units:"bool" "well_formed" wf;
          ] ))
  in
  (* -- mii: the initiation-interval lower bounds ---------------------- *)
  let mii =
    span "mii" (fun () ->
        let res_mii = Modulo.Mii.res_mii ~resources g in
        let rec_mii = Modulo.Mii.rec_mii g in
        let mii = max res_mii rec_mii in
        ( mii,
          [
            M.metric_i ~units:"cycles" "res_mii" res_mii;
            M.metric_i ~units:"cycles" "rec_mii" rec_mii;
            M.metric_i ~units:"cycles" "mii" mii;
          ] ))
  in
  (* -- modulo_schedule: the II search ---------------------------------- *)
  let ms =
    span "modulo_schedule" (fun () ->
        match Modulo.Ims.run ?budget ~resources g with
        | Error m -> invalid_arg ("Loop_flow.run: " ^ m)
        | Ok (ms, stats) ->
          ( ms,
            [
              M.metric_i ~units:"cycles" ~direction:M.Lower_better "ii"
                stats.Modulo.Ims.ii;
              M.metric_i ~units:"cycles" ~direction:M.Lower_better "ii_slack"
                (stats.Modulo.Ims.ii - mii);
              M.metric_i ~units:"cycles" ~direction:M.Lower_better "span"
                (Modulo.Mschedule.span ms);
              M.metric_i ~units:"stages" "stage_count"
                (Modulo.Mschedule.stage_count ms);
              M.metric ~units:"ratio" ~direction:M.Higher_better
                "steady_state_util"
                (Modulo.Mschedule.steady_state_util ~resources ms);
              M.metric_i ~units:"steps" "placements"
                stats.Modulo.Ims.placements;
              M.metric_i ~units:"ops" "evictions" stats.Modulo.Ims.evictions;
              M.metric_i ~units:"candidates" "iis_tried"
                stats.Modulo.Ims.iis_tried;
              M.metric_i ~units:"bool" ~direction:M.Lower_better
                "serial_fallback"
                (if stats.Modulo.Ims.serial_fallback then 1 else 0);
            ] ))
  in
  (* -- verify: the executable meaning of the modulo schedule ---------- *)
  span "verify" (fun () ->
      let modulo_ok =
        match Modulo.Mschedule.check ~resources ms with
        | Ok () -> 1
        | Error _ -> 0
      in
      let unrolled =
        Modulo.Mschedule.unrolled ms ~iterations:unroll_iterations
      in
      let unrolled_ok =
        match Hard.Schedule.check ~resources unrolled with
        | Ok () -> 1
        | Error _ -> 0
      in
      ( (),
        [
          M.metric_i ~units:"bool" ~direction:M.Higher_better "modulo_check"
            modulo_ok;
          M.metric_i ~units:"bool" ~direction:M.Higher_better "unrolled_check"
            unrolled_ok;
          M.metric_i ~units:"iterations" "unrolled_iterations"
            unroll_iterations;
          M.metric_i ~units:"cycles" "unrolled_csteps"
            (Hard.Schedule.length unrolled);
        ] ));
  Report.make ?tool_version ~design
    ~resources:(Hard.Resources.to_string resources)
    (M.spans reg)
