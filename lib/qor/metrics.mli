(** Typed per-phase QoR metrics and instrumented spans.

    A {e metric} is one named, unit-carrying number with a {e gating
    direction}: whether a regression gate should treat growth as a
    regression ([Lower_better]), shrinkage as a regression
    ([Higher_better]) or ignore the metric entirely ([Info] — wall
    clock, allocation and anything else machine-dependent).

    A {e span} wraps one stage of the HLS flow and records what the
    stage cost (wall clock, GC allocation, telemetry-counter deltas)
    next to what the stage produced (its metrics).

    A {e registry} accumulates spans in flow order; {!Report} freezes
    one into the versioned JSON run-report. *)

type direction = Lower_better | Higher_better | Info

type metric = {
  name : string;
  value : float;
  units : string;  (** e.g. ["cycles"], ["registers"], ["ratio"] *)
  direction : direction;
}

type span = {
  phase : string;  (** flow-stage name, e.g. ["soft_schedule"] *)
  wall_ns : int;
  alloc_words : float;  (** GC words allocated during the span *)
  counters : (string * float) list;
      (** telemetry-counter deltas attributed to this span; empty when
          no counter collection was active *)
  metrics : metric list;
}

type t
(** A mutable registry of spans, in flow order. *)

val create : unit -> t

val with_span :
  ?counters:Telemetry.Counters.t -> t -> string ->
  (unit -> 'a * metric list) -> 'a
(** [with_span t phase f] times [f], charges its GC allocation and (when
    [counters] is given) the telemetry-counter movement to a new span
    named [phase], attaches the metrics [f] returns and appends the span
    to [t]. The span is recorded even if [f] raises (with the metrics it
    never got to return). *)

val spans : t -> span list
(** In execution order. *)

val metric :
  ?units:string -> ?direction:direction -> string -> float -> metric
(** [units] defaults to [""], [direction] to [Info]. *)

val metric_i :
  ?units:string -> ?direction:direction -> string -> int -> metric

val find : span list -> phase:string -> name:string -> metric option

val counter_deltas :
  before:Telemetry.Counters.snapshot -> after:Telemetry.Counters.snapshot ->
  (string * float) list
(** Per-key difference of the two snapshots' monotone counters; gauge
    keys (the [last_*] family) report the [after] value instead. *)
