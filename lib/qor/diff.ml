(* Report-vs-report regression gate. Pure: the CLI decides the exit
   code from [ok]. *)

type finding = {
  phase : string;
  name : string;
  baseline : float;
  current : float;
  change_pct : float;
  direction : Metrics.direction;
}

type result = {
  regressions : finding list;
  improvements : finding list;
  unchanged : int;
  missing : (string * string) list;
  added : (string * string) list;
}

let gated (m : Metrics.metric) =
  match m.direction with
  | Metrics.Lower_better | Metrics.Higher_better -> true
  | Metrics.Info -> false

let gated_metrics (r : Report.t) =
  List.concat_map
    (fun (s : Metrics.span) ->
      List.filter_map
        (fun (m : Metrics.metric) ->
          if gated m then Some ((s.Metrics.phase, m.Metrics.name), m)
          else None)
        s.Metrics.metrics)
    r.Report.spans

(* Signed movement in the bad direction, as a percentage of the
   baseline. A zero baseline cannot anchor a percentage: any worsening
   from zero counts as 100%. *)
let badness direction ~baseline ~current =
  let worse =
    match direction with
    | Metrics.Lower_better -> current -. baseline
    | Metrics.Higher_better -> baseline -. current
    | Metrics.Info -> 0.0
  in
  if Float.abs baseline > 1e-12 then 100.0 *. worse /. Float.abs baseline
  else if worse > 0.0 then 100.0
  else if worse < 0.0 then -100.0
  else 0.0

let compare ?(max_regress_pct = 0.0) ~(baseline : Report.t)
    ~(current : Report.t) () =
  if baseline.Report.design <> current.Report.design then
    Error
      (Printf.sprintf "design mismatch: baseline is %S, current is %S"
         baseline.Report.design current.Report.design)
  else if baseline.Report.resources <> current.Report.resources then
    Error
      (Printf.sprintf
         "resource mismatch: baseline under %S, current under %S"
         baseline.Report.resources current.Report.resources)
  else begin
    let base = gated_metrics baseline in
    let cur = gated_metrics current in
    let regressions = ref [] in
    let improvements = ref [] in
    let unchanged = ref 0 in
    let missing = ref [] in
    List.iter
      (fun ((key, bm) : (string * string) * Metrics.metric) ->
        match List.assoc_opt key cur with
        | None -> missing := key :: !missing
        | Some cm ->
          let change_pct =
            badness bm.Metrics.direction ~baseline:bm.Metrics.value
              ~current:cm.Metrics.value
          in
          let finding =
            {
              phase = fst key;
              name = snd key;
              baseline = bm.Metrics.value;
              current = cm.Metrics.value;
              change_pct;
              direction = bm.Metrics.direction;
            }
          in
          if change_pct > max_regress_pct then
            regressions := finding :: !regressions
          else if change_pct < 0.0 then
            improvements := finding :: !improvements
          else incr unchanged)
      base;
    let added =
      List.filter_map
        (fun (key, _) ->
          if List.mem_assoc key base then None else Some key)
        cur
    in
    Ok
      {
        regressions = List.rev !regressions;
        improvements = List.rev !improvements;
        unchanged = !unchanged;
        missing = List.rev !missing;
        added;
      }
  end

let ok r = r.regressions = [] && r.missing = []

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  let describe verb (f : finding) =
    line "  %s %s/%s: %g -> %g (%+.1f%% %s, %s is better)" verb f.phase
      f.name f.baseline f.current f.change_pct
      (if f.change_pct > 0.0 then "worse" else "better")
      (match f.direction with
      | Metrics.Lower_better -> "lower"
      | Metrics.Higher_better -> "higher"
      | Metrics.Info -> "n/a")
  in
  if r.regressions <> [] then begin
    line "REGRESSED %d metric(s):" (List.length r.regressions);
    List.iter (describe "REGRESSION") r.regressions
  end;
  if r.missing <> [] then begin
    line "MISSING %d gated metric(s) from the current report:"
      (List.length r.missing);
    List.iter (fun (p, n) -> line "  missing %s/%s" p n) r.missing
  end;
  if r.improvements <> [] then begin
    line "improved %d metric(s):" (List.length r.improvements);
    List.iter (describe "improved") r.improvements
  end;
  if r.added <> [] then
    line "%d gated metric(s) are new in the current report" (List.length r.added);
  line "%d gated metric(s) unchanged" r.unchanged;
  line
    (if ok r then "QoR gate: PASS" else "QoR gate: FAIL");
  Buffer.contents b
