(* Sampling invariant auditor: replays the live scheduling state
   through Soft.Invariant on every rate-th schedule_done event. The
   checks are pure queries over the state, so auditing never changes
   scheduling results; it only costs time proportional to the sampling
   rate. *)

type summary = {
  rate : int;
  events_seen : int;
  checks_run : int;
  violations : int;
  first_violation : string option;
}

type t = {
  a_rate : int;
  mutable a_events_seen : int;
  mutable a_checks_run : int;
  mutable a_violations : int;
  mutable a_first_violation : string option;
}

let create ?(rate = 1) () =
  if rate < 1 then invalid_arg "Audit.create: rate must be >= 1";
  { a_rate = rate; a_events_seen = 0; a_checks_run = 0; a_violations = 0;
    a_first_violation = None }

let run_check a state =
  a.a_checks_run <- a.a_checks_run + 1;
  match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m ->
    a.a_violations <- a.a_violations + 1;
    if a.a_first_violation = None then a.a_first_violation <- Some m

let check_now a state = run_check a state

let sink a ~state =
  let base = Telemetry.Sink.null in
  {
    base with
    Telemetry.Sink.schedule_done =
      (fun ~v:_ ~thread:_ ~summary:_ ->
        a.a_events_seen <- a.a_events_seen + 1;
        if a.a_events_seen mod a.a_rate = 0 then
          match state () with
          | Some st -> run_check a st
          | None -> ());
  }

let summary a =
  {
    rate = a.a_rate;
    events_seen = a.a_events_seen;
    checks_run = a.a_checks_run;
    violations = a.a_violations;
    first_violation = a.a_first_violation;
  }
