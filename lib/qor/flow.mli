(** The instrumented end-to-end HLS flow behind [softsched report].

    Runs every stage — lower, DAG analysis, soft (threaded) scheduling,
    the refinement battery (pressure extraction, spill-to-budget,
    floorplan + wire insertion, one ECO), binding/register allocation,
    FSM extraction, netlist, technology mapping and VLIW emission —
    under {!Metrics} spans, with telemetry counters attributed per
    phase and (optionally) the {!Audit} invariant auditor watching
    every commit. The product is one {!Report}.

    The flow itself is deterministic: two runs over the same design and
    resources produce identical QoR metrics (only wall clock,
    allocation and the audit timing vary), which is what makes the
    report diffable in CI. *)

val phases : string list
(** Phase names in execution order — the report emits exactly these,
    which the schema tests pin down. *)

val run :
  ?audit_rate:int -> ?meta:Soft.Meta.t -> ?tool_version:string ->
  resources:Hard.Resources.t -> design:string ->
  build:(unit -> Dfg.Graph.t) -> unit -> Report.t
(** [audit_rate] enables the invariant auditor ([1] = check every
    commit); [meta] defaults to {!Soft.Meta.topological}. [build] is
    called inside the [lower] span, and once more to hand technology
    mapping a pristine (unscheduled) graph. *)
