(** Metric-by-metric comparison of two QoR run-reports — the CI
    regression gate behind [softsched diff].

    Only {e gated} metrics participate (direction [Lower_better] or
    [Higher_better]); [Info] metrics — wall clock, allocation, counter
    deltas — are machine-dependent and never gate. A gated metric that
    moved the wrong way by more than the tolerance, or that vanished
    from the current report, is a regression. *)

type finding = {
  phase : string;
  name : string;
  baseline : float;
  current : float;
  change_pct : float;
      (** signed movement in the {e bad} direction: positive = worse *)
  direction : Metrics.direction;
}

type result = {
  regressions : finding list;
  improvements : finding list;
  unchanged : int;  (** gated metrics inside tolerance *)
  missing : (string * string) list;
      (** (phase, metric) gated in the baseline but absent now *)
  added : (string * string) list;
      (** gated metrics the baseline does not know — informational *)
}

val compare :
  ?max_regress_pct:float -> baseline:Report.t -> current:Report.t ->
  unit -> (result, string) Stdlib.result
(** [max_regress_pct] defaults to [0.] (any worsening is a regression).
    [Error _] when the two reports describe different designs or
    resource configurations — comparing those is a usage mistake, not a
    QoR regression. *)

val ok : result -> bool
(** No regressions and nothing missing. *)

val render : result -> string
(** Human-readable verdict, offending metrics first. *)
