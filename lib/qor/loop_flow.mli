(** The instrumented loop-pipelining flow behind [softsched modulo].

    Runs the modulo-scheduling pipeline — loop lowering, MII analysis,
    the iterative modulo scheduler, and verification (the modulo check
    plus the unrolled flat-DAG check) — under {!Metrics} spans, one
    {!Report} out, so loop kernels gate in CI through the same
    {!Diff} machinery as the DAG flow.

    The throughput metrics and their gating directions:

    - [ii] ([Lower_better]) — the achieved initiation interval, the
      loop-pipelining analogue of [csteps];
    - [ii_slack] ([Lower_better]) — [ii - mii]; zero means the bound
      was met, any growth means the scheduler lost ground;
    - [steady_state_util] ([Higher_better]) — busy unit-cycles per
      steady-state window over [ii * total_units];
    - [mii], [res_mii], [rec_mii] ([Info]) — facts of the kernel and
      configuration, not scheduler quality.

    Deterministic like {!Flow.run}: same kernel, same resources, same
    QoR numbers. *)

val phases : string list
(** [["loop_lower"; "mii"; "modulo_schedule"; "verify"]] — the report
    emits exactly these, in order. *)

val unroll_iterations : int
(** How many iterations the verify phase flattens (3: prologue, steady
    state, epilogue all appear). *)

val run :
  ?budget:int -> ?tool_version:string ->
  resources:Hard.Resources.t -> design:string ->
  build:(unit -> Modulo.Loop_graph.t) -> unit -> Report.t
(** [budget] forwards to {!Modulo.Ims.run}. @raise Invalid_argument
    when the kernel is ill-formed or needs a unit class the
    configuration lacks (a misconfigured run should fail loudly, not
    gate). *)
