(** Online invariant auditing: the paper's Theorem 1 correctness
    property as a continuously-observed metric.

    The auditor is a telemetry sink. Every committed scheduling or
    refinement decision closes with a [schedule_done] event; the auditor
    samples those (every [rate]-th one, [rate = 1] checks each commit)
    and replays the {e live} scheduling state through the full
    {!Soft.Invariant} battery — correctness, threading, acyclicity and
    the Lemma 7 degree bound — as the flow runs, rather than once at the
    end. Violation counts land in the QoR run-report, so a refinement
    pass that corrupts the partial order fails the regression gate even
    when the final schedule happens to look plausible. *)

type t

type summary = {
  rate : int;  (** 1 = every commit *)
  events_seen : int;  (** commits observed *)
  checks_run : int;  (** sampled commits actually audited *)
  violations : int;  (** checks that returned [Error _] *)
  first_violation : string option;  (** earliest failure message *)
}

val create : ?rate:int -> unit -> t
(** [rate] defaults to 1 (audit every commit).
    @raise Invalid_argument if [rate < 1]. *)

val sink : t -> state:(unit -> Soft.Threaded_graph.t option) -> Telemetry.Sink.t
(** A sink auditing [state ()] on sampled [schedule_done] events. The
    state is fetched per check (it may not exist yet while earlier flow
    stages run — [None] skips the check); tee it with counter or
    recorder sinks as usual. *)

val check_now : t -> Soft.Threaded_graph.t -> unit
(** Force an unsampled audit of [state] — used at phase boundaries so
    every flow stage ends with at least one full check even under a
    sparse sampling rate. *)

val summary : t -> summary
