(** A minimal JSON tree, parser and printer.

    The QoR layer speaks JSON in three places — the run report, the
    regression diff and the exporter round-trip tests — and the project
    deliberately carries no external JSON dependency, so this module is
    the single shared implementation. It covers exactly the JSON the
    repository emits: objects, arrays, strings with the usual escapes
    (including [\uXXXX]), numbers, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Carries a human-readable message with the byte offset. *)

val parse : string -> t
(** @raise Parse_error on malformed input (including trailing bytes). *)

val parse_result : string -> (t, string) result
(** Exception-free {!parse}. *)

val to_string : ?minify:bool -> t -> string
(** Serialises with two-space indentation ([minify] drops whitespace).
    Numbers that hold integral values print without a decimal point;
    other numbers print with enough digits to round-trip. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val member_exn : string -> t -> t
(** @raise Parse_error if the field is absent or [t] is not an object. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option

val num : float -> t
(** {!Num}, as a function (handy in folds). *)

val int : int -> t
val str : string -> t
