(** The versioned QoR run-report.

    One report captures one full flow run over one design: a span per
    flow phase (cost + QoR metrics, see {!Metrics}) plus the invariant
    auditor's verdict. The JSON schema is stable and versioned so CI can
    diff a fresh report against a committed baseline ({!Diff}) and
    refuse files produced by an incompatible tool.

    Schema (version {!schema_version}):
    {v
    { "tool": "softsched-report", "schema_version": 1,
      "tool_version": "1.1.0", "git": "<describe>",
      "design": "HAL", "resources": "2 alu, 2 mul, 1 mem",
      "phases": [
        { "phase": "soft_schedule", "wall_ns": 1234,
          "alloc_words": 5678,
          "counters": { "positions_scanned": 96, ... },
          "metrics": [
            { "name": "diameter", "value": 8, "units": "cycles",
              "better": "lower" }, ... ] }, ... ],
      "audit": { "rate": 1, "events_seen": 34, "checks_run": 34,
                 "violations": 0 } }
    v}
    [audit] is [null] when the auditor was off; [better] is one of
    ["lower"], ["higher"], ["info"]. *)

val tool : string
(** ["softsched-report"] — the schema discriminator. *)

val schema_version : int

type t = {
  design : string;
  resources : string;
  tool_version : string;
  git : string;
  spans : Metrics.span list;
  audit : Audit.summary option;
}

val make :
  ?tool_version:string -> ?git:string -> ?audit:Audit.summary ->
  design:string -> resources:string -> Metrics.span list -> t
(** [tool_version] defaults to ["dev"]; [git] defaults to
    {!git_describe}[ ()]. *)

val to_json : t -> Json.t
val to_string : t -> string

val write : path:string -> t -> unit

val of_json : Json.t -> (t, string) result
(** Parses a report back, validating the [tool] discriminator, the
    schema version and the per-phase required fields — the other half
    of the stable-schema contract, used by {!Diff} and the tests. *)

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a report file. *)

val summary : t -> string
(** Human-readable digest: one line per phase with wall time, allocation
    and headline metrics, then the audit verdict. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. Never raises. *)
