(* Minimal JSON: a tree type, a recursive-descent parser and a printer.
   Shared by the run report, the regression diff and the exporter
   round-trip tests; no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- parsing -------------------------------------------------------- *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse_error (Printf.sprintf "%s at byte %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let code =
              match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            (* Basic-multilingual-plane only; enough for our own output,
               which never escapes beyond control characters. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    (* JSON grammar: an optional leading '-' only ('+' is not a number
       start), then digits/fraction/exponent *)
    if !pos < n && s.[!pos] = '-' then advance ();
    if not (!pos < n && s.[!pos] >= '0' && s.[!pos] <= '9') then
      fail "bad number";
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          expect '"';
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' ->
      advance ();
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after value";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error m -> Error m

(* --- printing ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let b = Buffer.create 1024 in
  let indent depth = if not minify then Buffer.add_string b (String.make (2 * depth) ' ') in
  let newline () = if not minify then Buffer.add_char b '\n' in
  let colon = if minify then ":" else ": " in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> Buffer.add_char b '"'; Buffer.add_string b (escape s); Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin Buffer.add_char b ','; newline () end;
          indent (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      indent depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin Buffer.add_char b ','; newline () end;
          indent (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_char b '"';
          Buffer.add_string b colon;
          go (depth + 1) v)
        fields;
      newline ();
      indent depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* --- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" key))

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None

let num f = Num f
let int i = Num (float_of_int i)
let str s = Str s
