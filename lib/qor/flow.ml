(* The instrumented HLS flow: every stage wrapped in a Metrics span,
   telemetry counters charged per phase, the invariant auditor sampling
   commits as they happen. Stage-specific QoR metrics are computed from
   the stage's own outputs; gating directions are chosen so the diff
   gate only watches deterministic quality numbers (wall clock and
   allocation stay informational). *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Reach = Dfg.Reach
module T = Soft.Threaded_graph
module M = Metrics

let phases =
  [
    "lower"; "dfg"; "soft_schedule"; "refine_pressure"; "refine_spill";
    "refine_wire"; "refine_eco"; "binding"; "fsm"; "netlist"; "techmap";
    "vliw";
  ]

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let run ?audit_rate ?(meta = Soft.Meta.topological) ?tool_version ~resources
    ~design ~build () =
  let reg = M.create () in
  let counters = Telemetry.Counters.create () in
  let auditor = Option.map (fun rate -> Audit.create ~rate ()) audit_rate in
  let state_ref = ref None in
  let sink =
    let c = Telemetry.Counters.sink counters in
    match auditor with
    | None -> c
    | Some a -> Telemetry.Sink.tee c (Audit.sink a ~state:(fun () -> !state_ref))
  in
  let audit_boundary () =
    match (auditor, !state_ref) with
    | Some a, Some st -> Audit.check_now a st
    | _ -> ()
  in
  let span name f = M.with_span ~counters reg name f in
  Telemetry.with_sink sink (fun () ->
      (* -- lower: front end / benchmark construction ----------------- *)
      let g =
        span "lower" (fun () ->
            let g = build () in
            ( g,
              [
                M.metric_i ~units:"vertices" "vertices" (Graph.n_vertices g);
                M.metric_i ~units:"edges" "edges" (Graph.n_edges g);
                M.metric_i ~units:"ops" "operations"
                  (Hls_bench.Suite.operation_count g);
                M.metric_i ~units:"bool" "is_dag"
                  (if Graph.is_dag g then 1 else 0);
              ] ))
      in
      (* -- dfg: DAG shape analysis ----------------------------------- *)
      let asap_bound =
        span "dfg" (fun () ->
            let diameter = Paths.diameter g in
            let slack = Paths.slack g ~deadline:diameter in
            let slacks =
              Array.to_list (Array.map float_of_int slack)
            in
            let critical =
              List.length (List.filter (fun s -> s = 0.0) slacks)
            in
            let dag_pairs = Reach.count_pairs (Reach.of_graph g) in
            ( diameter,
              [
                M.metric_i ~units:"cycles" "critical_path" diameter;
                M.metric_i ~units:"cycles" "total_delay" (Graph.total_delay g);
                M.metric ~units:"cycles" "slack_mean" (mean slacks);
                M.metric ~units:"cycles" "slack_max"
                  (List.fold_left Float.max 0.0 slacks);
                M.metric ~units:"ratio" "critical_fraction"
                  (float_of_int critical
                  /. float_of_int (max 1 (Graph.n_vertices g)));
                M.metric_i ~units:"pairs" "dag_ordered_pairs" dag_pairs;
              ] ))
      in
      (* -- soft_schedule: the paper's online threaded scheduler ------- *)
      let state =
        span "soft_schedule" (fun () ->
            let st = T.create g ~resources in
            state_ref := Some st;
            T.schedule_all st (meta g);
            audit_boundary ();
            let stats = T.stats ~with_softness:true st in
            let csteps = T.diameter st in
            let n = Graph.n_vertices g in
            let hard_pairs = n * (n - 1) / 2 in
            let soft_head =
              match stats.T.ordered_pairs with
              | Some p -> hard_pairs - p
              | None -> 0
            in
            let utils =
              List.init (T.n_threads st) (fun k ->
                  let busy =
                    List.fold_left
                      (fun acc v -> acc + Graph.delay g v)
                      0 (T.thread_members st k)
                  in
                  float_of_int busy /. float_of_int (max 1 csteps))
            in
            ( st,
              [
                M.metric_i ~units:"cycles" ~direction:M.Lower_better "csteps"
                  csteps;
                M.metric_i ~units:"cycles" "asap_bound" asap_bound;
                M.metric ~units:"ratio" ~direction:M.Lower_better
                  "csteps_over_asap"
                  (float_of_int csteps /. float_of_int (max 1 asap_bound));
                M.metric_i ~units:"edges" "state_edges" stats.T.n_state_edges;
                M.metric_i ~units:"edges" "max_thread_in_degree"
                  stats.T.max_thread_in_degree;
                M.metric_i ~units:"edges" "max_thread_out_degree"
                  stats.T.max_thread_out_degree;
                M.metric_i ~units:"pairs" ~direction:M.Higher_better
                  "softness_headroom" soft_head;
                M.metric ~units:"ratio" ~direction:M.Higher_better
                  "thread_utilisation_mean" (mean utils);
                M.metric ~units:"ratio" "thread_utilisation_min"
                  (List.fold_left Float.min 1.0 utils);
              ] ))
      in
      (* -- refine_pressure: register pressure across extractions ------ *)
      let aware_pressure =
        span "refine_pressure" (fun () ->
            let asap =
              Refine.Lifetime.max_pressure (T.to_schedule state)
            in
            let alap =
              Refine.Lifetime.max_pressure
                (T.to_schedule ~placement:`Alap state)
            in
            let aware_schedule = Refine.Pressure.extract state in
            let aware = Refine.Lifetime.max_pressure aware_schedule in
            let profile =
              Array.to_list
                (Array.map float_of_int
                   (Refine.Lifetime.pressure aware_schedule))
            in
            ( aware,
              [
                M.metric_i ~units:"registers" ~direction:M.Lower_better
                  "pressure_peak" aware;
                M.metric_i ~units:"registers" "pressure_asap" asap;
                M.metric_i ~units:"registers" "pressure_alap" alap;
                M.metric ~units:"registers" "pressure_mean" (mean profile);
                M.metric_i ~units:"values" "live_intervals"
                  (List.length
                     (Refine.Lifetime.intervals aware_schedule));
              ] ))
      in
      (* -- refine_spill: spill to one register under the aware peak --- *)
      span "refine_spill" (fun () ->
          let budget = max 1 (aware_pressure - 1) in
          let spills =
            match Refine.Spill.until_fits ~registers:budget state with
            | spills -> List.length spills
            | exception Invalid_argument _ -> 0
          in
          audit_boundary ();
          let after =
            Refine.Lifetime.max_pressure (Refine.Pressure.extract state)
          in
          ( (),
            [
              M.metric_i ~units:"registers" "spill_budget" budget;
              M.metric_i ~units:"spills" ~direction:M.Lower_better "spills"
                spills;
              M.metric_i ~units:"registers" ~direction:M.Lower_better
                "pressure_after_spill" after;
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "csteps_after_spill" (T.diameter state);
            ] ));
      (* -- refine_wire: floorplan + interconnect-delay insertion ------ *)
      span "refine_wire" (fun () ->
          let fp = Refine.Floorplan.place state in
          let report =
            Refine.Wire_insert.apply state fp Refine.Floorplan.default_model
          in
          audit_boundary ();
          ( (),
            [
              M.metric_i ~units:"wires" "wires_inserted"
                (List.length report.Refine.Wire_insert.inserted);
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "wire_cycles" report.Refine.Wire_insert.total_wire_cycles;
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "csteps_after_wires" (T.diameter state);
            ] ));
      (* -- refine_eco: absorb one engineering change online ----------- *)
      span "refine_eco" (fun () ->
          let before = T.diameter state in
          (match Graph.edges g with
          | (src, dst) :: _ ->
            ignore (Refine.Eco.insert_on_edge state ~src ~dst ~op:Op.Mov ())
          | [] -> ());
          audit_boundary ();
          let after = T.diameter state in
          ( (),
            [
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "eco_diameter_growth" (after - before);
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "csteps_after_eco" after;
            ] ));
      (* -- binding: FU + register allocation -------------------------- *)
      let binding =
        span "binding" (fun () ->
            let b = Rtl.Binding.of_state state in
            ( b,
              [
                M.metric_i ~units:"registers" ~direction:M.Lower_better
                  "registers" b.Rtl.Binding.n_registers;
                M.metric_i ~units:"units" "functional_units"
                  b.Rtl.Binding.n_fus;
                M.metric_i ~units:"slots" "memory_slots"
                  (List.length b.Rtl.Binding.memory_slot);
              ] ))
      in
      (* -- fsm: controller extraction --------------------------------- *)
      span "fsm" (fun () ->
          let fsm = Rtl.Fsm.of_binding binding in
          ( (),
            [
              M.metric_i ~units:"states" ~direction:M.Lower_better
                "fsm_states" (Rtl.Fsm.n_states fsm);
            ] ));
      (* -- netlist: datapath structure -------------------------------- *)
      span "netlist" (fun () ->
          let net = Rtl.Netlist.of_binding binding in
          ( (),
            [
              M.metric_i ~units:"cells" "components"
                (List.length net.Rtl.Netlist.components);
              M.metric_i ~units:"inputs" ~direction:M.Lower_better
                "mux_inputs" (Rtl.Netlist.n_mux_inputs net);
              M.metric_i ~units:"nets" "connections"
                (List.length net.Rtl.Netlist.connections);
            ] ));
      (* -- techmap: scheduler-as-kernel mapping on the pristine DAG --- *)
      span "techmap" (fun () ->
          let g0 = build () in
          let result = Techmap.Mapper.schedule_driven ~resources g0 in
          ( (),
            [
              M.metric_i ~units:"cells" "cells_fused"
                (List.length result.Techmap.Mapper.accepted);
              M.metric_i ~units:"cycles" ~direction:M.Lower_better
                "csteps_mapped" (Techmap.Mapper.csteps ~resources result);
            ] ));
      (* -- vliw: code generation -------------------------------------- *)
      span "vliw" (fun () ->
          let prog = Vliw.Emit.run binding in
          let valid =
            match Vliw.Isa.validate prog with Ok () -> 1 | Error _ -> 0
          in
          ( (),
            [
              M.metric_i ~units:"bundles" ~direction:M.Lower_better "bundles"
                (Array.length prog.Vliw.Isa.bundles);
              M.metric_i ~units:"instructions" "instructions"
                (Vliw.Isa.n_instructions prog);
              M.metric ~units:"ratio" ~direction:M.Higher_better
                "slot_utilisation" (Vliw.Isa.slot_utilisation prog);
              M.metric_i ~units:"registers" "vliw_registers"
                prog.Vliw.Isa.n_registers;
              M.metric_i ~units:"bool" ~direction:M.Higher_better
                "program_valid" valid;
            ] )));
  Report.make ?tool_version
    ?audit:(Option.map Audit.summary auditor)
    ~design
    ~resources:(Hard.Resources.to_string resources)
    (M.spans reg)
