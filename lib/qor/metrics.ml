(* Typed QoR metrics and instrumented flow spans. A span charges wall
   clock, GC allocation and telemetry-counter movement to one named
   stage of the flow; the registry keeps them in execution order for
   the report. *)

type direction = Lower_better | Higher_better | Info

type metric = {
  name : string;
  value : float;
  units : string;
  direction : direction;
}

type span = {
  phase : string;
  wall_ns : int;
  alloc_words : float;
  counters : (string * float) list;
  metrics : metric list;
}

type t = { mutable rev_spans : span list }

let create () = { rev_spans = [] }

let metric ?(units = "") ?(direction = Info) name value =
  { name; value; units; direction }

let metric_i ?units ?direction name value =
  metric ?units ?direction name (float_of_int value)

(* Gauges (the [last_*] family) are not monotone: a per-span delta would
   be meaningless, so they report the end-of-span value instead. *)
let counter_deltas ~(before : Telemetry.Counters.snapshot)
    ~(after : Telemetry.Counters.snapshot) =
  let b = Telemetry.Counters.to_alist before in
  let a = Telemetry.Counters.to_alist after in
  List.map
    (fun (k, va) ->
      let is_gauge = String.length k >= 5 && String.sub k 0 5 = "last_" in
      if is_gauge then (k, va)
      else
        let vb = Option.value ~default:0.0 (List.assoc_opt k b) in
        (k, va -. vb))
    a

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let with_span ?counters t phase f =
  let before = Option.map Telemetry.Counters.snapshot counters in
  let words0 = allocated_words () in
  let t0 = Telemetry.now_ns () in
  let finish metrics =
    let wall_ns = Telemetry.now_ns () - t0 in
    let alloc_words = allocated_words () -. words0 in
    let deltas =
      match (before, counters) with
      | Some before, Some c ->
        counter_deltas ~before ~after:(Telemetry.Counters.snapshot c)
      | _ -> []
    in
    t.rev_spans <-
      { phase; wall_ns; alloc_words; counters = deltas; metrics }
      :: t.rev_spans
  in
  match f () with
  | result, metrics ->
    finish metrics;
    result
  | exception e ->
    finish [];
    raise e

let spans t = List.rev t.rev_spans

let find spans ~phase ~name =
  List.find_map
    (fun s ->
      if s.phase = phase then
        List.find_opt (fun m -> m.name = name) s.metrics
      else None)
    spans
