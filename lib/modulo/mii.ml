open Import

(* Zero-delay pseudo-ops occupy no unit (the Hard.Schedule convention),
   so only positive-delay operations with a unit class load the modulo
   reservation table. *)
let occupies g v =
  Loop_graph.delay g v > 0
  && Option.is_some (Resources.class_of_op (Loop_graph.op g v))

let res_mii ~resources g =
  let classes = [ Resources.Alu; Resources.Multiplier; Resources.Memory ] in
  let bound_for cls =
    let units = Resources.count resources cls in
    let work = ref 0 and widest = ref 0 in
    Loop_graph.iter_vertices
      (fun v ->
        if occupies g v then
          match Resources.class_of_op (Loop_graph.op g v) with
          | Some c when Resources.equal_class c cls ->
            let d = Loop_graph.delay g v in
            work := !work + d;
            if d > !widest then widest := d
          | _ -> ())
      g;
    if !work = 0 then 0
    else if units = 0 then
      invalid_arg
        (Printf.sprintf "Mii.res_mii: no %s units but the kernel needs them"
           (Resources.class_name cls))
    else
      (* ceil work/units utilisation bound; ceil widest/units because a
         d-cycle op on k non-pipelined units wraps ceil d/II times
         around the reservation table *)
      max ((!work + units - 1) / units) ((!widest + units - 1) / units)
  in
  List.fold_left (fun acc cls -> max acc (bound_for cls)) 1 classes

(* Longest-path relaxation under weights [delay u - ii * distance]; a
   relaxation still firing after n full passes witnesses a positive
   cycle, i.e. a recurrence the candidate II cannot satisfy. *)
let recurrence_feasible g ~ii =
  let n = Loop_graph.n_vertices g in
  if n = 0 then true
  else begin
    let dist = Array.make n 0 in
    let edges = Loop_graph.edges g in
    let relax () =
      List.fold_left
        (fun changed (u, v, d) ->
          let w = dist.(u) + Loop_graph.delay g u - (ii * d) in
          if w > dist.(v) then begin
            dist.(v) <- w;
            true
          end
          else changed)
        false edges
    in
    let rec passes k = if k = 0 then true else if relax () then passes (k - 1) else false
    in
    (* n passes settle any acyclic chain; one more firing means a cycle *)
    not (passes n && relax ())
  end

let rec_mii g =
  (match Loop_graph.well_formed g with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mii.rec_mii: " ^ m));
  let hi = max 1 (Loop_graph.total_delay g) in
  (* feasibility is monotone in ii: larger ii only lowers cycle weights *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if recurrence_feasible g ~ii:mid then search lo mid else search (mid + 1) hi
  in
  search 1 hi

let mii ~resources g = max (res_mii ~resources g) (rec_mii g)
