open Import

(** Modulo schedules: one start time per loop vertex plus the
    initiation interval [ii]. Iteration [i] of vertex [v] runs at
    [start v + i * ii]; the steady state repeats every [ii] cycles.

    Validity has two parts, mirroring {!Hard.Schedule.check}:

    - every dependence [(u, v, d)] satisfies
      [start v >= start u + delay u - ii * d] (the unrolled producer
      finishes before the unrolled consumer starts, for every pair of
      iterations);
    - the {e modulo reservation table} fits: for each unit class, the
      number of operations occupying any modulo slot — a [d]-cycle
      operation started at [s] occupies slots [(s + k) mod ii] for
      [k < d], with multiplicity when [d > ii] — stays within the unit
      count. *)

type t = {
  loop : Loop_graph.t;
  ii : int;  (** initiation interval, >= 1 *)
  starts : int array;  (** one non-negative start per loop vertex *)
}

val make : Loop_graph.t -> ii:int -> starts:int array -> t
(** @raise Invalid_argument on a size mismatch, [ii < 1] or a negative
    start. Validity is {e not} checked here; call {!check}. *)

val start : t -> Loop_graph.vertex -> int

val span : t -> int
(** Latest finish of a single iteration — the pipeline fill depth
    (latency of one iteration; the throughput is [ii]). *)

val stage_count : t -> int
(** [ceil (span / ii)]: how many iterations are in flight in the
    steady state. *)

val check : ?resources:Resources.t -> t -> (unit, string) result
(** Recurrence feasibility, and — when [resources] is given — modulo
    reservation within the unit counts. The error pinpoints the first
    violation. *)

val mrt : resources:Resources.t -> t -> (Resources.fu_class * int array) list
(** The modulo reservation table: per class with a non-zero unit
    count, occupancy of each of the [ii] slots. *)

val steady_state_util : resources:Resources.t -> t -> float
(** Busy unit-cycles per iteration over [ii * total_units] — the
    fraction of the datapath doing work each steady-state window.
    In [0, 1] for any schedule that passes {!check}. *)

val unrolled : t -> iterations:int -> Schedule.t
(** The flat DAG schedule of [iterations] pipelined iterations:
    {!Loop_graph.unroll}'s DAG with copy [i] of [v] starting at
    [start v + i * ii] (loop-entry inputs start at 0). Passing
    {!Hard.Schedule.check} [~resources] on this schedule is the
    executable meaning of modulo-schedule validity — the property the
    QCheck oracle pins. *)

val pp : Format.formatter -> t -> unit
(** One line per vertex: name, op, start, modulo slot. *)
