open Import

let random_kernel rng ~n ~edge_prob ~back_prob ~max_distance =
  if max_distance < 1 then
    invalid_arg "Generate.random_kernel: max_distance must be >= 1";
  let body = Dfg.Generate.loop_body rng ~n ~edge_prob in
  let carries = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to u do
      if Random.State.float rng 1.0 < back_prob then
        let d = 1 + Random.State.int rng max_distance in
        carries := (u, v, d) :: !carries
    done
  done;
  Loop_graph.of_dag ~carries:(List.rev !carries) body

let accumulator rng ~n ~edge_prob =
  let body = Dfg.Generate.loop_body rng ~n ~edge_prob in
  let last = Graph.n_vertices body - 1 in
  Loop_graph.of_dag ~carries:[ (last, last, 1) ] body
