open Import

(** Iterative modulo scheduling (Rau), in the soft-scheduling spirit:
    the schedule under construction is {e refined} when an operation
    fails to place — conflicting operations are evicted back onto the
    worklist and re-placed one slot later — rather than the whole II
    attempt being invalidated.

    {!run} searches the initiation interval upward from {!Mii.mii}.
    Each candidate II gets a placement budget; within it, operations
    are placed highest-height-first at their earliest recurrence-
    feasible start, scanning [II] consecutive slots of the modulo
    reservation table. When no slot fits, the operation is forced in
    and the conflicting occupants (lowest height first) plus any
    now-violated successors are evicted. If every candidate up to
    [max_ii] exhausts its budget, the serial fallback — the loop body
    list-scheduled, II = its length — is returned; it is always valid,
    so {!run} only fails on an unschedulable kernel (a needed unit
    class with zero units, or a zero-distance cycle). *)

type stats = {
  mii : int;  (** the bound the search started from *)
  res_mii : int;
  rec_mii : int;
  ii : int;  (** achieved initiation interval *)
  placements : int;  (** scheduling steps across every II tried *)
  evictions : int;  (** operations displaced by a forced placement *)
  iis_tried : int;
  serial_fallback : bool;  (** true: budget ran out, body schedule used *)
}

val run :
  ?budget:int ->
  ?max_ii:int ->
  resources:Resources.t ->
  Loop_graph.t ->
  (Mschedule.t * stats, string) result
(** [budget] is the per-candidate-II placement allowance, default
    [max 128 (8 * n_vertices)]. [max_ii] caps the search, default
    the serial fallback length (searching past it is pointless).
    The result passes [Mschedule.check ~resources] by construction;
    determinism: same kernel, same resources, same schedule. *)
