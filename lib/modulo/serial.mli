(** Plain-text serialisation of loop graphs — the [.ldfg] format
    accepted by the CLI's [modulo] subcommand.

    The grammar extends the [.dfg] form of {!Dfg.Serial} with an
    optional iteration distance on each edge line:

    {v
      # anything after '#' is a comment
      vertex <name> <op> [<delay>]
      edge <src-name> <dst-name> [<distance>]
    v}

    The distance defaults to 0 (an ordinary intra-iteration
    dependence); every [.dfg] file therefore parses as a loop graph
    with no recurrences. Ops are spelled as {!Dfg.Op.to_string} spells
    them; vertex names must be unique and declared before use. *)

exception Parse_error of string
(** Message carries the 1-based line number. *)

val to_string : Loop_graph.t -> string

val of_string : string -> Loop_graph.t
(** @raise Parse_error on malformed input (unknown op, duplicate or
    undeclared vertex name, negative delay or distance, a zero-distance
    self loop, malformed line). *)

val load : string -> Loop_graph.t
val save : string -> Loop_graph.t -> unit
