(** Random loop kernels for property tests and scaling benches.

    Deterministic given the supplied [Random.State], like
    {!Dfg.Generate}. Every result is well-formed by construction:
    intra-iteration edges come from a DAG and every added recurrence
    carries distance >= 1. *)

val random_kernel :
  Random.State.t ->
  n:int ->
  edge_prob:float ->
  back_prob:float ->
  max_distance:int ->
  Loop_graph.t
(** A {!Dfg.Generate.loop_body} DAG of [n] operations lifted to a loop
    graph, plus recurrences: each ordered pair [(u, v)] with [u >= v]
    (a genuine back edge, self loops included) becomes a loop-carried
    dependence with probability [back_prob], at a distance drawn
    uniformly from [1 .. max_distance]. @raise Invalid_argument when
    [n < 1] or [max_distance < 1]. *)

val accumulator :
  Random.State.t -> n:int -> edge_prob:float -> Loop_graph.t
(** The commonest kernel shape: a random body whose last operation
    feeds itself at distance 1 (a reduction accumulator). *)
