open Import

type vertex = int

(* Growable per-vertex records; adjacency as (neighbour, distance)
   lists kept in reverse insertion order (loop kernels are small — the
   paper-scale bodies have tens of vertices — so list adjacency beats
   the indexed machinery Dfg.Graph needs for its mutation journal). *)
type t = {
  mutable n : int;
  mutable ops : Op.t array;
  mutable delays : int array;
  mutable names : string array;
  mutable preds_rev : (vertex * int) list array;
  mutable succs_rev : (vertex * int) list array;
  mutable n_edges : int;
}

let create () =
  {
    n = 0;
    ops = [||];
    delays = [||];
    names = [||];
    preds_rev = [||];
    succs_rev = [||];
    n_edges = 0;
  }

let grow g =
  let cap = Array.length g.ops in
  if g.n = cap then begin
    let cap' = max 8 (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 g.n;
      a'
    in
    g.ops <- extend g.ops Op.Wire;
    g.delays <- extend g.delays 0;
    g.names <- extend g.names "";
    g.preds_rev <- extend g.preds_rev [];
    g.succs_rev <- extend g.succs_rev []
  end

let add_vertex g ?delay ?name op =
  grow g;
  let v = g.n in
  g.n <- v + 1;
  g.ops.(v) <- op;
  g.delays.(v) <- (match delay with Some d -> d | None -> Delay.of_op op);
  g.names.(v) <- (match name with Some s -> s | None -> Printf.sprintf "v%d" v);
  if g.delays.(v) < 0 then invalid_arg "Loop_graph.add_vertex: negative delay";
  v

let check_vertex g v ctx =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Loop_graph.%s: unknown vertex %d" ctx v)

let mem_edge g u v ~distance =
  List.exists (fun (w, d) -> w = v && d = distance) g.succs_rev.(u)

let add_edge g ?(distance = 0) u v =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if distance < 0 then invalid_arg "Loop_graph.add_edge: negative distance";
  if u = v && distance = 0 then
    invalid_arg "Loop_graph.add_edge: self loop needs distance >= 1";
  if not (mem_edge g u v ~distance) then begin
    g.succs_rev.(u) <- (v, distance) :: g.succs_rev.(u);
    g.preds_rev.(v) <- (u, distance) :: g.preds_rev.(v);
    g.n_edges <- g.n_edges + 1
  end

let n_vertices g = g.n
let n_edges g = g.n_edges

let op g v =
  check_vertex g v "op";
  g.ops.(v)

let delay g v =
  check_vertex g v "delay";
  g.delays.(v)

let name g v =
  check_vertex g v "name";
  g.names.(v)

let preds g v =
  check_vertex g v "preds";
  List.rev g.preds_rev.(v)

let succs g v =
  check_vertex g v "succs";
  List.rev g.succs_rev.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun (v, d) -> f u v d) (List.rev g.succs_rev.(u))
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v d -> acc := (u, v, d) :: !acc) g;
  List.rev !acc

let n_back_edges g =
  let c = ref 0 in
  iter_edges (fun _ _ d -> if d >= 1 then incr c) g;
  !c

let max_distance g =
  let m = ref 0 in
  iter_edges (fun _ _ d -> if d > !m then m := d) g;
  !m

let total_delay g =
  let acc = ref 0 in
  for v = 0 to g.n - 1 do
    acc := !acc + g.delays.(v)
  done;
  !acc

let vertices g = List.init g.n (fun v -> v)

let iter_vertices f g =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_vertices f acc g =
  let acc = ref acc in
  iter_vertices (fun v -> acc := f !acc v) g;
  !acc

(* Zero-distance subgraph acyclicity by colouring DFS; on a cycle the
   grey vertex we re-enter names the recurrence that carries no
   distance. *)
let well_formed g =
  let state = Array.make (max 1 g.n) `White in
  let exception Cycle of vertex in
  let rec visit v =
    match state.(v) with
    | `Grey -> raise (Cycle v)
    | `Black -> ()
    | `White ->
      state.(v) <- `Grey;
      List.iter (fun (w, d) -> if d = 0 then visit w) (List.rev g.succs_rev.(v));
      state.(v) <- `Black
  in
  try
    for v = 0 to g.n - 1 do
      visit v
    done;
    Ok ()
  with Cycle v ->
    Error
      (Printf.sprintf
         "zero-distance cycle through vertex %d (%s): every recurrence must \
          carry an iteration distance >= 1"
         v g.names.(v))

let body g =
  (match well_formed g with
  | Ok () -> ()
  | Error m -> invalid_arg ("Loop_graph.body: " ^ m));
  let dag = Graph.create () in
  iter_vertices
    (fun v ->
      ignore (Graph.add_vertex dag ~delay:g.delays.(v) ~name:g.names.(v)
                g.ops.(v)))
    g;
  (* per consumer in operand order, so the body keeps the original
     operand discipline where it can *)
  iter_vertices
    (fun v ->
      List.iter
        (fun (u, d) -> if d = 0 then Graph.add_edge dag u v)
        (List.rev g.preds_rev.(v)))
    g;
  dag

let of_dag ?(carries = []) dag =
  let g = create () in
  Graph.iter_vertices
    (fun v ->
      ignore
        (add_vertex g ~delay:(Graph.delay dag v) ~name:(Graph.name dag v)
           (Graph.op dag v)))
    dag;
  Graph.iter_vertices
    (fun v -> List.iter (fun u -> add_edge g u v) (Graph.preds dag v))
    dag;
  List.iter
    (fun (u, v, d) ->
      if d < 1 then
        invalid_arg "Loop_graph.of_dag: a carried dependence needs distance >= 1";
      add_edge g ~distance:d u v)
    carries;
  g

let to_seq_graph g =
  let sq = Retime.Seq_graph.create () in
  iter_vertices
    (fun v ->
      ignore
        (Retime.Seq_graph.add_vertex sq ~delay:g.delays.(v) ~name:g.names.(v)
           g.ops.(v)))
    g;
  (* Seq_graph keeps one edge per pair: collapse parallel edges to the
     minimum distance, the binding constraint (it decides both
     well-formedness and the recurrence bound). *)
  let min_dist = Hashtbl.create 16 in
  iter_edges
    (fun u v d ->
      match Hashtbl.find_opt min_dist (u, v) with
      | Some d' when d' <= d -> ()
      | _ -> Hashtbl.replace min_dist (u, v) d)
    g;
  Hashtbl.iter
    (fun (u, v) d -> Retime.Seq_graph.add_edge sq u v ~weight:d)
    min_dist;
  sq

let unroll g ~iterations =
  if iterations < 1 then invalid_arg "Loop_graph.unroll: iterations must be >= 1";
  (match well_formed g with
  | Ok () -> ()
  | Error m -> invalid_arg ("Loop_graph.unroll: " ^ m));
  let dag = Graph.create () in
  let copies =
    Array.init iterations (fun i ->
        Array.init g.n (fun v ->
            Graph.add_vertex dag ~delay:g.delays.(v)
              ~name:(Printf.sprintf "%s#%d" g.names.(v) i)
              g.ops.(v)))
  in
  (* values carried across the loop entry: one Input per (source,
     pre-loop iteration) pair, shared by every consumer that reads it *)
  let entry = Hashtbl.create 8 in
  let entry_input u i =
    match Hashtbl.find_opt entry (u, i) with
    | Some x -> x
    | None ->
      let x =
        Graph.add_vertex dag
          ~name:(Printf.sprintf "%s#%d" g.names.(u) i)
          (Op.Input (Printf.sprintf "%s@%d" g.names.(u) i))
      in
      Hashtbl.replace entry (u, i) x;
      x
  in
  for i = 0 to iterations - 1 do
    iter_vertices
      (fun v ->
        (* operand order: walk the predecessor (operand) list *)
        List.iter
          (fun (u, d) ->
            let src = if i - d >= 0 then copies.(i - d).(u) else entry_input u (i - d) in
            Graph.add_edge dag src copies.(i).(v))
          (List.rev g.preds_rev.(v)))
      g
  done;
  (dag, copies)

let copy g =
  {
    n = g.n;
    ops = Array.copy g.ops;
    delays = Array.copy g.delays;
    names = Array.copy g.names;
    preds_rev = Array.copy g.preds_rev;
    succs_rev = Array.copy g.succs_rev;
    n_edges = g.n_edges;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>loop graph: %d vertices, %d edges (%d carried)@,"
    g.n g.n_edges (n_back_edges g);
  iter_vertices
    (fun v ->
      Format.fprintf ppf "%3d %-10s %-8s d=%d ->" v g.names.(v)
        (Op.to_string g.ops.(v))
        g.delays.(v);
      List.iter
        (fun (w, d) ->
          if d = 0 then Format.fprintf ppf " %d" w
          else Format.fprintf ppf " %d@@%d" w d)
        (List.rev g.succs_rev.(v));
      Format.fprintf ppf "@,")
    g;
  Format.fprintf ppf "@]"
