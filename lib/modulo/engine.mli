(** The [modulo] entry in the {!Soft.Engine} registry.

    {!Soft.Engine.S} speaks precedence DAGs, so the engine treats its
    input as a loop body whose iterations are independent (no carried
    recurrences) and runs {!Ims} on it. The single-iteration start
    times it returns are a valid flat schedule — per-cycle usage is a
    sub-multiset of the modulo reservation slots, which fit by
    construction — so the engine races, caches and serves like any
    other. Its real value for a DAG is throughput-oriented packing;
    kernels with genuine recurrences are exercised through the
    {!Loop_graph} API, the CLI [modulo] command and the bench.

    [ctx.budget] overrides the per-II placement budget. The engine is
    deterministic and never claims optimality (it minimises II, not the
    control-step count the race arbiter orders by). *)

val engine : Soft.Engine.engine

val ensure_registered : unit -> unit
(** Idempotent {!Soft.Engine.register}. Called from the serving layer,
    the CLI and the bench at startup; explicit because module
    initialisers of otherwise-unreferenced libraries are dropped at
    link time. *)
