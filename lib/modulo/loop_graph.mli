open Import

(** Cyclic dataflow graphs for loop pipelining.

    A loop graph is the dependence graph of one loop iteration whose
    edges carry an {e iteration distance}: an edge [(u, v)] with
    distance [d] says that [v] in iteration [i] consumes the value [u]
    produced in iteration [i - d]. Distance-0 edges are the ordinary
    intra-iteration dependences (the loop {e body}); edges with
    [d >= 1] are the loop-carried recurrences. Vertices follow the
    repository delay model ({!Dfg.Delay}).

    Well-formedness mirrors {!Retime.Seq_graph}: every cycle must carry
    a total distance of at least one (equivalently, the distance-0
    subgraph is a DAG) — a zero-distance cycle would make the iteration
    depend on itself. Self-loops therefore need [distance >= 1].

    Vertices are dense integer ids; predecessor lists keep insertion
    (operand) order, like {!Dfg.Graph}. *)

type t
type vertex = int

val create : unit -> t

val add_vertex : t -> ?delay:int -> ?name:string -> Op.t -> vertex
(** [delay] defaults to {!Delay.of_op}; [name] to ["v<i>"]. *)

val add_edge : t -> ?distance:int -> vertex -> vertex -> unit
(** [add_edge g ?distance u v] records "[v] reads [u] from [distance]
    iterations ago". [distance] defaults to 0. A duplicate
    [(u, v, distance)] triple is ignored; the same pair may appear
    under several distances (e.g. [x[i-1]] and [x[i-2]] both feeding a
    filter tap). @raise Invalid_argument on a negative distance, an
    unknown endpoint, or a self loop with distance 0. *)

val n_vertices : t -> int

val n_edges : t -> int
(** Distinct [(u, v, distance)] triples. *)

val op : t -> vertex -> Op.t
val delay : t -> vertex -> int
val name : t -> vertex -> string

val preds : t -> vertex -> (vertex * int) list
(** [(source, distance)] in operand (insertion) order. *)

val succs : t -> vertex -> (vertex * int) list
(** [(target, distance)] in insertion order. *)

val edges : t -> (vertex * vertex * int) list
(** Every [(u, v, distance)] triple, in insertion order. *)

val iter_edges : (vertex -> vertex -> int -> unit) -> t -> unit

val n_back_edges : t -> int
(** Edges with [distance >= 1]. *)

val max_distance : t -> int
(** 0 on a plain DAG. *)

val total_delay : t -> int

val vertices : t -> vertex list
val iter_vertices : (vertex -> unit) -> t -> unit
val fold_vertices : ('acc -> vertex -> 'acc) -> 'acc -> t -> 'acc

val well_formed : t -> (unit, string) result
(** The distance-0 subgraph must be acyclic: a cycle carrying no
    iteration distance names a value that depends on itself within one
    iteration. The error pinpoints a vertex on an offending cycle. *)

val body : t -> Graph.t
(** The loop body: every vertex once (same ids, same ops/delays/names)
    with only the distance-0 edges. The serial schedule of this DAG is
    the II upper bound {!Ims} falls back to. @raise Invalid_argument
    when not {!well_formed} (the body would not be a DAG). *)

val of_dag : ?carries:(Graph.vertex * Graph.vertex * int) list -> Graph.t -> t
(** Lift a precedence DAG to a loop graph: same vertices (identical
    ids), every DAG edge at distance 0, plus the explicit [carries]
    [(producer, consumer, distance)] recurrences. @raise
    Invalid_argument if a carry has distance < 1 or names an unknown
    vertex. With no carries, iterations are independent and only
    resources bound the initiation interval. *)

val to_seq_graph : t -> Retime.Seq_graph.t
(** Bridge to the retiming substrate: iteration distance becomes the
    edge register count (a value carried [d] iterations crosses [d]
    registers). {!Retime.Seq_graph} keeps one edge per vertex pair, so
    parallel edges collapse to their {e minimum} distance — the binding
    constraint; well-formedness is preserved exactly. *)

val unroll : t -> iterations:int -> Graph.t * Graph.vertex array array
(** Flatten [iterations >= 1] consecutive iterations into one DAG:
    copy [i] of the body, with an edge [(u, v, d)] connecting copy [i]
    of [u] to copy [i + d] of [v]. Recurrence sources that fall before
    iteration 0 (the values live across the loop entry) appear as extra
    [Op.Input] vertices, so the result is a well-formed precedence
    graph. Returns the DAG and the map [copies] with [copies.(i).(v)]
    the DAG vertex of loop vertex [v] in iteration [i]. @raise
    Invalid_argument if [iterations < 1] or not {!well_formed}. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** One vertex per line with op, delay and distance-annotated
    successors ([-> w @d] for back edges). *)
