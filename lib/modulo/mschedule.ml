open Import

type t = { loop : Loop_graph.t; ii : int; starts : int array }

let make loop ~ii ~starts =
  if ii < 1 then invalid_arg "Mschedule.make: ii must be >= 1";
  if Array.length starts <> Loop_graph.n_vertices loop then
    invalid_arg "Mschedule.make: starts size mismatch";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Mschedule.make: negative start")
    starts;
  { loop; ii; starts }

let start t v = t.starts.(v)

let span t =
  Loop_graph.fold_vertices
    (fun acc v -> max acc (t.starts.(v) + Loop_graph.delay t.loop v))
    0 t.loop

let stage_count t = (span t + t.ii - 1) / t.ii

let occupies t v =
  Loop_graph.delay t.loop v > 0
  && Option.is_some (Resources.class_of_op (Loop_graph.op t.loop v))

let mrt ~resources t =
  let table cls =
    let slots = Array.make t.ii 0 in
    Loop_graph.iter_vertices
      (fun v ->
        if occupies t v then
          match Resources.class_of_op (Loop_graph.op t.loop v) with
          | Some c when Resources.equal_class c cls ->
            for k = 0 to Loop_graph.delay t.loop v - 1 do
              let slot = (t.starts.(v) + k) mod t.ii in
              slots.(slot) <- slots.(slot) + 1
            done
          | _ -> ())
      t.loop;
    slots
  in
  List.map (fun (cls, _) -> (cls, table cls)) (Resources.classes resources)

let check ?resources t =
  let g = t.loop in
  let violation = ref None in
  Loop_graph.iter_edges
    (fun u v d ->
      if !violation = None then begin
        let bound = t.starts.(u) + Loop_graph.delay g u - (t.ii * d) in
        if t.starts.(v) < bound then
          violation :=
            Some
              (Printf.sprintf
                 "recurrence violated: %s (start %d) needs %s + %d - %d*%d <= \
                  start, got %d"
                 (Loop_graph.name g v) t.starts.(v) (Loop_graph.name g u)
                 (Loop_graph.delay g u) t.ii d bound)
      end)
    g;
  (match (resources, !violation) with
  | Some resources, None ->
    List.iter
      (fun (cls, slots) ->
        let units = Resources.count resources cls in
        Array.iteri
          (fun slot n ->
            if n > units && !violation = None then
              violation :=
                Some
                  (Printf.sprintf
                     "modulo reservation overflow: %d %s ops in slot %d of %d \
                      (only %d units)"
                     n (Resources.class_name cls) slot t.ii units))
          slots)
      (mrt ~resources t);
    (* an operation of a class with zero units never fits *)
    Loop_graph.iter_vertices
      (fun v ->
        if occupies t v && !violation = None then
          match Resources.class_of_op (Loop_graph.op g v) with
          | Some c when Resources.count resources c = 0 ->
            violation :=
              Some
                (Printf.sprintf "%s needs a %s unit but none exist"
                   (Loop_graph.name g v) (Resources.class_name c))
          | _ -> ())
      t.loop
  | _ -> ());
  match !violation with None -> Ok () | Some m -> Error m

let steady_state_util ~resources t =
  let busy =
    Loop_graph.fold_vertices
      (fun acc v -> if occupies t v then acc + Loop_graph.delay t.loop v else acc)
      0 t.loop
  in
  let total = Resources.total_units resources in
  if total = 0 then 0.0 else float_of_int busy /. float_of_int (t.ii * total)

let unrolled t ~iterations =
  let dag, copies = Loop_graph.unroll t.loop ~iterations in
  (* loop-entry inputs are zero-delay and resource-free: start 0 *)
  let starts = Array.make (Graph.n_vertices dag) 0 in
  Array.iteri
    (fun i per_vertex ->
      Array.iteri
        (fun v dag_v -> starts.(dag_v) <- t.starts.(v) + (i * t.ii))
        per_vertex)
    copies;
  Schedule.make dag ~starts

let pp ppf t =
  Format.fprintf ppf "@[<v>II = %d, span = %d (%d stages)@," t.ii (span t)
    (stage_count t);
  Loop_graph.iter_vertices
    (fun v ->
      Format.fprintf ppf "%3d %-10s %-8s start %3d  slot %d@," v
        (Loop_graph.name t.loop v)
        (Op.to_string (Loop_graph.op t.loop v))
        t.starts.(v)
        (t.starts.(v) mod t.ii))
    t.loop;
  Format.fprintf ppf "@]"
