module Graph = Dfg.Graph
module Op = Dfg.Op
module Delay = Dfg.Delay
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module List_sched = Hard.List_sched
