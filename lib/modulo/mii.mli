open Import

(** Lower bounds on the initiation interval.

    The minimum initiation interval (MII) is the larger of two bounds:

    - {e ResMII}, from resource counts: a class whose operations need
      [W] unit-cycles per iteration on [k] units cannot initiate faster
      than every [ceil W/k] cycles; a single [d]-cycle operation on [k]
      non-pipelined units additionally needs [ceil d/k] (its modulo
      reservation rows wrap).
    - {e RecMII}, from recurrences: a cycle [c] of total delay [D(c)]
      and total iteration distance [p(c)] forces
      [II >= ceil (D(c) / p(c))] — the maximum cycle ratio over the
      strongly connected components.

    RecMII is computed by binary search on the candidate [II]:
    [II] is recurrence-feasible iff the edge weights
    [delay u - II * distance] admit no positive cycle (checked by
    Bellman–Ford longest-path relaxation), and feasibility is monotone
    in [II]. *)

val res_mii : resources:Resources.t -> Loop_graph.t -> int
(** At least 1. @raise Invalid_argument if some operation's unit class
    has no units (the kernel is then unschedulable at any II — same
    contract as {!Hard.List_sched.run}). *)

val rec_mii : Loop_graph.t -> int
(** At least 1; exactly 1 on a recurrence-free kernel. @raise
    Invalid_argument when the graph is not {!Loop_graph.well_formed}
    (a zero-distance cycle has no finite II). *)

val recurrence_feasible : Loop_graph.t -> ii:int -> bool
(** Whether the weights [delay u - ii * distance] admit no positive
    cycle — the Bellman–Ford check behind {!rec_mii}, exposed for the
    property tests. *)

val mii : resources:Resources.t -> Loop_graph.t -> int
(** [max (res_mii ...) (rec_mii ...)]. *)
