open Import

exception Parse_error of string

let to_string g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# softsched loop graph\n";
  Loop_graph.iter_vertices
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "vertex %s %s %d\n" (Loop_graph.name g v)
           (Op.to_string (Loop_graph.op g v))
           (Loop_graph.delay g v)))
    g;
  Loop_graph.iter_edges
    (fun u v d ->
      if d = 0 then
        Buffer.add_string buf
          (Printf.sprintf "edge %s %s\n" (Loop_graph.name g u)
             (Loop_graph.name g v))
      else
        Buffer.add_string buf
          (Printf.sprintf "edge %s %s %d\n" (Loop_graph.name g u)
             (Loop_graph.name g v) d))
    g;
  Buffer.contents buf

let of_string text =
  let g = Loop_graph.create () in
  let by_name = Hashtbl.create 32 in
  let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg)) in
  let lookup line name =
    match Hashtbl.find_opt by_name name with
    | Some v -> v
    | None -> fail line (Printf.sprintf "undeclared vertex %S" name)
  in
  List.iteri
    (fun index raw ->
      let line = index + 1 in
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let words =
        List.filter
          (fun w -> w <> "")
          (String.split_on_char ' '
             (String.map (fun c -> if c = '\t' then ' ' else c) content))
      in
      match words with
      | [] -> ()
      | "vertex" :: name :: op_text :: rest ->
        if Hashtbl.mem by_name name then
          fail line (Printf.sprintf "duplicate vertex %S" name);
        let op =
          match Op.of_string op_text with
          | Some op -> op
          | None -> fail line (Printf.sprintf "unknown op %S" op_text)
        in
        let delay =
          match rest with
          | [] -> None
          | [ d ] ->
            (match int_of_string_opt d with
            | Some d when d >= 0 -> Some d
            | Some _ -> fail line "negative delay"
            | None -> fail line (Printf.sprintf "bad delay %S" d))
          | _ -> fail line "trailing tokens after delay"
        in
        let v = Loop_graph.add_vertex g ?delay ~name op in
        Hashtbl.replace by_name name v
      | "edge" :: src :: dst :: rest ->
        let u = lookup line src and v = lookup line dst in
        let distance =
          match rest with
          | [] -> 0
          | [ d ] ->
            (match int_of_string_opt d with
            | Some d when d >= 0 -> d
            | Some _ -> fail line "negative distance"
            | None -> fail line (Printf.sprintf "bad distance %S" d))
          | _ -> fail line "trailing tokens after distance"
        in
        (try Loop_graph.add_edge g ~distance u v
         with Invalid_argument m -> fail line m)
      | word :: _ -> fail line (Printf.sprintf "unknown directive %S" word))
    (String.split_on_char '\n' text);
  g

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))
