open Import

module M = struct
  let name = "modulo"

  let about =
    "iterative modulo scheduler: II search from MII with budgeted eviction"

  let capabilities = [ Soft.Engine.Deterministic ]

  let schedule (ctx : Soft.Engine.ctx) ~resources g =
    let loop = Loop_graph.of_dag g in
    match Ims.run ?budget:ctx.budget ~resources loop with
    | Error m -> invalid_arg ("modulo engine: " ^ m)
    | Ok (ms, _stats) ->
      (* the one-iteration starts are a valid flat schedule: each
         cycle's usage is a sub-multiset of its modulo slot's *)
      ( Schedule.make g ~starts:(Array.init (Graph.n_vertices g) (Mschedule.start ms)),
        { Soft.Engine.optimal = false; degraded = false; state = None } )
end

let engine : Soft.Engine.engine = (module M)

let registered = ref false

let ensure_registered () =
  if not !registered then begin
    registered := true;
    Soft.Engine.register engine
  end
