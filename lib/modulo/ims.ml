open Import

type stats = {
  mii : int;
  res_mii : int;
  rec_mii : int;
  ii : int;
  placements : int;
  evictions : int;
  iis_tried : int;
  serial_fallback : bool;
}

let occupies g v =
  Loop_graph.delay g v > 0
  && Option.is_some (Resources.class_of_op (Loop_graph.op g v))

(* Height priority: the longest weighted path out of [v] under the
   candidate II's edge weights [delay u - ii * distance]. At a
   recurrence-feasible II no cycle is positive, so n relaxation passes
   converge. Critical recurrences get the largest heights and are
   placed first, while the slack the II buys on back edges (the
   [- ii * distance] term) correctly deprioritises them. *)
let heights g ~ii =
  let n = Loop_graph.n_vertices g in
  let h = Array.make n 0 in
  Loop_graph.iter_vertices (fun v -> h.(v) <- Loop_graph.delay g v) g;
  let edges = Loop_graph.edges g in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    incr pass;
    List.iter
      (fun (u, v, d) ->
        let w = Loop_graph.delay g u + h.(v) - (ii * d) in
        if w > h.(u) then begin
          h.(u) <- w;
          changed := true
        end)
      edges
  done;
  h

type attempt = {
  sigma : int array;
  scheduled : bool array;
  ever : bool array;  (** placed at least once during this attempt *)
  prev : int array;  (** last start, for the forced-slot bump *)
  mrt : (Resources.fu_class * int array) list;  (** per-class slot counts *)
  mutable evicted : int;
}

let class_of g v = Resources.class_of_op (Loop_graph.op g v)

let mrt_row a cls =
  snd (List.find (fun (c, _) -> Resources.equal_class c cls) a.mrt)

let mrt_change g ~ii a v t delta =
  match class_of g v with
  | None -> ()
  | Some cls ->
    let row = mrt_row a cls in
    for k = 0 to Loop_graph.delay g v - 1 do
      let s = (t + k) mod ii in
      row.(s) <- row.(s) + delta
    done

let mrt_fits g ~ii ~resources a v t =
  match class_of g v with
  | None -> true
  | Some cls ->
    let row = mrt_row a cls in
    let units = Resources.count resources cls in
    (* simulate the addition: per-slot increments of this op *)
    let inc = Array.make ii 0 in
    let ok = ref true in
    for k = 0 to Loop_graph.delay g v - 1 do
      let s = (t + k) mod ii in
      inc.(s) <- inc.(s) + 1;
      if row.(s) + inc.(s) > units then ok := false
    done;
    !ok

let unschedule g ~ii a v =
  a.scheduled.(v) <- false;
  if occupies g v then mrt_change g ~ii a v a.sigma.(v) (-1)

let place g ~ii a v t =
  a.sigma.(v) <- t;
  a.scheduled.(v) <- true;
  a.ever.(v) <- true;
  a.prev.(v) <- t;
  if occupies g v then mrt_change g ~ii a v t 1

(* Earliest recurrence-feasible start given the currently scheduled
   predecessors (unscheduled ones constrain nothing yet — they will be
   re-checked when they place, and violated successors evicted). *)
let estart g ~ii a v =
  List.fold_left
    (fun acc (u, d) ->
      if a.scheduled.(u) then
        max acc (a.sigma.(u) + Loop_graph.delay g u - (ii * d))
      else acc)
    0 (Loop_graph.preds g v)

(* Forced placement: put [v] at [t] regardless, then evict the lowest-
   height occupants of every overflowing reservation slot until the
   table fits again. *)
let force_place g ~ii ~resources ~height a v t =
  place g ~ii a v t;
  match class_of g v with
  | None -> ()
  | Some cls ->
    let row = mrt_row a cls in
    let units = Resources.count resources cls in
    let overfull () =
      let s = ref (-1) in
      Array.iteri (fun i n -> if !s = -1 && n > units then s := i) row;
      !s
    in
    let occupies_slot w slot =
      let d = Loop_graph.delay g w in
      let base = a.sigma.(w) mod ii in
      let rec probe k =
        k < d && (((base + k) mod ii) = slot || probe (k + 1))
      in
      probe 0
    in
    let rec drain () =
      let slot = overfull () in
      if slot >= 0 then begin
        (* the victim: lowest height, then highest id — the least
           critical occupant other than the op we just forced in *)
        let victim = ref (-1) in
        Loop_graph.iter_vertices
          (fun w ->
            if
              w <> v && a.scheduled.(w) && occupies g w
              && (match class_of g w with
                 | Some c -> Resources.equal_class c cls
                 | None -> false)
              && occupies_slot w slot
              && (!victim = -1 || height.(w) <= height.(!victim))
            then victim := w)
          g;
        (* v alone can overflow a slot (delay > ii * units): no victim
           to evict makes this II infeasible; leave the overflow, the
           budget loop detects no progress and moves to the next II *)
        if !victim >= 0 then begin
          unschedule g ~ii a !victim;
          a.evicted <- a.evicted + 1;
          drain ()
        end
      end
    in
    drain ()

let try_ii g ~resources ~ii ~budget =
  let n = Loop_graph.n_vertices g in
  let height = heights g ~ii in
  let a =
    {
      sigma = Array.make n 0;
      scheduled = Array.make n false;
      ever = Array.make n false;
      prev = Array.make n 0;
      mrt =
        List.map
          (fun (cls, _) -> (cls, Array.make ii 0))
          (Resources.classes resources);
      evicted = 0;
    }
  in
  let placements = ref 0 in
  let next_unscheduled () =
    let best = ref (-1) in
    for v = n - 1 downto 0 do
      if not (a.scheduled.(v)) then
        if !best = -1 || height.(v) >= height.(!best) then best := v
    done;
    !best
  in
  let rec loop remaining =
    let v = next_unscheduled () in
    if v = -1 then Some (Array.copy a.sigma, !placements, a.evicted)
    else if remaining = 0 then None
    else begin
      incr placements;
      let es = estart g ~ii a v in
      let placed =
        if not (occupies g v) then begin
          place g ~ii a v es;
          true
        end
        else begin
          let rec scan t =
            if t >= es + ii then false
            else if mrt_fits g ~ii ~resources a v t then begin
              place g ~ii a v t;
              true
            end
            else scan (t + 1)
          in
          scan es
        end
      in
      if not placed then begin
        let t = if (not a.ever.(v)) || es > a.prev.(v) then es else a.prev.(v) + 1 in
        force_place g ~ii ~resources ~height a v t;
        (* a single op that cannot fit the table at any start makes
           this II infeasible: detect the overflow it left behind *)
        let overflow =
          List.exists
            (fun (cls, row) ->
              let units = Resources.count resources cls in
              Array.exists (fun c -> c > units) row)
            a.mrt
        in
        if overflow then None else evict_succs v remaining
      end
      else evict_succs v remaining
    end
  and evict_succs v remaining =
    (* refine, don't invalidate: successors whose recurrence the new
       placement broke go back on the worklist with their old start *)
    List.iter
      (fun (w, d) ->
        if
          a.scheduled.(w) && w <> v
          && a.sigma.(w) < a.sigma.(v) + Loop_graph.delay g v - (ii * d)
        then begin
          unschedule g ~ii a w;
          a.evicted <- a.evicted + 1
        end)
      (Loop_graph.succs g v);
    (* a self-loop the forced slot broke cannot be fixed by eviction *)
    let self_ok =
      List.for_all
        (fun (w, d) ->
          w <> v || a.sigma.(v) >= a.sigma.(v) + Loop_graph.delay g v - (ii * d))
        (Loop_graph.succs g v)
    in
    if self_ok then loop (remaining - 1) else None
  in
  loop budget

let run ?budget ?max_ii ~resources g =
  match Loop_graph.well_formed g with
  | Error m -> Error ("Ims.run: " ^ m)
  | Ok () -> (
    let n = Loop_graph.n_vertices g in
    (* unit availability: same contract as List_sched *)
    let missing = ref None in
    Loop_graph.iter_vertices
      (fun v ->
        if occupies g v && !missing = None then
          match Resources.class_of_op (Loop_graph.op g v) with
          | Some c when Resources.count resources c = 0 ->
            missing :=
              Some
                (Printf.sprintf
                   "Ims.run: %s needs a %s unit but the configuration has none"
                   (Loop_graph.name g v) (Resources.class_name c))
          | _ -> ())
      g;
    match !missing with
    | Some m -> Error m
    | None ->
      if n = 0 then
        Ok
          ( Mschedule.make g ~ii:1 ~starts:[||],
            {
              mii = 1; res_mii = 1; rec_mii = 1; ii = 1; placements = 0;
              evictions = 0; iis_tried = 0; serial_fallback = false;
            } )
      else begin
        let res_mii = Mii.res_mii ~resources g in
        let rec_mii = Mii.rec_mii g in
        let mii = max res_mii rec_mii in
        let budget = match budget with Some b -> b | None -> max 128 (8 * n) in
        (* the serial fallback: one iteration at a time; II = its
           length satisfies every recurrence (distance >= 1 buys a
           whole iteration of slack) and its reservation table is the
           schedule's own per-cycle usage *)
        let serial = List_sched.run ~resources (Loop_graph.body g) in
        let serial_ii = max 1 (Schedule.length serial) in
        let max_ii = match max_ii with Some m -> m | None -> serial_ii in
        let placements = ref 0 and evictions = ref 0 and tried = ref 0 in
        let rec search ii =
          if ii > max_ii then begin
            let starts =
              Array.init n (fun v -> Schedule.start serial v)
            in
            Ok
              ( Mschedule.make g ~ii:serial_ii ~starts,
                {
                  mii; res_mii; rec_mii; ii = serial_ii;
                  placements = !placements; evictions = !evictions;
                  iis_tried = !tried; serial_fallback = true;
                } )
          end
          else begin
            incr tried;
            match try_ii g ~resources ~ii ~budget with
            | Some (starts, p, e) ->
              placements := !placements + p;
              evictions := !evictions + e;
              Ok
                ( Mschedule.make g ~ii ~starts,
                  {
                    mii; res_mii; rec_mii; ii; placements = !placements;
                    evictions = !evictions; iis_tried = !tried;
                    serial_fallback = false;
                  } )
            | None -> search (ii + 1)
          end
        in
        search mii
      end)
