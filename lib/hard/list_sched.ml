open Import

type priority = Graph.t -> Graph.vertex -> int

let critical_path_priority g =
  let tdist = Paths.sink_distances g in
  fun v -> tdist.(v)

let mobility_priority g =
  let slack = Paths.slack g ~deadline:(Paths.diameter g) in
  fun v -> -slack.(v)

(* Shared engine: returns start times and the dispatch order. *)
let engine ?(priority = critical_path_priority) ~resources g =
  Graph.iter_vertices
    (fun v ->
      match Resources.class_of_op (Graph.op g v) with
      | Some cls when Resources.count resources cls = 0 && Graph.delay g v > 0 ->
        invalid_arg
          (Printf.sprintf "List_sched: %s needs a %s but none is configured"
             (Graph.name g v)
             (Resources.class_name cls))
      | Some _ | None -> ())
    g;
  let n = Graph.n_vertices g in
  let prio =
    let f = priority g in
    Array.init n f
  in
  let starts = Array.make n (-1) in
  let remaining_preds = Array.init n (fun v -> Graph.in_degree g v) in
  let finish v = starts.(v) + Graph.delay g v in
  (* ready.(v) = earliest cycle v may start, meaningful once
     remaining_preds.(v) = 0. *)
  let ready_at = Array.make n 0 in
  let dispatched = ref [] in
  let n_scheduled = ref 0 in
  let place v cycle =
    starts.(v) <- cycle;
    incr n_scheduled;
    dispatched := v :: !dispatched;
    Graph.iter_succs
      (fun s ->
        remaining_preds.(s) <- remaining_preds.(s) - 1;
        ready_at.(s) <- max ready_at.(s) (finish v))
      g v
  in
  let is_ready v cycle =
    starts.(v) < 0 && remaining_preds.(v) = 0 && ready_at.(v) <= cycle
  in
  let consumes_unit v =
    Graph.delay g v > 0 && Resources.class_of_op (Graph.op g v) <> None
  in
  (* Busy units per class: finish times of in-flight ops. *)
  let busy = Hashtbl.create 7 in
  let busy_count cls cycle =
    match Hashtbl.find_opt busy cls with
    | None -> 0
    | Some finishes -> List.length (List.filter (fun f -> f > cycle) finishes)
  in
  let occupy cls ~until ~now =
    let finishes =
      match Hashtbl.find_opt busy cls with None -> [] | Some l -> l
    in
    Hashtbl.replace busy cls (until :: List.filter (fun f -> f > now) finishes)
  in
  let cycle = ref 0 in
  let guard = ref 0 in
  let max_cycles = (Graph.total_delay g + n + 1) * 2 + 16 in
  while !n_scheduled < n do
    incr guard;
    if !guard > max_cycles then
      failwith "List_sched: no progress (is the graph a DAG?)";
    let c = !cycle in
    (* 1. Place all ready unit-free ops, cascading zero-delay chains. *)
    let progress = ref true in
    while !progress do
      progress := false;
      Graph.iter_vertices
        (fun v ->
          if is_ready v c && not (consumes_unit v) then begin
            place v (max ready_at.(v) 0);
            progress := true
          end)
        g
    done;
    (* 2. Fill free units per class in priority order. *)
    List.iter
      (fun (cls, available) ->
        (* An op with finish f occupies cycles [start, f); it is busy
           during cycle c iff f > c. *)
        let free = ref (available - busy_count cls c) in
        let candidates =
          List.filter
            (fun v ->
              is_ready v c && consumes_unit v
              && Resources.can_execute cls (Graph.op g v))
            (Graph.vertices g)
        in
        let sorted =
          List.sort
            (fun a b -> compare (-prio.(a), a) (-prio.(b), b))
            candidates
        in
        List.iter
          (fun v ->
            if !free > 0 then begin
              place v c;
              occupy cls ~until:(c + Graph.delay g v) ~now:c;
              decr free
            end)
          sorted)
      (Resources.classes resources);
    cycle := c + 1
  done;
  (Schedule.make g ~starts, List.rev !dispatched)

let run ?priority ~resources g = fst (engine ?priority ~resources g)

let dispatch_order ?priority ~resources g =
  snd (engine ?priority ~resources g)
