open Import

(* Time frames: earliest/latest start of each op given the pins made so
   far. Recomputed from scratch after each assignment (O(V+E)). *)
let frames g ~deadline ~pinned =
  let n = Graph.n_vertices g in
  let order = Topo.sort g in
  let asap = Array.make n 0 in
  List.iter
    (fun v ->
      let lower =
        Graph.fold_preds
          (fun acc p -> max acc (asap.(p) + Graph.delay g p))
          0 g v
      in
      asap.(v) <-
        (match pinned.(v) with
        | Some s ->
          if s < lower then
            failwith "Force_directed: pin violates precedence";
          s
        | None -> lower))
    order;
  let alap = Array.make n 0 in
  List.iter
    (fun v ->
      let upper =
        Graph.fold_succs
          (fun acc s -> min acc (alap.(s) - Graph.delay g v))
          (deadline - Graph.delay g v)
          g v
      in
      alap.(v) <- (match pinned.(v) with Some s -> s | None -> upper))
    (List.rev order);
  (asap, alap)

(* Probability that op v (window [lo,hi], delay d) occupies cycle t:
   #{ s in [lo,hi] | s <= t < s+d } / (hi-lo+1). *)
let occupancy ~lo ~hi ~d t =
  if d = 0 then 0.0
  else begin
    let s_min = max lo (t - d + 1) and s_max = min hi t in
    if s_max < s_min then 0.0
    else float_of_int (s_max - s_min + 1) /. float_of_int (hi - lo + 1)
  end

let distribution g ~deadline ~asap ~alap cls =
  let dg = Array.make (max deadline 1) 0.0 in
  Graph.iter_vertices
    (fun v ->
      if Resources.can_execute cls (Graph.op g v) && Graph.delay g v > 0 then
        for t = asap.(v) to alap.(v) + Graph.delay g v - 1 do
          if t < deadline then
            dg.(t) <-
              dg.(t)
              +. occupancy ~lo:asap.(v) ~hi:alap.(v) ~d:(Graph.delay g v) t
        done)
    g;
  dg

(* Self force of pinning v at s: sum over occupied cycles of
   DG(t) * (new_prob(t) - old_prob(t)). *)
let self_force g ~dgs ~asap ~alap v s =
  let d = Graph.delay g v in
  if d = 0 then 0.0
  else
    match Resources.class_of_op (Graph.op g v) with
    | None -> 0.0
    | Some cls ->
      let dg : float array = List.assoc cls dgs in
      let lo = asap.(v) and hi = alap.(v) in
      let force = ref 0.0 in
      for t = lo to hi + d - 1 do
        if t < Array.length dg then begin
          let old_p = occupancy ~lo ~hi ~d t in
          let new_p = occupancy ~lo:s ~hi:s ~d t in
          force := !force +. (dg.(t) *. (new_p -. old_p))
        end
      done;
      !force

let run ~deadline g =
  let diameter = Paths.diameter g in
  if deadline < diameter then
    invalid_arg
      (Printf.sprintf "Force_directed.run: deadline %d < diameter %d" deadline
         diameter);
  let n = Graph.n_vertices g in
  let pinned = Array.make n None in
  let all_classes = [ Resources.Alu; Resources.Multiplier; Resources.Memory ] in
  for _iteration = 1 to n do
    let asap, alap = frames g ~deadline ~pinned in
    let dgs =
      List.map
        (fun cls -> (cls, distribution g ~deadline ~asap ~alap cls))
        all_classes
    in
    (* Pick the unpinned op/step pair with minimal combined force.
       Neighbourhood forces: pinning v at s tightens direct preds to
       [.., s - d_p] and succs to [s + d_v, ..]; we account for their
       self-force change under the tightened window mean. *)
    let best = ref None in
    Graph.iter_vertices
      (fun v ->
        if pinned.(v) = None then
          for s = asap.(v) to alap.(v) do
            let force = ref (self_force g ~dgs ~asap ~alap v s) in
            List.iter
              (fun p ->
                if pinned.(p) = None then begin
                  let new_hi = min alap.(p) (s - Graph.delay g p) in
                  if new_hi < alap.(p) then begin
                    (* Mean start shift of p approximates its force. *)
                    let mid_old = float_of_int (asap.(p) + alap.(p)) /. 2.0 in
                    let mid_new = float_of_int (asap.(p) + new_hi) /. 2.0 in
                    force := !force +. 0.1 *. (mid_old -. mid_new)
                  end
                end)
              (Graph.preds g v);
            List.iter
              (fun q ->
                if pinned.(q) = None then begin
                  let new_lo = max asap.(q) (s + Graph.delay g v) in
                  if new_lo > asap.(q) then begin
                    let mid_old = float_of_int (asap.(q) + alap.(q)) /. 2.0 in
                    let mid_new = float_of_int (new_lo + alap.(q)) /. 2.0 in
                    force := !force +. 0.1 *. (mid_new -. mid_old)
                  end
                end)
              (Graph.succs g v);
            match !best with
            | Some (bf, _, _) when bf <= !force -> ()
            | _ -> best := Some (!force, v, s)
          done)
      g;
    match !best with
    | None -> () (* all pinned *)
    | Some (_, v, s) -> pinned.(v) <- Some s
  done;
  let starts =
    Array.map (function Some s -> s | None -> 0) pinned
  in
  Schedule.make g ~starts

module Internal = struct
  let frames = frames
  let occupancy ~lo ~hi ~d t = occupancy ~lo ~hi ~d t
  let distribution = distribution
  let self_force g ~dgs ~asap ~alap v s = self_force g ~dgs ~asap ~alap v s
end

let min_units schedule =
  List.filter_map
    (fun cls ->
      let peak = Schedule.peak_usage schedule cls in
      if peak > 0 then Some (cls, peak) else None)
    [ Resources.Alu; Resources.Multiplier; Resources.Memory ]
