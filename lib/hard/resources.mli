open Import

(** Functional-unit classes and resource configurations.

    A configuration is the paper's column head, e.g. "2+/-, 2*" = two
    ALUs and two multipliers. Operations map to the class of unit that
    can execute them; [None] means the operation consumes no shared
    functional unit (constants, inputs, wire delays). *)

type fu_class =
  | Alu  (** add/sub/compare/logic/shift/move *)
  | Multiplier  (** mul/div *)
  | Memory  (** spill load/store port *)

type t
(** A resource configuration: how many units of each class exist. *)

val make : (fu_class * int) list -> t
(** @raise Invalid_argument on a non-positive count or duplicate class.
    Classes absent from the list have zero units. *)

val count : t -> fu_class -> int

val classes : t -> (fu_class * int) list
(** Classes with a non-zero count, in declaration order of [fu_class]. *)

val total_units : t -> int

val class_of_op : Op.t -> fu_class option
(** The unit class that executes an op; [None] for resource-free ops
    ([Const], [Input], [Output], [Wire]). *)

val can_execute : fu_class -> Op.t -> bool

val class_name : fu_class -> string

val to_string : t -> string
(** Paper-style, e.g. ["2 alu, 1 mul"]. *)

val of_string : string -> (t, string) result
(** Parses the CLI/protocol spelling, e.g. ["2alu,2mul,1mem"] (spaces
    tolerated, so {!to_string} output parses back). The error names the
    offending part. *)

val equal_class : fu_class -> fu_class -> bool

(** The three configurations of Figure 3, with one memory port added so
    spill refinement experiments run under the same configs. *)

val fig3_2alu_2mul : t
val fig3_4alu_4mul : t
val fig3_2alu_1mul : t
val fig3_all : (string * t) list
(** [("2+/-,2*", _); ("4+/-,4*", _); ("2+/,1*", _)] — the Figure 3
    column heads in paper order. *)
