open Import

type result = {
  schedule : Schedule.t;
  optimal : bool;
  nodes_explored : int;
}

(* Enumerate all ways to choose at most [k] elements from [xs]; each
   choice is a sublist. Exponential, bounded by callers. *)
let rec choose_up_to k xs =
  match xs, k with
  | [], _ | _, 0 -> [ [] ]
  | x :: rest, k ->
    let without = choose_up_to k rest in
    let with_x = List.map (fun c -> x :: c) (choose_up_to (k - 1) rest) in
    with_x @ without

let run ?(node_limit = 2_000_000) ?should_stop ~resources g =
  let n = Graph.n_vertices g in
  let tdist = Paths.sink_distances g in
  (* Seed the incumbent with list scheduling. *)
  let seed = List_sched.run ~resources g in
  let best_len = ref (Schedule.length seed) in
  let best_starts = ref (Schedule.starts seed) in
  let nodes = ref 0 in
  let out_of_budget = ref false in
  let starts = Array.make n (-1) in
  let remaining_preds = Array.init n (fun v -> Graph.in_degree g v) in
  let consumes_unit v =
    Graph.delay g v > 0 && Resources.class_of_op (Graph.op g v) <> None
  in
  (* Work-per-unit bound: remaining delay of each class / unit count. *)
  let class_bound cycle =
    List.fold_left
      (fun acc (cls, count) ->
        let work = ref 0 in
        Graph.iter_vertices
          (fun v ->
            if starts.(v) < 0 && Resources.can_execute cls (Graph.op g v) then
              work := !work + Graph.delay g v)
          g;
        max acc (cycle + ((!work + count - 1) / count)))
      0
      (Resources.classes resources)
  in
  (* The external cutoff (a race deadline, typically) is polled every
     few thousand nodes so its cost stays invisible next to the subset
     enumeration. Tripping it is the same graceful path as exhausting
     the node budget: the incumbent is returned, [optimal = false]. *)
  let stopped () =
    match should_stop with
    | Some f when !nodes land 0x7ff = 0 -> f ()
    | _ -> false
  in
  let rec explore cycle n_scheduled busy =
    incr nodes;
    if !nodes > node_limit || stopped () then out_of_budget := true
    else if n_scheduled = n then begin
      let len =
        Graph.fold_vertices
          (fun acc v -> max acc (starts.(v) + Graph.delay g v))
          0 g
      in
      if len < !best_len then begin
        best_len := len;
        best_starts := Array.copy starts
      end
    end
    else begin
      (* ASAP-tightened critical-path lower bound: an unscheduled op
         cannot start before its already-placed predecessors finish, so
         its earliest start is max(cycle, preds' finishes) — strictly
         sharper than the plain [cycle + tdist] bound whenever a long
         chain is already pinned. *)
      let cp_bound =
        Graph.fold_vertices
          (fun acc v ->
            if starts.(v) < 0 then begin
              let est =
                Graph.fold_preds
                  (fun e p ->
                    if starts.(p) >= 0 then max e (starts.(p) + Graph.delay g p)
                    else e)
                  cycle g v
              in
              max acc (est + tdist.(v))
            end
            else acc)
          0 g
      in
      if cp_bound < !best_len && class_bound cycle < !best_len then begin
        (* Place zero-cost ops immediately; they never constrain units. *)
        let auto = ref [] in
        let progress = ref true in
        while !progress do
          progress := false;
          Graph.iter_vertices
            (fun v ->
              if
                starts.(v) < 0 && remaining_preds.(v) = 0
                && not (consumes_unit v)
              then begin
                (* ready time respecting preds' finishes *)
                let ready =
                  List.fold_left
                    (fun acc p -> max acc (starts.(p) + Graph.delay g p))
                    0 (Graph.preds g v)
                in
                if ready <= cycle then begin
                  starts.(v) <- max ready 0;
                  List.iter
                    (fun s -> remaining_preds.(s) <- remaining_preds.(s) - 1)
                    (Graph.succs g v);
                  auto := v :: !auto;
                  progress := true
                end
              end)
            g
        done;
        let auto_count = List.length !auto in
        (* Ready unit ops at this cycle. *)
        let ready_ops =
          List.filter
            (fun v ->
              starts.(v) < 0 && remaining_preds.(v) = 0 && consumes_unit v
              && List.for_all
                   (fun p -> starts.(p) + Graph.delay g p <= cycle)
                   (Graph.preds g v))
            (Graph.vertices g)
        in
        let branches =
          (* Per class, all subsets that fit the free units; combine
             classes by cartesian product. *)
          List.fold_left
            (fun acc (cls, count) ->
              let busy_now =
                List.length
                  (List.filter
                     (fun (c, f) -> Resources.equal_class c cls && f > cycle)
                     busy)
              in
              let free = count - busy_now in
              let mine =
                List.filter
                  (fun v -> Resources.can_execute cls (Graph.op g v))
                  ready_ops
              in
              let choices = choose_up_to free mine in
              List.concat_map
                (fun partial -> List.map (fun c -> c @ partial) choices)
                acc)
            [ [] ]
            (Resources.classes resources)
        in
        (* ALAP pruning: a ready op whose latest start against the
           incumbent is this cycle (postponing it one cycle already
           reaches best_len) must be in every surviving subset — a
           branch that defers it cannot beat the incumbent. When the
           must-start set does not fit the free units, every branch
           dies and we backtrack immediately. *)
        let must_now =
          List.filter (fun v -> cycle + 1 + tdist.(v) >= !best_len) ready_ops
        in
        let branches =
          match must_now with
          | [] -> branches
          | _ ->
            List.filter
              (fun subset -> List.for_all (fun v -> List.memq v subset) must_now)
              branches
        in
        (* Prefer larger subsets first: finds good incumbents early. *)
        let branches =
          List.sort
            (fun a b -> compare (List.length b) (List.length a))
            branches
        in
        List.iter
          (fun subset ->
            if not !out_of_budget then begin
              List.iter
                (fun v ->
                  starts.(v) <- cycle;
                  List.iter
                    (fun s -> remaining_preds.(s) <- remaining_preds.(s) - 1)
                    (Graph.succs g v))
                subset;
              let busy' =
                List.fold_left
                  (fun acc v ->
                    match Resources.class_of_op (Graph.op g v) with
                    | Some cls -> (cls, cycle + Graph.delay g v) :: acc
                    | None -> acc)
                  (List.filter (fun (_, f) -> f > cycle) busy)
                  subset
              in
              (* Avoid idling forever: if nothing was started and nothing
                 is in flight and nothing auto-placed, skipping the cycle
                 cannot help. *)
              let in_flight = List.exists (fun (_, f) -> f > cycle) busy' in
              if subset <> [] || in_flight || auto_count > 0 then
                explore (cycle + 1)
                  (n_scheduled + auto_count + List.length subset)
                  busy'
              else if
                Graph.fold_vertices
                  (fun acc v -> acc || starts.(v) < 0)
                  false g
                && ready_ops = []
              then
                (* Deadlock would mean a cycle; DAG input rules it out. *)
                ()
              ;
              List.iter
                (fun v ->
                  List.iter
                    (fun s -> remaining_preds.(s) <- remaining_preds.(s) + 1)
                    (Graph.succs g v);
                  starts.(v) <- -1)
                subset
            end)
          branches;
        (* Undo auto placements. *)
        List.iter
          (fun v ->
            List.iter
              (fun s -> remaining_preds.(s) <- remaining_preds.(s) + 1)
              (Graph.succs g v);
            starts.(v) <- -1)
          !auto
      end
    end
  in
  explore 0 0 [];
  {
    schedule = Schedule.make g ~starts:!best_starts;
    optimal = not !out_of_budget;
    nodes_explored = !nodes;
  }
