open Import

exception Infeasible

(* One attempt at a fixed deadline. Returns starts or raises
   Infeasible when some operation misses its latest start. *)
let attempt ~resources ~deadline g =
  let n = Graph.n_vertices g in
  let pinned = Array.make n None in
  let all_classes = [ Resources.Alu; Resources.Multiplier; Resources.Memory ] in
  let consumes_unit v =
    Graph.delay g v > 0 && Resources.class_of_op (Graph.op g v) <> None
  in
  let finish v =
    match pinned.(v) with
    | Some s -> s + Graph.delay g v
    | None -> max_int
  in
  (* busy units per class per cycle, maintained incrementally *)
  let busy = Hashtbl.create 7 in
  let busy_at cls cycle =
    Option.value ~default:0 (Hashtbl.find_opt busy (cls, cycle))
  in
  let occupy cls ~from ~until =
    for c = from to until - 1 do
      Hashtbl.replace busy (cls, c) (busy_at cls c + 1)
    done
  in
  let n_pinned = ref 0 in
  for cycle = 0 to deadline do
    if !n_pinned < n then begin
      let asap, _ = Force_directed.Internal.frames g ~deadline ~pinned in
      (* place zero-cost ops the moment they are ready *)
      Graph.iter_vertices
        (fun v ->
          if
            pinned.(v) = None
            && (not (consumes_unit v))
            && asap.(v) <= cycle
            && not (Graph.exists_pred (fun p -> finish p > cycle) g v)
          then begin
            pinned.(v) <- Some cycle;
            incr n_pinned
          end)
        g;
      (* refresh frames after the zero-cost placements *)
      let asap, alap = Force_directed.Internal.frames g ~deadline ~pinned in
      let dgs =
        List.map
          (fun cls ->
            (cls, Force_directed.Internal.distribution g ~deadline ~asap ~alap cls))
          all_classes
      in
      List.iter
        (fun (cls, available) ->
          let ready =
            List.filter
              (fun v ->
                pinned.(v) = None
                && consumes_unit v
                && Resources.can_execute cls (Graph.op g v)
                && asap.(v) <= cycle
                && not (Graph.exists_pred (fun p -> finish p > cycle) g v))
              (Graph.vertices g)
          in
          let free = ref (available - busy_at cls cycle) in
          (* forced ops first: missing their latest start is fatal *)
          let forced, optional =
            List.partition (fun v -> alap.(v) <= cycle) ready
          in
          if List.length forced > !free then raise Infeasible;
          let place v =
            pinned.(v) <- Some cycle;
            incr n_pinned;
            occupy cls ~from:cycle ~until:(cycle + Graph.delay g v);
            decr free
          in
          List.iter place forced;
          (* fill the remaining units by ascending force *)
          let by_force =
            List.sort
              (fun a b ->
                compare
                  ( Force_directed.Internal.self_force g ~dgs ~asap ~alap a
                      cycle,
                    a )
                  ( Force_directed.Internal.self_force g ~dgs ~asap ~alap b
                      cycle,
                    b ))
              optional
          in
          List.iter (fun v -> if !free > 0 then place v) by_force)
        (Resources.classes resources)
    end
  done;
  if !n_pinned < n then raise Infeasible;
  Array.map (function Some s -> s | None -> 0) pinned

let run ~resources g =
  Graph.iter_vertices
    (fun v ->
      match Resources.class_of_op (Graph.op g v) with
      | Some cls when Resources.count resources cls = 0 && Graph.delay g v > 0
        ->
        invalid_arg
          (Printf.sprintf "Fdls: %s needs a %s but none is configured"
             (Graph.name g v)
             (Resources.class_name cls))
      | Some _ | None -> ())
    g;
  let lower = Paths.diameter g in
  (* generous upper bound: serialise everything *)
  let upper = Graph.total_delay g + 1 in
  let rec search deadline =
    if deadline > upper then
      failwith "Fdls.run: no feasible deadline found (bug)"
    else
      match attempt ~resources ~deadline g with
      | starts -> Schedule.make g ~starts
      | exception Infeasible -> search (deadline + 1)
  in
  search lower
