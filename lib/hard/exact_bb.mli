open Import

(** Exact resource-constrained scheduling by branch and bound.

    Section 1 contrasts soft scheduling with "global optimization
    approaches … the problem size which these methods can tackle is
    limited"; this module is that expensive comparator, used to audit
    how far the heuristic and threaded schedulers sit from optimal on
    small graphs. The search branches, cycle by cycle, on every subset
    of ready operations that fits the free units, pruned three ways: an
    ASAP-tightened critical-path lower bound (earliest starts honour
    already-placed predecessors), a work-per-unit bound, and an ALAP
    rule forcing zero-slack ready operations (against the incumbent)
    into every surviving subset. *)

type result = {
  schedule : Schedule.t;
  optimal : bool;  (** false when the node budget was exhausted *)
  nodes_explored : int;
}

val run :
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  resources:Resources.t ->
  Graph.t ->
  result
(** [node_limit] defaults to 2_000_000 search nodes; [should_stop] is
    an external cutoff (a race deadline) polled every few thousand
    nodes. On either cutoff the best incumbent (never worse than list
    scheduling, which seeds the search) is returned with
    [optimal = false] — branch and bound always degrades gracefully. *)
