open Import

type fu_class = Alu | Multiplier | Memory

type t = { alu : int; multiplier : int; memory : int }

let make counts =
  let seen = ref [] in
  let acc = ref { alu = 0; multiplier = 0; memory = 0 } in
  List.iter
    (fun (cls, n) ->
      if n <= 0 then invalid_arg "Resources.make: non-positive count";
      if List.mem cls !seen then invalid_arg "Resources.make: duplicate class";
      seen := cls :: !seen;
      acc :=
        (match cls with
        | Alu -> { !acc with alu = n }
        | Multiplier -> { !acc with multiplier = n }
        | Memory -> { !acc with memory = n }))
    counts;
  !acc

let count t = function
  | Alu -> t.alu
  | Multiplier -> t.multiplier
  | Memory -> t.memory

let classes t =
  List.filter
    (fun (_, n) -> n > 0)
    [ (Alu, t.alu); (Multiplier, t.multiplier); (Memory, t.memory) ]

let total_units t = t.alu + t.multiplier + t.memory

let class_of_op : Op.t -> fu_class option = function
  | Op.Add | Op.Sub | Op.Neg | Op.Lt | Op.Gt | Op.Eq | Op.And | Op.Or
  | Op.Xor | Op.Shl | Op.Shr | Op.Select | Op.Mov ->
    Some Alu
  | Op.Mul | Op.Div | Op.Mac | Op.Msu -> Some Multiplier
  | Op.Load | Op.Store -> Some Memory
  | Op.Wire | Op.Const _ | Op.Input _ | Op.Output _ -> None

let equal_class (a : fu_class) b = a = b

let can_execute cls op =
  match class_of_op op with
  | Some c -> equal_class c cls
  | None -> false

let class_name = function
  | Alu -> "alu"
  | Multiplier -> "mul"
  | Memory -> "mem"

let to_string t =
  String.concat ", "
    (List.map
       (fun (cls, n) -> Printf.sprintf "%d %s" n (class_name cls))
       (classes t))

(* "2alu,1mul" — the CLI/protocol spelling. Whitespace around parts is
   tolerated so "2 alu, 1 mul" (what [to_string] prints) parses too. *)
let of_string s =
  let parse_one part =
    let part =
      String.concat ""
        (String.split_on_char ' ' (String.trim part))
    in
    let split =
      let rec first_alpha i =
        if i >= String.length part then i
        else
          match part.[i] with '0' .. '9' -> first_alpha (i + 1) | _ -> i
      in
      first_alpha 0
    in
    if split = 0 || split = String.length part then
      Error (Printf.sprintf "bad resource spec %S (want e.g. 2alu)" part)
    else
      match int_of_string_opt (String.sub part 0 split) with
      | None -> Error (Printf.sprintf "bad count in %S" part)
      | Some n -> (
        match String.sub part split (String.length part - split) with
        | "alu" -> Ok (Alu, n)
        | "mul" -> Ok (Multiplier, n)
        | "mem" -> Ok (Memory, n)
        | other -> Error (Printf.sprintf "unknown unit class %S" other))
  in
  let rec build acc = function
    | [] -> (
      match make (List.rev acc) with
      | t -> Ok t
      | exception Invalid_argument m -> Error m)
    | part :: rest -> (
      match parse_one part with
      | Ok pair -> build (pair :: acc) rest
      | Error _ as e -> e)
  in
  build [] (String.split_on_char ',' s)

let fig3_2alu_2mul = make [ (Alu, 2); (Multiplier, 2); (Memory, 1) ]
let fig3_4alu_4mul = make [ (Alu, 4); (Multiplier, 4); (Memory, 1) ]
let fig3_2alu_1mul = make [ (Alu, 2); (Multiplier, 1); (Memory, 1) ]

let fig3_all =
  [ ("2+/-,2*", fig3_2alu_2mul);
    ("4+/-,4*", fig3_4alu_4mul);
    ("2+/,1*", fig3_2alu_1mul)
  ]
