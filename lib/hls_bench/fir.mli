open Import

(** FIR — finite-impulse-response filter ("FIR" row of Figure 3).

    [taps] products accumulated pairwise and then chained, plus a final
    accumulation with the previous output. The default 8-tap instance
    has 8 multiplications and 8 additions with a 7-cycle critical path,
    matching the row's ample-resource entry. *)

val graph : ?taps:int -> unit -> Graph.t
(** @raise Invalid_argument if [taps < 2] or odd. Default [taps = 8]. *)

val loop : ?taps:int -> unit -> Modulo.Loop_graph.t
(** The filter as a loop kernel, one iteration per sample: the tap
    window [x[i-k]] becomes a distance-[k] read of the single [x]
    input and the running accumulation a distance-1 self loop. The
    accumulator is the only recurrence (RecMII 1), so MII is the
    multiplier bound: [ceil (2 * taps / mul_units)] — 8 for the
    default instance under the paper's 2-multiplier configurations.
    @raise Invalid_argument if [taps < 2] or odd. *)

val default_taps : int
val n_multiplications : int
(** For the default instance. *)

val n_alu_ops : int

val reference : coeffs:int array -> samples:int array -> prev:int -> int
(** Oracle: [prev + sum_i coeffs.(i) * samples.(i)]. *)
