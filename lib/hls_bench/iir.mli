open Import

(** IIR — cascade of direct-form-II biquad sections (extension
    benchmark, not in Figure 3; used by the resource-sweep ablation).

    Each section computes
    [w = x - a1*z1 - a2*z2; y = b0*w + b1*z1 + b2*z2]
    (5 multiplications, 4 additions/subtractions). *)

val graph : ?sections:int -> unit -> Graph.t
(** Default 2 sections: 10 multiplications, 8 ALU ops. *)

val loop : ?sections:int -> unit -> Modulo.Loop_graph.t
(** The cascade as a loop kernel: the unit-delay taps [z1]/[z2] become
    distance-1 and distance-2 recurrences on each section's [w]. The
    feedback cycle [w -> a1*z1 -> s1 -> w] pins RecMII = 4; with the
    default 2 sections, ten two-cycle multiplies pin ResMII = 10 under
    two multipliers, so MII = 10. *)

val n_multiplications : int
val n_alu_ops : int
