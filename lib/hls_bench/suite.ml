open Import

type entry = {
  name : string;
  build : unit -> Graph.t;
  n_multiplications : int;
  n_alu_ops : int;
}

let fig3 =
  [
    { name = "HAL"; build = Hal.graph;
      n_multiplications = Hal.n_multiplications; n_alu_ops = Hal.n_alu_ops };
    { name = "AR"; build = Ar.graph;
      n_multiplications = Ar.n_multiplications; n_alu_ops = Ar.n_alu_ops };
    { name = "EF"; build = Ewf.graph;
      n_multiplications = Ewf.n_multiplications; n_alu_ops = Ewf.n_alu_ops };
    { name = "FIR"; build = (fun () -> Fir.graph ());
      n_multiplications = Fir.n_multiplications; n_alu_ops = Fir.n_alu_ops };
  ]

let extensions =
  [
    { name = "DCT"; build = Dct.graph;
      n_multiplications = Dct.n_multiplications; n_alu_ops = Dct.n_alu_ops };
    { name = "IIR"; build = (fun () -> Iir.graph ());
      n_multiplications = Iir.n_multiplications; n_alu_ops = Iir.n_alu_ops };
    { name = "MM3"; build = (fun () -> Matmul.matmul ());
      n_multiplications = 27; n_alu_ops = 18 };
    { name = "CONV"; build = (fun () -> Matmul.convolution ());
      n_multiplications = 16; n_alu_ops = 12 };
  ]

let all = fig3 @ extensions

let find name =
  let target = String.lowercase_ascii name in
  List.find (fun e -> String.lowercase_ascii e.name = target) all

type loop_entry = {
  loop_name : string;
  build_loop : unit -> Loop_graph.t;
}

let loops =
  [
    { loop_name = "FIR_LOOP"; build_loop = (fun () -> Fir.loop ()) };
    { loop_name = "IIR_LOOP"; build_loop = (fun () -> Iir.loop ()) };
  ]

let find_loop name =
  let target = String.lowercase_ascii name in
  List.find (fun e -> String.lowercase_ascii e.loop_name = target) loops

let operation_count g =
  Graph.fold_vertices
    (fun acc v ->
      match Graph.op g v with
      | Op.Input _ | Op.Const _ | Op.Output _ -> acc
      | _ -> acc + 1)
    0 g
