open Import

let graph ?(sections = 2) () =
  if sections < 1 then invalid_arg "Iir.graph: need at least one section";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let x0 = input "x" in
  let signal = ref x0 in
  for i = 0 to sections - 1 do
    let p s = Printf.sprintf "s%d%s" i s in
    let z1 = input (p "z1") and z2 = input (p "z2") in
    let a1 = input (p "a1") and a2 = input (p "a2") in
    let b0 = input (p "b0") and b1 = input (p "b1") and b2 = input (p "b2") in
    let m1 = binop (p "m1") Op.Mul a1 z1 in
    let m2 = binop (p "m2") Op.Mul a2 z2 in
    let s1 = binop (p "s1") Op.Sub !signal m1 in
    let w = binop (p "w") Op.Sub s1 m2 in
    let m3 = binop (p "m3") Op.Mul b0 w in
    let m4 = binop (p "m4") Op.Mul b1 z1 in
    let m5 = binop (p "m5") Op.Mul b2 z2 in
    let s2 = binop (p "s2") Op.Add m3 m4 in
    let y = binop (p "y") Op.Add s2 m5 in
    signal := y
  done;
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g !signal o;
  g

let n_multiplications = 10
let n_alu_ops = 8

(* The cascade as a loop kernel: the unit-delay taps [z1]/[z2] stop
   being inputs and become genuine recurrences — distance-1 and
   distance-2 reads of each section's own [w]. The critical recurrence
   cycle is [w -> m1 -> s1 -> w] (1 + 2 + 1 cycles of delay over
   distance 1), so RecMII = 4; with the default 2 sections the ten
   two-cycle multiplies make ResMII = 10 under 2 multipliers. *)
let loop ?(sections = 2) () =
  if sections < 1 then invalid_arg "Iir.loop: need at least one section";
  let g = Loop_graph.create () in
  let input name = Loop_graph.add_vertex g ~name (Op.Input name) in
  let binop name op (l, dl) (r, dr) =
    let v = Loop_graph.add_vertex g ~name op in
    Loop_graph.add_edge g ~distance:dl l v;
    Loop_graph.add_edge g ~distance:dr r v;
    v
  in
  let x0 = input "x" in
  let signal = ref x0 in
  for i = 0 to sections - 1 do
    let p s = Printf.sprintf "s%d%s" i s in
    let a1 = input (p "a1") and a2 = input (p "a2") in
    let b0 = input (p "b0") and b1 = input (p "b1") and b2 = input (p "b2") in
    (* w is created first so the taps can read it at distance 1 and 2 *)
    let w = Loop_graph.add_vertex g ~name:(p "w") Op.Sub in
    let m1 = binop (p "m1") Op.Mul (a1, 0) (w, 1) in
    let m2 = binop (p "m2") Op.Mul (a2, 0) (w, 2) in
    let s1 = binop (p "s1") Op.Sub (!signal, 0) (m1, 0) in
    Loop_graph.add_edge g s1 w;
    Loop_graph.add_edge g m2 w;
    let m3 = binop (p "m3") Op.Mul (b0, 0) (w, 0) in
    let m4 = binop (p "m4") Op.Mul (b1, 0) (w, 1) in
    let m5 = binop (p "m5") Op.Mul (b2, 0) (w, 2) in
    let s2 = binop (p "s2") Op.Add (m3, 0) (m4, 0) in
    let y = binop (p "y") Op.Add (s2, 0) (m5, 0) in
    signal := y
  done;
  let o = Loop_graph.add_vertex g ~name:"y" (Op.Output "y") in
  Loop_graph.add_edge g !signal o;
  g
