open Import

(** The benchmark registry used by the CLI, the test suite and the
    experiment harness. *)

type entry = {
  name : string;  (** paper row label, e.g. ["HAL"] *)
  build : unit -> Graph.t;
  n_multiplications : int;
  n_alu_ops : int;
}

val fig3 : entry list
(** The four Figure 3 rows in paper order: HAL, AR, EF, FIR. *)

val extensions : entry list
(** DCT, IIR, a 3x3 matrix multiply and a 1-D convolution — extra
    workloads for the ablation benches. *)

val all : entry list

val find : string -> entry
(** Case-insensitive lookup. @raise Not_found. *)

val operation_count : Graph.t -> int
(** Number of real operations (excluding [Input]/[Const]/[Output]
    pseudo-vertices) — what the paper counts as |V|. *)

(** {2 Loop kernels}

    Cyclic variants for the modulo-scheduling subsystem: the same
    datapaths with their inter-iteration state expressed as loop-carried
    recurrences instead of inputs. *)

type loop_entry = {
  loop_name : string;  (** e.g. ["FIR_LOOP"] *)
  build_loop : unit -> Loop_graph.t;
}

val loops : loop_entry list
(** [FIR_LOOP] ({!Fir.loop}) and [IIR_LOOP] ({!Iir.loop}). *)

val find_loop : string -> loop_entry
(** Case-insensitive lookup. @raise Not_found. *)
