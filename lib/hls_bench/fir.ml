open Import

let default_taps = 8

let graph ?(taps = default_taps) () =
  if taps < 2 || taps mod 2 <> 0 then
    invalid_arg "Fir.graph: taps must be even and at least 2";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let products =
    List.init taps (fun i ->
        let x = input (Printf.sprintf "x%d" i) in
        let c = input (Printf.sprintf "c%d" i) in
        binop (Printf.sprintf "m%d" i) Op.Mul c x)
  in
  (* Pairwise partial sums, then a serial accumulation chain. *)
  let rec pairs acc = function
    | a :: b :: rest ->
      let p = binop (Printf.sprintf "p%d" (List.length acc)) Op.Add a b in
      pairs (p :: acc) rest
    | [] -> List.rev acc
    | [ _ ] -> assert false
  in
  let partials = pairs [] products in
  let sum =
    match partials with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc p ->
          binop (Printf.sprintf "t%d" (Graph.n_vertices g)) Op.Add acc p)
        first rest
  in
  let prev = input "prev" in
  let y = binop "acc" Op.Add sum prev in
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g y o;
  g

let n_multiplications = default_taps
let n_alu_ops = default_taps

(* The same filter as a loop kernel: one iteration per sample, the tap
   window expressed as loop-carried reads of the single [x] input
   ([x[i-k]] = distance-k edge), and the running accumulation as a
   distance-1 self loop. The only recurrence cycle is the accumulator
   (1 cycle of delay over distance 1), so MII is purely resource-bound:
   [taps] two-cycle multiplies. *)
let loop ?(taps = default_taps) () =
  if taps < 2 || taps mod 2 <> 0 then
    invalid_arg "Fir.loop: taps must be even and at least 2";
  let g = Loop_graph.create () in
  let input name = Loop_graph.add_vertex g ~name (Op.Input name) in
  let binop name op (l, dl) (r, dr) =
    let v = Loop_graph.add_vertex g ~name op in
    Loop_graph.add_edge g ~distance:dl l v;
    Loop_graph.add_edge g ~distance:dr r v;
    v
  in
  let x = input "x" in
  let products =
    List.init taps (fun k ->
        let c = input (Printf.sprintf "c%d" k) in
        binop (Printf.sprintf "m%d" k) Op.Mul (c, 0) (x, k))
  in
  let rec pairs acc = function
    | a :: b :: rest ->
      let p =
        binop (Printf.sprintf "p%d" (List.length acc)) Op.Add (a, 0) (b, 0)
      in
      pairs (p :: acc) rest
    | [] -> List.rev acc
    | [ _ ] -> assert false
  in
  let sum =
    match pairs [] products with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc p ->
          binop (Printf.sprintf "t%d" (Loop_graph.n_vertices g)) Op.Add (acc, 0)
            (p, 0))
        first rest
  in
  let acc = Loop_graph.add_vertex g ~name:"acc" Op.Add in
  Loop_graph.add_edge g sum acc;
  Loop_graph.add_edge g ~distance:1 acc acc;
  let o = Loop_graph.add_vertex g ~name:"y" (Op.Output "y") in
  Loop_graph.add_edge g acc o;
  g

let reference ~coeffs ~samples ~prev =
  if Array.length coeffs <> Array.length samples then
    invalid_arg "Fir.reference: length mismatch";
  let sum = ref prev in
  Array.iteri (fun i c -> sum := !sum + (c * samples.(i))) coeffs;
  !sum
