module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Loop_graph = Modulo.Loop_graph
