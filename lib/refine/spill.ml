open Import

type comparison = {
  original_csteps : int;
  soft_csteps : int;
  resched_csteps : int;
}

let apply ?consumers state ~value =
  let g = Threaded_graph.graph state in
  let all_consumers =
    List.rev
      (Graph.fold_succs
         (fun acc c ->
           match Graph.op g c with Op.Store -> acc | _ -> c :: acc)
         [] g value)
  in
  let consumers =
    match consumers with
    | None -> all_consumers
    | Some chosen ->
      List.iter
        (fun c ->
          if not (List.mem c all_consumers) then
            invalid_arg
              (Printf.sprintf "Spill.apply: %d is not a consumer of %d" c
                 value))
        chosen;
      chosen
  in
  if consumers = [] then
    invalid_arg "Spill.apply: value has no consumer to reload for";
  let has_memory_thread =
    List.exists
      (fun k ->
        Resources.equal_class
          (Threaded_graph.thread_class state k)
          Resources.Memory)
      (List.init (Threaded_graph.n_threads state) Fun.id)
  in
  if not has_memory_thread then
    invalid_arg "Spill.apply: no memory thread in the scheduling state";
  let st, ld = Mutate.insert_spill g ~value ~reload_for:consumers in
  Threaded_graph.schedule state st;
  Threaded_graph.schedule state ld;
  (st, ld)

let until_fits ~registers state =
  if registers < 1 then invalid_arg "Spill.until_fits: need a register";
  let g = Threaded_graph.graph state in
  let spilled = ref [] in
  let rec loop guard =
    if guard = 0 then
      invalid_arg "Spill.until_fits: register budget unreachable";
    (* Pressure-aware extraction: reloads drift late, stores and other
       value-killing ops go early, so a spill actually shortens the
       victim's register residency. *)
    let schedule = Pressure.extract state in
    if Lifetime.max_pressure schedule <= registers then List.rev !spilled
    else begin
      (* Victim: the live value with the longest lifetime at the first
         over-pressure cycle, not yet spilled, with a spillable class. *)
      let pressure = Lifetime.pressure schedule in
      let cycle = ref 0 in
      Array.iteri
        (fun c p -> if p > registers && !cycle = 0 then cycle := c)
        pressure;
      let live = Lifetime.live_at schedule ~cycle:!cycle in
      (* Reloaded and constant values cannot be spilled (again); any
         other register value — including a sampled input — can, as
         long as it has a consumer strictly past the pressure point to
         reload for (otherwise spilling cannot shorten its residency). *)
      let late_consumers v =
        List.rev
          (Graph.fold_succs
             (fun acc c ->
               if
                 Schedule.start schedule c > !cycle
                 && match Graph.op g c with Op.Store -> false | _ -> true
               then c :: acc
               else acc)
             [] g v)
      in
      let candidates =
        List.filter
          (fun v ->
            (match Graph.op g v with
            | Op.Load | Op.Store | Op.Const _ -> false
            | _ -> true)
            && (not (List.exists (fun (value, _, _) -> value = v) !spilled))
            && late_consumers v <> [])
          live
      in
      let by_lifetime =
        let intervals = Lifetime.intervals schedule in
        let death v =
          match
            List.find_opt
              (fun (iv : Lifetime.interval) -> iv.producer = v)
              intervals
          with
          | Some iv -> iv.death
          | None -> 0
        in
        List.sort (fun a b -> compare (-death a, a) (-death b, b)) candidates
      in
      match by_lifetime with
      | [] -> invalid_arg "Spill.until_fits: register budget unreachable"
      | victim :: _ ->
        let st, ld =
          apply ~consumers:(late_consumers victim) state ~value:victim
        in
        spilled := (victim, st, ld) :: !spilled;
        loop (guard - 1)
    end
  in
  loop (Graph.n_vertices g + 1)

let compare_strategies ~resources ~meta ~values graph =
  let g = Graph.copy graph in
  let state = Scheduler.run ~meta ~resources g in
  let original_csteps =
    Schedule.length (Threaded_graph.to_schedule state)
  in
  List.iter (fun value -> ignore (apply state ~value)) values;
  let soft_csteps = Schedule.length (Threaded_graph.to_schedule state) in
  (* The expensive alternative: throw the schedule away and redo the
     mutated design from scratch. *)
  let resched_csteps =
    Schedule.length
      (Scheduler.run_to_schedule ~meta ~resources
         (Graph.copy (Threaded_graph.graph state)))
  in
  { original_csteps; soft_csteps; resched_csteps }
