open Import

type interval = {
  producer : Graph.vertex;
  birth : int;
  death : int;
}

(* Values produced by constants are hardwired, stores live in memory and
   output markers produce nothing; everything else occupies a register
   from its producer's finish to just past its last consumer's start. *)
let produces_register_value g v =
  match Graph.op g v with
  | Op.Const _ | Op.Store | Op.Output _ -> false
  | _ -> Graph.out_degree g v > 0

let intervals schedule =
  let g = Schedule.graph schedule in
  let result =
    Graph.fold_vertices
      (fun acc v ->
        if produces_register_value g v then begin
          let birth = Schedule.finish schedule v in
          let death =
            Graph.fold_succs
              (fun acc c -> max acc (Schedule.start schedule c + 1))
              (birth + 1) g v
          in
          { producer = v; birth; death } :: acc
        end
        else acc)
      [] g
  in
  List.sort
    (fun a b -> compare (a.birth, a.producer) (b.birth, b.producer))
    result

let pressure schedule =
  let horizon = max (Schedule.length schedule + 1) 1 in
  let counts = Array.make horizon 0 in
  List.iter
    (fun { birth; death; _ } ->
      for cycle = birth to min (death - 1) (horizon - 1) do
        counts.(cycle) <- counts.(cycle) + 1
      done)
    (intervals schedule);
  counts

let max_pressure schedule = Array.fold_left max 0 (pressure schedule)

let live_at schedule ~cycle =
  List.filter_map
    (fun { producer; birth; death } ->
      if birth <= cycle && cycle < death then Some producer else None)
    (intervals schedule)
