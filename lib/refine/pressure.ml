open Import

let extract state =
  let g = Threaded_graph.graph state in
  let sg = Threaded_graph.state_graph state in
  let n = Graph.n_vertices sg in
  if Threaded_graph.n_scheduled state <> n then
    invalid_arg "Pressure.extract: state not fully scheduled";
  let diameter = Paths.diameter sg in
  let alap = Paths.alap_starts sg ~deadline:diameter in
  let starts = Array.make n (-1) in
  let placed v = starts.(v) >= 0 in
  let finish v = starts.(v) + Graph.delay sg v in
  (* how many of v's graph operands die if v is placed now: operand p
     dies when every consumer of p is placed (v being the last) *)
  let kills v =
    Graph.fold_preds
      (fun acc p ->
        if
          Lifetime.produces_register_value g p
          && not (Graph.exists_succ (fun c -> c <> v && not (placed c)) g p)
        then acc + 1
        else acc)
      0 g v
  in
  let births v = if Lifetime.produces_register_value g v then 1 else 0 in
  let unplaced = ref n in
  let cycle = ref 0 in
  while !unplaced > 0 do
    let c = !cycle in
    if c > diameter then failwith "Pressure.extract: ran past the deadline";
    let progress = ref true in
    while !progress do
      progress := false;
      Graph.iter_vertices
        (fun v ->
          if not (placed v) then begin
            let ready =
              not
                (Graph.exists_pred
                   (fun p -> (not (placed p)) || finish p > c)
                   sg v)
            in
            if ready then begin
              let forced = alap.(v) <= c in
              let frees = kills v >= births v in
              if forced || frees then begin
                starts.(v) <- c;
                decr unplaced;
                progress := true
              end
            end
          end)
        sg
    done;
    incr cycle
  done;
  Schedule.make g ~starts

let max_pressure_of_state state = Lifetime.max_pressure (extract state)
