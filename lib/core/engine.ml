open Import

type capability = Deterministic | Seeded | Anytime | Proves_optimal | Soft_state

let capability_name = function
  | Deterministic -> "deterministic"
  | Seeded -> "seeded"
  | Anytime -> "anytime"
  | Proves_optimal -> "proves-optimal"
  | Soft_state -> "soft-state"

type ctx = {
  deadline : float option;
  seed : int;
  meta : string;
  budget : int option;
}

let ctx ?deadline ?(seed = 0) ?(meta = "topo") ?budget () =
  { deadline; seed; meta; budget }

let default_ctx = ctx ()

type info = {
  optimal : bool;
  degraded : bool;
  state : Threaded_graph.t option;
}

module type S = sig
  val name : string
  val about : string
  val capabilities : capability list
  val schedule : ctx -> resources:Resources.t -> Graph.t -> Schedule.t * info
end

type engine = (module S)

let name (module E : S) = E.name
let about (module E : S) = E.about
let capabilities (module E : S) = E.capabilities

(* -- QoR annotations --------------------------------------------------- *)

type annotations = {
  engine : string;
  csteps : int;
  registers : int;
  wall_s : float;
  optimal : bool;
  degraded : bool;
}

type outcome = {
  schedule : Schedule.t;
  annot : annotations;
  state : Threaded_graph.t option;
}

(* Same liveness convention as Refine.Lifetime (which lib/core cannot
   link against): a register value is born at its producer's finish and
   dies just past its last consumer's start, living at least one cycle;
   constants are hardwired, stores live in memory, outputs and sinks
   produce nothing. Cheap and deterministic — it only has to order
   outcomes, not drive binding. *)
let peak_live g sched =
  let len = Schedule.length sched in
  if len = 0 then 0
  else begin
    let pressure = Array.make (len + 1) 0 in
    Graph.iter_vertices
      (fun v ->
        let produces_register =
          match Graph.op g v with
          | Op.Const _ | Op.Store | Op.Output _ -> false
          | _ -> Graph.succs g v <> []
        in
        if produces_register then begin
          let birth = Schedule.finish sched v in
          let death =
            List.fold_left
              (fun acc s -> max acc (Schedule.start sched s + 1))
              (birth + 1) (Graph.succs g v)
          in
          for c = birth to min (death - 1) len do
            pressure.(c) <- pressure.(c) + 1
          done
        end)
      g;
    Array.fold_left max 0 pressure
  end

let now_s () = float_of_int (Telemetry.now_ns ()) /. 1e9

let run ?(ctx = default_ctx) (module E : S) ~resources g =
  let t0 = now_s () in
  let schedule, info = E.schedule ctx ~resources g in
  let wall_s = now_s () -. t0 in
  {
    schedule;
    annot =
      {
        engine = E.name;
        csteps = Schedule.length schedule;
        registers = peak_live g schedule;
        wall_s;
        optimal = info.optimal;
        degraded = info.degraded;
      };
    state = info.state;
  }

let run_traced ?ctx engine ~resources ~sink g =
  Telemetry.with_sink sink (fun () -> run ?ctx engine ~resources g)

let compare_qor a b =
  match compare a.annot.csteps b.annot.csteps with
  | 0 -> (
    match compare a.annot.registers b.annot.registers with
    | 0 -> compare a.annot.wall_s b.annot.wall_s
    | c -> c)
  | c -> c

(* -- registry ---------------------------------------------------------- *)

let registry : engine list ref = ref []

let register (module E : S) =
  if List.exists (fun (module X : S) -> X.name = E.name) !registry then
    invalid_arg ("Engine.register: duplicate engine " ^ E.name);
  registry := !registry @ [ (module E : S) ]

let all () = !registry
let names () = List.map name !registry

let find s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun (module E : S) -> E.name = s) !registry

let of_string s =
  let canonical =
    match String.lowercase_ascii (String.trim s) with
    | "threaded" -> "soft"
    | "sa" | "annealing" -> "anneal"
    | "exact" | "bb" | "exhaustive" -> "bnb"
    | "fds" | "force" -> "force_directed"
    | "ims" | "loop" -> "modulo"
    | other -> other
  in
  match find canonical with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown engine %S (known: %s)" s
         (String.concat ", " (names ())))

(* -- the shared threaded run ------------------------------------------- *)

(* Past the deadline we stop optimising: each remaining operation goes
   to its first feasible position (commit_at keeps the state invariants,
   so the result is still a valid threaded schedule — just not a
   diameter-minimising one). Zero-resource ops have no positions and are
   placed free, same as the normal path. *)
let fast_place st v =
  match Threaded_graph.feasible_positions st v with
  | [] -> Threaded_graph.schedule st v
  | p :: _ -> Threaded_graph.commit_at st v p

let threaded_run ?deadline ?tie ~meta ~resources g =
  let order = meta g in
  let st = Threaded_graph.create g ~resources in
  let degraded = ref false in
  List.iter
    (fun v ->
      if not (Threaded_graph.is_scheduled st v) then
        if !degraded then fast_place st v
        else begin
          (match deadline with
          | Some d when now_s () > d -> degraded := true
          | _ -> ());
          if !degraded then fast_place st v
          else Threaded_graph.schedule ?tie st v
        end)
    order;
  (st, !degraded)

let resolve_meta ~resources name =
  match Meta.of_name ~resources name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: unknown meta %S (expected %s)" name
         (String.concat ", " Meta.names))

(* -- the built-in portfolio -------------------------------------------- *)

module Soft_engine = struct
  let name = "soft"

  let about =
    "the paper's threaded scheduler: online diameter-optimal select over \
     the ctx meta order"

  let capabilities = [ Deterministic; Anytime; Soft_state ]

  let schedule ctx ~resources g =
    let meta = resolve_meta ~resources ctx.meta in
    let st, degraded = threaded_run ?deadline:ctx.deadline ~meta ~resources g in
    ( Threaded_graph.to_schedule st,
      { optimal = false; degraded; state = Some st } )
end

module Naive_engine = struct
  let name = "naive"

  let about =
    "speculative reference select: try every position on a state copy, \
     keep the best (O(|V|^2*|E|))"

  let capabilities = [ Deterministic; Soft_state ]

  let schedule ctx ~resources g =
    let meta = resolve_meta ~resources ctx.meta in
    let st = Naive.run ~meta ~resources g in
    ( Threaded_graph.to_schedule st,
      { optimal = false; degraded = false; state = Some st } )
end

module Search_engine = struct
  let name = "search"

  let about =
    "threaded scheduler under meta-order search: the four standard \
     orders plus seeded random restarts"

  let capabilities = [ Seeded; Soft_state ]

  let schedule ctx ~resources g =
    let restarts = Option.value ~default:16 ctx.budget in
    let st = Search.best_state ~restarts ~seed:ctx.seed ~resources g in
    ( Threaded_graph.to_schedule st,
      { optimal = false; degraded = false; state = Some st } )
end

module Anneal_engine = struct
  let name = "anneal"

  let about =
    "simulated annealing over meta orders and select tie-breaks, \
     seeded; never worse than soft on the topo order"

  let capabilities = [ Seeded; Anytime; Soft_state ]

  let schedule ctx ~resources g =
    let iterations = Option.value ~default:400 ctx.budget in
    let o =
      Anneal.run ~seed:ctx.seed ~iterations ?deadline:ctx.deadline ~resources g
    in
    let st = Threaded_graph.create g ~resources in
    Threaded_graph.schedule_all ~tie:o.Anneal.best_tie st o.Anneal.best_order;
    ( Threaded_graph.to_schedule st,
      { optimal = false; degraded = false; state = Some st } )
end

module List_engine = struct
  let name = "list"
  let about = "traditional list scheduling (critical-path priority)"
  let capabilities = [ Deterministic ]

  let schedule _ctx ~resources g =
    (List_sched.run ~resources g, { optimal = false; degraded = false; state = None })
end

module Fdls_engine = struct
  let name = "fdls"
  let about = "force-directed list scheduling (resource-constrained FDS)"
  let capabilities = [ Deterministic ]

  let schedule _ctx ~resources g =
    (Hard.Fdls.run ~resources g, { optimal = false; degraded = false; state = None })
end

module Fds_engine = struct
  let name = "force_directed"

  let about =
    "Paulin/Knight force-directed scheduling, deadline searched upward \
     from the diameter until the resources fit"

  let capabilities = [ Deterministic ]

  (* FDS is timing-constrained: it meets a deadline and minimises
     concurrency, but nothing forces the peak under the given unit
     counts. Search deadlines upward (each relaxation lowers forces) and
     fall back to list scheduling if even the serial bound never fits —
     totality over arbitrary resource configurations. *)
  let schedule _ctx ~resources g =
    if Graph.n_vertices g = 0 then
      ( Schedule.make g ~starts:[||],
        { optimal = false; degraded = false; state = None } )
    else begin
      let lower = Paths.diameter g in
      let upper =
        max lower (Graph.fold_vertices (fun acc v -> acc + Graph.delay g v) 0 g)
      in
      let rec fit d =
        if d > upper then List_sched.run ~resources g
        else
          let s = Hard.Force_directed.run ~deadline:d g in
          match Schedule.check ~resources s with
          | Ok () -> s
          | Error _ -> fit (d + 1)
      in
      (fit lower, { optimal = false; degraded = false; state = None })
    end
end

module Bnb_engine = struct
  let name = "bnb"

  let about =
    "branch and bound over ready-set subsets with ASAP/ALAP pruning; \
     proves optimality or falls back to the incumbent"

  let capabilities = [ Deterministic; Anytime; Proves_optimal ]

  let schedule ctx ~resources g =
    let node_limit = Option.value ~default:500_000 ctx.budget in
    let should_stop =
      Option.map (fun d () -> now_s () > d) ctx.deadline
    in
    let r = Hard.Exact_bb.run ?should_stop ~node_limit ~resources g in
    ( r.Hard.Exact_bb.schedule,
      { optimal = r.Hard.Exact_bb.optimal; degraded = false; state = None } )
end

let () =
  List.iter register
    [
      (module Soft_engine : S);
      (module Naive_engine : S);
      (module Search_engine : S);
      (module Anneal_engine : S);
      (module List_engine : S);
      (module Fdls_engine : S);
      (module Fds_engine : S);
      (module Bnb_engine : S);
    ]
