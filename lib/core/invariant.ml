open Import

let scheduled_list state =
  List.filter
    (fun v -> Threaded_graph.is_scheduled state v)
    (Graph.vertices (Threaded_graph.graph state))

let check_correctness state =
  let g = Threaded_graph.graph state in
  let reach_g = Reach.of_graph g in
  let state_g = Threaded_graph.state_graph state in
  let reach_s = Reach.of_graph state_g in
  let scheduled = scheduled_list state in
  let bad = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if
            !bad = None && p <> q
            && Reach.precedes reach_g p q
            && not (Reach.precedes reach_s p q)
          then
            bad :=
              Some
                (Printf.sprintf "correctness: %s ≺_G %s but not ≺_S"
                   (Graph.name g p) (Graph.name g q)))
        scheduled)
    scheduled;
  match !bad with None -> Ok () | Some m -> Error m

let check_threaded state =
  let g = Threaded_graph.graph state in
  let seen = Hashtbl.create 64 in
  let bad = ref None in
  let record m = if !bad = None then bad := Some m in
  for k = 0 to Threaded_graph.n_threads state - 1 do
    let members = Threaded_graph.thread_members state k in
    List.iter
      (fun v ->
        if Hashtbl.mem seen v then
          record
            (Printf.sprintf "threaded: %s in more than one thread"
               (Graph.name g v));
        Hashtbl.replace seen v ();
        (match Threaded_graph.thread_of state v with
        | Some k' when k' = k -> ()
        | _ ->
          record
            (Printf.sprintf "threaded: membership of %s inconsistent"
               (Graph.name g v)));
        if not (Threaded_graph.is_scheduled state v) then
          record
            (Printf.sprintf "threaded: %s in a thread but not scheduled"
               (Graph.name g v)))
      members;
    (* Total order within the thread: consecutive members must be
       strictly ordered in the state. *)
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        if not (Threaded_graph.precedes state a b) then
          record
            (Printf.sprintf "threaded: %s does not precede its thread successor %s"
               (Graph.name g a) (Graph.name g b));
        pairs rest
      | [] | [ _ ] -> ()
    in
    pairs members
  done;
  (* Every scheduled resource op is in some thread. *)
  List.iter
    (fun v ->
      let needs_thread =
        Graph.delay g v > 0 && Resources.class_of_op (Graph.op g v) <> None
      in
      if needs_thread && Threaded_graph.thread_of state v = None then
        record
          (Printf.sprintf "threaded: scheduled op %s has no thread"
             (Graph.name g v)))
    (scheduled_list state);
  match !bad with None -> Ok () | Some m -> Error m

let check_acyclic state =
  if Graph.is_dag (Threaded_graph.state_graph state) then Ok ()
  else Error "acyclic: scheduling state contains a cycle"

let check_degree_bound state =
  let g = Threaded_graph.graph state in
  let state_g = Threaded_graph.state_graph state in
  let k = Threaded_graph.n_threads state in
  let in_thread v = Threaded_graph.thread_of state v <> None in
  let bad = ref None in
  List.iter
    (fun v ->
      let count_in_thread fold =
        fold (fun acc p -> if in_thread p then acc + 1 else acc) 0 state_g v
      in
      let pred_threads = count_in_thread Graph.fold_preds in
      let succ_threads = count_in_thread Graph.fold_succs in
      if pred_threads > k || succ_threads > k then
        if !bad = None then
          bad :=
            Some
              (Printf.sprintf
                 "degree: %s has %d thread preds / %d thread succs, K = %d"
                 (Graph.name g v) pred_threads succ_threads k))
    (scheduled_list state);
  match !bad with None -> Ok () | Some m -> Error m

let check_refines ~reference state =
  let reach_ref = Reach.of_graph reference in
  let state_g = Threaded_graph.state_graph state in
  let reach_s = Reach.of_graph state_g in
  let bad = ref None in
  let n = Graph.n_vertices reference in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if
        !bad = None && p <> q
        && Threaded_graph.is_scheduled state p
        && Threaded_graph.is_scheduled state q
        && Reach.precedes reach_ref p q
        && not (Reach.precedes reach_s p q)
      then
        bad :=
          Some
            (Printf.sprintf "refinement lost: %s ≺ %s of the reference order"
               (Graph.name reference p) (Graph.name reference q))
    done
  done;
  match !bad with None -> Ok () | Some m -> Error m

let check_all state =
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check_acyclic state
  >>= fun () ->
  check_correctness state
  >>= fun () -> check_threaded state >>= fun () -> check_degree_bound state
