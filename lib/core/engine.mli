open Import

(** The scheduler portfolio: every engine in the repo — the paper's
    threaded scheduler, the traditional baselines, and the global
    optimisers it is compared against — behind one first-class
    signature and a registry, so the CLI, the serving layer and the
    bench can treat "which scheduler" as a parameter.

    An engine maps [(resources, graph)] to a hard {!Schedule.t} under a
    shared context (soft deadline, RNG seed, meta-schedule name, search
    budget). {!run} wraps any engine with the QoR annotations the race
    arbiter orders by — control steps, then peak register pressure,
    then wall time — mirroring the flow report's metric priority. *)

(** What an engine promises; surfaced in the README table and the CLI
    engine listing. *)
type capability =
  | Deterministic  (** same input, same schedule — no RNG involved *)
  | Seeded  (** stochastic, reproducible given [ctx.seed] *)
  | Anytime  (** respects [ctx.deadline] by degrading, not failing *)
  | Proves_optimal  (** can return [optimal = true] *)
  | Soft_state
      (** returns the threaded scheduling state, so downstream
          refinement can keep mutating the result *)

val capability_name : capability -> string

(** Shared knobs, one record so the signature survives new engines.
    [deadline] is an absolute instant on the [Unix.gettimeofday] scale
    (lib/core reads it through [Telemetry.now_ns], the same clock).
    [meta] names the feeding order for threaded engines; [budget] is
    engine-specific (annealing iterations, branch-and-bound nodes). *)
type ctx = {
  deadline : float option;
  seed : int;
  meta : string;
  budget : int option;
}

val ctx :
  ?deadline:float -> ?seed:int -> ?meta:string -> ?budget:int -> unit -> ctx
(** Defaults: no deadline, [seed = 0], [meta = "topo"], no budget. *)

val default_ctx : ctx

(** What an engine reports alongside the schedule. *)
type info = {
  optimal : bool;  (** proven optimal (exhaustive search completed) *)
  degraded : bool;  (** deadline overran; tail fast-placed *)
  state : Threaded_graph.t option;  (** for [Soft_state] engines *)
}

module type S = sig
  val name : string
  val about : string
  val capabilities : capability list

  val schedule : ctx -> resources:Resources.t -> Graph.t -> Schedule.t * info
  (** May raise on malformed input (cyclic graph, unknown meta); never
      raises merely because the deadline or budget ran out. *)
end

type engine = (module S)

val name : engine -> string
val about : engine -> string
val capabilities : engine -> capability list

(** {2 QoR-annotated runs} *)

type annotations = {
  engine : string;
  csteps : int;  (** schedule length — the Figure 3 quantity *)
  registers : int;  (** peak simultaneously-live values *)
  wall_s : float;
  optimal : bool;
  degraded : bool;
}

type outcome = {
  schedule : Schedule.t;
  annot : annotations;
  state : Threaded_graph.t option;
}

val run : ?ctx:ctx -> engine -> resources:Resources.t -> Graph.t -> outcome
(** Time the engine and annotate its schedule. *)

val run_traced :
  ?ctx:ctx ->
  engine ->
  resources:Resources.t ->
  sink:Telemetry.Sink.t ->
  Graph.t ->
  outcome
(** {!run} with the telemetry sink installed for the duration. *)

val compare_qor : outcome -> outcome -> int
(** The race arbiter's order, matching [Qor.Diff]'s metric priority:
    fewer control steps first, then fewer registers, then less wall
    time. Negative when the first argument wins. *)

val peak_live : Graph.t -> Schedule.t -> int
(** Register-pressure annotation: the maximum number of values live in
    any cycle (a value is live from its producer's finish to its last
    consumer's start; sink values occupy nothing). *)

(** {2 Registry} *)

val register : engine -> unit
(** @raise Invalid_argument on a duplicate name. *)

val all : unit -> engine list
(** Registration order; the built-ins come first, [soft] leading. *)

val names : unit -> string list

val find : string -> engine option
(** Exact (case-insensitive) name lookup — no aliases. *)

val of_string : string -> (engine, string) result
(** The CLI/protocol spelling: canonical names plus the aliases
    [threaded]→[soft], [sa]/[annealing]→[anneal],
    [exact]/[bb]/[exhaustive]→[bnb], [fds]/[force]→[force_directed],
    [ims]/[loop]→[modulo] (registered by [lib/modulo] at startup).
    The error names the known engines. *)

(** {2 The shared threaded run} *)

val threaded_run :
  ?deadline:float ->
  ?tie:Threaded_graph.tie_break ->
  meta:Meta.t ->
  resources:Resources.t ->
  Graph.t ->
  Threaded_graph.t * bool
(** One deadline-degrading pass of the threaded scheduler: feed the
    meta order through {!Threaded_graph.schedule} until the deadline
    passes, then fast-place the tail (first feasible position — still a
    valid threaded schedule). Returns [(state, degraded)]. This is the
    serving layer's scheduling step ([Serve.Service] delegates here),
    kept in lib/core so the [soft] engine and the service are the same
    code path by construction. *)
