open Import

(** The threaded graph — the scheduling state of the paper's threaded
    schedule (Definition 4) and the online scheduler operating on it
    (Algorithm 1).

    The state holds a {e partial order} over the operations scheduled so
    far: operations are partitioned into threads (one per functional
    unit; within a thread the order is total — that is the serialisation
    of the unit) plus {e free} vertices (zero-resource operations such as
    inputs, constants and wire-delay pseudo-ops; each is formally a
    singleton thread). Cross-thread edges are kept {e tight}: for every
    vertex and every foreign thread, at most one incoming edge (from the
    latest required predecessor) and one outgoing edge (to the earliest
    required successor) — Lemma 7's degree bound, which makes labelling
    and therefore each [schedule] call linear.

    Scheduling one operation is [select] (scan every feasible position in
    every compatible thread, pick the one minimising the resulting
    diameter — Definition 5's online-optimality criterion) followed by
    [commit] (splice in, then re-tighten edges per Figure 2).

    Three repairs relative to the paper's pseudo-code are implemented and
    documented in DESIGN.md §2: insertion at the head of a thread is
    allowed, the cost uses the {e new} vertex's delay, and feasibility is
    checked against the state's full partial order (up-set/down-set
    marks), not just the two adjacent positions.

    The input graph may {e grow} after scheduling has started (spill
    code, wire delays, engineering changes): the state lazily extends
    itself, which is precisely the refinement workflow of Figure 1. *)

type t

val create : Graph.t -> resources:Resources.t -> t
(** An empty state over [graph]: one thread per functional unit in
    [resources], no operation scheduled. The graph is captured by
    reference: vertices added to it later become schedulable here. *)

val graph : t -> Graph.t

val n_threads : t -> int

val thread_class : t -> int -> Resources.fu_class

type tie_break =
  [ `First  (** scan order — the paper's strict-improvement rule *)
  | `Balance  (** among cost ties, the thread with the fewest members *)
  | `Pack  (** among cost ties, the fullest thread (frees units) *) ]

val schedule : ?tie:tie_break -> t -> Graph.vertex -> unit
(** Algorithm 1's [schedule]: no-op if already scheduled; otherwise
    selects the diameter-minimising feasible position among compatible
    threads and commits. Definition 5 only constrains the cost, so ties
    are a free design choice ([`First] by default); the tie ablation
    measures the alternatives. Zero-resource operations are placed as
    free vertices. @raise Invalid_argument if the operation's class has
    no thread, or if the vertex is unknown to the graph. *)

val schedule_all : ?tie:tie_break -> t -> Graph.vertex list -> unit
(** Folds {!schedule} over a meta schedule. *)

val is_scheduled : t -> Graph.vertex -> bool
val n_scheduled : t -> int

val thread_of : t -> Graph.vertex -> int option
(** [Some k] for an operation living in thread [k]; [None] for free or
    unscheduled vertices. *)

val thread_members : t -> int -> Graph.vertex list
(** Front-to-back contents of a thread. *)

val diameter : t -> int
(** The paper's [‖S‖]: longest delay-weighted path in the state. This is
    what Definition 5 minimises and Lemma 4 proves monotonic. *)

val state_graph : t -> Graph.t
(** The scheduling state exported as a precedence graph over the
    scheduled vertices (same vertex ids as the input graph; unscheduled
    vertices appear isolated with delay 0). Edges = thread-consecutive
    pairs plus the tightened cross edges. Used by the invariant checker
    and by {!to_schedule}. *)

val precedes : t -> Graph.vertex -> Graph.vertex -> bool
(** [≺_S]: strict precedence between two scheduled vertices in the
    current state. *)

val to_schedule : ?placement:[ `Asap | `Alap ] -> t -> Schedule.t
(** Hard-schedule extraction over the state's partial order — the
    "hard decision … delayed to the desired stage" of the paper. Both
    placements have length {!diameter} and respect the thread
    serialisation, hence the resource bounds. [`Asap] (default) starts
    every operation as early as the order allows; [`Alap] as late —
    useful when register pressure matters (reload code drifts towards
    its consumers). @raise Invalid_argument unless every graph vertex
    is scheduled. *)

val copy : t -> t
(** Deep copy sharing the (mutable) underlying graph — cheap state
    snapshotting for the naive reference scheduler and the tests. *)

type stats = {
  n_scheduled : int;
  n_in_threads : int;
  n_free : int;
  n_state_edges : int;  (** implicit thread edges + explicit cross edges *)
  max_thread_in_degree : int;
      (** over scheduled vertices, counting only predecessors that live
          in threads — Lemma 7 bounds this by K *)
  max_thread_out_degree : int;
  ordered_pairs : int option;
      (** |≺_S| — the softness numerator; [None] unless requested *)
}

val stats : ?with_softness:bool -> t -> stats
(** One pass over the state. [ordered_pairs] costs a from-scratch
    transitive closure of the state graph, so it is only computed when
    [with_softness] is true (default false). *)

val set_reach_mode : [ `Incremental | `Rebuild ] -> unit
(** Process-global policy for keeping the reachability index in step
    with graph mutations. [`Incremental] (default) replays the graph's
    mutation journal into the existing closure; [`Rebuild] recomputes it
    from scratch on every change, the pre-refactor behaviour — kept so
    the benchmark can quantify the difference. Queries are identical in
    both modes. *)

(** {2 Introspection for the reference implementation and the tests} *)

type position = {
  thread : int;
  after : Graph.vertex option;  (** [None] = head of the thread *)
}

val feasible_positions : t -> Graph.vertex -> position list
(** Every position where the vertex could be committed without
    contradicting the state's partial order, in the deterministic scan
    order used by [select]. Empty for zero-resource ops (they have
    exactly one placement: free). *)

val commit_at : t -> Graph.vertex -> position -> unit
(** Force a specific placement (bypasses [select]); used by the naive
    speculative scheduler and by adversarial tests.
    @raise Invalid_argument if the position is infeasible. *)

val predicted_cost : t -> Graph.vertex -> position -> int
(** The select cost of a position: the resulting distance through the
    vertex, [max old-diameter cost] being the resulting diameter
    (Lemmas 5/6). *)
