open Import

(** Meta schedules (Definition 2): the order in which operations are fed
    to the online scheduler. Section 5 evaluates four of them. *)

type t = Graph.t -> Graph.vertex list
(** A meta schedule produces a permutation of the graph's vertices. *)

val dfs : t
(** Meta schedule 1 — depth-first (pre)order. Deliberately
    non-topological in general: children can arrive before unrelated
    ancestors, exercising the online scheduler's order-independence. *)

val topological : t
(** Meta schedule 2 — a topological order. *)

val by_paths : t
(** Meta schedule 3 — partition the operations into paths, feed the
    paths longest-first (each path internally in precedence order). *)

val list_like : resources:Resources.t -> t
(** Meta schedule 4 — the dispatch order of the traditional list
    scheduler under the same resource constraints. *)

val random : seed:int -> t
(** Uniform shuffle — the adversarial order used by the meta-schedule
    ablation and the property tests. *)

val fig3 : resources:Resources.t -> (string * t) list
(** The four paper rows: [("meta sched1", dfs); … ("meta sched4", …)]. *)

val path_partition : Graph.t -> Graph.vertex list list
(** The decomposition behind {!by_paths}: delay-weighted longest
    remaining path, peeled greedily until no vertex is left. Exposed for
    tests (the pieces are disjoint chains covering the graph). *)

val of_name : resources:Resources.t -> string -> t option
(** The CLI/protocol spelling: ["dfs"], ["topo"], ["paths"], ["list"]
    (the last needs [resources]); [None] on anything else. *)

val names : string list
(** The strings {!of_name} accepts, for error messages. *)
