open Import

(** The full threaded scheduler: meta schedule + online threaded graph
    (the paper's procedural schedule, Definition 2). *)

val run :
  ?meta:Meta.t -> ?tie:Threaded_graph.tie_break -> resources:Resources.t ->
  Graph.t -> Threaded_graph.t
(** Builds the scheduling state by feeding every operation, in the meta
    schedule's order (default {!Meta.topological}), to the online
    threaded scheduler. *)

val run_to_schedule :
  ?meta:Meta.t -> ?tie:Threaded_graph.tie_break -> resources:Resources.t ->
  Graph.t -> Schedule.t
(** {!run} followed by hard-schedule extraction. The result is always a
    valid resource-constrained schedule (checked by the test suite). *)

val csteps :
  ?meta:Meta.t -> ?tie:Threaded_graph.tie_break -> resources:Resources.t ->
  Graph.t -> int
(** Number of control steps — the Figure 3 cell value. *)

val run_traced :
  ?meta:Meta.t -> ?tie:Threaded_graph.tie_break -> resources:Resources.t ->
  sink:Telemetry.Sink.t -> Graph.t -> Threaded_graph.t
(** {!run} with [sink] installed for the duration of the call: every
    select scan step, tie-break, commit re-tightening and free placement
    is reported to it (see {!Telemetry}). The schedule produced is
    bit-identical to {!run}'s — telemetry only observes. *)
