open Import

(* One record per graph vertex. [thread = -1] means the vertex is either
   unscheduled or scheduled free (zero-resource); [scheduled]
   disambiguates. [pos] orders vertices within their thread and is
   renumbered after each splice (O(thread length), keeping a schedule
   call linear). [preds]/[succs] hold only the explicit (cross-thread or
   free) edges; consecutive thread members are implicitly ordered via
   [prev]/[next]. *)
type node = {
  mutable scheduled : bool;
  mutable thread : int;
  mutable prev : int;
  mutable next : int;
  mutable pos : int;
  mutable preds : int list;
  mutable succs : int list;
  mutable sdist : int;
  mutable tdist : int;
}

let fresh_node () =
  {
    scheduled = false;
    thread = -1;
    prev = -1;
    next = -1;
    pos = -1;
    preds = [];
    succs = [];
    sdist = 0;
    tdist = 0;
  }

module Vec = Dfg.Vec
module Tel = Telemetry

(* The reachability index and the graph generation it reflects. The box
   is {e shared} between a state and its [copy]-ies (they also share the
   underlying graph): whichever copy syncs first catches the index up,
   and the others see a matching generation. Keeping the generation
   inside the box (not per state) is what makes that safe — journal
   replay, unlike signature comparison, must happen exactly once. *)
type reach_box = { mutable index : Reach.t; mutable gen : int }

type t = {
  graph : Graph.t;
  classes : Resources.fu_class array; (* thread -> its unit class *)
  head : int array; (* thread -> first vertex or -1 *)
  tail : int array;
  nodes : node Vec.t;
  mutable n_scheduled : int;
  reach : reach_box;
}

type position = { thread : int; after : Graph.vertex option }

(* [`Rebuild] restores the pre-incremental behaviour (a from-scratch
   closure whenever the graph changed); it exists so the benchmark can
   measure exactly what the journal replay saves. *)
let reach_mode : [ `Incremental | `Rebuild ] ref = ref `Incremental
let set_reach_mode m = reach_mode := m

let create graph ~resources =
  let classes =
    Array.concat
      (List.map
         (fun (cls, n) -> Array.make n cls)
         (Resources.classes resources))
  in
  let k = Array.length classes in
  {
    graph;
    classes;
    head = Array.make (max k 1) (-1);
    tail = Array.make (max k 1) (-1);
    nodes = Vec.create ~dummy:(fresh_node ()) ();
    n_scheduled = 0;
    reach = { index = Reach.of_graph graph; gen = Graph.generation graph };
  }

let graph t = t.graph
let n_threads t = Array.length t.classes

let thread_class t k =
  if k < 0 || k >= n_threads t then
    invalid_arg (Printf.sprintf "Threaded_graph.thread_class: no thread %d" k);
  t.classes.(k)

(* Exact reachability query on the current graph (not the index): used
   to decide whether a journalled edge removal changed the closure. *)
let graph_reaches g u v =
  let visited = Bytes.make (Graph.n_vertices g) '\000' in
  let queue = Queue.create () in
  Queue.add u queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    Graph.iter_succs
      (fun s ->
        if s = v then found := true
        else if Bytes.get visited s = '\000' then begin
          Bytes.set visited s '\001';
          Queue.add s queue
        end)
      g w
  done;
  !found

let emit_reach_update ~rows ~words ~rebuilt =
  if Tel.enabled () then
    Tel.emit (fun s -> s.Tel.Sink.reach_update ~rows ~words ~rebuilt)

let rebuild_closure t gen =
  let index = Reach.of_graph t.graph in
  let rows, words = Reach.update_stats index in
  t.reach.index <- index;
  t.reach.gen <- gen;
  emit_reach_update ~rows ~words ~rebuilt:true

(* Catch the closure up with the graph's mutation journal. Additions are
   monotone, so [Reach.add_vertex]/[Reach.add_edge] replay them exactly.
   Removals cannot shrink a bitset closure in place; instead, note that
   the replayed index equals the closure of (final graph + the removed
   edges), so it is already exact whenever each removed edge [u -> v]
   is {e covered} — [u] still reaches [v] through the final graph, as
   every rewiring in [Dfg.Mutate] guarantees by construction (the
   replaced edge is bypassed via the inserted vertex). Only an uncovered
   removal forces the old full rebuild. *)
let catch_up_closure t gen =
  let index = t.reach.index in
  let rows0, words0 = Reach.update_stats index in
  let removals = ref [] in
  List.iter
    (fun (m : Graph.mutation) ->
      match m with
      | Graph.Added_vertex v ->
        let v' = Reach.add_vertex index in
        assert (v' = v)
      | Graph.Added_edge (u, v) -> Reach.add_edge index u v
      | Graph.Removed_edge (u, v) -> removals := (u, v) :: !removals)
    (Graph.mutations_since t.graph t.reach.gen);
  let covered (u, v) = graph_reaches t.graph u v in
  if List.for_all covered !removals then begin
    let rows1, words1 = Reach.update_stats index in
    t.reach.gen <- gen;
    emit_reach_update ~rows:(rows1 - rows0) ~words:(words1 - words0)
      ~rebuilt:false
  end
  else rebuild_closure t gen

(* Grow the node store to match the (possibly mutated) graph, and
   refresh the reachability index if the graph changed. *)
let sync t =
  while Vec.length t.nodes < Graph.n_vertices t.graph do
    ignore (Vec.push t.nodes (fresh_node ()))
  done;
  let gen = Graph.generation t.graph in
  if gen <> t.reach.gen then
    match !reach_mode with
    | `Rebuild -> rebuild_closure t gen
    | `Incremental -> catch_up_closure t gen

let node t v =
  if v < 0 || v >= Graph.n_vertices t.graph then
    invalid_arg (Printf.sprintf "Threaded_graph: unknown vertex %d" v);
  sync t;
  Vec.get t.nodes v

let is_scheduled t v = (node t v).scheduled
let n_scheduled t = t.n_scheduled

let thread_of t v =
  let n = node t v in
  if n.scheduled && n.thread >= 0 then Some n.thread else None

let thread_members t k =
  if k < 0 || k >= n_threads t then
    invalid_arg (Printf.sprintf "Threaded_graph.thread_members: no thread %d" k);
  sync t;
  let rec walk v acc =
    if v < 0 then List.rev acc
    else walk (Vec.get t.nodes v).next (v :: acc)
  in
  walk t.head.(k) []

(* State successors/predecessors of a scheduled vertex: the implicit
   thread neighbour plus the explicit cross edges. *)
let state_succs t v =
  let n = Vec.get t.nodes v in
  if n.next >= 0 then n.next :: n.succs else n.succs

let state_preds t v =
  let n = Vec.get t.nodes v in
  if n.prev >= 0 then n.prev :: n.preds else n.preds

let scheduled_vertices t =
  let acc = ref [] in
  for v = Vec.length t.nodes - 1 downto 0 do
    if (Vec.get t.nodes v).scheduled then acc := v :: !acc
  done;
  !acc

(* Forward/backward labelling (the paper's forwardLabel/backwardLabel):
   longest-path distances over the state's partial order, linear in the
   number of state edges thanks to the degree bound. *)
let label t =
  sync t;
  let vertices = scheduled_vertices t in
  let indeg = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace indeg v (List.length (state_preds t v)))
    vertices;
  let queue = Queue.create () in
  List.iter
    (fun v -> if Hashtbl.find indeg v = 0 then Queue.add v queue)
    vertices;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add s queue)
      (state_succs t v)
  done;
  let order = List.rev !order in
  if List.length order <> List.length vertices then
    failwith "Threaded_graph.label: scheduling state contains a cycle";
  List.iter
    (fun v ->
      let n = Vec.get t.nodes v in
      let best =
        List.fold_left
          (fun acc p -> max acc (Vec.get t.nodes p).sdist)
          0 (state_preds t v)
      in
      n.sdist <- best + Graph.delay t.graph v)
    order;
  List.iter
    (fun v ->
      let n = Vec.get t.nodes v in
      let best =
        List.fold_left
          (fun acc s -> max acc (Vec.get t.nodes s).tdist)
          0 (state_succs t v)
      in
      n.tdist <- best + Graph.delay t.graph v)
    (List.rev order)

let diameter t =
  sync t;
  if t.n_scheduled = 0 then 0
  else begin
    label t;
    List.fold_left
      (fun acc v -> max acc (Vec.get t.nodes v).sdist)
      0 (scheduled_vertices t)
  end

let precedes t u v =
  sync t;
  if not ((Vec.get t.nodes u).scheduled && (Vec.get t.nodes v).scheduled)
  then false
  else begin
    (* BFS over state successors. *)
    let visited = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add u queue;
    let found = ref false in
    while not (!found || Queue.is_empty queue) do
      let w = Queue.pop queue in
      List.iter
        (fun s ->
          if s = v then found := true
          else if not (Hashtbl.mem visited s) then begin
            Hashtbl.replace visited s ();
            Queue.add s queue
          end)
        (state_succs t w)
    done;
    !found
  end

let state_graph t =
  sync t;
  let g = Graph.create () in
  Graph.iter_vertices
    (fun v ->
      let scheduled = (Vec.get t.nodes v).scheduled in
      let delay = if scheduled then Graph.delay t.graph v else 0 in
      let op = if scheduled then Graph.op t.graph v else Op.Const 0 in
      let id = Graph.add_vertex g ~delay ~name:(Graph.name t.graph v) op in
      assert (id = v))
    t.graph;
  List.iter
    (fun v ->
      List.iter (fun s -> Graph.add_edge g v s) (state_succs t v))
    (scheduled_vertices t);
  g

(* Edge count and Lemma-7 degree maxima of the current state — shared by
   [stats] and the telemetry end-of-call summary, so the two can never
   disagree. *)
let edge_degree_stats t =
  let scheduled = scheduled_vertices t in
  let in_thread v = (Vec.get t.nodes v).thread >= 0 in
  let n_state_edges =
    List.fold_left
      (fun acc v -> acc + List.length (state_succs t v))
      0 scheduled
  in
  let degree_over select =
    List.fold_left
      (fun acc v ->
        max acc (List.length (List.filter in_thread (select t v))))
      0 scheduled
  in
  (n_state_edges, degree_over state_preds, degree_over state_succs)

(* --- select ------------------------------------------------------- *)

(* Scheduled graph-ancestors / graph-descendants of v (the paper's
   "∀p, p ≺_G v" — the transitive relation, not just direct preds). *)
let scheduled_ancestors t v =
  List.filter
    (fun p -> (Vec.get t.nodes p).scheduled)
    (Reach.ancestors t.reach.index v)

let scheduled_descendants t v =
  List.filter
    (fun q -> (Vec.get t.nodes q).scheduled)
    (Reach.descendants t.reach.index v)

(* Mark the up-set of [sources] (everything ⪯_S some source) walking
   state preds; the down-set walks succs. Returns a membership table. *)
let closure t ~backward sources =
  let mark = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if not (Hashtbl.mem mark v) then begin
        Hashtbl.replace mark v ();
        Queue.add v queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    let neighbours = if backward then state_preds t w else state_succs t w in
    List.iter
      (fun x ->
        if not (Hashtbl.mem mark x) then begin
          Hashtbl.replace mark x ();
          Queue.add x queue
        end)
      neighbours
  done;
  mark

let is_free_op t v =
  Graph.delay t.graph v = 0
  || Resources.class_of_op (Graph.op t.graph v) = None

let allowed_threads t v =
  match Resources.class_of_op (Graph.op t.graph v) with
  | None -> []
  | Some cls ->
    List.filter
      (fun k -> Resources.equal_class t.classes.(k) cls)
      (List.init (n_threads t) Fun.id)

(* All feasible positions with their costs, in deterministic scan order,
   plus the number of slots examined (the Theorem 3 work measure).
   Requires [label] to be fresh; [up]/[down] are the feasibility marks.
   [trace] reports each feasible candidate to the telemetry sink — only
   the [schedule] path sets it, so introspection helpers stay silent. *)
let scan_positions ?(trace = false) t v ~up ~down ~intrinsic_src ~intrinsic_snk =
  let delay_v = Graph.delay t.graph v in
  let result = ref [] in
  let scanned = ref 0 in
  List.iter
    (fun k ->
      (* Position at the head of thread k. *)
      let first = t.head.(k) in
      incr scanned;
      let head_feasible = first < 0 || not (Hashtbl.mem up first) in
      if head_feasible then begin
        let tdist_next =
          if first < 0 then 0 else (Vec.get t.nodes first).tdist
        in
        let cost =
          max 0 intrinsic_src + max tdist_next intrinsic_snk + delay_v
        in
        result := ({ thread = k; after = None }, cost) :: !result;
        if trace then
          Tel.emit (fun s ->
              s.Tel.Sink.candidate ~v ~thread:k ~after:None ~cost)
      end;
      (* Positions after each member. *)
      let rec walk w =
        if w >= 0 then begin
          let nw = Vec.get t.nodes w in
          let next = nw.next in
          incr scanned;
          let feasible =
            (not (Hashtbl.mem down w))
            && (next < 0 || not (Hashtbl.mem up next))
          in
          if feasible then begin
            let tdist_next =
              if next < 0 then 0 else (Vec.get t.nodes next).tdist
            in
            let cost =
              max nw.sdist intrinsic_src
              + max tdist_next intrinsic_snk
              + delay_v
            in
            result := ({ thread = k; after = Some w }, cost) :: !result;
            if trace then
              Tel.emit (fun s ->
                  s.Tel.Sink.candidate ~v ~thread:k ~after:(Some w) ~cost)
          end;
          walk next
        end
      in
      walk t.head.(k))
    (allowed_threads t v);
  (List.rev !result, !scanned)

let select_context t v =
  label t;
  let ancestors = scheduled_ancestors t v in
  let descendants = scheduled_descendants t v in
  let intrinsic_src =
    List.fold_left (fun acc p -> max acc (Vec.get t.nodes p).sdist) 0 ancestors
  in
  let intrinsic_snk =
    List.fold_left
      (fun acc q -> max acc (Vec.get t.nodes q).tdist)
      0 descendants
  in
  let up = closure t ~backward:true ancestors in
  let down = closure t ~backward:false descendants in
  (up, down, intrinsic_src, intrinsic_snk)

let feasible_positions t v =
  sync t;
  if (Vec.get t.nodes v).scheduled then []
  else if is_free_op t v then []
  else begin
    let up, down, intrinsic_src, intrinsic_snk = select_context t v in
    List.map fst
      (fst (scan_positions t v ~up ~down ~intrinsic_src ~intrinsic_snk))
  end

let predicted_cost t v position =
  sync t;
  let up, down, intrinsic_src, intrinsic_snk = select_context t v in
  let costed, _ = scan_positions t v ~up ~down ~intrinsic_src ~intrinsic_snk in
  match List.assoc_opt position costed with
  | Some cost -> cost
  | None -> invalid_arg "Threaded_graph.predicted_cost: infeasible position"

(* --- commit ------------------------------------------------------- *)

let renumber_thread t k =
  let rec walk v i =
    if v >= 0 then begin
      let n = Vec.get t.nodes v in
      n.pos <- i;
      walk n.next (i + 1)
    end
  in
  walk t.head.(k) 0

let add_explicit_edge t p v =
  let np = Vec.get t.nodes p and nv = Vec.get t.nodes v in
  if not (List.mem v np.succs) then begin
    np.succs <- v :: np.succs;
    nv.preds <- p :: nv.preds;
    if Tel.enabled () then
      Tel.emit (fun s -> s.Tel.Sink.edge_added ~src:p ~dst:v)
  end

let remove_explicit_edge t p v =
  let np = Vec.get t.nodes p and nv = Vec.get t.nodes v in
  np.succs <- List.filter (fun x -> x <> v) np.succs;
  nv.preds <- List.filter (fun x -> x <> p) nv.preds;
  if Tel.enabled () then
    Tel.emit (fun s -> s.Tel.Sink.edge_removed ~src:p ~dst:v)

(* p's unique explicit successor living in thread k, if any. *)
let succ_in_thread t p k =
  List.find_opt (fun x -> (Vec.get t.nodes x).thread = k) (Vec.get t.nodes p).succs

let pred_in_thread t q k =
  List.find_opt (fun x -> (Vec.get t.nodes x).thread = k) (Vec.get t.nodes q).preds

(* Tighten edges between the freshly placed [v] and one scheduled
   graph-ancestor [p] (Figure 2 (a)(b)(c), with the same-thread-pred
   collapse repair of DESIGN.md §2.4). [k] is v's thread (-1 if free). *)
let link_ancestor t ~v ~k p =
  let np = Vec.get t.nodes p in
  if np.thread = k && k >= 0 then
    (* Same thread: feasibility guaranteed p sits before v; implicit. *)
    ()
  else begin
    let wanted =
      if k < 0 then true
      else
        match succ_in_thread t p k with
        | None -> true
        | Some e ->
          let ne = Vec.get t.nodes e and nv = Vec.get t.nodes v in
          if ne.pos < nv.pos then false (* p -> e -> … -> v implied *)
          else begin
            remove_explicit_edge t p e;
            (* p ≺ e stays implied via p -> v -> … -> e. *)
            true
          end
    in
    if wanted then begin
      (* v keeps at most one explicit pred per foreign thread: the
         latest one. Free preds are never collapsed. *)
      if np.thread >= 0 then begin
        match pred_in_thread t v np.thread with
        | Some p' when p' <> p ->
          let np' = Vec.get t.nodes p' in
          if np'.pos >= np.pos then () (* existing pred is later: keep it *)
          else begin
            remove_explicit_edge t p' v;
            add_explicit_edge t p v
          end
        | Some _ | None -> add_explicit_edge t p v
      end
      else add_explicit_edge t p v
    end
  end

(* Mirror image for a scheduled graph-descendant [q]
   (Figure 2 (d)(e)(f)). *)
let link_descendant t ~v ~k q =
  let nq = Vec.get t.nodes q in
  if nq.thread = k && k >= 0 then ()
  else begin
    let wanted =
      if k < 0 then true
      else
        match pred_in_thread t q k with
        | None -> true
        | Some e ->
          let ne = Vec.get t.nodes e and nv = Vec.get t.nodes v in
          if ne.pos > nv.pos then false (* v -> … -> e -> q implied *)
          else begin
            remove_explicit_edge t e q;
            true
          end
    in
    if wanted then begin
      if nq.thread >= 0 then begin
        match succ_in_thread t v nq.thread with
        | Some q' when q' <> q ->
          let nq' = Vec.get t.nodes q' in
          if nq'.pos <= nq.pos then () (* existing succ is earlier: keep *)
          else begin
            remove_explicit_edge t v q';
            add_explicit_edge t v q
          end
        | Some _ | None -> add_explicit_edge t v q
      end
      else add_explicit_edge t v q
    end
  end

let splice t v { thread = k; after } =
  let nv = Vec.get t.nodes v in
  nv.thread <- k;
  (match after with
  | None ->
    let first = t.head.(k) in
    nv.prev <- -1;
    nv.next <- first;
    if first >= 0 then (Vec.get t.nodes first).prev <- v
    else t.tail.(k) <- v;
    t.head.(k) <- v
  | Some w ->
    let nw = Vec.get t.nodes w in
    if nw.thread <> k then
      invalid_arg "Threaded_graph.splice: anchor not in the target thread";
    let next = nw.next in
    nv.prev <- w;
    nv.next <- next;
    nw.next <- v;
    if next >= 0 then (Vec.get t.nodes next).prev <- v
    else t.tail.(k) <- v);
  renumber_thread t k

let commit t v position =
  let nv = Vec.get t.nodes v in
  splice t v position;
  nv.scheduled <- true;
  t.n_scheduled <- t.n_scheduled + 1;
  let k = position.thread in
  List.iter (fun p -> link_ancestor t ~v ~k p) (scheduled_ancestors t v);
  List.iter (fun q -> link_descendant t ~v ~k q) (scheduled_descendants t v)

let commit_free t v =
  let nv = Vec.get t.nodes v in
  nv.thread <- -1;
  nv.scheduled <- true;
  t.n_scheduled <- t.n_scheduled + 1;
  List.iter (fun p -> link_ancestor t ~v ~k:(-1) p) (scheduled_ancestors t v);
  List.iter (fun q -> link_descendant t ~v ~k:(-1) q) (scheduled_descendants t v)

let commit_at t v position =
  sync t;
  let nv = node t v in
  if nv.scheduled then
    invalid_arg "Threaded_graph.commit_at: vertex already scheduled";
  if is_free_op t v then
    invalid_arg "Threaded_graph.commit_at: zero-resource op is placed free";
  let feasible = feasible_positions t v in
  if not (List.mem position feasible) then
    invalid_arg "Threaded_graph.commit_at: infeasible position";
  commit t v position

type tie_break = [ `First | `Balance | `Pack ]

let thread_population t k =
  let rec walk v acc =
    if v < 0 then acc else walk (Vec.get t.nodes v).next (acc + 1)
  in
  walk t.head.(k) 0

(* End-of-call telemetry summary: O(V+E) recomputation of diameter,
   edge count and degree maxima (plus an optional transitive-closure
   softness sample) — only ever run with a sink installed, never on the
   production path. *)
let emit_schedule_done t ~v ~thread ~scanned ~t0 =
  let diameter = diameter t in
  let state_edges, max_in, max_out = edge_degree_stats t in
  let ordered_pairs =
    if Tel.softness_due () then
      Some (Reach.count_pairs (Reach.of_graph (state_graph t)))
    else None
  in
  let summary =
    {
      Tel.scanned;
      diameter;
      state_edges;
      max_thread_in_degree = max_in;
      max_thread_out_degree = max_out;
      ordered_pairs;
      elapsed_ns = Tel.now_ns () - t0;
    }
  in
  Tel.emit (fun s -> s.Tel.Sink.schedule_done ~v ~thread ~summary)

let tie_rule_name = function
  | `First -> "first"
  | `Balance -> "balance"
  | `Pack -> "pack"

let schedule ?(tie = `First) t v =
  sync t;
  let nv = node t v in
  if not nv.scheduled then begin
    let tel = Tel.enabled () in
    let t0 = if tel then Tel.now_ns () else 0 in
    if tel then
      Tel.emit (fun s ->
          s.Tel.Sink.schedule_start ~v ~name:(Graph.name t.graph v));
    if is_free_op t v then begin
      if tel then
        Tel.emit (fun s ->
            s.Tel.Sink.free_placed ~v ~name:(Graph.name t.graph v));
      commit_free t v;
      if tel then emit_schedule_done t ~v ~thread:None ~scanned:0 ~t0
    end
    else begin
      let up, down, intrinsic_src, intrinsic_snk = select_context t v in
      let costed, scanned =
        scan_positions ~trace:tel t v ~up ~down ~intrinsic_src ~intrinsic_snk
      in
      match costed with
      | [] ->
        invalid_arg
          (Printf.sprintf
             "Threaded_graph.schedule: no thread can execute %s (%s)"
             (Graph.name t.graph v)
             (Op.to_string (Graph.op t.graph v)))
      | (first_pos, first_cost) :: rest ->
        let best_cost =
          List.fold_left (fun acc (_, c) -> min acc c) first_cost rest
        in
        let minima =
          List.filter (fun (_, c) -> c = best_cost)
            ((first_pos, first_cost) :: rest)
        in
        if tel && List.length minima > 1 then
          Tel.emit (fun s ->
              s.Tel.Sink.tie_break ~v ~rule:(tie_rule_name tie)
                ~ties:(List.length minima));
        let best_pos =
          match tie, minima with
          | _, [] -> assert false
          | `First, (p, _) :: _ -> p
          | (`Balance | `Pack), (p0, _) :: rest ->
            let weigh p =
              let population = thread_population t p.thread in
              if tie = `Pack then -population else population
            in
            fst
              (List.fold_left
                 (fun (bp, bw) (p, _) ->
                   let w = weigh p in
                   if w < bw then (p, w) else (bp, bw))
                 (p0, weigh p0) rest)
        in
        if tel then
          Tel.emit (fun s ->
              s.Tel.Sink.chosen ~v ~thread:best_pos.thread
                ~after:best_pos.after ~cost:best_cost);
        commit t v best_pos;
        if tel then
          emit_schedule_done t ~v ~thread:(Some best_pos.thread) ~scanned ~t0
    end
  end

let schedule_all ?tie t order = List.iter (schedule ?tie t) order

(* --- export ------------------------------------------------------- *)

let to_schedule ?(placement = `Asap) t =
  sync t;
  if t.n_scheduled <> Graph.n_vertices t.graph then
    invalid_arg
      (Printf.sprintf
         "Threaded_graph.to_schedule: %d of %d vertices scheduled"
         t.n_scheduled (Graph.n_vertices t.graph));
  label t;
  let dia =
    List.fold_left
      (fun acc v -> max acc (Vec.get t.nodes v).sdist)
      0 (scheduled_vertices t)
  in
  let starts =
    Array.init (Graph.n_vertices t.graph) (fun v ->
        let n = Vec.get t.nodes v in
        match placement with
        | `Asap -> n.sdist - Graph.delay t.graph v
        | `Alap -> dia - n.tdist)
  in
  Schedule.make t.graph ~starts

type stats = {
  n_scheduled : int;
  n_in_threads : int;
  n_free : int;
  n_state_edges : int;
  max_thread_in_degree : int;
  max_thread_out_degree : int;
  ordered_pairs : int option;
}

let stats ?(with_softness = false) t =
  sync t;
  let scheduled = scheduled_vertices t in
  let in_thread v = (Vec.get t.nodes v).thread >= 0 in
  let n_in_threads = List.length (List.filter in_thread scheduled) in
  let n_state_edges, max_thread_in_degree, max_thread_out_degree =
    edge_degree_stats t
  in
  let ordered_pairs =
    if with_softness then
      Some (Reach.count_pairs (Reach.of_graph (state_graph t)))
    else None
  in
  {
    n_scheduled = t.n_scheduled;
    n_in_threads;
    n_free = t.n_scheduled - n_in_threads;
    n_state_edges;
    max_thread_in_degree;
    max_thread_out_degree;
    ordered_pairs;
  }

let copy t =
  sync t;
  let nodes = Vec.create ~capacity:(Vec.length t.nodes) ~dummy:(fresh_node ()) () in
  Vec.iter
    (fun n ->
      ignore
        (Vec.push nodes
           {
             scheduled = n.scheduled;
             thread = n.thread;
             prev = n.prev;
             next = n.next;
             pos = n.pos;
             preds = n.preds;
             succs = n.succs;
             sdist = n.sdist;
             tdist = n.tdist;
           }))
    t.nodes;
  {
    graph = t.graph;
    classes = Array.copy t.classes;
    head = Array.copy t.head;
    tail = Array.copy t.tail;
    nodes;
    n_scheduled = t.n_scheduled;
    reach = t.reach; (* shared box: see its definition *)
  }
