open Import

type t = Graph.t -> Graph.vertex list

let dfs g = Topo.dfs_preorder g

let topological g = Topo.sort g

(* Longest-path peeling: find the maximum delay-weighted path among the
   not-yet-assigned vertices, remove it, repeat. Each pass is a linear
   DP over a topological order of the remaining subgraph. *)
let path_partition g =
  let n = Graph.n_vertices g in
  let assigned = Array.make n false in
  let order = Topo.sort g in
  let paths = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    (* dist.(v): best delay sum of a path of unassigned vertices ending
       at v; choice.(v): predecessor on that path. *)
    let dist = Array.make n min_int in
    let choice = Array.make n (-1) in
    List.iter
      (fun v ->
        if not assigned.(v) then begin
          dist.(v) <- Graph.delay g v;
          Graph.iter_preds
            (fun p ->
              if (not assigned.(p)) && dist.(p) <> min_int then
                if dist.(p) + Graph.delay g v > dist.(v) then begin
                  dist.(v) <- dist.(p) + Graph.delay g v;
                  choice.(v) <- p
                end)
            g v
        end)
      order;
    let best = ref (-1) in
    Array.iteri
      (fun v d ->
        if (not assigned.(v)) && (!best < 0 || d > dist.(!best)) then
          if d <> min_int then best := v)
      dist;
    if !best < 0 then
      (* only isolated assigned vertices remain; cannot happen *)
      failwith "Meta.path_partition: stuck";
    let rec collect v acc =
      if v < 0 then acc else collect choice.(v) (v :: acc)
    in
    let path = collect !best [] in
    List.iter
      (fun v ->
        assigned.(v) <- true;
        decr remaining)
      path;
    paths := path :: !paths
  done;
  (* Peeled longest-first already, but re-sort defensively by total
     delay, longest first, ties by first vertex id for determinism. *)
  let weight path = List.fold_left (fun acc v -> acc + Graph.delay g v) 0 path in
  List.sort
    (fun a b -> compare (-weight a, a) (-weight b, b))
    (List.rev !paths)

let by_paths g = List.concat (path_partition g)

let list_like ~resources g = List_sched.dispatch_order ~resources g

let random ~seed g =
  let rng = Random.State.make [| seed |] in
  let a = Array.of_list (Graph.vertices g) in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let fig3 ~resources =
  [
    ("meta sched1", dfs);
    ("meta sched2", topological);
    ("meta sched3", by_paths);
    ("meta sched4", list_like ~resources);
  ]

(* Name -> meta schedule, the spelling shared by the CLI flags and the
   service protocol. [list] needs the resource configuration, hence the
   label. *)
let of_name ~resources = function
  | "dfs" -> Some dfs
  | "topo" -> Some topological
  | "paths" -> Some by_paths
  | "list" -> Some (list_like ~resources)
  | _ -> None

let names = [ "dfs"; "topo"; "paths"; "list" ]
