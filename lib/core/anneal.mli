open Import

(** Simulated annealing over the threaded scheduler's degrees of
    freedom: the meta schedule (feeding order) and the select
    tie-break. Section 5 concedes that online optimality does not fix
    the global result because the order matters; {!Search} samples the
    order space, this module walks it — accepting uphill moves early
    (temperature) so it escapes the local optima the hill climber gets
    stuck in.

    A move is either a transposition of two positions in the feeding
    order or a tie-break perturbation ([`First]/[`Balance]/[`Pack]);
    each candidate is evaluated by actually running the threaded
    scheduler (one run is near-linear, so the walk is cheap). The walk
    is deterministic given [seed]; a [deadline] cuts it short, trading
    determinism for latency — see DESIGN.md §3f for the contract. *)

type outcome = {
  best_csteps : int;
  best_order : Graph.vertex list;
  best_tie : Threaded_graph.tie_break;
  evaluated : int;  (** scheduler runs performed (including the seed) *)
  accepted : int;  (** proposed moves accepted (uphill ones included) *)
}

val run :
  ?seed:int -> ?iterations:int -> ?deadline:float -> ?init_temp:float ->
  ?cooling:float -> resources:Resources.t -> Graph.t -> outcome
(** Starts from the topological order with the [`First] tie-break (so
    the result is never worse than {!Scheduler.run}'s default),
    proposes [iterations] moves (default 400) with geometric cooling
    ([init_temp] 2.0, [cooling] 0.985), and returns the best
    (order, tie) visited. [deadline] is an absolute instant on the
    [Unix.gettimeofday] scale: once passed, the walk stops after the
    current evaluation. Deterministic given [seed] (default 0) when the
    iteration budget, not the deadline, ends the run. *)

val best_state :
  ?seed:int -> ?iterations:int -> ?deadline:float ->
  resources:Resources.t -> Graph.t -> Threaded_graph.t
(** Re-runs {!run}'s champion (order, tie) and returns the scheduling
    state — the soft result the refinement machinery can keep
    mutating. *)
