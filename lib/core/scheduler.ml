open Import

let run ?(meta = Meta.topological) ?tie ~resources g =
  let state = Threaded_graph.create g ~resources in
  Threaded_graph.schedule_all ?tie state (meta g);
  state

let run_to_schedule ?meta ?tie ~resources g =
  Threaded_graph.to_schedule (run ?meta ?tie ~resources g)

let csteps ?meta ?tie ~resources g =
  Schedule.length (run_to_schedule ?meta ?tie ~resources g)

let run_traced ?meta ?tie ~resources ~sink g =
  Telemetry.with_sink sink (fun () -> run ?meta ?tie ~resources g)
