open Import

type outcome = {
  best_csteps : int;
  best_order : Graph.vertex list;
  best_tie : Threaded_graph.tie_break;
  evaluated : int;
  accepted : int;
}

let now_s () = float_of_int (Telemetry.now_ns ()) /. 1e9

let evaluate ~tie ~resources g order =
  let state = Threaded_graph.create g ~resources in
  Threaded_graph.schedule_all ~tie state order;
  Threaded_graph.diameter state

let ties = [| `First; `Balance; `Pack |]

let run ?(seed = 0) ?(iterations = 400) ?deadline ?(init_temp = 2.0)
    ?(cooling = 0.985) ~resources g =
  let n = Graph.n_vertices g in
  let rng = Random.State.make [| seed; 0x50f7; n |] in
  let order = Array.of_list (Meta.topological g) in
  let tie = ref 0 in
  let cost = ref (evaluate ~tie:ties.(!tie) ~resources g (Array.to_list order)) in
  let best_order = ref (Array.copy order) in
  let best_tie = ref !tie in
  let best = ref !cost in
  let evaluated = ref 1 in
  let accepted = ref 0 in
  let temp = ref init_temp in
  let expired () =
    match deadline with None -> false | Some d -> now_s () > d
  in
  if n >= 2 then begin
    let i = ref 0 in
    while !i < iterations && not (expired ()) do
      incr i;
      (* Propose: mostly order transpositions, occasionally flip the
         select tie-break — both leave the meta schedule legal (any
         permutation is, per Definition 2). *)
      let cand_tie, undo =
        if Random.State.float rng 1.0 < 0.25 then begin
          let t = (!tie + 1 + Random.State.int rng 2) mod 3 in
          (t, fun () -> ())
        end
        else begin
          let a = Random.State.int rng n in
          let b = Random.State.int rng n in
          let va = order.(a) and vb = order.(b) in
          order.(a) <- vb;
          order.(b) <- va;
          (!tie, fun () -> order.(a) <- va; order.(b) <- vb)
        end
      in
      let cand = evaluate ~tie:ties.(cand_tie) ~resources g (Array.to_list order) in
      incr evaluated;
      let delta = cand - !cost in
      let accept =
        delta <= 0
        || Random.State.float rng 1.0 < exp (-.float_of_int delta /. !temp)
      in
      if accept then begin
        incr accepted;
        tie := cand_tie;
        cost := cand;
        if cand < !best then begin
          best := cand;
          best_tie := cand_tie;
          Array.blit order 0 !best_order 0 n
        end
      end
      else undo ();
      temp := Float.max 0.01 (!temp *. cooling)
    done
  end;
  {
    best_csteps = !best;
    best_order = Array.to_list !best_order;
    best_tie = ties.(!best_tie);
    evaluated = !evaluated;
    accepted = !accepted;
  }

let best_state ?seed ?iterations ?deadline ~resources g =
  let o = run ?seed ?iterations ?deadline ~resources g in
  let state = Threaded_graph.create g ~resources in
  Threaded_graph.schedule_all ~tie:o.best_tie state o.best_order;
  state
