(** The scheduling service: request → graph → fingerprint → cache → (on
    a miss) the threaded scheduler.

    [prepare] resolves the design and computes the cache key; [execute]
    consults the cache and schedules on a miss. The split exists so the
    batch runner can dedupe identical requests {e before} fanning out to
    the worker pool. A name-memo short-circuits repeat requests for
    registry benchmarks past graph construction and fingerprinting —
    the warm path is a hash lookup plus rendering.

    Results produced after a deadline overrun ([degraded = true]) are
    never cached.

    The request's [effort] field picks the execution strategy on a
    miss: [Fast] is one threaded-scheduler pass (byte-identical to the
    pre-portfolio service), [Race] fans out to an engine portfolio on a
    private pool and keeps the {!Qor.Diff}-best result, [Exhaustive]
    runs branch and bound. Efforts cache under distinct keys (the fast
    key is unchanged, so persisted caches stay valid), and
    race/exhaustive results are cacheable like any other — only
    degraded ones are not. *)

open Import

type t

val create : ?cache_capacity:int -> ?metrics:Metrics.t -> unit -> t
(** [cache_capacity] defaults to 256 results. [metrics] plugs the
    service into a metrics plane: cache-occupancy gauge updates plus
    lookup/schedule span attribution in {!execute}. Omitting it makes
    every telemetry hook a no-op — results are bit-identical either
    way. *)

val cache_stats : t -> Cache.stats

val metrics : t -> Metrics.t option

val sync_cache_gauge : t -> unit
(** Refresh the metrics plane's cache-occupancy gauge from
    {!cache_stats}; no-op without a metrics plane. *)

val next_trace : t -> prefix:string -> string
(** Monotone per-service trace ids, e.g. [s-000042]. *)

type prepared

val prepare : t -> Protocol.request -> (prepared, string) result
(** Resolve the spec (registry lookup / parse / lower), validate, and
    compute the cache key. Cheap for a warm named design. *)

val key_of : prepared -> string
val request_of : prepared -> Protocol.request

val cached : t -> prepared -> bool
(** Advisory: is the result in cache right now? (Does not touch recency
    or the counters.) *)

type outcome
(** A {!Protocol.result} plus memoized renderings of its response core
    — what the cache stores, so warm responses are a string splice. *)

val result_of : outcome -> Protocol.result

val line :
  ?id:string ->
  trace:string ->
  cached:bool ->
  want_schedule:bool ->
  outcome ->
  string
(** Render the ok response line; byte-identical to {!Protocol.ok_line}
    on [result_of], but reuses the memoized core. *)

val execute :
  ?deadline:float -> ?span:Metrics.span -> t -> prepared -> outcome * bool
(** Returns [(outcome, cached)]. [deadline] is an absolute
    [Unix.gettimeofday] instant: once it passes, the remaining
    operations are fast-placed (first feasible position — still a valid
    threaded schedule, marked [degraded]) instead of diameter-optimised.
    [span] (if given) accumulates the cache-lookup and schedule phase
    durations; timing never changes the result. May raise (scheduler
    errors, evicted-and-unbuildable specs); callers run it under
    {!Pool} which captures exceptions. *)

val schedule_graph :
  ?deadline:float ->
  meta:string ->
  resources:Resources.t ->
  Graph.t ->
  Soft.Threaded_graph.t * bool
(** The scheduling step alone, exposed for the deadline tests:
    [(state, degraded)]. *)

val save_cache : t -> string -> unit
(** Persist the cache as NDJSON ([{"key",…,"result",…}] per line),
    least recently used first; atomic (tmp file + rename). *)

val load_cache : t -> string -> (int, string) result
(** Load a {!save_cache} file (missing file = [Ok 0] entries), restoring
    recency order. [Error] names the first malformed line. *)
