(* Bounded work queue + worker pool over Pool_backend: Domains on
   OCaml 5.x (true parallelism), Threads on 4.14 (concurrency under
   the master lock). Mutex/Condition are domain-safe on 5.x, so the
   queue discipline below is identical on both backends.

   Submission blocks while the queue is at capacity (backpressure
   towards the batch reader rather than unbounded buffering); [offer]
   is the non-blocking variant the daemon's event loop uses — an event
   loop must never sleep on a queue slot, it replies "busy" instead. A
   future can be cancelled while still queued; a job that already
   started always runs to completion — in-flight work is never
   abandoned, which is what makes the daemon's SIGTERM drain exact. *)

type 'a state =
  | Queued of (unit -> 'a)
  | Running
  | Done of ('a, exn) result
  | Cancelled

type 'a future = {
  flock : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type job = Job : 'a future -> job

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : job Queue.t;
  queue_cap : int;
  mutable workers : Pool_backend.handle list;
  mutable draining : bool;
}

let backend = Pool_backend.name
let default_jobs = Pool_backend.default_jobs

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Run one job: claim it (Queued -> Running), execute outside the
   future's lock, publish the result. Cancelled jobs are skipped. *)
let run_job (Job fut) =
  let work =
    with_lock fut.flock (fun () ->
        match fut.state with
        | Queued f ->
          fut.state <- Running;
          Some f
        | Cancelled -> None
        | Running | Done _ -> assert false)
  in
  match work with
  | None -> ()
  | Some f ->
    let result = try Ok (f ()) with e -> Error e in
    with_lock fut.flock (fun () ->
        fut.state <- Done result;
        Condition.broadcast fut.fcond)

let worker pool =
  let rec loop () =
    let job =
      with_lock pool.lock (fun () ->
          let rec wait () =
            if not (Queue.is_empty pool.queue) then begin
              let j = Queue.pop pool.queue in
              Condition.signal pool.not_full;
              Some j
            end
            else if pool.draining then None
            else begin
              Condition.wait pool.not_empty pool.lock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | Some j ->
      run_job j;
      loop ()
    | None -> ()
  in
  loop ()

let create ?queue_cap ~jobs () =
  if jobs <= 0 then invalid_arg "Pool.create: non-positive jobs";
  let queue_cap =
    match queue_cap with
    | Some c when c <= 0 -> invalid_arg "Pool.create: non-positive queue_cap"
    | Some c -> c
    | None -> 4 * jobs
  in
  let pool =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      queue_cap;
      workers = [];
      draining = false;
    }
  in
  pool.workers <-
    List.init jobs (fun _ -> Pool_backend.spawn (fun () -> worker pool));
  pool

let fresh_future f =
  { flock = Mutex.create (); fcond = Condition.create (); state = Queued f }

let try_submit pool f =
  let fut = fresh_future f in
  with_lock pool.lock (fun () ->
      let rec wait () =
        if pool.draining then None
        else if Queue.length pool.queue >= pool.queue_cap then begin
          Condition.wait pool.not_full pool.lock;
          wait ()
        end
        else begin
          Queue.push (Job fut) pool.queue;
          Condition.signal pool.not_empty;
          Some fut
        end
      in
      wait ())

let submit pool f =
  match try_submit pool f with
  | Some fut -> fut
  | None -> invalid_arg "Pool.submit: pool is draining"

(* Non-blocking admission decision for the event loop: a full queue is
   an answer (reply busy with a back-off hint), not a reason to park
   the thread that owns every connection. *)
let offer pool f =
  let fut = fresh_future f in
  with_lock pool.lock (fun () ->
      if pool.draining then `Draining
      else if Queue.length pool.queue >= pool.queue_cap then `Full
      else begin
        Queue.push (Job fut) pool.queue;
        Condition.signal pool.not_empty;
        `Future fut
      end)

(* Observability sample for the metrics plane's queue-depth gauge; the
   value is stale the moment the lock drops, which is fine for a
   gauge. *)
let queue_length pool = with_lock pool.lock (fun () -> Queue.length pool.queue)

let await fut =
  with_lock fut.flock (fun () ->
      let rec wait () =
        match fut.state with
        | Done r -> r
        | Cancelled -> Error (Invalid_argument "Pool.await: job cancelled")
        | Queued _ | Running ->
          Condition.wait fut.fcond fut.flock;
          wait ()
      in
      wait ())

let cancel fut =
  with_lock fut.flock (fun () ->
      match fut.state with
      | Queued _ ->
        fut.state <- Cancelled;
        Condition.broadcast fut.fcond;
        true
      | Running | Done _ | Cancelled -> false)

(* Stop accepting work, let the workers finish everything already
   queued, and join them. Idempotent (joining a joined worker returns
   immediately on the threads backend; the domains backend joins each
   handle exactly once because shutdown runs under the caller's
   discipline of calling it once — the daemon and batch both do). *)
let shutdown pool =
  with_lock pool.lock (fun () ->
      pool.draining <- true;
      Condition.broadcast pool.not_empty;
      Condition.broadcast pool.not_full);
  let workers =
    with_lock pool.lock (fun () ->
        let w = pool.workers in
        pool.workers <- [];
        w)
  in
  List.iter Pool_backend.join workers
