(* OCaml 4.14 pool backend: one Thread per worker. Threads share the
   master lock, so this gives concurrency (I/O overlap) but not
   parallelism — the 4.14 fallback the daemon ran on before domains.
   Copied to pool_backend.ml by a dune rule gated on
   ocaml_version < 5.0.0. *)

type handle = Thread.t

let spawn f = Thread.create f ()
let join = Thread.join
let name = "threads"

(* No Domain.recommended_domain_count before 5.0: count processor
   entries in /proc/cpuinfo, fall back to getconf, then to 1. *)
let cores_from_proc () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> None
  | ic ->
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if
           String.length line >= 9
           && String.sub line 0 9 = "processor"
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then Some !n else None

let cores_from_getconf () =
  match Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" with
  | exception _ -> None
  | ic ->
    let line = try Some (input_line ic) with End_of_file -> None in
    let status = Unix.close_process_in ic in
    (match (status, line) with
    | Unix.WEXITED 0, Some l -> int_of_string_opt (String.trim l)
    | _ -> None)

let default_jobs () =
  let n =
    match cores_from_proc () with
    | Some n -> n
    | None -> ( match cores_from_getconf () with Some n -> n | None -> 1)
  in
  max 1 n
