(** Execution backend for {!Pool}: how worker contexts are spawned and
    joined, selected at build time by the OCaml version.

    On 5.x the implementation is [pool_backend_domains.ml]
    ([Domain.spawn] — true parallelism); on 4.14 it is
    [pool_backend_threads.ml] ([Thread.create] — concurrency under the
    master lock). Both share this interface, and [Mutex]/[Condition]
    are domain-safe on 5.x, so {!Pool} itself is backend-agnostic. *)

type handle
(** A running worker context (a domain or a thread). *)

val spawn : (unit -> unit) -> handle
val join : handle -> unit

val name : string
(** ["domains"] or ["threads"] — surfaced by {!Pool.backend} for logs
    and stats. *)

val default_jobs : unit -> int
(** Detected core count: [Domain.recommended_domain_count] on 5.x;
    [/proc/cpuinfo] (then [getconf _NPROCESSORS_ONLN], then 1) on
    4.14. Always at least 1. *)
