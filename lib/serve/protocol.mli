(** NDJSON request/response vocabulary shared by [softsched batch] and
    [softsched serve]: one JSON object per line, over {!Qor.Json}.

    Requests name a design (benchmark registry name, inline [.dfg]
    text, or inline behavioral source), resources, a meta schedule, an
    optional soft deadline, and whether the full operation schedule
    should be included in the reply. Response lines keep a fixed field
    order so identical requests yield byte-identical lines — the batch
    determinism contract. *)

open Import

type spec =
  | Named of string  (** benchmark registry name, e.g. ["HAL"] *)
  | Inline_dfg of string  (** a [.dfg] document, inline *)
  | Inline_beh of string  (** behavioral source, inline *)

(** The per-request quality/latency knob. [Fast] is the single
    threaded-scheduler pass (the pre-portfolio behavior, byte for
    byte); [Race] fans out to an engine portfolio and keeps the QoR
    winner; [Exhaustive] runs branch and bound to (attempted)
    optimality. *)
type effort = Fast | Race | Exhaustive

val effort_label : effort -> string
(** ["fast"] / ["race"] / ["exhaustive"] — the wire spelling. *)

type request = {
  id : string option;  (** client correlation id, echoed verbatim *)
  spec : spec;
  resources : Resources.t;
  meta : string;
  deadline_ms : float option;
  want_schedule : bool;
  effort : effort;  (** default [Fast] *)
  engines : string list option;
      (** race portfolio override (canonical engine names, aliases
          already resolved); only valid with [effort = Race] *)
}

type slot = {
  vertex : string;
  op : string;
  unit_ : int option;  (** functional-unit thread; [None] = free *)
  step : int;
}

(** A schedule result — what the fingerprint cache stores. *)
type result = {
  fingerprint : string;
  design : string;
  resources_str : string;
  meta : string;
  vertices : int;
  edges : int;
  diameter : int;
  degraded : bool;
  engine : string option;
      (** the engine that produced the schedule; [None] on the fast
          path, so fast responses are byte-identical to pre-portfolio
          output *)
  assignment : slot list;
}

val spec_label : spec -> string
val default_resources : unit -> Resources.t

val request_of_line : string -> (request, string) Result.t
val request_of_json : Json.t -> (request, string) Result.t
val request_to_json : request -> Json.t

(** Out-of-band service introspection on the same NDJSON channel:
    [{"admin":"stats"}] asks the daemon for its metrics snapshot. *)
type admin = Stats

val admin_of_json : Json.t -> ((admin * string option) option, string) Result.t
(** [Ok None] when the object carries no ["admin"] field (a scheduling
    request); [Ok (Some (admin, id))] for a recognised admin request;
    [Error] for an unknown admin verb. *)

val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Result.t

val ok_line :
  ?id:string ->
  trace:string ->
  cached:bool ->
  want_schedule:bool ->
  result ->
  string

val core_fields : want_schedule:bool -> result -> string
(** The result-dependent tail of an ok line (from ["degraded"…] to the
    closing brace). Only depends on the result, so it can be rendered
    once and reused — see {!Service}. *)

val ok_line_with_core :
  ?id:string -> trace:string -> cached:bool -> string -> string
(** Splice a {!core_fields} rendering under a per-request prefix;
    [ok_line] ≡ [ok_line_with_core … (core_fields …)], byte for byte. *)

val error_line :
  ?id:string -> ?retry_after_ms:int -> trace:string -> string -> string
(** [retry_after_ms] adds a back-off hint field — the daemon sets it on
    "server busy" turn-aways so clients don't hot-loop on reconnect. *)

val stats_line : ?id:string -> trace:string -> Json.t -> string
(** The [stats] admin reply: response prefix plus the snapshot as one
    ["stats"] object. *)
