(** Bounded work queue + [Thread]-based worker pool (OCaml 4.14-safe).

    [submit] enqueues a thunk and returns a future; it {e blocks} while
    the queue is at capacity, pushing backpressure to the producer
    instead of buffering without bound. Queued work can be cancelled;
    running work always completes — that guarantee is what makes the
    daemon's SIGTERM drain exact. *)

type t
type 'a future

val create : ?queue_cap:int -> jobs:int -> unit -> t
(** [jobs] worker threads; [queue_cap] defaults to [4 * jobs].
    @raise Invalid_argument on non-positive sizes. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Blocks while the queue is full. @raise Invalid_argument if the pool
    is draining. *)

val try_submit : t -> (unit -> 'a) -> 'a future option
(** Like {!submit} but returns [None] instead of raising when the pool
    is draining (the daemon's "shutting down" reply path). *)

val await : 'a future -> ('a, exn) result
(** Blocks until the job ran (or was cancelled — that surfaces as
    [Error Invalid_argument]). Exceptions raised by the job are
    captured, not re-raised. *)

val queue_length : t -> int
(** Jobs currently waiting (not yet claimed by a worker) — the metrics
    plane's queue-depth gauge. Advisory: stale as soon as it returns. *)

val cancel : 'a future -> bool
(** [true] iff the job was still queued and is now cancelled; a job
    that started (or finished, or was already cancelled) is left
    alone. *)

val shutdown : t -> unit
(** Drain: stop accepting submissions, run everything already queued,
    join the workers. Blocks until done. *)
