(** Bounded work queue + worker pool, parallel on OCaml 5.

    Workers are spawned through {!module:Pool_backend}: one [Domain]
    each on 5.x (true parallelism), one [Thread] each on 4.14 (the
    GIL-bound fallback). {!backend} names the compiled-in choice.

    [submit] enqueues a thunk and returns a future; it {e blocks} while
    the queue is at capacity, pushing backpressure to the producer
    instead of buffering without bound. {!offer} is the non-blocking
    variant for event loops. Queued work can be cancelled; running work
    always completes — that guarantee is what makes the daemon's
    SIGTERM drain exact. *)

type t
type 'a future

val backend : string
(** ["domains"] on OCaml 5.x, ["threads"] on 4.14. *)

val default_jobs : unit -> int
(** Detected core count (≥ 1): [Domain.recommended_domain_count] on
    5.x, [/proc/cpuinfo] / [getconf] on 4.14 — the CLI's default for
    [--jobs]. *)

val create : ?queue_cap:int -> jobs:int -> unit -> t
(** [jobs] workers; [queue_cap] defaults to [4 * jobs].
    @raise Invalid_argument on non-positive sizes. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Blocks while the queue is full. @raise Invalid_argument if the pool
    is draining. *)

val try_submit : t -> (unit -> 'a) -> 'a future option
(** Like {!submit} but returns [None] instead of raising when the pool
    is draining (the daemon's "shutting down" reply path). *)

val offer : t -> (unit -> 'a) -> [ `Draining | `Full | `Future of 'a future ]
(** Non-blocking {!submit}: [`Full] when the queue is at capacity
    (the event loop turns that into a busy reply with a
    [retry_after_ms] hint) and [`Draining] during shutdown. Never
    blocks. *)

val await : 'a future -> ('a, exn) result
(** Blocks until the job ran (or was cancelled — that surfaces as
    [Error Invalid_argument]). Exceptions raised by the job are
    captured, not re-raised. *)

val queue_length : t -> int
(** Jobs currently waiting (not yet claimed by a worker) — the metrics
    plane's queue-depth gauge. Advisory: stale as soon as it returns. *)

val cancel : 'a future -> bool
(** [true] iff the job was still queued and is now cancelled; a job
    that started (or finished, or was already cancelled) is left
    alone. *)

val shutdown : t -> unit
(** Drain: stop accepting submissions, run everything already queued,
    join the workers. Blocks until done. *)
