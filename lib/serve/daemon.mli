(** Event-driven scheduling daemon (Unix socket and/or TCP).

    A single [select]-based event loop owns every connection: per-client
    read/write buffers, NDJSON line framing, and a FIFO of reply slots
    so pipelined requests are answered strictly in request order.
    Scheduling work is offered to a shared {!Pool} (domains on OCaml 5,
    threads on 4.14) without ever blocking the loop — when the pool
    queue is full the client gets an immediate ["server busy"] error
    carrying a [retry_after_ms] back-off hint. Connections beyond
    [max_connections] get the same busy line at accept and are closed.
    The protocol is the NDJSON of {!Protocol}, one request line → one
    response line, with per-request trace ids ([s-000001], …).

    Shutdown ({!stop}) is a {e drain}: the listeners close, no further
    requests are read, and every request already offered to the pool
    completes and gets its response before {!wait} returns. The CLI
    wires SIGTERM/SIGINT to {!stop}. *)

type t

val start :
  Service.t ->
  ?socket:string ->
  ?tcp:string * int ->
  jobs:int ->
  ?max_connections:int ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** Binds the given transports ([socket] replaces any stale socket
    file; [tcp] is [(host, port)], port [0] picks an ephemeral port —
    see {!tcp_port}) and spawns the event loop. At least one transport
    is required. [max_connections] defaults to 32 and is shared across
    transports. [metrics] defaults to the service's plane (so the cache
    gauge and request histograms share one snapshot), or a fresh one if
    the service has none.
    @raise Invalid_argument without any transport.
    @raise Unix.Unix_error if a socket cannot be bound. *)

val stop : t -> unit
(** Begin the drain. Idempotent, safe from a signal handler's thread. *)

val wait : t -> unit
(** Join the event loop and the pool, then remove the socket file.
    Returns only once all in-flight requests have been answered. *)

val socket_path : t -> string option
val tcp_port : t -> int option
(** The bound TCP port (useful with port [0]); [None] without [?tcp]. *)

val metrics : t -> Metrics.t
(** The daemon's metrics plane — the source of the [stats] admin reply
    and the CLI's periodic [--metrics-file] dumps. *)
