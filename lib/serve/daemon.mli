(** Unix-domain-socket scheduling daemon.

    One accept thread, one thread per connection (bounded by
    [max_connections]; excess connections get one ["server busy"] error
    line and are closed), scheduling work routed through a shared
    {!Pool}. The protocol is the NDJSON of {!Protocol}, one request
    line → one response line, with per-request trace ids ([s-000001],
    …).

    Shutdown ({!stop}) is a {e drain}: the listening socket closes,
    blocked readers are unblocked, and every request already in flight
    completes and gets its response before {!wait} returns. The CLI
    wires SIGTERM/SIGINT to {!stop}. *)

type t

val start :
  Service.t ->
  socket:string ->
  jobs:int ->
  ?max_connections:int ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** Binds (replacing any stale socket file), listens, and spawns the
    accept thread. [max_connections] defaults to 32. [metrics] defaults
    to the service's plane (so the cache gauge and request histograms
    share one snapshot), or a fresh one if the service has none.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : t -> unit
(** Begin the drain. Idempotent, safe from a signal handler's thread. *)

val wait : t -> unit
(** Join the accept thread, every connection thread and the pool, then
    remove the socket file. Returns only once all in-flight requests
    have been answered. *)

val socket_path : t -> string

val metrics : t -> Metrics.t
(** The daemon's metrics plane — the source of the [stats] admin reply
    and the CLI's periodic [--metrics-file] dumps. *)
