open Import

(* The service's runtime metrics plane: per-request phase latencies in
   log-bucketed histograms, point-in-time gauges for the pool/daemon/
   cache, cumulative outcome counters, and a threshold-gated slow-
   request log. One mutex guards the lot — recording a finished request
   is six histogram inserts and a few integer bumps under one lock,
   cheap next to the microseconds even a warm request costs.

   Request threads fill in a [span] as the request moves through the
   layers (daemon: parse/queue/emit, service: cache lookup/schedule)
   and hand it to [record] exactly once, so every histogram counts each
   request exactly once and the phase breakdown sums to the work done.

   Snapshots export the same data two ways: a JSON object (the [stats]
   admin reply and [--metrics-file]) and Prometheus text exposition
   ([--metrics-file]'s sibling .prom dump). *)

module H = Telemetry.Histogram
module G = Telemetry.Gauge

(* Per-request phase timings, in nanoseconds. Mutable so each layer adds
   its own phase as the request passes through; the pool future's mutex
   orders the worker's writes before the daemon thread's read. *)
type span = {
  mutable parse_ns : int;  (* NDJSON line -> request *)
  mutable lookup_ns : int;  (* prepare (memo, fingerprint) + cache find *)
  mutable queue_ns : int;  (* pool submit -> job start *)
  mutable schedule_ns : int;  (* the scheduler proper, 0 on a warm hit *)
  mutable emit_ns : int;  (* response rendering *)
  mutable total_ns : int;  (* request wall clock (sum of phases in batch) *)
}

let span () =
  {
    parse_ns = 0;
    lookup_ns = 0;
    queue_ns = 0;
    schedule_ns = 0;
    emit_ns = 0;
    total_ns = 0;
  }

type slow_log = {
  threshold_ms : float;
  slow_oc : out_channel;
  owns_channel : bool;  (* close on re-target; stderr is never closed *)
}

type t = {
  lock : Mutex.t;
  started_at : float;
  (* histograms, one per phase, nanoseconds *)
  h_parse : H.t;
  h_lookup : H.t;
  h_queue : H.t;
  h_schedule : H.t;
  h_emit : H.t;
  h_total : H.t;
  (* gauges *)
  g_queue_depth : G.t;
  g_in_flight : G.t;
  g_connections : G.t;
  g_cache_entries : G.t;
  g_cache_capacity : G.t;
  (* cumulative counters *)
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable cached : int;
  mutable degraded : int;
  mutable busy_turnaways : int;
  mutable slow : int;
  mutable slow_log : slow_log option;
  (* per-engine outcome counters: how often each portfolio engine ran
     to completion, and how often it won a race (the race-win
     histogram). Keyed by canonical engine name. *)
  engine_runs : (string, int) Hashtbl.t;
  race_wins : (string, int) Hashtbl.t;
  mutable races : int;
}

let create () =
  {
    lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    h_parse = H.create ();
    h_lookup = H.create ();
    h_queue = H.create ();
    h_schedule = H.create ();
    h_emit = H.create ();
    h_total = H.create ();
    g_queue_depth = G.create ();
    g_in_flight = G.create ();
    g_connections = G.create ();
    g_cache_entries = G.create ();
    g_cache_capacity = G.create ();
    requests = 0;
    ok = 0;
    errors = 0;
    cached = 0;
    degraded = 0;
    busy_turnaways = 0;
    slow = 0;
    slow_log = None;
    engine_runs = Hashtbl.create 8;
    race_wins = Hashtbl.create 8;
    races = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* -- gauge updates (single word stores; the lock is not needed) ------- *)

let set_pool_queue_depth t n = G.set_int t.g_queue_depth n
let set_connections t n = G.set_int t.g_connections n
let add_in_flight t d = G.add t.g_in_flight (float_of_int d)

let set_cache_occupancy t ~entries ~capacity =
  G.set_int t.g_cache_entries entries;
  G.set_int t.g_cache_capacity capacity

(* -- slow-request log ------------------------------------------------- *)

let close_slow_log_locked t =
  match t.slow_log with
  | Some s ->
    if s.owns_channel then close_out_noerr s.slow_oc else flush s.slow_oc;
    t.slow_log <- None
  | None -> ()

let set_slow_log t ?(threshold_ms = 100.0) target =
  with_lock t (fun () ->
      close_slow_log_locked t;
      let slow_oc, owns_channel =
        match target with
        | `Stderr -> (stderr, false)
        | `File path ->
          (open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path, true)
      in
      t.slow_log <- Some { threshold_ms; slow_oc; owns_channel })

let close_slow_log t = with_lock t (fun () -> close_slow_log_locked t)

let ms ns = float_of_int ns /. 1e6

let slow_line ~trace ~design ~status ~cached ~degraded (sp : span) =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("ts", Json.num (Unix.gettimeofday ()));
         ("trace", Json.str trace);
         ("design", Json.str design);
         ("status", Json.str status);
         ("cached", Json.Bool cached);
         ("degraded", Json.Bool degraded);
         ("total_ms", Json.num (ms sp.total_ns));
         ("parse_ms", Json.num (ms sp.parse_ns));
         ("cache_lookup_ms", Json.num (ms sp.lookup_ns));
         ("queue_ms", Json.num (ms sp.queue_ns));
         ("schedule_ms", Json.num (ms sp.schedule_ns));
         ("emit_ms", Json.num (ms sp.emit_ns));
       ])

(* -- recording -------------------------------------------------------- *)

let record t ~trace ~design ~ok:is_ok ~cached ~degraded (sp : span) =
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      if is_ok then t.ok <- t.ok + 1 else t.errors <- t.errors + 1;
      if cached then t.cached <- t.cached + 1;
      if degraded then t.degraded <- t.degraded + 1;
      H.record t.h_parse sp.parse_ns;
      H.record t.h_lookup sp.lookup_ns;
      H.record t.h_queue sp.queue_ns;
      H.record t.h_schedule sp.schedule_ns;
      H.record t.h_emit sp.emit_ns;
      H.record t.h_total sp.total_ns;
      match t.slow_log with
      | Some s when ms sp.total_ns >= s.threshold_ms ->
        t.slow <- t.slow + 1;
        let line =
          slow_line ~trace ~design
            ~status:(if is_ok then "ok" else "error")
            ~cached ~degraded sp
        in
        output_string s.slow_oc line;
        output_char s.slow_oc '\n';
        flush s.slow_oc
      | Some _ | None -> ())

let turned_away t = with_lock t (fun () -> t.busy_turnaways <- t.busy_turnaways + 1)

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let engine_run t ~engine = with_lock t (fun () -> bump t.engine_runs engine)

let race_win t ~engine =
  with_lock t (fun () ->
      t.races <- t.races + 1;
      bump t.race_wins engine)

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Back-off hint for turned-away clients: the median request latency
   scaled by the work already queued ahead of them. With no history yet
   there is nothing to extrapolate from — suggest a flat 50ms. *)
let retry_after_ms t ~queue_depth =
  with_lock t (fun () ->
      if H.is_empty t.h_total then 50
      else
        let p50_ms = ms (H.percentile t.h_total 50.0) in
        let hint = p50_ms *. float_of_int (queue_depth + 1) in
        let hint = int_of_float (ceil hint) in
        if hint < 25 then 25 else if hint > 5000 then 5000 else hint)

(* -- snapshots -------------------------------------------------------- *)

let phases t =
  [
    ("parse", t.h_parse);
    ("cache_lookup", t.h_lookup);
    ("queue_wait", t.h_queue);
    ("schedule", t.h_schedule);
    ("emit", t.h_emit);
    ("total", t.h_total);
  ]

let histogram_ms_json h =
  Json.Obj
    [
      ("count", Json.int (H.count h));
      ("mean", Json.num (H.mean h /. 1e6));
      ("p50", Json.num (ms (H.percentile h 50.0)));
      ("p90", Json.num (ms (H.percentile h 90.0)));
      ("p95", Json.num (ms (H.percentile h 95.0)));
      ("p99", Json.num (ms (H.percentile h 99.0)));
      ("max", Json.num (ms (H.max_value h)));
    ]

let gauge_json g = Json.num (G.get g)

let snapshot_json ?cache t =
  with_lock t (fun () ->
      let requests =
        Json.Obj
          [
            ("total", Json.int t.requests);
            ("ok", Json.int t.ok);
            ("errors", Json.int t.errors);
            ("cached", Json.int t.cached);
            ("degraded", Json.int t.degraded);
            ("busy_turnaways", Json.int t.busy_turnaways);
            ("slow", Json.int t.slow);
          ]
      in
      let latency =
        Json.Obj
          (List.map (fun (name, h) -> (name, histogram_ms_json h)) (phases t))
      in
      let gauges =
        Json.Obj
          [
            ("pool_queue_depth", gauge_json t.g_queue_depth);
            ("in_flight_requests", gauge_json t.g_in_flight);
            ("connections", gauge_json t.g_connections);
            ("cache_entries", gauge_json t.g_cache_entries);
            ("cache_capacity", gauge_json t.g_cache_capacity);
          ]
      in
      let engines =
        (* Union of the two key sets, sorted, so a race loser that never
           won still shows its run count. *)
        let names =
          List.sort_uniq compare
            (List.map fst (sorted_counts t.engine_runs)
            @ List.map fst (sorted_counts t.race_wins))
        in
        Json.Obj
          (List.map
             (fun name ->
               let count tbl =
                 Option.value ~default:0 (Hashtbl.find_opt tbl name)
               in
               ( name,
                 Json.Obj
                   [
                     ("runs", Json.int (count t.engine_runs));
                     ("race_wins", Json.int (count t.race_wins));
                   ] ))
             names)
      in
      let base =
        [
          ("uptime_s", Json.num (Unix.gettimeofday () -. t.started_at));
          ("requests", requests);
          ("latency_ms", latency);
          ("races", Json.int t.races);
          ("engines", engines);
          ("gauges", gauges);
        ]
      in
      let cache_field =
        match cache with
        | None -> []
        | Some (s : Cache.stats) ->
          [
            ( "cache",
              Json.Obj
                [
                  ("hits", Json.int s.hits);
                  ("misses", Json.int s.misses);
                  ("evictions", Json.int s.evictions);
                  ("entries", Json.int s.length);
                  ("capacity", Json.int s.capacity);
                  ("shards", Json.int s.shards);
                ] );
          ]
      in
      Json.Obj (base @ cache_field))

(* Prometheus text exposition format, one histogram family with a
   [phase] label, buckets in seconds. Cumulative bucket counts walk the
   log buckets in ascending order and close with +Inf == _count, which
   is what makes the output valid for a scraper. *)
let to_prometheus ?cache t =
  with_lock t (fun () ->
      let b = Buffer.create 4096 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      let sec ns = float_of_int ns /. 1e9 in
      line "# HELP softsched_uptime_seconds Seconds since the service started.";
      line "# TYPE softsched_uptime_seconds gauge";
      line "softsched_uptime_seconds %.3f" (Unix.gettimeofday () -. t.started_at);
      let counter name help v =
        line "# HELP %s %s" name help;
        line "# TYPE %s counter" name;
        line "%s %d" name v
      in
      counter "softsched_requests_total" "Requests answered." t.requests;
      counter "softsched_request_errors_total" "Requests answered with an error."
        t.errors;
      counter "softsched_requests_cached_total"
        "Requests served from the fingerprint cache." t.cached;
      counter "softsched_requests_degraded_total"
        "Requests whose deadline overran (fast-placed tail)." t.degraded;
      counter "softsched_busy_turnaways_total"
        "Connections turned away at the connection cap." t.busy_turnaways;
      counter "softsched_slow_requests_total"
        "Requests over the slow-log threshold." t.slow;
      counter "softsched_races_total" "Engine races run." t.races;
      let labelled name help tbl =
        if Hashtbl.length tbl > 0 then begin
          line "# HELP %s %s" name help;
          line "# TYPE %s counter" name;
          List.iter
            (fun (engine, v) -> line "%s{engine=%S} %d" name engine v)
            (sorted_counts tbl)
        end
      in
      labelled "softsched_engine_runs_total"
        "Completed scheduling runs, by engine." t.engine_runs;
      labelled "softsched_race_wins_total"
        "Races won (Qor.Diff order), by engine." t.race_wins;
      let gauge name help g =
        line "# HELP %s %s" name help;
        line "# TYPE %s gauge" name;
        line "%s %g" name (G.get g)
      in
      gauge "softsched_pool_queue_depth" "Jobs waiting in the worker pool."
        t.g_queue_depth;
      gauge "softsched_in_flight_requests" "Requests currently being processed."
        t.g_in_flight;
      gauge "softsched_connections" "Live daemon connections." t.g_connections;
      gauge "softsched_cache_entries" "Fingerprint-cache entries."
        t.g_cache_entries;
      gauge "softsched_cache_capacity" "Fingerprint-cache capacity."
        t.g_cache_capacity;
      (match cache with
      | None -> ()
      | Some (s : Cache.stats) ->
        counter "softsched_cache_hits_total" "Fingerprint-cache hits." s.hits;
        counter "softsched_cache_misses_total" "Fingerprint-cache misses."
          s.misses;
        counter "softsched_cache_evictions_total" "Fingerprint-cache evictions."
          s.evictions);
      line
        "# HELP softsched_request_phase_seconds Per-phase request latency \
         (log-bucketed).";
      line "# TYPE softsched_request_phase_seconds histogram";
      List.iter
        (fun (phase, h) ->
          let cum =
            H.fold_buckets h ~init:0 ~f:(fun cum ~upper ~count ->
                let cum = cum + count in
                line
                  "softsched_request_phase_seconds_bucket{phase=%S,le=\"%.9g\"} \
                   %d"
                  phase (sec upper) cum;
                cum)
          in
          ignore cum;
          line
            "softsched_request_phase_seconds_bucket{phase=%S,le=\"+Inf\"} %d"
            phase (H.count h);
          line "softsched_request_phase_seconds_sum{phase=%S} %.9g" phase
            (sec (H.sum h));
          line "softsched_request_phase_seconds_count{phase=%S} %d" phase
            (H.count h))
        (phases t);
      Buffer.contents b)

(* Human-readable latency table, printed by [batch --stats] and the
   daemon's drain summary. *)
let summary t =
  with_lock t (fun () ->
      let b = Buffer.create 512 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "service metrics: %d requests (%d ok, %d errors, %d cached, %d \
            degraded, %d turned away)"
        t.requests t.ok t.errors t.cached t.degraded t.busy_turnaways;
      if Hashtbl.length t.engine_runs > 0 then
        line "  engines (%d races): %s" t.races
          (String.concat ", "
             (List.map
                (fun (name, runs) ->
                  let wins =
                    Option.value ~default:0 (Hashtbl.find_opt t.race_wins name)
                  in
                  if wins > 0 then
                    Printf.sprintf "%s %d runs (%d wins)" name runs wins
                  else Printf.sprintf "%s %d runs" name runs)
                (sorted_counts t.engine_runs)));
      line "  %-14s %8s %10s %10s %10s %10s" "phase (ms)" "count" "p50" "p90"
        "p99" "max";
      List.iter
        (fun (phase, h) ->
          if not (H.is_empty h) then
            line "  %-14s %8d %10.3f %10.3f %10.3f %10.3f" phase (H.count h)
              (ms (H.percentile h 50.0))
              (ms (H.percentile h 90.0))
              (ms (H.percentile h 99.0))
              (ms (H.max_value h)))
        (phases t);
      Buffer.contents b)
