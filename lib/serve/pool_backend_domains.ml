(* OCaml 5.x pool backend: one Domain per worker. Domains execute in
   parallel (no master lock), which is what lets the scheduler kernel
   use every core. Copied to pool_backend.ml by a dune rule gated on
   ocaml_version >= 5.0.0. *)

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join = Domain.join
let name = "domains"
let default_jobs () = max 1 (Domain.recommended_domain_count ())
