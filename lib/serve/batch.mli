(** NDJSON batch driver: request lines in, response lines out, fanned
    over the worker pool.

    Deterministic by construction: preparation and fingerprinting run
    sequentially in input order, identical requests are deduped onto one
    scheduler run, trace ids are positional ([b-000001], …) and
    responses come back in input order — so the output is byte-identical
    for any [jobs], given the same entry cache state. Blank lines are
    skipped without output. *)

type stats = {
  requests : int;
  hits : int;  (** responses answered from cache (or a batch leader) *)
  degraded : int;
  errors : int;
  wall_s : float;
}

val run_lines :
  ?pool:Pool.t -> Service.t -> jobs:int -> string list -> string list * stats
(** [pool] lends an existing worker pool for the cold fan-out (it is
    not shut down afterwards); by default a private [jobs]-wide pool is
    created and drained per call. The response bytes are identical
    either way.
    @raise Invalid_argument on non-positive [jobs]. *)

val run_channels : Service.t -> jobs:int -> in_channel -> out_channel -> stats
(** Read all request lines from [ic], write response lines to [oc]
    (flushed once at the end). *)

val summary : stats -> string
(** One human line, e.g.
    ["batch: 8 requests, 8 cache hits (100%), 0 degraded, 0 errors, …"]. *)
