open Import

(* Structural fingerprinting of precedence graphs.

   The service keys its result cache on *structure*, not on vertex
   names or insertion order: two clients submitting the same dataflow
   under different labels must share one cache line. Each vertex gets a
   signature by two Weisfeiler–Lehman-style sweeps — a forward hash
   folding (op, delay) with the operand-ordered predecessor signatures
   (operand order is semantic: preds double as the operand list), and a
   backward hash folding the successor signatures commutatively
   (successor order is storage noise). The graph hash combines the
   vertex-signature multiset with an edge term, both order-independent,
   so any isomorphic presentation of the same dataflow hashes equal,
   and any single structural edit moves the hash with overwhelming
   probability (64-bit splitmix mixing). *)

(* splitmix64 finalizer: a cheap full-avalanche 64-bit mixer. *)
let mix (x : int64) : int64 =
  let open Int64 in
  let x = add x 0x9e3779b97f4a7c15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let combine h x = mix (Int64.add (Int64.mul h 0x100000001b3L) x)

let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := combine !h (Int64.of_int (Char.code c)))
    s;
  !h

let vertex_seed g v =
  combine
    (hash_string (Op.to_string (Graph.op g v)))
    (Int64.of_int (Graph.delay g v))

let signatures g =
  let n = Graph.n_vertices g in
  let fwd = Array.make n 0L in
  let order = Topo.sort g in
  (* forward: operand-ordered fold over predecessor signatures *)
  List.iter
    (fun v ->
      let h = ref (vertex_seed g v) in
      Graph.iter_preds (fun p -> h := combine !h fwd.(p)) g v;
      fwd.(v) <- mix !h)
    order;
  (* backward: commutative fold over successor signatures *)
  let bwd = Array.make n 0L in
  List.iter
    (fun v ->
      let h = ref 0L in
      Graph.iter_succs (fun s -> h := Int64.add !h (mix bwd.(s))) g v;
      bwd.(v) <- mix (combine (vertex_seed g v) !h))
    (List.rev order);
  Array.init n (fun v -> mix (combine fwd.(v) bwd.(v)))

let hash g =
  let sigs = signatures g in
  (* Commutative vertex and edge terms: insertion order washes out. *)
  let h = ref (Int64.of_int (Graph.n_vertices g)) in
  Array.iter (fun s -> h := Int64.add !h (mix s)) sigs;
  (* Edges fold the operand slot in, so swapping the operands of a
     non-commutative op moves the hash even between sibling vertices
     with equal signatures. *)
  Graph.iter_vertices
    (fun v ->
      let slot = ref 0 in
      Graph.iter_preds
        (fun p ->
          h :=
            Int64.add !h
              (mix (combine (combine sigs.(p) sigs.(v)) (Int64.of_int !slot)));
          incr slot)
        g v)
    g;
  mix !h

let to_hex h = Printf.sprintf "%016Lx" h

let key ?(meta = "topo") ~resources g =
  Printf.sprintf "%s|%s|%s" (to_hex (hash g)) (Resources.to_string resources)
    meta

(* Canonical serialization: vertices renamed n0, n1, ... in an
   order derived from the signatures (ties broken by original id, which
   cannot change the isomorphism class — tied vertices are
   indistinguishable up to the signature's resolution). The output is a
   valid [Serial] document whose parse is isomorphic to the input. *)
let canonical g =
  let sigs = signatures g in
  let order =
    List.sort
      (fun a b ->
        match Int64.unsigned_compare sigs.(a) sigs.(b) with
        | 0 -> compare a b
        | c -> c)
      (Graph.vertices g)
  in
  let rank = Hashtbl.create (Graph.n_vertices g) in
  List.iteri (fun i v -> Hashtbl.replace rank v i) order;
  let name v = Printf.sprintf "n%d" (Hashtbl.find rank v) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# canonical softsched dataflow graph\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "vertex %s %s %d\n" (name v)
           (Op.to_string (Graph.op g v))
           (Graph.delay g v)))
    order;
  (* Pred edges in operand order (deduplicated: the graph's edge set is
     simple; a pred feeding two operand slots appears once). *)
  List.iter
    (fun v ->
      let seen = Hashtbl.create 4 in
      Graph.iter_preds
        (fun p ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.replace seen p ();
            Buffer.add_string buf
              (Printf.sprintf "edge %s %s\n" (name p) (name v))
          end)
        g v)
    order;
  Buffer.contents buf
