(** Structural fingerprinting of precedence graphs — the cache key of
    the serving layer.

    Two graphs that are isomorphic as labelled DAGs (same ops, delays,
    edges and operand order; vertex {e names} and insertion order
    ignored) produce the same hash; a single structural edit moves it
    with overwhelming probability (64-bit WL-style signature mixing).
    Operand order is part of the structure — it is the operand list of
    non-commutative operations — while successor order is storage noise
    and is folded commutatively. *)

val hash : Dfg.Graph.t -> int64
(** Order-independent structural hash of the whole graph. *)

val signatures : Dfg.Graph.t -> int64 array
(** Per-vertex structural signatures (index = vertex id): forward
    (ancestry, operand-ordered) mixed with backward (posterity,
    commutative). Equal-signature vertices are structurally
    indistinguishable up to the hash's resolution. *)

val to_hex : int64 -> string
(** 16 lowercase hex digits. *)

val key : ?meta:string -> resources:Hard.Resources.t -> Dfg.Graph.t -> string
(** The cache key: [<hash hex>|<resources>|<meta>] — everything the
    schedule result depends on. [meta] defaults to ["topo"]. *)

val canonical : Dfg.Graph.t -> string
(** Canonical {!Dfg.Serial} document: vertices renamed [n0, n1, …] in
    signature order, pred edges emitted in operand order. Parsing it
    back yields a graph isomorphic to the input (with equal {!hash}),
    regardless of the input's names or insertion order. Graphs where
    one predecessor feeds several operand slots of the same vertex are
    outside the serial format's reach (the edge set is simple) — such
    duplicate slots do not survive any [Serial] round trip. *)
