(* Unix-domain-socket daemon: accept loop + one thread per connection,
   scheduling work routed through the shared pool.

   Shutdown is a drain, not an abort: [stop] closes the listening
   socket, shuts down the read side of every live connection (so
   readers see EOF instead of blocking forever) and lets each
   connection thread finish writing the response it is working on.
   Requests already submitted to the pool always complete — that is
   the pool's own guarantee. [wait] joins everything. *)

open Import

type t = {
  service : Service.t;
  pool : Pool.t;
  metrics : Metrics.t;
  lsock : Unix.file_descr;
  socket_path : string;
  max_connections : int;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable conns : (int * Unix.file_descr) list;  (* live connection fds *)
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  mutable accepter : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stopping t = with_lock t.lock (fun () -> t.stopping)

(* One request line -> one response line.

   Admin requests ({"admin":"stats"}) are answered inline from the
   metrics plane and stay out of the request histograms. Scheduling
   requests carry a span: this layer times parse, queue wait and emit;
   [Service.execute] fills in cache lookup and schedule. Every
   scheduling request (error paths included) is recorded exactly
   once. *)
let answer t line =
  let trace = Service.next_trace t.service ~prefix:"s" in
  let m = t.metrics in
  let now = Telemetry.now_ns in
  let sp = Metrics.span () in
  let t0 = now () in
  let record ~design ~ok ~cached ~degraded reply =
    sp.Metrics.total_ns <- now () - t0;
    Metrics.record m ~trace ~design ~ok ~cached ~degraded sp;
    reply
  in
  let fail ?id ~design msg =
    record ~design ~ok:false ~cached:false ~degraded:false
      (Protocol.error_line ?id ~trace msg)
  in
  match Json.parse_result line with
  | Error msg ->
    sp.Metrics.parse_ns <- now () - t0;
    fail ~design:"?" (Printf.sprintf "bad JSON: %s" msg)
  | Ok j -> (
    match Protocol.admin_of_json j with
    | Error msg -> Protocol.error_line ~trace msg
    | Ok (Some (Protocol.Stats, id)) ->
      Service.sync_cache_gauge t.service;
      Metrics.set_pool_queue_depth m (Pool.queue_length t.pool);
      Protocol.stats_line ?id ~trace
        (Metrics.snapshot_json ~cache:(Service.cache_stats t.service) m)
    | Ok None -> (
      match Protocol.request_of_json j with
      | Error msg ->
        sp.Metrics.parse_ns <- now () - t0;
        fail ~design:"?" msg
      | Ok req -> (
        sp.Metrics.parse_ns <- now () - t0;
        let id = req.Protocol.id in
        let design = Protocol.spec_label req.Protocol.spec in
        let t1 = now () in
        match Service.prepare t.service req with
        | Error msg ->
          sp.Metrics.lookup_ns <- now () - t1;
          fail ?id ~design msg
        | Ok prepared -> (
          sp.Metrics.lookup_ns <- now () - t1;
          let deadline =
            Option.map
              (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
              req.Protocol.deadline_ms
          in
          let enqueued = now () in
          match
            Pool.try_submit t.pool (fun () ->
                sp.Metrics.queue_ns <- now () - enqueued;
                Service.execute ?deadline ~span:sp t.service prepared)
          with
          | None -> fail ?id ~design "shutting down"
          | Some fut -> (
            Metrics.set_pool_queue_depth m (Pool.queue_length t.pool);
            match Pool.await fut with
            | Error e -> fail ?id ~design (Printexc.to_string e)
            | Ok (o, cached) ->
              let t2 = now () in
              let reply =
                Service.line ?id ~trace ~cached
                  ~want_schedule:req.Protocol.want_schedule o
              in
              sp.Metrics.emit_ns <- now () - t2;
              let degraded = (Service.result_of o).Protocol.degraded in
              record ~design ~ok:true ~cached ~degraded reply)))))

let serve_connection t (cid, fd) =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    if not (stopping t) then
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | "" -> loop ()
      | line -> (
        let reply =
          Metrics.add_in_flight t.metrics 1;
          Fun.protect
            ~finally:(fun () -> Metrics.add_in_flight t.metrics (-1))
            (fun () -> answer t line)
        in
        match
          output_string oc reply;
          output_char oc '\n';
          flush oc
        with
        | () -> loop ()
        | exception Sys_error _ -> ())
  in
  (try loop () with _ -> ());
  with_lock t.lock (fun () ->
      t.conns <- List.filter (fun (i, _) -> i <> cid) t.conns;
      Metrics.set_connections t.metrics (List.length t.conns));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    let ready =
      (* Poll so a [stop] (which closes lsock) is noticed promptly even
         if no connection ever arrives. *)
      try
        let r, _, _ = Unix.select [ t.lsock ] [] [] 0.2 in
        r <> []
      with Unix.Unix_error _ -> false
    in
    if stopping t then ()
    else if not ready then loop ()
    else
      match Unix.accept t.lsock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> if stopping t then () else loop ()
      | fd, _ ->
        let admitted =
          with_lock t.lock (fun () ->
              if t.stopping || List.length t.conns >= t.max_connections then
                None
              else begin
                let cid = t.next_conn in
                t.next_conn <- cid + 1;
                t.conns <- (cid, fd) :: t.conns;
                Metrics.set_connections t.metrics (List.length t.conns);
                Some cid
              end)
        in
        (match admitted with
        | None ->
          let oc = Unix.out_channel_of_descr fd in
          let trace = Service.next_trace t.service ~prefix:"s" in
          let busy = not (stopping t) in
          (* A turn-away carries a back-off hint scaled by the queue the
             client would have joined, so it doesn't hot-loop on
             reconnect. *)
          let retry_after_ms =
            if busy then begin
              Metrics.turned_away t.metrics;
              Some
                (Metrics.retry_after_ms t.metrics
                   ~queue_depth:(Pool.queue_length t.pool))
            end
            else None
          in
          (try
             output_string oc
               (Protocol.error_line ?retry_after_ms ~trace
                  (if busy then "server busy" else "shutting down"));
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | Some cid ->
          let th = Thread.create (serve_connection t) (cid, fd) in
          with_lock t.lock (fun () ->
              t.conn_threads <- th :: t.conn_threads));
        loop ()
  in
  loop ()

let start service ~socket ~jobs ?(max_connections = 32) ?metrics () =
  if max_connections <= 0 then
    invalid_arg "Daemon.start: non-positive max_connections";
  (if Sys.file_exists socket then
     try Unix.unlink socket with Unix.Unix_error _ -> ());
  let metrics =
    match metrics with
    | Some m -> m
    | None -> (
      (* share the service's plane so the cache gauge and the request
         histograms land in one snapshot *)
      match Service.metrics service with
      | Some m -> m
      | None -> Metrics.create ())
  in
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    {
      service;
      pool = Pool.create ~jobs ();
      metrics;
      lsock;
      socket_path = socket;
      max_connections;
      lock = Mutex.create ();
      stopping = false;
      conns = [];
      conn_threads = [];
      next_conn = 1;
      accepter = None;
    }
  in
  (try
     Unix.bind lsock (Unix.ADDR_UNIX socket);
     Unix.listen lsock 64
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     raise e);
  t.accepter <- Some (Thread.create accept_loop t);
  t

(* Begin the drain: no new connections, readers unblocked. In-flight
   requests keep running; [wait] collects them. Idempotent. *)
let stop t =
  let conns =
    with_lock t.lock (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          t.conns
        end)
  in
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    conns

let wait t =
  (match t.accepter with Some th -> Thread.join th | None -> ());
  let threads = with_lock t.lock (fun () -> t.conn_threads) in
  List.iter Thread.join threads;
  Pool.shutdown t.pool;
  if Sys.file_exists t.socket_path then
    try Unix.unlink t.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let socket_path t = t.socket_path
let metrics t = t.metrics
