(* Event-driven scheduling daemon: one select(2) loop owns every
   connection (Unix socket, TCP, or both); scheduling work is handed to
   the shared pool with a non-blocking [Pool.offer] and replies flow
   back through per-request slots, so no thread is ever parked on a
   client and the pool's workers — domains on OCaml 5 — are the only
   place scheduling runs.

   Per connection the loop keeps a read buffer (NDJSON line framing), a
   write queue, and a FIFO of reply slots: pipelined requests on one
   connection are answered strictly in request order even though the
   pool completes them in any order. Backpressure is explicit at every
   layer — a connection stops being read once its pipeline or write
   queue is deep enough, and a full pool queue turns into an immediate
   ["server busy"] reply carrying a [retry_after_ms] hint instead of a
   blocked submit.

   Shutdown is a drain, not an abort: [stop] raises a flag and pokes
   the loop's self-pipe; the loop closes the listeners, stops reading,
   flushes every reply still owed (requests already offered to the pool
   always complete — that is the pool's own guarantee) and closes each
   connection once it owes nothing. [wait] joins the loop and the
   pool. *)

open Import

let max_pipeline = 128  (* unanswered requests per connection *)
let write_watermark = 4 * 1024 * 1024  (* stop reading above this *)
let max_line = 8 * 1024 * 1024  (* a longer request line is abuse *)

(* A reply slot: the event loop enqueues one per request in arrival
   order; a pool worker (or the inline admin path) publishes the
   rendered line through the Atomic, and the loop drains completed
   slots from the front so responses keep request order. *)
type slot = string option Atomic.t

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read, not yet terminated by '\n' *)
  pending : slot Queue.t;  (* request order; front flushes first *)
  out : string Queue.t;  (* rendered lines awaiting write *)
  mutable wchunk : string;  (* chunk currently being written *)
  mutable woff : int;
  mutable out_bytes : int;  (* wchunk remainder + queued lines *)
  mutable reof : bool;  (* peer closed / read error: no more reads *)
  mutable close_after_flush : bool;
}

type t = {
  service : Service.t;
  pool : Pool.t;
  metrics : Metrics.t;
  listeners : Unix.file_descr list;
  socket_path : string option;
  tcp_port : int option;
  max_connections : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable listeners_open : bool;  (* loop-thread only *)
  mutable conns : conn list;  (* loop-thread only *)
  mutable next_conn : int;  (* loop-thread only *)
  mutable driver : Thread.t option;
}

let stopping t = Atomic.get t.stopping

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

(* -- request execution (pool workers) --------------------------------- *)

(* One scheduling request line -> one response line, run inside a pool
   worker. Admin lines never reach here (the loop answers them
   inline). The span covers the same phases as ever: queue wait is
   line-receipt -> worker start, parse/prepare/lookup/schedule/emit are
   timed here and in [Service.execute]. Every scheduling request
   (error paths included) is recorded exactly once. *)
let answer_request t ~trace ~enqueued line =
  let m = t.metrics in
  let now = Telemetry.now_ns in
  let sp = Metrics.span () in
  let t0 = now () in
  sp.Metrics.queue_ns <- t0 - enqueued;
  let record ~design ~ok ~cached ~degraded reply =
    sp.Metrics.total_ns <- now () - enqueued;
    Metrics.record m ~trace ~design ~ok ~cached ~degraded sp;
    reply
  in
  let fail ?id ~design msg =
    record ~design ~ok:false ~cached:false ~degraded:false
      (Protocol.error_line ?id ~trace msg)
  in
  match Json.parse_result line with
  | Error msg ->
    sp.Metrics.parse_ns <- now () - t0;
    fail ~design:"?" (Printf.sprintf "bad JSON: %s" msg)
  | Ok j -> (
    match Protocol.request_of_json j with
    | Error msg ->
      sp.Metrics.parse_ns <- now () - t0;
      fail ~design:"?" msg
    | Ok req -> (
      sp.Metrics.parse_ns <- now () - t0;
      let id = req.Protocol.id in
      let design = Protocol.spec_label req.Protocol.spec in
      let t1 = now () in
      match Service.prepare t.service req with
      | Error msg ->
        sp.Metrics.lookup_ns <- now () - t1;
        fail ?id ~design msg
      | Ok prepared -> (
        sp.Metrics.lookup_ns <- now () - t1;
        let deadline =
          Option.map
            (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
            req.Protocol.deadline_ms
        in
        match Service.execute ?deadline ~span:sp t.service prepared with
        | exception e -> fail ?id ~design (Printexc.to_string e)
        | o, cached ->
          let t2 = now () in
          let reply =
            Service.line ?id ~trace ~cached
              ~want_schedule:req.Protocol.want_schedule o
          in
          sp.Metrics.emit_ns <- now () - t2;
          let degraded = (Service.result_of o).Protocol.degraded in
          record ~design ~ok:true ~cached ~degraded reply)))

(* -- the event loop (one thread) -------------------------------------- *)

let fill slot reply = Atomic.set slot (Some reply)

let push_reply c line =
  Queue.push line c.out;
  c.out_bytes <- c.out_bytes + String.length line + 1

let stats_reply t ?id ~trace () =
  Service.sync_cache_gauge t.service;
  Metrics.set_pool_queue_depth t.metrics (Pool.queue_length t.pool);
  Protocol.stats_line ?id ~trace
    (Metrics.snapshot_json ~cache:(Service.cache_stats t.service) t.metrics)

(* Classify and dispatch one request line. Admin requests are answered
   inline — they must work even when the pool is saturated, that is
   their point — but still through a slot, so a stats probe pipelined
   behind a scheduling request keeps its place in the response order.
   Everything else (including parse errors) goes to a worker; the
   event loop never parses big payloads. *)
let process_line t c line =
  if line = "" then ()
  else begin
    let trace = Service.next_trace t.service ~prefix:"s" in
    let slot : slot = Atomic.make None in
    Queue.push slot c.pending;
    let admin =
      if String.length line > 512 then None
      else
        match Json.parse_result line with
        | Error _ -> None
        | Ok j -> (
          match Protocol.admin_of_json j with
          | Error msg -> Some (Protocol.error_line ~trace msg)
          | Ok (Some (Protocol.Stats, id)) ->
            Metrics.add_in_flight t.metrics 1;
            let reply =
              Fun.protect
                ~finally:(fun () -> Metrics.add_in_flight t.metrics (-1))
                (fun () -> stats_reply t ?id ~trace ())
            in
            Some reply
          | Ok None -> None)
    in
    match admin with
    | Some reply -> fill slot reply
    | None -> (
      let enqueued = Telemetry.now_ns () in
      Metrics.add_in_flight t.metrics 1;
      match
        Pool.offer t.pool (fun () ->
            let reply =
              try answer_request t ~trace ~enqueued line
              with e -> Protocol.error_line ~trace (Printexc.to_string e)
            in
            fill slot reply;
            Metrics.add_in_flight t.metrics (-1);
            wake t)
      with
      | `Future _ -> Metrics.set_pool_queue_depth t.metrics (Pool.queue_length t.pool)
      | `Full ->
        Metrics.add_in_flight t.metrics (-1);
        Metrics.turned_away t.metrics;
        let retry_after_ms =
          Metrics.retry_after_ms t.metrics
            ~queue_depth:(Pool.queue_length t.pool)
        in
        fill slot (Protocol.error_line ~retry_after_ms ~trace "server busy")
      | `Draining ->
        Metrics.add_in_flight t.metrics (-1);
        fill slot (Protocol.error_line ~trace "shutting down"))
  end

(* Split complete lines out of the read buffer; the tail (no newline
   yet) stays buffered. *)
let drain_rbuf t c =
  let data = Buffer.contents c.rbuf in
  Buffer.clear c.rbuf;
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start <= n - 1 do
       match String.index_from data !start '\n' with
       | exception Not_found ->
         Buffer.add_substring c.rbuf data !start (n - !start);
         start := n
       | nl ->
         let line = String.sub data !start (nl - !start) in
         process_line t c line;
         start := nl + 1
     done
   with e ->
     (* process_line must not kill the loop; drop the connection. *)
     ignore e;
     c.close_after_flush <- true);
  if Buffer.length c.rbuf > max_line then begin
    push_reply c
      (Protocol.error_line
         ~trace:(Service.next_trace t.service ~prefix:"s")
         "request line too long");
    c.reof <- true;
    c.close_after_flush <- true;
    Buffer.clear c.rbuf
  end

let handle_read t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> c.reof <- true
  | 0 -> c.reof <- true
  | n ->
    Buffer.add_subbytes c.rbuf buf 0 n;
    drain_rbuf t c

let handle_write c =
  let progress = ref true in
  (try
     while !progress do
       if c.wchunk = "" then
         if Queue.is_empty c.out then progress := false
         else begin
           c.wchunk <- Queue.pop c.out ^ "\n";
           c.woff <- 0
         end
       else begin
         let remaining = String.length c.wchunk - c.woff in
         let n = Unix.write_substring c.fd c.wchunk c.woff remaining in
         c.woff <- c.woff + n;
         c.out_bytes <- c.out_bytes - n;
         if c.woff >= String.length c.wchunk then begin
           c.wchunk <- "";
           c.woff <- 0
         end
         else progress := false  (* kernel buffer full *)
       end
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ | Sys_error _ ->
    (* Peer went away mid-write: nothing left to flush to them. *)
    c.reof <- true;
    c.close_after_flush <- true;
    c.wchunk <- "";
    c.woff <- 0;
    Queue.clear c.out;
    c.out_bytes <- 0;
    Queue.clear c.pending)

(* Move completed replies (front of the pending FIFO only — order!)
   into the write queue. *)
let promote_ready c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.pending) do
    match Atomic.get (Queue.peek c.pending) with
    | Some reply ->
      ignore (Queue.pop c.pending);
      push_reply c reply
    | None -> continue := false
  done

let has_output c = c.wchunk <> "" || not (Queue.is_empty c.out)

let wants_read t c =
  (not c.reof)
  && (not c.close_after_flush)
  && (not (stopping t))
  && Queue.length c.pending < max_pipeline
  && c.out_bytes < write_watermark

(* A connection is finished once it owes nothing: no reply in flight,
   nothing buffered, and either the peer hung up, we decided to close,
   or we are draining (no further requests will be read). *)
let finished_conn t c =
  Queue.is_empty c.pending
  && (not (has_output c))
  && (c.reof || c.close_after_flush || stopping t)

let close_conn t c =
  t.conns <- List.filter (fun c' -> c'.cid <> c.cid) t.conns;
  Metrics.set_connections t.metrics (List.length t.conns);
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Accept everything ready on a listener. Over the connection cap (or
   while stopping) the client gets one error line and an immediate
   close — written blocking, which is safe for a one-line reply into a
   fresh socket's empty send buffer. *)
let accept_ready t lsock =
  let continue = ref true in
  while !continue do
    match Unix.accept lsock with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      if stopping t || List.length t.conns >= t.max_connections then begin
        let busy = not (stopping t) in
        let trace = Service.next_trace t.service ~prefix:"s" in
        (* A turn-away carries a back-off hint scaled by the queue the
           client would have joined, so it doesn't hot-loop on
           reconnect. *)
        let retry_after_ms =
          if busy then begin
            Metrics.turned_away t.metrics;
            Some
              (Metrics.retry_after_ms t.metrics
                 ~queue_depth:(Pool.queue_length t.pool))
          end
          else None
        in
        let line =
          Protocol.error_line ?retry_after_ms ~trace
            (if busy then "server busy" else "shutting down")
          ^ "\n"
        in
        (try ignore (Unix.write_substring fd line 0 (String.length line))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        let cid = t.next_conn in
        t.next_conn <- cid + 1;
        let c =
          {
            cid;
            fd;
            rbuf = Buffer.create 256;
            pending = Queue.create ();
            out = Queue.create ();
            wchunk = "";
            woff = 0;
            out_bytes = 0;
            reof = false;
            close_after_flush = false;
          }
        in
        t.conns <- c :: t.conns;
        Metrics.set_connections t.metrics (List.length t.conns)
      end
  done

let close_listeners t =
  if t.listeners_open then begin
    t.listeners_open <- false;
    List.iter
      (fun l -> try Unix.close l with Unix.Unix_error _ -> ())
      t.listeners
  end

let event_loop t =
  let rec loop () =
    (* Publish finished work, then reap connections that owe nothing. *)
    List.iter promote_ready t.conns;
    if stopping t then close_listeners t;
    List.iter (fun c -> if finished_conn t c then close_conn t c)
      (List.filter (finished_conn t) t.conns);
    if stopping t && t.conns = [] then close_listeners t
    else begin
      let rds =
        t.wake_r
        :: (if t.listeners_open then t.listeners else [])
        @ List.filter_map
            (fun c -> if wants_read t c then Some c.fd else None)
            t.conns
      in
      let wrs =
        List.filter_map
          (fun c -> if has_output c then Some c.fd else None)
          t.conns
      in
      (match Unix.select rds wrs [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> ()
      | ready_r, ready_w, _ ->
        if List.mem t.wake_r ready_r then begin
          let b = Bytes.create 4096 in
          try ignore (Unix.read t.wake_r b 0 4096)
          with Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun l ->
            if t.listeners_open && List.mem l ready_r then accept_ready t l)
          t.listeners;
        List.iter
          (fun c -> if List.mem c.fd ready_w then handle_write c)
          t.conns;
        List.iter
          (fun c ->
            if (not (stopping t)) && List.mem c.fd ready_r then
              handle_read t c)
          t.conns);
      loop ()
    end
  in
  loop ()

(* -- listeners, lifecycle --------------------------------------------- *)

let unix_listener path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.bind lsock (Unix.ADDR_UNIX path);
    Unix.listen lsock 64;
    Unix.set_nonblock lsock;
    lsock
  with e ->
    (try Unix.close lsock with Unix.Unix_error _ -> ());
    raise e

let tcp_listener host port =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "cannot resolve %s" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
        failwith (Printf.sprintf "cannot resolve %s" host))
  in
  let lsock =
    Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port)))
      Unix.SOCK_STREAM 0
  in
  try
    Unix.setsockopt lsock Unix.SO_REUSEADDR true;
    Unix.bind lsock (Unix.ADDR_INET (addr, port));
    Unix.listen lsock 64;
    Unix.set_nonblock lsock;
    let bound_port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    (lsock, bound_port)
  with e ->
    (try Unix.close lsock with Unix.Unix_error _ -> ());
    raise e

let start service ?socket ?tcp ~jobs ?(max_connections = 32) ?metrics () =
  if max_connections <= 0 then
    invalid_arg "Daemon.start: non-positive max_connections";
  if socket = None && tcp = None then
    invalid_arg "Daemon.start: need a unix socket, a tcp endpoint, or both";
  let metrics =
    match metrics with
    | Some m -> m
    | None -> (
      (* share the service's plane so the cache gauge and the request
         histograms land in one snapshot *)
      match Service.metrics service with
      | Some m -> m
      | None -> Metrics.create ())
  in
  let unix_l = Option.map unix_listener socket in
  let tcp_l =
    match tcp with
    | None -> None
    | Some (host, port) -> (
      try Some (tcp_listener host port)
      with e ->
        (match unix_l with
        | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
        | None -> ());
        raise e)
  in
  let listeners =
    Option.to_list unix_l @ Option.to_list (Option.map fst tcp_l)
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      service;
      pool = Pool.create ~jobs ();
      metrics;
      listeners;
      socket_path = socket;
      tcp_port = Option.map snd tcp_l;
      max_connections;
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      listeners_open = true;
      conns = [];
      next_conn = 1;
      driver = None;
    }
  in
  t.driver <- Some (Thread.create event_loop t);
  t

(* Begin the drain: raise the flag and poke the loop awake. In-flight
   requests keep running; [wait] collects them. Idempotent, safe from
   another thread (the loop owns every fd — nothing is closed here). *)
let stop t =
  Atomic.set t.stopping true;
  wake t

let wait t =
  (match t.driver with Some th -> Thread.join th | None -> ());
  Pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  match t.socket_path with
  | Some p when Sys.file_exists p -> (
    try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Some _ | None -> ()

let socket_path t = t.socket_path
let tcp_port t = t.tcp_port
let metrics t = t.metrics
