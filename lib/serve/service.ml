open Import

let () = Lazy.force extra_engines

(* The scheduling service proper: resolve a request to a graph,
   fingerprint it, consult the LRU cache, and only run the scheduler on
   a miss. A second, cheaper memo maps (design name, resources, meta)
   straight to the cache key so a warm request for a registry benchmark
   skips graph construction *and* fingerprinting — that name-memo is
   what buys the warm-path throughput, since for the paper-sized
   benchmarks fingerprinting costs about as much as scheduling.

   Degraded results (deadline overran, tail fast-placed) are never
   cached: they reflect load at one moment, not the design. *)

(* A result plus lazily memoized renderings of its response core (with
   and without the schedule array). The fields are write-once-per-value
   (every writer computes the same string), so racing writers are
   benign. *)
type outcome = {
  result : Protocol.result;
  mutable core_with : string option;
  mutable core_without : string option;
}

let outcome result = { result; core_with = None; core_without = None }
let result_of o = o.result

let core o ~want_schedule =
  if want_schedule then
    match o.core_with with
    | Some s -> s
    | None ->
      let s = Protocol.core_fields ~want_schedule:true o.result in
      o.core_with <- Some s;
      s
  else
    match o.core_without with
    | Some s -> s
    | None ->
      let s = Protocol.core_fields ~want_schedule:false o.result in
      o.core_without <- Some s;
      s

let line ?id ~trace ~cached ~want_schedule o =
  Protocol.ok_line_with_core ?id ~trace ~cached (core o ~want_schedule)

(* The name-memo is copy-on-write: readers grab the current snapshot
   from the Atomic and look it up lock-free (a published table is never
   mutated again), writers clone-and-replace under [memo_lock]. The
   memo is tiny (one entry per registry design × effort) and writes
   stop once the working set is warm, so cloning is cheap and the warm
   prepare path — the per-request hot path under domains — takes no
   lock at all. *)
type t = {
  cache : outcome Cache.t;
  memo_lock : Mutex.t;
  name_memo : (string, string) Hashtbl.t Atomic.t;
      (* "name|res|meta" -> cache key *)
  trace_lock : Mutex.t;
  mutable traces : int;
  metrics : Metrics.t option;
}

type prepared = {
  req : Protocol.request;
  key : string;
  graph : Graph.t option;  (* None: name-memo hit, cache has the key *)
}

let create ?(cache_capacity = 256) ?metrics () =
  (match metrics with
  | Some m -> Metrics.set_cache_occupancy m ~entries:0 ~capacity:cache_capacity
  | None -> ());
  {
    cache = Cache.create ~capacity:cache_capacity ();
    memo_lock = Mutex.create ();
    name_memo = Atomic.make (Hashtbl.create 64);
    trace_lock = Mutex.create ();
    traces = 0;
    metrics;
  }

let cache_stats t = Cache.stats t.cache
let metrics t = t.metrics

let sync_cache_gauge t =
  match t.metrics with
  | None -> ()
  | Some m ->
    let s = Cache.stats t.cache in
    Metrics.set_cache_occupancy m ~entries:s.Cache.length
      ~capacity:s.Cache.capacity

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let next_trace t ~prefix =
  with_lock t.trace_lock (fun () ->
      t.traces <- t.traces + 1;
      Printf.sprintf "%s-%06d" prefix t.traces)

let key_of p = p.key
let request_of p = p.req

(* Advisory (the entry can be evicted between this and [execute]);
   the batch runner uses it to answer warm requests inline instead of
   paying a worker-pool handoff for a hash lookup. *)
let cached t p = Cache.mem t.cache p.key

(* -- request -> graph ------------------------------------------------- *)

let build_graph spec =
  match spec with
  | Protocol.Named n -> (
    match Suite.find n with
    | entry -> Ok (entry.Suite.build ())
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown design %S (known: %s)" n
           (String.concat ", " (List.map (fun e -> e.Suite.name) Suite.all))))
  | Protocol.Inline_dfg text -> (
    match Serial.of_string text with
    | g -> if Graph.is_dag g then Ok g else Error "inline dfg has a cycle"
    | exception Serial.Parse_error m -> Error (Printf.sprintf "bad dfg: %s" m))
  | Protocol.Inline_beh text -> (
    try Ok (Ir.Lower.of_source text)
    with e -> Error (Printf.sprintf "bad source: %s" (Printexc.to_string e)))

(* Effort variants of one design are distinct cache entries: the fast
   key is the bare fingerprint key (so persisted caches from before the
   portfolio stay valid) and race/exhaustive append a suffix. A race
   over an explicit portfolio keys on the canonical engine list — the
   winner depends on who runs. *)
let effort_suffix (req : Protocol.request) =
  match req.effort with
  | Protocol.Fast -> ""
  | Protocol.Exhaustive -> "|exhaustive"
  | Protocol.Race -> (
    match req.engines with
    | None -> "|race"
    | Some es -> "|race:" ^ String.concat "," es)

let prepare t (req : Protocol.request) =
  let resources_str = Resources.to_string req.resources in
  let suffix = effort_suffix req in
  let name_key =
    match req.spec with
    | Protocol.Named n ->
      Some
        (String.lowercase_ascii n ^ "|" ^ resources_str ^ "|" ^ req.meta
       ^ suffix)
    | Protocol.Inline_dfg _ | Protocol.Inline_beh _ -> None
  in
  let memoised =
    match name_key with
    | None -> None
    | Some nk -> Hashtbl.find_opt (Atomic.get t.name_memo) nk
  in
  match memoised with
  | Some key when Cache.mem t.cache key -> Ok { req; key; graph = None }
  | _ -> (
    match build_graph req.spec with
    | Error _ as e -> e
    | Ok g ->
      let key =
        Fingerprint.key ~meta:req.meta ~resources:req.resources g ^ suffix
      in
      (match name_key with
      | Some nk ->
        with_lock t.memo_lock (fun () ->
            let next = Hashtbl.copy (Atomic.get t.name_memo) in
            Hashtbl.replace next nk key;
            Atomic.set t.name_memo next)
      | None -> ());
      Ok { req; key; graph = Some g })

(* -- scheduling with a soft deadline ---------------------------------- *)

(* The deadline-degrading threaded pass lives in lib/core now
   (Engine.threaded_run) so the fast path here and the portfolio's
   [soft] engine are the same code by construction; this wrapper only
   resolves the meta name. *)
let schedule_graph ?deadline ~meta ~resources g =
  let meta_fn =
    match Meta.of_name ~resources meta with
    | Some m -> m
    | None -> invalid_arg ("Service: unknown meta " ^ meta)
  in
  Engine.threaded_run ?deadline ~meta:meta_fn ~resources g

let result_of_state ~key ~design ~resources ~meta ~degraded st =
  let g = T.graph st in
  let sched = T.to_schedule st in
  let assignment =
    List.map
      (fun v ->
        {
          Protocol.vertex = Graph.name g v;
          op = Op.to_string (Graph.op g v);
          unit_ = T.thread_of st v;
          step = Schedule.start sched v;
        })
      (Graph.vertices g)
  in
  {
    Protocol.fingerprint =
      (match String.index_opt key '|' with
      | Some i -> String.sub key 0 i
      | None -> key);
    design;
    resources_str = Resources.to_string resources;
    meta;
    vertices = Graph.n_vertices g;
    edges = Graph.n_edges g;
    diameter = T.diameter st;
    degraded;
    engine = None;
    assignment;
  }

(* Build a result from an annotated engine outcome (race winner or
   exhaustive run). Thread assignments are only known for soft-state
   engines; for the hard ones the slots carry the step alone, like a
   free placement. *)
let result_of_outcome ~key ~design ~resources ~meta (o : Engine.outcome) =
  let sched = o.Engine.schedule in
  let g = Schedule.graph sched in
  let thread_of v =
    match o.Engine.state with Some st -> T.thread_of st v | None -> None
  in
  let assignment =
    List.map
      (fun v ->
        {
          Protocol.vertex = Graph.name g v;
          op = Op.to_string (Graph.op g v);
          unit_ = thread_of v;
          step = Schedule.start sched v;
        })
      (Graph.vertices g)
  in
  {
    Protocol.fingerprint =
      (match String.index_opt key '|' with
      | Some i -> String.sub key 0 i
      | None -> key);
    design;
    resources_str = Resources.to_string resources;
    meta;
    vertices = Graph.n_vertices g;
    edges = Graph.n_edges g;
    diameter = Schedule.length sched;
    degraded = o.Engine.annot.Engine.degraded;
    engine = Some o.Engine.annot.Engine.engine;
    assignment;
  }

(* -- the cache-or-compute pivot --------------------------------------- *)

let execute ?deadline ?span t p =
  let now = Telemetry.now_ns in
  let add_span f =
    match span with
    | None -> fun _ -> ()
    | Some sp -> fun ns -> f sp ns
  in
  let add_lookup =
    add_span (fun (sp : Metrics.span) ns -> sp.lookup_ns <- sp.lookup_ns + ns)
  in
  let add_schedule =
    add_span (fun (sp : Metrics.span) ns -> sp.schedule_ns <- sp.schedule_ns + ns)
  in
  let t0 = now () in
  match Cache.find t.cache p.key with
  | Some o ->
    add_lookup (now () - t0);
    (o, true)
  | None ->
    add_lookup (now () - t0);
    let t1 = now () in
    let g =
      match p.graph with
      | Some g -> g
      | None -> (
        (* Name-memo said cached, but the entry was evicted between
           prepare and here; rebuild from the registry. *)
        match build_graph p.req.Protocol.spec with
        | Ok g -> g
        | Error m -> failwith m)
    in
    let resources = p.req.Protocol.resources in
    let meta = p.req.Protocol.meta in
    let design = Protocol.spec_label p.req.Protocol.spec in
    let record_engine name =
      match t.metrics with
      | None -> ()
      | Some m -> Metrics.engine_run m ~engine:name
    in
    let result =
      match p.req.Protocol.effort with
      | Protocol.Fast ->
        let st, degraded = schedule_graph ?deadline ~meta ~resources g in
        record_engine "soft";
        result_of_state ~key:p.key ~design ~resources ~meta ~degraded st
      | Protocol.Race ->
        (* The race builds its own private pool: execute already runs
           inside a pool worker (daemon/batch), and fanning out on that
           same pool would deadlock its workers against each other. *)
        let engines =
          match p.req.Protocol.engines with
          | Some names -> List.filter_map Engine.find names
          | None -> Race.default_portfolio ()
        in
        (match Race.run ?deadline ~meta ~engines ~resources g with
        | Error m -> failwith m
        | Ok race ->
          List.iter
            (fun (e : Race.entry) ->
              if Option.is_some e.Race.outcome then
                record_engine e.Race.engine)
            race.Race.entries;
          (match t.metrics with
          | None -> ()
          | Some m ->
            Metrics.race_win m
              ~engine:race.Race.winner.Engine.annot.Engine.engine);
          result_of_outcome ~key:p.key ~design ~resources ~meta
            race.Race.winner)
      | Protocol.Exhaustive ->
        let e =
          match Engine.find "bnb" with
          | Some e -> e
          | None -> failwith "engine bnb is not registered"
        in
        let ctx = Engine.ctx ?deadline ~meta () in
        let o = Engine.run ~ctx e ~resources g in
        record_engine o.Engine.annot.Engine.engine;
        result_of_outcome ~key:p.key ~design ~resources ~meta o
    in
    let o = outcome result in
    if not result.Protocol.degraded then Cache.add t.cache p.key o;
    add_schedule (now () - t1);
    sync_cache_gauge t;
    (o, false)

(* -- cache persistence ------------------------------------------------ *)

(* NDJSON, one {"key","result"} object per line, written least recently
   used first so that reloading (each add refreshes recency) restores
   the exact recency order. The write is atomic: tmp file + rename. *)

let save_cache t path =
  let lines =
    Cache.fold_mru t.cache
      (fun acc key o ->
        Json.to_string ~minify:true
          (Json.Obj
             [
               ("key", Json.str key);
               ("result", Protocol.result_to_json o.result);
             ])
        :: acc)
      []
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  Sys.rename tmp path

let load_cache t path =
  if not (Sys.file_exists path) then Ok 0
  else begin
    let ic = open_in path in
    let rec go n =
      match input_line ic with
      | exception End_of_file -> Ok n
      | "" -> go n
      | line -> (
        match Json.parse_result line with
        | Error m -> Error (Printf.sprintf "cache file line %d: %s" (n + 1) m)
        | Ok j -> (
          match (Json.member "key" j, Json.member "result" j) with
          | Some (Json.Str key), Some rj -> (
            match Protocol.result_of_json rj with
            | Ok r ->
              Cache.add t.cache key (outcome r);
              go (n + 1)
            | Error m ->
              Error (Printf.sprintf "cache file line %d: %s" (n + 1) m))
          | _ ->
            Error
              (Printf.sprintf "cache file line %d: need \"key\" and \"result\""
                 (n + 1))))
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go 0)
  end
