module Graph = Dfg.Graph
module Op = Dfg.Op
module Serial = Dfg.Serial
module Topo = Dfg.Topo
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module Suite = Hls_bench.Suite
module Meta = Soft.Meta
module Engine = Soft.Engine
module T = Soft.Threaded_graph
module Json = Qor.Json

(* The serving layer must see every engine, including the ones whose
   libraries nothing here references by module path. Import itself is
   pure aliases and can be dropped at link time, so the registration
   lives in a value the linked modules pull in: Protocol, Race and
   Service each force [extra_engines] before touching the registry. *)
let extra_engines = lazy (Modulo.Engine.ensure_registered ())
