(* Thread-safe LRU memo of fingerprint key -> schedule result.

   Hashtbl for O(1) lookup plus an intrusive doubly-linked list for
   O(1) recency maintenance; every public operation holds the one
   mutex, so the cache is safe under the worker pool. Hit/miss/evict
   traffic is counted locally (for the service's own summary) and
   mirrored to the telemetry stream when a sink is installed, landing
   in [Telemetry.Counters] next to the scheduler's counters. *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (* towards most-recently-used *)
  mutable next : 'a node option;  (* towards least-recently-used *)
}

type 'a t = {
  lock : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  capacity : int;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: non-positive capacity";
  {
    lock = Mutex.create ();
    table = Hashtbl.create (min capacity 1024);
    capacity;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let tell op key =
  if Telemetry.enabled () then
    Telemetry.emit (fun s -> s.Telemetry.Sink.cache_event ~op ~key)

(* -- intrusive list maintenance (lock held) -------------------------- *)

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.mru;
  n.prev <- None;
  (match c.mru with Some m -> m.prev <- Some n | None -> c.lru <- Some n);
  c.mru <- Some n

let evict_excess c =
  while Hashtbl.length c.table > c.capacity do
    match c.lru with
    | None -> assert false
    | Some n ->
      unlink c n;
      Hashtbl.remove c.table n.key;
      c.evictions <- c.evictions + 1;
      tell `Evict n.key
  done

(* -- public operations ----------------------------------------------- *)

let find c key =
  with_lock c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some n ->
        unlink c n;
        push_front c n;
        c.hits <- c.hits + 1;
        tell `Hit key;
        Some n.value
      | None ->
        c.misses <- c.misses + 1;
        tell `Miss key;
        None)

let add c key value =
  with_lock c (fun () ->
      (match Hashtbl.find_opt c.table key with
      | Some old -> unlink c old; Hashtbl.remove c.table old.key
      | None -> ());
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace c.table key n;
      push_front c n;
      evict_excess c)

let mem c key = with_lock c (fun () -> Hashtbl.mem c.table key)
let length c = with_lock c (fun () -> Hashtbl.length c.table)

let stats c =
  with_lock c (fun () ->
      {
        length = Hashtbl.length c.table;
        capacity = c.capacity;
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
      })

(* Most-recent-first key walk, for the persistence layer and the tests
   (the order *is* the recency order, so saving and reloading preserves
   which entries an over-capacity load would evict). *)
let fold_mru c f acc =
  with_lock c (fun () ->
      let rec walk acc = function
        | None -> acc
        | Some n -> walk (f acc n.key n.value) n.next
      in
      walk acc c.mru)
