(* Sharded, thread-safe LRU memo of fingerprint key -> schedule result.

   The table is split into a power-of-two number of shards selected by
   the key's leading hash digits; each shard is a Hashtbl plus an
   intrusive doubly-linked recency list behind its own mutex, so warm
   lookups for different keys no longer serialize on one global lock.

   Recency is global, not per-shard: every touch stamps the node from
   one atomic tick clock, and eviction removes the minimum-tick node
   across all shards. Observable behaviour (which entry an over-
   capacity add evicts, the fold_mru order, the persistence format) is
   therefore identical to the old single-mutex cache — the QCheck
   oracle in test_serve holds the sharded cache to exactly that.

   Hit/miss/evict traffic is counted per shard (summed by [stats],
   which takes every shard lock for one consistent snapshot) and
   mirrored to the telemetry stream when a sink is installed. *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (* towards most-recently-used *)
  mutable next : 'a node option;  (* towards least-recently-used *)
  mutable tick : int;  (* global recency stamp; higher = more recent *)
}

type 'a shard = {
  lock : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = {
  shards : 'a shard array;
  mask : int;
  capacity : int;  (* global, not per shard *)
  clock : int Atomic.t;
  size : int Atomic.t;  (* total entries across shards *)
}

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  shards : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 16) ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: non-positive capacity";
  if shards <= 0 then invalid_arg "Cache.create: non-positive shards";
  let n = pow2_at_least shards 1 in
  let mk () =
    {
      lock = Mutex.create ();
      table = Hashtbl.create (min (max 16 (capacity / n)) 1024);
      mru = None;
      lru = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  {
    shards = Array.init n (fun _ -> mk ());
    mask = n - 1;
    capacity;
    clock = Atomic.make 0;
    size = Atomic.make 0;
  }

let with_lock (s : 'a shard) f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let tell op key =
  if Telemetry.enabled () then
    Telemetry.emit (fun s -> s.Telemetry.Sink.cache_event ~op ~key)

(* Shard selection by hash prefix: fingerprint keys open with hex
   digits (the fingerprint itself), which are already uniformly
   distributed — read up to eight of them. Keys that don't look like a
   fingerprint fall back to Hashtbl.hash. *)
let shard_of (t : 'a t) key =
  let n = String.length key in
  let limit = if n < 8 then n else 8 in
  let rec hex acc i =
    if i >= limit then (i, acc)
    else
      match key.[i] with
      | '0' .. '9' as c -> hex ((acc lsl 4) lor (Char.code c - 48)) (i + 1)
      | 'a' .. 'f' as c -> hex ((acc lsl 4) lor (Char.code c - 87)) (i + 1)
      | _ -> (i, acc)
  in
  let used, h = hex 0 0 in
  let h = if used = 0 then Hashtbl.hash key else h in
  t.shards.(h land t.mask)

let stamp (t : 'a t) n = n.tick <- Atomic.fetch_and_add t.clock 1

(* -- intrusive list maintenance (shard lock held) -------------------- *)

let unlink (s : 'a shard) n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.mru <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front (s : 'a shard) n =
  n.next <- s.mru;
  n.prev <- None;
  (match s.mru with Some m -> m.prev <- Some n | None -> s.lru <- Some n);
  s.mru <- Some n

(* Evict the globally-least-recent entry: find the shard whose cold
   tail has the minimum tick (peeking each tail under its lock), then
   re-lock that shard and evict — verifying the tail is still the one
   we saw, since a concurrent find may have refreshed it. Retries on a
   lost race; converges because every retry either evicts or observes
   the clock having moved past the stale candidate. *)
let evict_one (t : 'a t) =
  let rec attempt () =
    if Atomic.get t.size <= t.capacity then ()
    else begin
      let best = ref None in
      Array.iter
        (fun s ->
          with_lock s (fun () ->
              match s.lru with
              | None -> ()
              | Some n -> (
                match !best with
                | Some (_, tick) when tick <= n.tick -> ()
                | _ -> best := Some (s, n.tick))))
        t.shards;
      match !best with
      | None -> ()
      | Some (s, tick) ->
        let evicted =
          with_lock s (fun () ->
              match s.lru with
              | Some n when n.tick = tick ->
                unlink s n;
                Hashtbl.remove s.table n.key;
                s.evictions <- s.evictions + 1;
                Atomic.decr t.size;
                Some n.key
              | Some _ | None -> None)
        in
        (match evicted with
        | Some key ->
          tell `Evict key;
          attempt ()  (* keep going while still over capacity *)
        | None -> attempt ())
    end
  in
  attempt ()

(* -- public operations ----------------------------------------------- *)

let find (t : 'a t) key =
  let s = shard_of t key in
  let hit =
    with_lock s (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some n ->
          unlink s n;
          stamp t n;
          push_front s n;
          s.hits <- s.hits + 1;
          Some n.value
        | None ->
          s.misses <- s.misses + 1;
          None)
  in
  (match hit with Some _ -> tell `Hit key | None -> tell `Miss key);
  hit

let add (t : 'a t) key value =
  let s = shard_of t key in
  with_lock s (fun () ->
      (match Hashtbl.find_opt s.table key with
      | Some old ->
        unlink s old;
        Hashtbl.remove s.table old.key;
        Atomic.decr t.size
      | None -> ());
      let n = { key; value; prev = None; next = None; tick = 0 } in
      stamp t n;
      Hashtbl.replace s.table key n;
      push_front s n;
      Atomic.incr t.size);
  if Atomic.get t.size > t.capacity then evict_one t

let mem (t : 'a t) key =
  let s = shard_of t key in
  with_lock s (fun () -> Hashtbl.mem s.table key)

let length (t : 'a t) = Atomic.get t.size

(* One consistent snapshot: hold every shard lock at once (in index
   order, so concurrent stats calls cannot deadlock) while reading the
   counters — a field-by-field read without the locks could pair a hit
   count from before an eviction with a length from after it. *)
let stats (t : 'a t) =
  Array.iter (fun s -> Mutex.lock s.lock) t.shards;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Mutex.unlock s.lock) t.shards)
    (fun () ->
      let length = ref 0
      and hits = ref 0
      and misses = ref 0
      and evictions = ref 0 in
      Array.iter
        (fun s ->
          length := !length + Hashtbl.length s.table;
          hits := !hits + s.hits;
          misses := !misses + s.misses;
          evictions := !evictions + s.evictions)
        t.shards;
      {
        length = !length;
        capacity = t.capacity;
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        shards = Array.length t.shards;
      })

(* Most-recent-first key walk, for the persistence layer and the tests
   (the order *is* the recency order, so saving and reloading preserves
   which entries an over-capacity load would evict). Each shard's list
   is tick-descending by construction; merging on the tick restores the
   global order. Collection holds one shard lock at a time — fine for
   the persistence path, which runs after the pool has drained. *)
let fold_mru (t : 'a t) f acc =
  let entries = ref [] in
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          let rec walk = function
            | None -> ()
            | Some n ->
              entries := (n.tick, n.key, n.value) :: !entries;
              walk n.next
          in
          walk s.mru))
    t.shards;
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) !entries
  in
  List.fold_left (fun acc (_, k, v) -> f acc k v) acc sorted
