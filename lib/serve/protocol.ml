open Import

let () = Lazy.force extra_engines

(* The NDJSON request/response vocabulary of `softsched batch` and
   `softsched serve`: one JSON object per line, field order fixed so
   equal requests produce byte-identical response lines (the batch
   determinism contract). Built on Qor.Json — no external JSON dep. *)

type spec =
  | Named of string  (* benchmark registry name, e.g. "HAL" *)
  | Inline_dfg of string  (* a .dfg document, inline *)
  | Inline_beh of string  (* behavioral source, inline *)

(* The per-request quality/latency knob. [Fast] is the pre-portfolio
   behavior, byte for byte; [Race] fans out to an engine portfolio and
   keeps the QoR winner; [Exhaustive] runs branch and bound. *)
type effort = Fast | Race | Exhaustive

let effort_label = function
  | Fast -> "fast"
  | Race -> "race"
  | Exhaustive -> "exhaustive"

type request = {
  id : string option;  (* client correlation id, echoed verbatim *)
  spec : spec;
  resources : Resources.t;
  meta : string;  (* "dfs" | "topo" | "paths" | "list" *)
  deadline_ms : float option;  (* soft deadline, measured from enqueue *)
  want_schedule : bool;  (* include the op->(thread,step) map? *)
  effort : effort;
  engines : string list option;  (* race portfolio override, canonical names *)
}

type slot = {
  vertex : string;  (* vertex name in the submitted graph *)
  op : string;
  unit_ : int option;  (* functional-unit thread, None = free *)
  step : int;  (* start control step (ASAP extraction) *)
}

type result = {
  fingerprint : string;
  design : string;  (* registry name, or "inline" *)
  resources_str : string;
  meta : string;
  vertices : int;
  edges : int;
  diameter : int;
  degraded : bool;  (* deadline overran: tail placed by the fast fallback *)
  engine : string option;  (* winning/requested engine; None on the fast path *)
  assignment : slot list;
}

(* -- requests --------------------------------------------------------- *)

let spec_label = function
  | Named n -> n
  | Inline_dfg _ | Inline_beh _ -> "inline"

let default_resources () =
  Resources.make
    [ (Resources.Alu, 2); (Resources.Multiplier, 2); (Resources.Memory, 1) ]

let ( let* ) = Result.bind

let opt_str j key =
  match Json.member key j with
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
  | None -> Ok None

let request_of_json j =
  match j with
  | Json.Obj _ ->
    let* id = opt_str j "id" in
    let* design = opt_str j "design" in
    let* dfg = opt_str j "dfg" in
    let* source = opt_str j "source" in
    let* spec =
      match (design, dfg, source) with
      | Some n, None, None -> Ok (Named n)
      | None, Some d, None -> Ok (Inline_dfg d)
      | None, None, Some s -> Ok (Inline_beh s)
      | None, None, None ->
        Error "request needs exactly one of \"design\", \"dfg\", \"source\""
      | _ -> Error "fields \"design\", \"dfg\", \"source\" are exclusive"
    in
    let* resources =
      match Json.member "resources" j with
      | Some (Json.Str s) -> Resources.of_string s
      | Some _ -> Error "field \"resources\" must be a string"
      | None -> Ok (default_resources ())
    in
    let* meta =
      match Json.member "meta" j with
      | Some (Json.Str s) ->
        if List.mem s Meta.names then Ok s
        else
          Error
            (Printf.sprintf "unknown meta %S (expected %s)" s
               (String.concat ", " Meta.names))
      | Some _ -> Error "field \"meta\" must be a string"
      | None -> Ok "topo"
    in
    let* deadline_ms =
      match Json.member "deadline_ms" j with
      | Some n -> (
        match Json.to_num n with
        | Some f when f >= 0.0 -> Ok (Some f)
        | _ -> Error "field \"deadline_ms\" must be a non-negative number")
      | None -> Ok None
    in
    let* want_schedule =
      match Json.member "schedule" j with
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error "field \"schedule\" must be a boolean"
      | None -> Ok true
    in
    let* effort =
      match Json.member "effort" j with
      | None -> Ok Fast
      | Some (Json.Str "fast") -> Ok Fast
      | Some (Json.Str "race") -> Ok Race
      | Some (Json.Str "exhaustive") -> Ok Exhaustive
      | Some (Json.Str other) ->
        Error
          (Printf.sprintf
             "unknown effort %S (expected \"fast\", \"race\", \"exhaustive\")"
             other)
      | Some _ -> Error "field \"effort\" must be a string"
    in
    let* engines =
      match Json.member "engines" j with
      | None -> Ok None
      | Some (Json.Arr items) ->
        if effort <> Race then
          Error "field \"engines\" requires \"effort\":\"race\""
        else
          (* Canonicalise (aliases resolved) so the cache key is
             spelling-independent. *)
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | Json.Str s -> (
                match Engine.of_string s with
                | Ok e -> Ok (Engine.name e :: acc)
                | Error m -> Error m)
              | _ -> Error "field \"engines\" must be an array of strings")
            (Ok []) items
          |> Result.map (fun names ->
                 match List.rev names with [] -> None | l -> Some l)
      | Some _ -> Error "field \"engines\" must be an array of strings"
    in
    Ok { id; spec; resources; meta; deadline_ms; want_schedule; effort; engines }
  | _ -> Error "request must be a JSON object"

let request_of_line line =
  match Json.parse_result line with
  | Error m -> Error (Printf.sprintf "bad JSON: %s" m)
  | Ok j -> request_of_json j

(* -- admin requests --------------------------------------------------- *)

(* Out-of-band service introspection on the same NDJSON channel: an
   object carrying an "admin" field instead of a design spec. [Stats]
   answers with the metrics plane's JSON snapshot. *)

type admin = Stats

let admin_of_json j =
  match Json.member "admin" j with
  | None -> Ok None
  | Some (Json.Str "stats") -> (
    match opt_str j "id" with
    | Ok id -> Ok (Some (Stats, id))
    | Error m -> Error m)
  | Some (Json.Str other) ->
    Error (Printf.sprintf "unknown admin request %S (expected \"stats\")" other)
  | Some _ -> Error "field \"admin\" must be a string"

let request_to_json r =
  let base =
    match r.spec with
    | Named n -> [ ("design", Json.str n) ]
    | Inline_dfg d -> [ ("dfg", Json.str d) ]
    | Inline_beh s -> [ ("source", Json.str s) ]
  in
  Json.Obj
    (List.concat
       [
         (match r.id with Some i -> [ ("id", Json.str i) ] | None -> []);
         base;
         [
           ("resources", Json.str (Resources.to_string r.resources));
           ("meta", Json.str r.meta);
         ];
         (match r.deadline_ms with
         | Some d -> [ ("deadline_ms", Json.num d) ]
         | None -> []);
         (if r.want_schedule then [] else [ ("schedule", Json.Bool false) ]);
         (match r.effort with
         | Fast -> []
         | e -> [ ("effort", Json.str (effort_label e)) ]);
         (match r.engines with
         | Some es -> [ ("engines", Json.Arr (List.map Json.str es)) ]
         | None -> []);
       ])

(* -- results ---------------------------------------------------------- *)

let slot_to_json s =
  Json.Obj
    (List.concat
       [
         [ ("v", Json.str s.vertex); ("op", Json.str s.op) ];
         (match s.unit_ with
         | Some k -> [ ("unit", Json.int k) ]
         | None -> []);
         [ ("step", Json.int s.step) ];
       ])

let result_to_json r =
  Json.Obj
    (List.concat
       [
         [
           ("fingerprint", Json.str r.fingerprint);
           ("design", Json.str r.design);
           ("resources", Json.str r.resources_str);
           ("meta", Json.str r.meta);
         ];
         (match r.engine with
         | Some e -> [ ("engine", Json.str e) ]
         | None -> []);
         [
           ("vertices", Json.int r.vertices);
           ("edges", Json.int r.edges);
           ("diameter", Json.int r.diameter);
           ("degraded", Json.Bool r.degraded);
           ("schedule", Json.Arr (List.map slot_to_json r.assignment));
         ];
       ])

let slot_of_json j =
  let* vertex =
    match Json.member "v" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "slot needs a string \"v\""
  in
  let* op =
    match Json.member "op" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "slot needs a string \"op\""
  in
  let* unit_ =
    match Json.member "unit" j with
    | Some n -> (
      match Json.to_num n with
      | Some f -> Ok (Some (int_of_float f))
      | None -> Error "slot \"unit\" must be a number")
    | None -> Ok None
  in
  let* step =
    match Option.bind (Json.member "step" j) Json.to_num with
    | Some f -> Ok (int_of_float f)
    | None -> Error "slot needs a numeric \"step\""
  in
  Ok { vertex; op; unit_; step }

let field_str j key =
  match Json.member key j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "result needs a string %S" key)

let field_int j key =
  match Option.bind (Json.member key j) Json.to_num with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "result needs a numeric %S" key)

let result_of_json j =
  let* fingerprint = field_str j "fingerprint" in
  let* design = field_str j "design" in
  let* resources_str = field_str j "resources" in
  let* meta = field_str j "meta" in
  let* vertices = field_int j "vertices" in
  let* edges = field_int j "edges" in
  let* diameter = field_int j "diameter" in
  let* degraded =
    match Json.member "degraded" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "result needs a boolean \"degraded\""
  in
  let* assignment =
    match Json.member "schedule" j with
    | Some (Json.Arr slots) ->
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* slot = slot_of_json s in
          Ok (slot :: acc))
        (Ok []) slots
      |> Result.map List.rev
    | _ -> Error "result needs an array \"schedule\""
  in
  let* engine =
    match Json.member "engine" j with
    | None -> Ok None
    | Some (Json.Str s) -> Ok (Some s)
    | Some _ -> Error "result \"engine\" must be a string"
  in
  Ok
    {
      fingerprint;
      design;
      resources_str;
      meta;
      vertices;
      edges;
      diameter;
      degraded;
      engine;
      assignment;
    }

(* -- responses -------------------------------------------------------- *)

(* Response lines carry a fixed field order; [cached] means the result
   came out of the fingerprint cache (or rode on a concurrent identical
   request) rather than a fresh scheduler run.

   The line splits into a per-request prefix (id, trace, status, cached)
   and a per-result core (everything else). The core only depends on the
   result, so the service memoizes its rendering per cache entry — on
   the warm path, answering is a string splice. *)

let core_fields ~want_schedule (r : result) =
  let fields =
    [
      ("degraded", Json.Bool r.degraded);
      ("fingerprint", Json.str r.fingerprint);
      ("design", Json.str r.design);
      ("resources", Json.str r.resources_str);
      ("meta", Json.str r.meta);
    ]
    (* Fast-path responses have no engine field, preserving the batch
       byte-identity contract; race/exhaustive responses carry the
       engine that produced the schedule. *)
    @ (match r.engine with
      | Some e -> [ ("engine", Json.str e) ]
      | None -> [])
    @ [
        ("vertices", Json.int r.vertices);
        ("edges", Json.int r.edges);
        ("diameter", Json.int r.diameter);
      ]
    @
    if want_schedule then
      [ ("schedule", Json.Arr (List.map slot_to_json r.assignment)) ]
    else []
  in
  let s = Json.to_string ~minify:true (Json.Obj fields) in
  (* drop the opening brace: the prefix supplies it *)
  String.sub s 1 (String.length s - 1)

let ok_line_with_core ?id ~trace ~cached core =
  Printf.sprintf "{\"id\":%s,\"trace\":%s,\"status\":\"ok\",\"cached\":%b,%s"
    (match id with
    | Some i -> Json.to_string ~minify:true (Json.str i)
    | None -> "null")
    (Json.to_string ~minify:true (Json.str trace))
    cached core

let ok_line ?id ~trace ~cached ~want_schedule (r : result) =
  ok_line_with_core ?id ~trace ~cached (core_fields ~want_schedule r)

(* [retry_after_ms] rides on turn-away errors ("server busy") so
   clients can back off instead of hot-looping on reconnect. *)
let error_line ?id ?retry_after_ms ~trace msg =
  Json.to_string ~minify:true
    (Json.Obj
       ([
          ("id", match id with Some i -> Json.str i | None -> Json.Null);
          ("trace", Json.str trace);
          ("status", Json.str "error");
          ("error", Json.str msg);
        ]
       @
       match retry_after_ms with
       | Some v -> [ ("retry_after_ms", Json.int v) ]
       | None -> []))

(* The stats admin reply: the usual response prefix with the metrics
   snapshot spliced in as one "stats" object. *)
let stats_line ?id ~trace stats =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("id", match id with Some i -> Json.str i | None -> Json.Null);
         ("trace", Json.str trace);
         ("status", Json.str "ok");
         ("stats", stats);
       ])
