(** The serving layer's runtime metrics plane.

    Per-request phase latencies (parse → cache lookup → queue wait →
    schedule → emit, plus the request total) land in log-bucketed
    {!Telemetry.Histogram}s; pool queue depth, in-flight requests, live
    connections and cache occupancy are {!Telemetry.Gauge}s; outcomes
    accumulate in counters. One snapshot feeds both the [stats] admin
    reply / [--metrics-file] JSON dump and the Prometheus text
    exposition sibling. A threshold-gated slow-request log writes one
    NDJSON line per offending request.

    Thread-safe: recording and snapshotting take the plane's single
    mutex; gauge stores are single-word writes. Everything here only
    observes — scheduling results are byte-identical with or without a
    metrics plane installed. *)

open Import

(** Per-request phase timings in nanoseconds. Each layer fills in its
    own phase as the request passes through (daemon/batch: parse, queue
    wait, emit, total; service: cache lookup, schedule), then the owner
    hands the span to {!record} exactly once. *)
type span = {
  mutable parse_ns : int;
  mutable lookup_ns : int;
  mutable queue_ns : int;
  mutable schedule_ns : int;
  mutable emit_ns : int;
  mutable total_ns : int;
}

val span : unit -> span
(** A fresh all-zero span. *)

type t

val create : unit -> t

val record :
  t ->
  trace:string ->
  design:string ->
  ok:bool ->
  cached:bool ->
  degraded:bool ->
  span ->
  unit
(** Fold one finished request into the plane (and the slow log when its
    total crosses the threshold). Call exactly once per request. *)

val turned_away : t -> unit
(** Count a connection rejected at the connection cap. *)

val engine_run : t -> engine:string -> unit
(** Count one completed scheduling run by the named portfolio engine
    (fast-path soft runs, race participants, exhaustive runs alike). *)

val race_win : t -> engine:string -> unit
(** Count one race and credit the winner — the race-win histogram in
    the snapshot ([engines.<name>.race_wins]) and the Prometheus
    [softsched_race_wins_total{engine=…}] family. *)

val retry_after_ms : t -> queue_depth:int -> int
(** Back-off hint for a turned-away client: median request latency
    scaled by the queue depth, clamped to [25, 5000] ms (50 ms before
    any request completed). *)

(** {2 Gauges} *)

val set_pool_queue_depth : t -> int -> unit
val set_connections : t -> int -> unit
val add_in_flight : t -> int -> unit
val set_cache_occupancy : t -> entries:int -> capacity:int -> unit

(** {2 Slow-request log} *)

val set_slow_log : t -> ?threshold_ms:float -> [ `Stderr | `File of string ] -> unit
(** Requests whose total is ≥ [threshold_ms] (default 100) emit one
    NDJSON line — timestamp, trace id, design, status, per-phase
    milliseconds — to stderr or an append-mode file. *)

val close_slow_log : t -> unit

(** {2 Export} *)

val snapshot_json : ?cache:Cache.stats -> t -> Json.t
(** The full snapshot: uptime, outcome counters, per-phase latency
    percentiles (milliseconds), gauges, and — when [cache] is given —
    the fingerprint cache's counters. *)

val to_prometheus : ?cache:Cache.stats -> t -> string
(** The same data in Prometheus text exposition format: one
    [softsched_request_phase_seconds] histogram family with a [phase]
    label (cumulative buckets in seconds, closing with +Inf), plus
    counters and gauges. *)

val summary : t -> string
(** Human-readable block: outcome counts and a per-phase latency table
    (what [batch --stats] and the daemon drain print). *)
