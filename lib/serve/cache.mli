(** Sharded, thread-safe LRU memo of fingerprint key → schedule result.

    The table is split across power-of-two shards selected by the key's
    leading hash digits; each shard pairs a hash table with an
    intrusive recency list behind its own mutex, so concurrent warm
    lookups for different keys proceed in parallel. Recency and
    capacity are {e global}: every touch is stamped from one atomic
    clock and eviction removes the globally least-recent entry, so the
    observable behaviour (hits, evictions, {!fold_mru} order, the
    persistence format) is exactly that of a single LRU — the sharded
    and single-mutex caches are QCheck-equivalent by test.

    Hit/miss/eviction traffic is tallied locally ({!stats}) and
    mirrored to the telemetry stream ({!Telemetry.Counters} [cache_*]
    fields) whenever a sink is installed. *)

type 'a t

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  shards : int;
}

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [capacity] is the global entry budget (not per shard). [shards]
    defaults to 16 and is rounded up to a power of two; [~shards:1]
    reproduces the old single-mutex cache exactly.
    @raise Invalid_argument on a non-positive capacity or shard
    count. *)

val find : 'a t -> string -> 'a option
(** A hit refreshes the entry's (global) recency; both outcomes are
    counted. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or replaces) as most recently used, evicting the globally
    least-recent entry while over capacity. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency or the counters. *)

val length : 'a t -> int

val stats : 'a t -> stats
(** One consistent snapshot, taken with every shard lock held — the
    counters and the length all describe the same instant. *)

val fold_mru : 'a t -> ('acc -> string -> 'a -> 'acc) -> 'acc -> 'acc
(** Fold over entries from most to least recently used (the persistence
    order), merged across shards on the global recency stamp. *)
