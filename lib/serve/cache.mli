(** Thread-safe LRU memo of fingerprint key → schedule result.

    O(1) lookup, insert and recency maintenance (hash table plus an
    intrusive recency list) behind one mutex. Hit/miss/eviction
    traffic is tallied locally ({!stats}) and mirrored to the telemetry
    stream ({!Telemetry.Counters} [cache_*] fields) whenever a sink is
    installed. *)

type 'a t

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : capacity:int -> 'a t
(** @raise Invalid_argument on a non-positive capacity. *)

val find : 'a t -> string -> 'a option
(** A hit refreshes the entry's recency; both outcomes are counted. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or replaces) as most recently used, evicting from the cold
    end while over capacity. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency or the counters. *)

val length : 'a t -> int
val stats : 'a t -> stats

val fold_mru : 'a t -> ('acc -> string -> 'a -> 'acc) -> 'acc -> 'acc
(** Fold over entries from most to least recently used (the persistence
    order). *)
