open Import

let () = Lazy.force extra_engines

type entry = {
  engine : string;
  outcome : Engine.outcome option;
  error : string option;
  cancelled : bool;
}

type t = {
  winner : Engine.outcome;
  entries : entry list;
  wall_s : float;
}

let default_portfolio () =
  List.filter_map Engine.find [ "soft"; "list"; "fdls"; "anneal" ]

let run ?pool ?deadline ?seed ?meta ?budget ~engines ~resources g =
  match engines with
  | [] -> Error "race needs at least one engine"
  | engines ->
    let ctx = Engine.ctx ?deadline ?seed ?meta ?budget () in
    let own, pool =
      match pool with
      | Some p -> (false, p)
      | None -> (true, Pool.create ~jobs:(min (List.length engines) 8) ())
    in
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> if own then Pool.shutdown pool)
    @@ fun () ->
    let futures =
      List.map
        (fun e -> (e, Pool.submit pool (fun () -> Engine.run ~ctx e ~resources g)))
        engines
    in
    (* Await in portfolio order. The moment a racer commits a provably
       optimal schedule, cancel whatever is still queued: nothing can
       beat it on csteps, and the register/wall tie is not worth the
       tail latency. Cancellation only reaches queued jobs — running
       ones finish and still count. *)
    let cancelled = Hashtbl.create 8 in
    let settle (e, fut) =
      let r = Pool.await fut in
      (match r with
      | Ok o when o.Engine.annot.Engine.optimal ->
        List.iter
          (fun (e', fut') ->
            if Pool.cancel fut' then Hashtbl.replace cancelled (Engine.name e') ())
          futures
      | _ -> ());
      (e, r)
    in
    let settled = List.map settle futures in
    let entries =
      List.map
        (fun (e, r) ->
          let name = Engine.name e in
          match r with
          | Ok o -> { engine = name; outcome = Some o; error = None; cancelled = false }
          | Error exn ->
            let cancelled = Hashtbl.mem cancelled name in
            {
              engine = name;
              outcome = None;
              error = (if cancelled then None else Some (Printexc.to_string exn));
              cancelled;
            })
        settled
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let winner =
      List.fold_left
        (fun acc e ->
          match (acc, e.outcome) with
          | None, o -> o
          | Some _, None -> acc
          | Some best, Some o ->
            if Engine.compare_qor o best < 0 then Some o else acc)
        None entries
    in
    (match winner with
    | Some w -> Ok { winner = w; entries; wall_s }
    | None ->
      let why =
        entries
        |> List.filter_map (fun e ->
               Option.map (fun m -> e.engine ^ ": " ^ m) e.error)
        |> String.concat "; "
      in
      Error
        (if why = "" then "race: every engine was cancelled"
         else "race: every engine failed (" ^ why ^ ")"))
