(* NDJSON batch driver: N request lines in, N response lines out, in
   input order, scheduled on the worker pool.

   Determinism contract: the output depends only on the input and the
   cache state at entry, never on --jobs. Three mechanisms deliver it:

   - prepare (parse, registry/parse/lower, fingerprint) runs
     sequentially in input order;
   - requests with equal cache keys are deduped — the first becomes the
     leader and is the only one submitted to the pool, the rest ride on
     its result marked cached (exactly what a sequential run's cache
     would have produced);
   - trace ids are assigned by input position (b-000001, …) and
     responses are emitted in input position order.

   Blank input lines are skipped without producing output.

   When the service carries a metrics plane, every request is recorded
   into it with the batch flavour of the span phases: parse and
   prepare are timed in pass 1, queue wait is submit -> job start for
   cold leaders, cache lookup / schedule come from Service.execute,
   emit is pass-3 rendering, and total is the sum of phases (requests
   overlap in a batch, so per-request wall clock would double-count the
   pipeline). Timing observes only: response bytes are identical with
   or without a metrics plane, for any --jobs. *)

type stats = {
  requests : int;
  hits : int;  (* responses answered from cache (or a batch leader) *)
  degraded : int;
  errors : int;
  wall_s : float;
}

type item =
  | Bad of { id : string option; msg : string }
  | Leader of { prepared : Service.prepared; future : int }
      (* index into the futures array *)
  | Follower of { prepared : Service.prepared; leader : int }
      (* index into the items array *)

let run_lines ?pool service ~jobs lines =
  if jobs <= 0 then invalid_arg "Batch.run_lines: non-positive jobs";
  let t0 = Unix.gettimeofday () in
  let metrics = Service.metrics service in
  let now = Telemetry.now_ns in
  let lines =
    List.filter (fun l -> String.trim l <> "") lines
  in
  (* Pass 1, sequential: parse + prepare + dedupe by cache key. Each
     line gets a span; this pass times parse and prepare. *)
  let pending = ref [] in  (* leader (prepared, span) descriptors, reversed *)
  let by_key = Hashtbl.create 16 in  (* cache key -> item index *)
  let n_futures = ref 0 in
  let tagged =
    List.mapi
      (fun i line ->
        let sp = Metrics.span () in
        let tp = now () in
        let item =
          match Protocol.request_of_line line with
          | Error msg ->
            sp.Metrics.parse_ns <- now () - tp;
            Bad { id = None; msg }
          | Ok req -> (
            sp.Metrics.parse_ns <- now () - tp;
            let tl = now () in
            match Service.prepare service req with
            | Error msg ->
              sp.Metrics.lookup_ns <- now () - tl;
              Bad { id = req.Protocol.id; msg }
            | Ok prepared -> (
              sp.Metrics.lookup_ns <- now () - tl;
              let key = Service.key_of prepared in
              match Hashtbl.find_opt by_key key with
              | Some leader -> Follower { prepared; leader }
              | None ->
                Hashtbl.add by_key key i;
                let fi = !n_futures in
                incr n_futures;
                pending := (prepared, sp) :: !pending;
                Leader { prepared; future = fi }))
        in
        (item, sp))
      lines
  in
  let items = Array.of_list (List.map fst tagged) in
  let spans = Array.of_list (List.map snd tagged) in
  (* Pass 2: leaders whose result is already cached are answered inline
     (a hash lookup does not justify a worker-pool handoff — this is
     most of the warm path's throughput); the rest fan out to the pool.
     Deadlines are measured from submission, which is as close to
     "enqueue" as the protocol gets. *)
  let run_one ~span prepared =
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
        (Service.request_of prepared).Protocol.deadline_ms
    in
    Service.execute ?deadline ~span service prepared
  in
  let futures =
    let leaders = Array.of_list (List.rev !pending) in
    let outcomes = Array.make (Array.length leaders) None in
    let cold = ref [] in
    Array.iteri
      (fun i (prepared, sp) ->
        if Service.cached service prepared then
          outcomes.(i) <-
            Some (try Ok (run_one ~span:sp prepared) with e -> Error e)
        else cold := (i, prepared, sp) :: !cold)
      leaders;
    (match !cold with
    | [] -> ()
    | cold ->
      (* A caller-supplied pool (the daemon's, or the bench harness's
         persistent one) is borrowed, not drained; a private pool is
         created and shut down here as before. *)
      let p, owned =
        match pool with
        | Some p -> (p, false)
        | None -> (Pool.create ~jobs (), true)
      in
      let futs =
        List.rev_map
          (fun (i, prepared, sp) ->
            let enqueued = now () in
            ( i,
              Pool.submit p (fun () ->
                  sp.Metrics.queue_ns <- now () - enqueued;
                  run_one ~span:sp prepared) ))
          cold
      in
      List.iter (fun (i, fut) -> outcomes.(i) <- Some (Pool.await fut)) futs;
      if owned then Pool.shutdown p);
    Array.map (function Some r -> r | None -> assert false) outcomes
  in
  (* Pass 3, sequential: render responses in input order, timing the
     render into each span's emit phase, then hand the finished span to
     the metrics plane (if any). *)
  let hits = ref 0 and degraded = ref 0 and errors = ref 0 in
  let outcome_of_item = function
    | Bad _ -> assert false
    | Leader { future; _ } -> futures.(future)
    | Follower _ -> assert false
  in
  let out =
    List.mapi
      (fun i item ->
        let trace = Printf.sprintf "b-%06d" (i + 1) in
        let sp = spans.(i) in
        let te = now () in
        let line, is_ok, is_cached, is_degraded, design =
          match item with
          | Bad { id; msg } ->
            incr errors;
            (Protocol.error_line ?id ~trace msg, false, false, false, "?")
          | Leader { prepared; future } -> (
            let req = Service.request_of prepared in
            let design = Protocol.spec_label req.Protocol.spec in
            match futures.(future) with
            | Error e ->
              incr errors;
              ( Protocol.error_line ?id:req.Protocol.id ~trace
                  (Printexc.to_string e),
                false,
                false,
                false,
                design )
            | Ok (o, cached) ->
              if cached then incr hits;
              let degr = (Service.result_of o).Protocol.degraded in
              if degr then incr degraded;
              ( Service.line ?id:req.Protocol.id ~trace ~cached
                  ~want_schedule:req.Protocol.want_schedule o,
                true,
                cached,
                degr,
                design ))
          | Follower { prepared; leader } -> (
            let req = Service.request_of prepared in
            let design = Protocol.spec_label req.Protocol.spec in
            match outcome_of_item items.(leader) with
            | Error e ->
              incr errors;
              ( Protocol.error_line ?id:req.Protocol.id ~trace
                  (Printexc.to_string e),
                false,
                false,
                false,
                design )
            | Ok (o, _) ->
              (* A sequential run's second identical request would hit the
                 cache — unless the result was degraded, which is never
                 cached. *)
              let r = Service.result_of o in
              let cached = not r.Protocol.degraded in
              if cached then incr hits;
              if r.Protocol.degraded then incr degraded;
              ( Service.line ?id:req.Protocol.id ~trace ~cached
                  ~want_schedule:req.Protocol.want_schedule o,
                true,
                cached,
                r.Protocol.degraded,
                design ))
        in
        sp.Metrics.emit_ns <- sp.Metrics.emit_ns + (now () - te);
        sp.Metrics.total_ns <-
          sp.Metrics.parse_ns + sp.Metrics.lookup_ns + sp.Metrics.queue_ns
          + sp.Metrics.schedule_ns + sp.Metrics.emit_ns;
        (match metrics with
        | Some m ->
          Metrics.record m ~trace ~design ~ok:is_ok ~cached:is_cached
            ~degraded:is_degraded sp
        | None -> ());
        line)
      (Array.to_list items)
  in
  let stats =
    {
      requests = Array.length items;
      hits = !hits;
      degraded = !degraded;
      errors = !errors;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  (out, stats)

let summary s =
  let pct =
    if s.requests = 0 then 0. else 100. *. float s.hits /. float s.requests
  in
  let rate = if s.wall_s > 0. then float s.requests /. s.wall_s else 0. in
  Printf.sprintf
    "batch: %d requests, %d cache hits (%.0f%%), %d degraded, %d errors, %.1f \
     requests/s"
    s.requests s.hits pct s.degraded s.errors rate

let run_channels service ~jobs ic oc =
  let rec read acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | l -> read (l :: acc)
  in
  let out, stats = run_lines service ~jobs (read []) in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    out;
  flush oc;
  stats
