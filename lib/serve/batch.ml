(* NDJSON batch driver: N request lines in, N response lines out, in
   input order, scheduled on the worker pool.

   Determinism contract: the output depends only on the input and the
   cache state at entry, never on --jobs. Three mechanisms deliver it:

   - prepare (parse, registry/parse/lower, fingerprint) runs
     sequentially in input order;
   - requests with equal cache keys are deduped — the first becomes the
     leader and is the only one submitted to the pool, the rest ride on
     its result marked cached (exactly what a sequential run's cache
     would have produced);
   - trace ids are assigned by input position (b-000001, …) and
     responses are emitted in input position order.

   Blank input lines are skipped without producing output. *)

type stats = {
  requests : int;
  hits : int;  (* responses answered from cache (or a batch leader) *)
  degraded : int;
  errors : int;
  wall_s : float;
}

type item =
  | Bad of { id : string option; msg : string }
  | Leader of { prepared : Service.prepared; future : int }
      (* index into the futures array *)
  | Follower of { prepared : Service.prepared; leader : int }
      (* index into the items array *)

let run_lines service ~jobs lines =
  if jobs <= 0 then invalid_arg "Batch.run_lines: non-positive jobs";
  let t0 = Unix.gettimeofday () in
  let lines =
    List.filter (fun l -> String.trim l <> "") lines
  in
  (* Pass 1, sequential: parse + prepare + dedupe by cache key. *)
  let pending = ref [] in  (* leader thunk descriptors, reversed *)
  let by_key = Hashtbl.create 16 in  (* cache key -> item index *)
  let n_futures = ref 0 in
  let items =
    List.mapi
      (fun i line ->
        match Protocol.request_of_line line with
        | Error msg -> Bad { id = None; msg }
        | Ok req -> (
          match Service.prepare service req with
          | Error msg -> Bad { id = req.Protocol.id; msg }
          | Ok prepared -> (
            let key = Service.key_of prepared in
            match Hashtbl.find_opt by_key key with
            | Some leader -> Follower { prepared; leader }
            | None ->
              Hashtbl.add by_key key i;
              let fi = !n_futures in
              incr n_futures;
              pending := prepared :: !pending;
              Leader { prepared; future = fi })))
      lines
  in
  let items = Array.of_list items in
  (* Pass 2: leaders whose result is already cached are answered inline
     (a hash lookup does not justify a worker-pool handoff — this is
     most of the warm path's throughput); the rest fan out to the pool.
     Deadlines are measured from submission, which is as close to
     "enqueue" as the protocol gets. *)
  let run_one prepared =
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
        (Service.request_of prepared).Protocol.deadline_ms
    in
    Service.execute ?deadline service prepared
  in
  let futures =
    let leaders = Array.of_list (List.rev !pending) in
    let outcomes = Array.make (Array.length leaders) None in
    let cold = ref [] in
    Array.iteri
      (fun i prepared ->
        if Service.cached service prepared then
          outcomes.(i) <- Some (try Ok (run_one prepared) with e -> Error e)
        else cold := (i, prepared) :: !cold)
      leaders;
    (match !cold with
    | [] -> ()
    | cold ->
      let pool = Pool.create ~jobs () in
      let futs =
        List.rev_map
          (fun (i, prepared) ->
            (i, Pool.submit pool (fun () -> run_one prepared)))
          cold
      in
      List.iter (fun (i, fut) -> outcomes.(i) <- Some (Pool.await fut)) futs;
      Pool.shutdown pool);
    Array.map (function Some r -> r | None -> assert false) outcomes
  in
  (* Pass 3, sequential: render responses in input order. *)
  let hits = ref 0 and degraded = ref 0 and errors = ref 0 in
  let outcome_of_item = function
    | Bad _ -> assert false
    | Leader { future; _ } -> futures.(future)
    | Follower _ -> assert false
  in
  let out =
    List.mapi
      (fun i item ->
        let trace = Printf.sprintf "b-%06d" (i + 1) in
        match item with
        | Bad { id; msg } ->
          incr errors;
          Protocol.error_line ?id ~trace msg
        | Leader { prepared; future } -> (
          let req = Service.request_of prepared in
          match futures.(future) with
          | Error e ->
            incr errors;
            Protocol.error_line ?id:req.Protocol.id ~trace
              (Printexc.to_string e)
          | Ok (o, cached) ->
            if cached then incr hits;
            if (Service.result_of o).Protocol.degraded then incr degraded;
            Service.line ?id:req.Protocol.id ~trace ~cached
              ~want_schedule:req.Protocol.want_schedule o)
        | Follower { prepared; leader } -> (
          let req = Service.request_of prepared in
          match outcome_of_item items.(leader) with
          | Error e ->
            incr errors;
            Protocol.error_line ?id:req.Protocol.id ~trace
              (Printexc.to_string e)
          | Ok (o, _) ->
            (* A sequential run's second identical request would hit the
               cache — unless the result was degraded, which is never
               cached. *)
            let r = Service.result_of o in
            let cached = not r.Protocol.degraded in
            if cached then incr hits;
            if r.Protocol.degraded then incr degraded;
            Service.line ?id:req.Protocol.id ~trace ~cached
              ~want_schedule:req.Protocol.want_schedule o))
      (Array.to_list items)
  in
  let stats =
    {
      requests = Array.length items;
      hits = !hits;
      degraded = !degraded;
      errors = !errors;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  (out, stats)

let summary s =
  let pct =
    if s.requests = 0 then 0. else 100. *. float s.hits /. float s.requests
  in
  let rate = if s.wall_s > 0. then float s.requests /. s.wall_s else 0. in
  Printf.sprintf
    "batch: %d requests, %d cache hits (%.0f%%), %d degraded, %d errors, %.1f \
     requests/s"
    s.requests s.hits pct s.degraded s.errors rate

let run_channels service ~jobs ic oc =
  let rec read acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | l -> read (l :: acc)
  in
  let out, stats = run_lines service ~jobs (read []) in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    out;
  flush oc;
  stats
