open Import

(** Race mode: fan one scheduling problem out to several engines on a
    worker pool, keep the QoR winner.

    Every engine runs the same [(graph, resources)] under one shared
    {!Soft.Engine.ctx}; the winner is the {!Soft.Engine.compare_qor}
    minimum (control steps, then registers, then wall time — the
    [Qor.Diff] metric priority), ties resolved by portfolio order. Once
    an engine commits a {e provably optimal} schedule, still-queued
    rivals are cancelled — they cannot beat it on the leading metric
    and their latency is pure waste. Started work always completes
    ({!Pool}'s guarantee), so cancellation never corrupts state. *)

type entry = {
  engine : string;
  outcome : Engine.outcome option;  (** [None]: crashed or cancelled *)
  error : string option;  (** the exception text, when it crashed *)
  cancelled : bool;
}

type t = {
  winner : Engine.outcome;
  entries : entry list;  (** portfolio order, one per racer *)
  wall_s : float;  (** whole-race wall clock *)
}

val default_portfolio : unit -> Engine.engine list
(** [soft; list; fdls; anneal] — one of each character: the paper's
    scheduler, the cheap baseline, the force-directed heuristic, and a
    stochastic improver. Includes [soft], so a race is never worse than
    the fast path on the same meta order. *)

val run :
  ?pool:Pool.t ->
  ?deadline:float ->
  ?seed:int ->
  ?meta:string ->
  ?budget:int ->
  engines:Engine.engine list ->
  resources:Resources.t ->
  Graph.t ->
  (t, string) result
(** [Error] on an empty portfolio or when every engine crashed. With no
    [pool], a private pool sized to the portfolio is created and drained
    before returning — callers already running {e inside} a pool worker
    (the service) must rely on that default, since racing on their own
    pool would deadlock its workers against each other. *)
