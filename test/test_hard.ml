(* Tests for the traditional (hard) scheduling substrate. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule

let check = Alcotest.check

let seeded_dag =
  QCheck.make
    ~print:(fun (n, p, seed) -> Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
    QCheck.Gen.(
      triple (int_range 1 30) (float_range 0.05 0.4) (int_range 0 10_000))

let graph_of (n, p, seed) =
  Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:p

let two_two = R.fig3_2alu_2mul

(* --- Resources ----------------------------------------------------- *)

let test_resources_make () =
  let r = R.make [ (R.Alu, 2); (R.Multiplier, 1) ] in
  check Alcotest.int "alu" 2 (R.count r R.Alu);
  check Alcotest.int "mul" 1 (R.count r R.Multiplier);
  check Alcotest.int "mem" 0 (R.count r R.Memory);
  check Alcotest.int "total" 3 (R.total_units r);
  check Alcotest.string "to_string" "2 alu, 1 mul" (R.to_string r)

let test_resources_errors () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Resources.make: non-positive count") (fun () ->
      ignore (R.make [ (R.Alu, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Resources.make: duplicate class") (fun () ->
      ignore (R.make [ (R.Alu, 1); (R.Alu, 2) ]))

let test_class_of_op () =
  check Alcotest.bool "add" true (R.class_of_op Op.Add = Some R.Alu);
  check Alcotest.bool "select" true (R.class_of_op Op.Select = Some R.Alu);
  check Alcotest.bool "mul" true (R.class_of_op Op.Mul = Some R.Multiplier);
  check Alcotest.bool "load" true (R.class_of_op Op.Load = Some R.Memory);
  check Alcotest.bool "wire" true (R.class_of_op Op.Wire = None);
  check Alcotest.bool "const" true (R.class_of_op (Op.Const 1) = None);
  check Alcotest.bool "can" true (R.can_execute R.Alu Op.Sub);
  check Alcotest.bool "cannot" false (R.can_execute R.Alu Op.Mul)

let test_fig3_configs () =
  check Alcotest.int "cols" 3 (List.length R.fig3_all);
  let _, c1 = List.hd R.fig3_all in
  check Alcotest.int "2alu" 2 (R.count c1 R.Alu);
  check Alcotest.int "2mul" 2 (R.count c1 R.Multiplier)

(* --- Schedule ------------------------------------------------------ *)

let chain3 () =
  (* a(1) -> m(2) -> b(1) *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" Op.Add in
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  let b = Graph.add_vertex g ~name:"b" Op.Add in
  Graph.add_edge g a m;
  Graph.add_edge g m b;
  (g, a, m, b)

let test_schedule_accessors () =
  let g, a, m, b = chain3 () in
  let s = S.make g ~starts:[| 0; 1; 3 |] in
  check Alcotest.int "start" 1 (S.start s m);
  check Alcotest.int "finish" 3 (S.finish s m);
  check Alcotest.int "length" 4 (S.length s);
  check Alcotest.bool "valid" true (S.check s = Ok ());
  ignore (a, b)

let test_schedule_precedence_violation () =
  let g, _, _, _ = chain3 () in
  let s = S.make g ~starts:[| 0; 0; 3 |] in
  (match S.check s with
  | Error m ->
    check Alcotest.bool "mentions precedence" true
      (String.length m > 0)
  | Ok () -> Alcotest.fail "expected violation")

let test_schedule_resource_violation () =
  let g = Graph.create () in
  let m1 = Graph.add_vertex g Op.Mul in
  let m2 = Graph.add_vertex g Op.Mul in
  ignore (m1, m2);
  let s = S.make g ~starts:[| 0; 1 |] in
  (* one multiplier; the two 2-cycle muls overlap at cycle 1 *)
  let r = R.make [ (R.Multiplier, 1) ] in
  (match S.check ~resources:r s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected resource overflow");
  let s2 = S.make g ~starts:[| 0; 2 |] in
  check Alcotest.bool "serial ok" true (S.check ~resources:r s2 = Ok ())

let test_schedule_zero_units () =
  let g = Graph.create () in
  let _ = Graph.add_vertex g Op.Mul in
  let s = S.make g ~starts:[| 0 |] in
  (match S.check ~resources:(R.make [ (R.Alu, 1) ]) s with
  | Error m ->
    check Alcotest.bool "mentions class" true
      (String.length m > 0)
  | Ok () -> Alcotest.fail "expected unschedulable")

let test_schedule_usage () =
  let g, _, _, _ = chain3 () in
  let s = S.make g ~starts:[| 0; 1; 3 |] in
  let mul_usage = S.usage s R.Multiplier in
  check Alcotest.(list int) "mul per cycle" [ 0; 1; 1; 0 ]
    (Array.to_list mul_usage);
  check Alcotest.int "peak alu" 1 (S.peak_usage s R.Alu)

let test_schedule_negative_start () =
  let g, _, _, _ = chain3 () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Schedule.make: negative start -1 for vertex 0")
    (fun () -> ignore (S.make g ~starts:[| -1; 1; 3 |]))

let test_schedule_gantt () =
  let g, _, _, _ = chain3 () in
  let s = S.make g ~starts:[| 0; 1; 3 |] in
  let gantt = S.gantt s in
  check Alcotest.bool "has bars" true (String.contains gantt '#')

(* --- ASAP / ALAP --------------------------------------------------- *)

let test_asap_alap () =
  let g, a, m, b = chain3 () in
  let asap = Hard.Asap.run g in
  check Alcotest.int "asap length = diameter" (Paths.diameter g)
    (S.length asap);
  check Alcotest.int "asap a" 0 (S.start asap a);
  check Alcotest.int "asap b" 3 (S.start asap b);
  let alap = Hard.Alap.run ~deadline:6 g in
  check Alcotest.int "alap b" 5 (S.start alap b);
  check Alcotest.int "alap m" 3 (S.start alap m);
  check Alcotest.bool "alap valid" true (S.check alap = Ok ())

(* --- List scheduling ----------------------------------------------- *)

let test_list_sched_chain () =
  let g, _, _, _ = chain3 () in
  let s = Hard.List_sched.run ~resources:two_two g in
  check Alcotest.int "chain length" 4 (S.length s)

let test_list_sched_respects_resources () =
  (* 4 independent muls on 2 multipliers: 2 waves of 2 cycles. *)
  let g = Graph.create () in
  for _ = 1 to 4 do
    ignore (Graph.add_vertex g Op.Mul)
  done;
  let s = Hard.List_sched.run ~resources:two_two g in
  check Alcotest.int "two waves" 4 (S.length s);
  check Alcotest.bool "valid" true (S.check ~resources:two_two s = Ok ())

let test_list_sched_unschedulable () =
  let g = Graph.create () in
  let _ = Graph.add_vertex g Op.Mul in
  (try
     ignore (Hard.List_sched.run ~resources:(R.make [ (R.Alu, 1) ]) g);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_list_sched_benchmarks () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iter
        (fun (label, r) ->
          let g = e.build () in
          let s = Hard.List_sched.run ~resources:r g in
          check Alcotest.bool
            (Printf.sprintf "%s under %s valid" e.name label)
            true
            (S.check ~resources:r s = Ok ());
          check Alcotest.bool
            (Printf.sprintf "%s under %s >= diameter" e.name label)
            true
            (S.length s >= Paths.diameter g))
        R.fig3_all)
    Hls_bench.Suite.all

let test_list_sched_priorities_differ_gracefully () =
  let g = (Hls_bench.Suite.find "AR").build () in
  let s1 =
    Hard.List_sched.run ~priority:Hard.List_sched.critical_path_priority
      ~resources:two_two g
  in
  let s2 =
    Hard.List_sched.run ~priority:Hard.List_sched.mobility_priority
      ~resources:two_two g
  in
  check Alcotest.bool "both valid" true
    (S.check ~resources:two_two s1 = Ok ()
    && S.check ~resources:two_two s2 = Ok ())

let test_dispatch_order_covers_everything () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let order = Hard.List_sched.dispatch_order ~resources:two_two g in
  check Alcotest.int "covers" (Graph.n_vertices g) (List.length order);
  check Alcotest.int "unique" (Graph.n_vertices g)
    (List.length (List.sort_uniq compare order))

let prop_list_sched_valid =
  QCheck.Test.make ~name:"list schedules are always valid" ~count:100
    seeded_dag (fun spec ->
      let g = graph_of spec in
      let s = Hard.List_sched.run ~resources:two_two g in
      S.check ~resources:two_two s = Ok () && S.length s >= Paths.diameter g)

(* --- Force-directed ------------------------------------------------ *)

let test_fds_meets_deadline () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let deadline = Paths.diameter g + 2 in
  let s = Hard.Force_directed.run ~deadline g in
  check Alcotest.bool "precedence valid" true (S.check s = Ok ());
  check Alcotest.bool "meets deadline" true (S.length s <= deadline)

let test_fds_balances_vs_asap () =
  (* FDS under a relaxed deadline should not need more multipliers than
     ASAP's peak (it is designed to lower it). *)
  let g = (Hls_bench.Suite.find "AR").build () in
  let asap_peak = S.peak_usage (Hard.Asap.run g) R.Multiplier in
  let s = Hard.Force_directed.run ~deadline:(Paths.diameter g + 4) g in
  let fds_peak = S.peak_usage s R.Multiplier in
  check Alcotest.bool
    (Printf.sprintf "fds %d <= asap %d" fds_peak asap_peak)
    true (fds_peak <= asap_peak)

let test_fds_bad_deadline () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  (try
     ignore (Hard.Force_directed.run ~deadline:(Paths.diameter g - 1) g);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_fds_min_units () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let s = Hard.Force_directed.run ~deadline:(Paths.diameter g) g in
  let units = Hard.Force_directed.min_units s in
  check Alcotest.bool "has both classes" true
    (List.mem_assoc R.Alu units && List.mem_assoc R.Multiplier units)

let prop_fds_valid =
  QCheck.Test.make ~name:"FDS schedules meet deadline and precedence"
    ~count:50 seeded_dag (fun spec ->
      let g = graph_of spec in
      let deadline = Paths.diameter g + 3 in
      let s = Hard.Force_directed.run ~deadline g in
      S.check s = Ok () && S.length s <= deadline)

(* --- Exact branch and bound ---------------------------------------- *)

let test_exact_chain_is_tight () =
  let g, _, _, _ = chain3 () in
  let r = Hard.Exact_bb.run ~resources:two_two g in
  check Alcotest.bool "optimal" true r.Hard.Exact_bb.optimal;
  check Alcotest.int "length" 4 (S.length r.Hard.Exact_bb.schedule)

let test_exact_independent_muls () =
  let g = Graph.create () in
  for _ = 1 to 4 do
    ignore (Graph.add_vertex g Op.Mul)
  done;
  let one_mul = R.make [ (R.Multiplier, 1) ] in
  let r = Hard.Exact_bb.run ~resources:one_mul g in
  check Alcotest.int "serialised" 8 (S.length r.Hard.Exact_bb.schedule)

let test_exact_beats_or_matches_list () =
  List.iter
    (fun (name : string) ->
      let g = (Hls_bench.Suite.find name).build () in
      let list_len = S.length (Hard.List_sched.run ~resources:two_two g) in
      let r = Hard.Exact_bb.run ~node_limit:200_000 ~resources:two_two g in
      let exact_len = S.length r.Hard.Exact_bb.schedule in
      check Alcotest.bool
        (Printf.sprintf "%s exact %d <= list %d" name exact_len list_len)
        true (exact_len <= list_len);
      check Alcotest.bool
        (Printf.sprintf "%s exact valid" name)
        true
        (S.check ~resources:two_two r.Hard.Exact_bb.schedule = Ok ()))
    [ "HAL"; "FIR" ]

let prop_exact_not_worse_than_list =
  QCheck.Test.make ~name:"exact B&B never loses to list scheduling" ~count:30
    QCheck.(pair (int_range 1 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let g =
        Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:0.3
      in
      let r = Hard.Exact_bb.run ~node_limit:100_000 ~resources:two_two g in
      let list_len = S.length (Hard.List_sched.run ~resources:two_two g) in
      S.length r.Hard.Exact_bb.schedule <= list_len
      && S.check ~resources:two_two r.Hard.Exact_bb.schedule = Ok ())

(* --- FDLS (resource-constrained force-directed) --------------------- *)

let test_fdls_valid_on_benchmarks () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iter
        (fun (label, r) ->
          let g = e.build () in
          let s = Hard.Fdls.run ~resources:r g in
          check Alcotest.bool
            (Printf.sprintf "%s/%s valid" e.name label)
            true
            (S.check ~resources:r s = Ok ());
          check Alcotest.bool
            (Printf.sprintf "%s/%s >= diameter" e.name label)
            true
            (S.length s >= Paths.diameter g))
        R.fig3_all)
    Hls_bench.Suite.fig3

let test_fdls_competitive_with_list () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let fdls = S.length (Hard.Fdls.run ~resources:two_two g) in
      let list_len = S.length (Hard.List_sched.run ~resources:two_two g) in
      check Alcotest.bool
        (Printf.sprintf "%s fdls %d within 3 of list %d" e.name fdls list_len)
        true
        (fdls <= list_len + 3))
    Hls_bench.Suite.all

let test_fdls_unschedulable () =
  let g = Graph.create () in
  let _ = Graph.add_vertex g Op.Mul in
  (try
     ignore (Hard.Fdls.run ~resources:(R.make [ (R.Alu, 1) ]) g);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_fdls_valid =
  QCheck.Test.make ~name:"FDLS schedules are always valid" ~count:50
    seeded_dag (fun spec ->
      let g = graph_of spec in
      let s = Hard.Fdls.run ~resources:two_two g in
      S.check ~resources:two_two s = Ok ())

(* --- Pipelined units ------------------------------------------------ *)

let bench_env g =
  List.filter_map
    (fun v ->
      match Graph.op g v with
      | Op.Input n -> Some (n, (Hashtbl.hash n mod 9) - 4)
      | _ -> None)
    (Graph.vertices g)

let test_pipeline_split_shape () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let t = Hard.Pipeline.split g in
  (* each of the 6 muls splits into issue + drain *)
  check Alcotest.int "six extra vertices"
    (Graph.n_vertices g + 6)
    (Graph.n_vertices t.Hard.Pipeline.split);
  check Alcotest.bool "dag" true (Graph.is_dag t.Hard.Pipeline.split);
  Graph.iter_vertices
    (fun v ->
      check Alcotest.bool "issue delay is the interval" true
        (Graph.delay t.Hard.Pipeline.split t.Hard.Pipeline.issue_of.(v)
        <= Graph.delay g v))
    g

let test_pipeline_preserves_semantics () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let t = Hard.Pipeline.split g in
      let env = bench_env g in
      check
        Alcotest.(list (pair string int))
        (e.name ^ " semantics")
        (List.sort compare (Dfg.Eval.outputs g env))
        (List.sort compare (Dfg.Eval.outputs t.Hard.Pipeline.split env)))
    Hls_bench.Suite.all

let test_pipeline_helps_multiply_bound () =
  (* with one pipelined multiplier, multiply-bound benchmarks speed up *)
  let one_mul =
    R.make [ (R.Alu, 2); (R.Multiplier, 1); (R.Memory, 1) ]
  in
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let plain = Soft.Scheduler.csteps ~resources:one_mul g in
      let pipelined =
        Hard.Pipeline.csteps
          ~scheduler:(Soft.Scheduler.run_to_schedule ~resources:one_mul)
          g
      in
      check Alcotest.bool
        (Printf.sprintf "%s: pipelined %d < plain %d" name pipelined plain)
        true (pipelined < plain))
    [ "HAL"; "AR"; "FIR" ]

let test_pipeline_recover_starts () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let t = Hard.Pipeline.split g in
  let s = Hard.List_sched.run ~resources:two_two t.Hard.Pipeline.split in
  let starts = Hard.Pipeline.recover_starts t s in
  check Alcotest.int "one start per original op" (Graph.n_vertices g)
    (Array.length starts);
  (* pipelined-unit precedence: every producer's result is ready
     before each consumer starts *)
  Graph.iter_edges
    (fun u v ->
      let result_ready =
        S.finish s t.Hard.Pipeline.result_of.(u)
      in
      check Alcotest.bool
        (Printf.sprintf "%s result before %s" (Graph.name g u)
           (Graph.name g v))
        true
        (result_ready <= starts.(v)))
    g

let test_pipeline_interval_validation () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  (try
     ignore (Hard.Pipeline.split ~interval:0 g);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_pipeline_interval_two () =
  (* a 4-cycle multiplier at initiation interval 2: the issue keeps the
     unit for 2 cycles, the drain carries the remaining 2 *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" (Op.Input "a") in
  let m = Graph.add_vertex g ~delay:4 ~name:"m" Op.Mul in
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g a m;
  Graph.add_edge g m o;
  let t = Hard.Pipeline.split ~interval:2 g in
  let sp = t.Hard.Pipeline.split in
  check Alcotest.int "one extra vertex" 4 (Graph.n_vertices sp);
  let issue = t.Hard.Pipeline.issue_of.(m) in
  let result = t.Hard.Pipeline.result_of.(m) in
  check Alcotest.int "issue delay = interval" 2 (Graph.delay sp issue);
  check Alcotest.int "drain delay = L - interval" 2 (Graph.delay sp result);
  check Alcotest.bool "drain is a wire" true (Graph.op sp result = Op.Wire);
  (* the repo's 2-cycle multiplies don't exceed II 2, so nothing splits *)
  let hal = (Hls_bench.Suite.find "HAL").build () in
  let t2 = Hard.Pipeline.split ~interval:2 hal in
  check Alcotest.int "2-cycle muls untouched at II 2" (Graph.n_vertices hal)
    (Graph.n_vertices t2.Hard.Pipeline.split)

let test_pipeline_custom_predicate () =
  (* pipelining nothing leaves every graph untouched *)
  let fir = (Hls_bench.Suite.find "FIR").build () in
  let untouched = Hard.Pipeline.split ~pipelined:(fun _ -> false) fir in
  check Alcotest.int "no class pipelined, no split" (Graph.n_vertices fir)
    (Graph.n_vertices untouched.Hard.Pipeline.split);
  (* pipelining the memory port instead of the multiplier: only the
     multi-cycle load splits, the 2-cycle multiply keeps its unit *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"addr" (Op.Input "addr") in
  let ld = Graph.add_vertex g ~delay:3 ~name:"ld" Op.Load in
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g a ld;
  Graph.add_edge g ld m;
  Graph.add_edge g m o;
  let t = Hard.Pipeline.split ~pipelined:(fun c -> c = R.Memory) g in
  let sp = t.Hard.Pipeline.split in
  check Alcotest.int "only the load split" (Graph.n_vertices g + 1)
    (Graph.n_vertices sp);
  check Alcotest.int "load issue delay 1" 1
    (Graph.delay sp t.Hard.Pipeline.issue_of.(ld));
  check Alcotest.int "load drain delay 2" 2
    (Graph.delay sp t.Hard.Pipeline.result_of.(ld));
  check Alcotest.bool "mul untouched" true
    (t.Hard.Pipeline.issue_of.(m) = t.Hard.Pipeline.result_of.(m)
    && Graph.delay sp t.Hard.Pipeline.issue_of.(m) = 2)

let () =
  Alcotest.run "hard"
    [
      ( "resources",
        [
          Alcotest.test_case "make" `Quick test_resources_make;
          Alcotest.test_case "errors" `Quick test_resources_errors;
          Alcotest.test_case "class_of_op" `Quick test_class_of_op;
          Alcotest.test_case "fig3 configs" `Quick test_fig3_configs;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "precedence violation" `Quick
            test_schedule_precedence_violation;
          Alcotest.test_case "resource violation" `Quick
            test_schedule_resource_violation;
          Alcotest.test_case "zero units" `Quick test_schedule_zero_units;
          Alcotest.test_case "usage" `Quick test_schedule_usage;
          Alcotest.test_case "negative start" `Quick
            test_schedule_negative_start;
          Alcotest.test_case "gantt" `Quick test_schedule_gantt;
        ] );
      ( "asap/alap",
        [ Alcotest.test_case "chain" `Quick test_asap_alap ] );
      ( "list",
        [
          Alcotest.test_case "chain" `Quick test_list_sched_chain;
          Alcotest.test_case "resources respected" `Quick
            test_list_sched_respects_resources;
          Alcotest.test_case "unschedulable" `Quick
            test_list_sched_unschedulable;
          Alcotest.test_case "all benchmarks valid" `Quick
            test_list_sched_benchmarks;
          Alcotest.test_case "priorities" `Quick
            test_list_sched_priorities_differ_gracefully;
          Alcotest.test_case "dispatch order" `Quick
            test_dispatch_order_covers_everything;
        ] );
      ( "force-directed",
        [
          Alcotest.test_case "meets deadline" `Quick test_fds_meets_deadline;
          Alcotest.test_case "balances" `Quick test_fds_balances_vs_asap;
          Alcotest.test_case "bad deadline" `Quick test_fds_bad_deadline;
          Alcotest.test_case "min units" `Quick test_fds_min_units;
        ] );
      ( "exact",
        [
          Alcotest.test_case "chain tight" `Quick test_exact_chain_is_tight;
          Alcotest.test_case "independent muls" `Quick
            test_exact_independent_muls;
          Alcotest.test_case "vs list on benchmarks" `Slow
            test_exact_beats_or_matches_list;
        ] );
      ( "fdls",
        [
          Alcotest.test_case "valid on benchmarks" `Slow
            test_fdls_valid_on_benchmarks;
          Alcotest.test_case "competitive" `Quick
            test_fdls_competitive_with_list;
          Alcotest.test_case "unschedulable" `Quick test_fdls_unschedulable;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "split shape" `Quick test_pipeline_split_shape;
          Alcotest.test_case "semantics" `Quick
            test_pipeline_preserves_semantics;
          Alcotest.test_case "helps multiply-bound" `Quick
            test_pipeline_helps_multiply_bound;
          Alcotest.test_case "recover starts" `Quick
            test_pipeline_recover_starts;
          Alcotest.test_case "interval validation" `Quick
            test_pipeline_interval_validation;
          Alcotest.test_case "interval 2" `Quick test_pipeline_interval_two;
          Alcotest.test_case "custom predicate" `Quick
            test_pipeline_custom_predicate;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_list_sched_valid; prop_fds_valid; prop_fdls_valid;
            prop_exact_not_worse_than_list ] );
    ]
