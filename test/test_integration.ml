(* Cross-module integration tests: the paper's experiments as
   assertions, plus end-to-end flows. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph
module Meta = Soft.Meta

let check = Alcotest.check

(* --- Figure 3: the headline table ----------------------------------

   The absolute paper numbers depend on the authors' exact benchmark
   netlists (not published); ours are reconstructions, so we snapshot
   *our* measured table to lock the reproduction, and assert the
   paper's qualitative claim cell by cell: the threaded scheduler is
   within one control step of list scheduling on almost every cell
   ("with few exceptions … the same result as the list scheduler"). *)

let fig3_cell entry_name meta_index (resources : R.t) =
  let e = Hls_bench.Suite.find entry_name in
  let g = e.Hls_bench.Suite.build () in
  let _, meta = List.nth (Meta.fig3 ~resources) meta_index in
  Soft.Scheduler.csteps ~meta ~resources g

let list_cell entry_name resources =
  let e = Hls_bench.Suite.find entry_name in
  let g = e.Hls_bench.Suite.build () in
  S.length (Hard.List_sched.run ~resources g)

let test_fig3_snapshot () =
  (* Measured values of this reproduction (threaded, meta sched 1). *)
  let expected =
    [ ("HAL", [ 8; 6; 13 ]); ("AR", [ 19; 11; 35 ]); ("EF", [ 18; 17; 24 ]);
      ("FIR", [ 11; 8; 19 ]) ]
  in
  List.iter
    (fun (name, cells) ->
      List.iteri
        (fun i (_, resources) ->
          check Alcotest.int
            (Printf.sprintf "%s col %d" name i)
            (List.nth cells i)
            (fig3_cell name 0 resources))
        R.fig3_all)
    expected

let test_fig3_threaded_matches_list () =
  let exceptions = ref 0 and cells = ref 0 in
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iter
        (fun (_, resources) ->
          let list_len = list_cell e.name resources in
          List.iteri
            (fun mi _ ->
              incr cells;
              let threaded = fig3_cell e.name mi resources in
              (* "same result with few exceptions": allow a small gap,
                 count how often any gap appears *)
              if threaded > list_len + 1 then incr exceptions;
              check Alcotest.bool
                (Printf.sprintf "%s meta%d under %s: %d vs list %d" e.name
                   (mi + 1) (R.to_string resources) threaded list_len)
                true
                (threaded <= list_len + 3))
            [ 0; 1; 2; 3 ])
        R.fig3_all)
    Hls_bench.Suite.fig3;
  (* at most a fifth of the cells may deviate by more than one step *)
  check Alcotest.bool
    (Printf.sprintf "few exceptions: %d of %d" !exceptions !cells)
    true
    (!exceptions * 5 <= !cells)

let test_fig3_benchmark_signatures () =
  (* The published op counts and critical paths that pin our delay
     model: EWF = 34 ops / 17 cycles, HAL CP = 6, FIR CP = 7. *)
  let g = (Hls_bench.Suite.find "EF").build () in
  check Alcotest.int "EWF ops" 34 (Hls_bench.Suite.operation_count g);
  check Alcotest.int "EWF diameter" 17 (Paths.diameter g);
  check Alcotest.int "HAL diameter" 6
    (Paths.diameter ((Hls_bench.Suite.find "HAL").build ()));
  check Alcotest.int "FIR diameter" 7
    (Paths.diameter ((Hls_bench.Suite.find "FIR").build ()));
  check Alcotest.int "HAL ops" 11
    (Hls_bench.Suite.operation_count ((Hls_bench.Suite.find "HAL").build ()));
  check Alcotest.int "AR ops" 28
    (Hls_bench.Suite.operation_count ((Hls_bench.Suite.find "AR").build ()))

(* --- Figure 1: spill and wire-delay refinement ---------------------- *)

let test_fig1_spill_scenario () =
  (* Soft refinement after a spill must be no worse than re-running the
     whole scheduler on the mutated graph, plus a small constant — and
     both stay close to the original. *)
  let g = (Hls_bench.Suite.find "HAL").build () in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let cmp =
    Refine.Spill.compare_strategies ~resources:R.fig3_2alu_2mul
      ~meta:Meta.topological ~values:[ m2 ] g
  in
  check Alcotest.bool "soft within 2 of full redo" true
    (cmp.Refine.Spill.soft_csteps <= cmp.Refine.Spill.resched_csteps + 2);
  check Alcotest.bool "spill costs something" true
    (cmp.Refine.Spill.soft_csteps >= cmp.Refine.Spill.original_csteps)

let test_fig1_wire_scenario () =
  (* Soft wire-delay refinement beats the pessimistic hard scheduler on
     every benchmark with enough cross-unit traffic. *)
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let cmp =
        Refine.Wire_insert.compare_strategies ~resources:R.fig3_2alu_2mul
          ~meta:Meta.topological g
      in
      check Alcotest.bool
        (Printf.sprintf "%s: soft %d <= pessimistic %d" name
           cmp.Refine.Wire_insert.soft_csteps
           cmp.Refine.Wire_insert.pessimistic_csteps)
        true
        (cmp.Refine.Wire_insert.soft_csteps
        <= cmp.Refine.Wire_insert.pessimistic_csteps))
    [ "HAL"; "AR"; "EF"; "FIR" ]

(* --- Theorem 3: per-operation work is linear ------------------------

   We cannot assert wall-clock asymptotics robustly in CI, but we can
   assert the structural fact the proof rests on: the number of state
   edges stays O(K·V), so the labelling work per call is linear. *)

let test_state_edges_linear () =
  let rng = Random.State.make [| 11 |] in
  List.iter
    (fun n ->
      let g = Generate.layered rng ~layers:(n / 10) ~width:10 ~fanin:3 in
      let state =
        Soft.Scheduler.run ~resources:R.fig3_2alu_2mul g
      in
      let sg = T.state_graph state in
      let k = T.n_threads state in
      let bound = (2 * k * Graph.n_vertices sg) + Graph.n_edges g in
      check Alcotest.bool
        (Printf.sprintf "n=%d edges %d within bound %d" n (Graph.n_edges sg)
           bound)
        true
        (Graph.n_edges sg <= bound))
    [ 50; 100; 200 ]

(* --- End-to-end: source text to simulated datapath ------------------ *)

let test_end_to_end_flow () =
  let source =
    "input x, y, u, dx, a; output xl, ul, yl, c;\n\
     xl = x + dx; ul = u - 3*x*u*dx - 3*y*dx; yl = y + u*dx;\n\
     if (xl < a) { c = 1; } else { c = 0; }"
  in
  let ast = Ir.Parser.parse source in
  let g = Ir.Lower.run (Ir.Ssa.of_ast ast) in
  let resources = R.fig3_2alu_2mul in
  let state = Soft.Scheduler.run ~resources g in
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  let binding = Rtl.Binding.of_state state in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let interp = List.sort compare (Ir.Interp.run ast env) in
  let sim, _ = Rtl.Sim.run binding ~env in
  check
    Alcotest.(list (pair string int))
    "interpreter = datapath" interp
    (List.sort compare sim);
  (* and the closed form *)
  check
    Alcotest.(list (pair string int))
    "closed form" interp
    (List.sort compare (Hls_bench.Hal.reference ~x:2 ~y:3 ~u:4 ~dx:5 ~a:10))

let test_full_refinement_pipeline () =
  (* schedule -> spill -> floorplan -> wires -> ECO -> bind -> sim *)
  let g = (Hls_bench.Suite.find "HAL").build () in
  let resources = R.fig3_2alu_2mul in
  let state = Soft.Scheduler.run ~resources g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  let fp = Refine.Floorplan.place state in
  let _ = Refine.Wire_insert.apply state fp Refine.Floorplan.default_model in
  let s1 = List.find (fun v -> Graph.name g v = "s1") (Graph.vertices g) in
  let tap = Refine.Eco.add_consumer state ~inputs:[ s1 ] ~op:Op.Neg () in
  ignore tap;
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  let schedule = T.to_schedule state in
  (match S.check ~resources schedule with
  | Ok () -> ()
  | Error m -> Alcotest.failf "schedule: %s" m);
  let binding = Rtl.Binding.of_state state in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  match Rtl.Sim.check_against_eval binding ~env with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_matmul_datapath_against_oracle () =
  let n = 3 in
  let g = Hls_bench.Matmul.matmul ~n () in
  let a = [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  let b = [| [| 9; 8; 7 |]; [| 6; 5; 4 |]; [| 3; 2; 1 |] |] in
  let env =
    List.concat
      (List.init n (fun i ->
           List.concat
             (List.init n (fun j ->
                  [
                    (Printf.sprintf "a%d%d" i j, a.(i).(j));
                    (Printf.sprintf "b%d%d" i j, b.(i).(j));
                  ]))))
  in
  let expected = Hls_bench.Matmul.reference_matmul ~n ~a ~b in
  let state = Soft.Scheduler.run ~resources:R.fig3_2alu_2mul g in
  let binding = Rtl.Binding.of_state state in
  let outputs, _ = Rtl.Sim.run binding ~env in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check Alcotest.int
        (Printf.sprintf "c%d%d" i j)
        expected.(i).(j)
        (List.assoc (Printf.sprintf "c%d%d" i j) outputs)
    done
  done

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_shipped_behaviors_flow_end_to_end () =
  (* every .beh program in examples/behaviors parses, schedules under
     the standard resources, binds and simulates against its own
     interpreter *)
  let dir =
    (* cwd is test/ under `dune runtest`, the project root under
       `dune exec` *)
    List.find Sys.file_exists
      [ "../examples/behaviors"; "examples/behaviors" ]
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".beh")
    |> List.sort compare
  in
  check Alcotest.bool "found shipped behaviors" true (List.length files >= 4);
  List.iter
    (fun file ->
      let source = read_file (Filename.concat dir file) in
      let ast = Ir.Parser.parse source in
      let g = Ir.Lower.run (Ir.Ssa.of_ast ast) in
      let resources = R.fig3_2alu_2mul in
      let state = Soft.Scheduler.run ~resources g in
      (match Soft.Invariant.check_all state with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invariants: %s" file m);
      let binding = Rtl.Binding.of_state state in
      let env =
        List.mapi (fun i x -> (x, ((i * 7) mod 23) - 11)) ast.Ir.Ast.inputs
      in
      let expected = List.sort compare (Ir.Interp.run ast env) in
      let simulated, _ = Rtl.Sim.run binding ~env in
      check
        Alcotest.(list (pair string int))
        (file ^ " datapath") expected
        (List.sort compare simulated);
      (* and through the VLIW backend *)
      let prog = Vliw.Emit.run binding in
      match Vliw.Sim.check_against_graph prog g ~env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s vliw: %s" file m)
    files

let test_state_stats_reflect_lemma7 () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let state = Soft.Scheduler.run ~resources:R.fig3_2alu_2mul g in
  let stats = T.stats ~with_softness:true state in
  let k = T.n_threads state in
  check Alcotest.int "everything scheduled" (Graph.n_vertices g)
    stats.T.n_scheduled;
  check Alcotest.bool "thread in-degree bounded" true
    (stats.T.max_thread_in_degree <= k);
  check Alcotest.bool "thread out-degree bounded" true
    (stats.T.max_thread_out_degree <= k);
  (match stats.T.ordered_pairs with
  | None -> Alcotest.fail "with_softness:true must sample ordered pairs"
  | Some pairs ->
    check Alcotest.bool "softer than total order" true
      (pairs < Graph.n_vertices g * (Graph.n_vertices g - 1) / 2));
  check Alcotest.int "free = scheduled - threaded"
    (stats.T.n_scheduled - stats.T.n_in_threads)
    stats.T.n_free

let test_suite_op_counts_accurate () =
  (* the documented mul/alu counts of every benchmark entry match the
     graphs they build *)
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let muls = ref 0 and alus = ref 0 in
      Graph.iter_vertices
        (fun v ->
          match R.class_of_op (Graph.op g v) with
          | Some R.Multiplier -> incr muls
          | Some R.Alu -> incr alus
          | Some R.Memory | None -> ())
        g;
      check Alcotest.int (e.name ^ " muls") e.n_multiplications !muls;
      check Alcotest.int (e.name ^ " alus") e.n_alu_ops !alus)
    Hls_bench.Suite.all

let test_fig1_example_scenario () =
  (* the paper's own 7-op example: soft schedule on two units, spill of
     v3's value absorbed online at the paper's 6 states *)
  let g = Hls_bench.Fig1.graph () in
  check Alcotest.int "seven ops" 7 (Hls_bench.Suite.operation_count g);
  check Alcotest.int "critical path" 4 (Paths.diameter g);
  let resources = Hls_bench.Fig1.resources in
  let state = Soft.Scheduler.run ~meta:Meta.dfs ~resources g in
  let before = T.diameter state in
  check Alcotest.bool "4..5 states" true (before >= 4 && before <= 5);
  let _ = Refine.Spill.apply state ~value:(Hls_bench.Fig1.v3 g) in
  let after = T.diameter state in
  check Alcotest.bool
    (Printf.sprintf "spill lands at %d (paper: 6)" after)
    true
    (after <= 6);
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.bool "schedule valid" true
    (S.check ~resources (T.to_schedule state) = Ok ())

let test_exact_confirms_threaded_quality () =
  (* On HAL, the threaded scheduler's result is within one step of the
     provably optimal schedule. *)
  let g = (Hls_bench.Suite.find "HAL").build () in
  let resources = R.fig3_2alu_2mul in
  let exact = Hard.Exact_bb.run ~resources g in
  let threaded = Soft.Scheduler.csteps ~resources g in
  check Alcotest.bool "exact search completed" true
    exact.Hard.Exact_bb.optimal;
  let optimal = S.length exact.Hard.Exact_bb.schedule in
  check Alcotest.bool
    (Printf.sprintf "threaded %d within 1 of optimal %d" threaded optimal)
    true
    (threaded <= optimal + 1)

let () =
  Alcotest.run "integration"
    [
      ( "figure3",
        [
          Alcotest.test_case "snapshot" `Quick test_fig3_snapshot;
          Alcotest.test_case "threaded ~ list" `Slow
            test_fig3_threaded_matches_list;
          Alcotest.test_case "benchmark signatures" `Quick
            test_fig3_benchmark_signatures;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "spill" `Quick test_fig1_spill_scenario;
          Alcotest.test_case "wire delay" `Quick test_fig1_wire_scenario;
        ] );
      ( "theorem3",
        [ Alcotest.test_case "state edges linear" `Slow test_state_edges_linear ]
      );
      ( "end-to-end",
        [
          Alcotest.test_case "source to datapath" `Quick test_end_to_end_flow;
          Alcotest.test_case "full refinement pipeline" `Quick
            test_full_refinement_pipeline;
          Alcotest.test_case "matmul vs oracle" `Quick
            test_matmul_datapath_against_oracle;
          Alcotest.test_case "shipped behaviors" `Quick
            test_shipped_behaviors_flow_end_to_end;
          Alcotest.test_case "state stats / Lemma 7" `Quick
            test_state_stats_reflect_lemma7;
          Alcotest.test_case "suite op counts" `Quick
            test_suite_op_counts_accurate;
          Alcotest.test_case "figure 1 example" `Quick
            test_fig1_example_scenario;
          Alcotest.test_case "exact confirms quality" `Slow
            test_exact_confirms_threaded_quality;
        ] );
    ]
