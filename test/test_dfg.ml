(* Unit and property tests for the dfg substrate. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Topo = Dfg.Topo
module Paths = Dfg.Paths
module Reach = Dfg.Reach
module Vec = Dfg.Vec
module Generate = Dfg.Generate
module Mutate = Dfg.Mutate
module Eval = Dfg.Eval
module Delay = Dfg.Delay

let check = Alcotest.check
let intl = Alcotest.(list int)

(* A reusable diamond: a -> b, a -> c, b -> d, c -> d. *)
let diamond () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" Op.Add in
  let b = Graph.add_vertex g ~name:"b" Op.Mul in
  let c = Graph.add_vertex g ~name:"c" Op.Sub in
  let d = Graph.add_vertex g ~name:"d" Op.Add in
  Graph.add_edge g a b;
  Graph.add_edge g a c;
  Graph.add_edge g b d;
  Graph.add_edge g c d;
  (g, a, b, c, d)

(* --- Vec ----------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    check Alcotest.int "index" i (Vec.push v (i * 2))
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 41" 82 (Vec.get v 41);
  Vec.set v 41 7;
  check Alcotest.int "set" 7 (Vec.get v 41)

let test_vec_pop_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  check Alcotest.int "pop" 3 (Vec.pop v);
  check intl "after pop" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v))

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_iterators () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "for_all" true (Vec.for_all (fun x -> x > 0) v);
  let copy = Vec.copy v in
  Vec.set copy 0 99;
  check Alcotest.int "copy is deep" 1 (Vec.get v 0)

let test_vec_remove_first () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 2; 4 ] in
  check Alcotest.bool "mem" true (Vec.mem 2 v);
  check Alcotest.bool "removed" true (Vec.remove_first v 2);
  check intl "only first occurrence, order kept" [ 1; 3; 2; 4 ]
    (Vec.to_list v);
  check Alcotest.bool "absent" false (Vec.remove_first v 99);
  check intl "unchanged on miss" [ 1; 3; 2; 4 ] (Vec.to_list v);
  check Alcotest.bool "removed last occurrence" true (Vec.remove_first v 4);
  check Alcotest.bool "4 gone" false (Vec.mem 4 v)

(* --- Op ------------------------------------------------------------ *)

let test_op_of_string_roundtrip () =
  List.iter
    (fun op ->
      check Alcotest.bool (Op.to_string op) true
        (Op.of_string (Op.to_string op) = Some op))
    [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Neg; Op.Lt; Op.Gt; Op.Eq; Op.And;
      Op.Or; Op.Xor; Op.Shl; Op.Shr; Op.Mac; Op.Msu; Op.Select; Op.Mov;
      Op.Load; Op.Store; Op.Wire; Op.Const 42; Op.Const (-7);
      Op.Input "x"; Op.Output "yz" ];
  check Alcotest.bool "junk rejected" true (Op.of_string "banana" = None);
  check Alcotest.bool "bad const rejected" true
    (Op.of_string "const(xyz)" = None)

let test_op_arity () =
  check Alcotest.int "const" 0 (Op.arity (Op.Const 5));
  check Alcotest.int "input" 0 (Op.arity (Op.Input "x"));
  check Alcotest.int "neg" 1 (Op.arity Op.Neg);
  check Alcotest.int "add" 2 (Op.arity Op.Add);
  check Alcotest.int "select" 3 (Op.arity Op.Select)

let test_op_eval () =
  check Alcotest.int "add" 7 (Op.eval Op.Add [ 3; 4 ]);
  check Alcotest.int "sub" (-1) (Op.eval Op.Sub [ 3; 4 ]);
  check Alcotest.int "mul" 12 (Op.eval Op.Mul [ 3; 4 ]);
  check Alcotest.int "div" 2 (Op.eval Op.Div [ 9; 4 ]);
  check Alcotest.int "div0" 0 (Op.eval Op.Div [ 9; 0 ]);
  check Alcotest.int "lt true" 1 (Op.eval Op.Lt [ 3; 4 ]);
  check Alcotest.int "lt false" 0 (Op.eval Op.Lt [ 4; 3 ]);
  check Alcotest.int "select t" 5 (Op.eval Op.Select [ 1; 5; 6 ]);
  check Alcotest.int "select f" 6 (Op.eval Op.Select [ 0; 5; 6 ]);
  check Alcotest.int "mov" 9 (Op.eval Op.Mov [ 9 ]);
  check Alcotest.int "mac" 23 (Op.eval Op.Mac [ 4; 5; 3 ]);
  check Alcotest.int "msu" (-17) (Op.eval Op.Msu [ 4; 5; 3 ]);
  check Alcotest.int "const" 3 (Op.eval (Op.Const 3) [])

let test_op_eval_arity_mismatch () =
  Alcotest.check_raises "add/1"
    (Invalid_argument "Op.eval: add applied to 1 arguments") (fun () ->
      ignore (Op.eval Op.Add [ 1 ]))

let test_op_equal () =
  check Alcotest.bool "const eq" true (Op.equal (Op.Const 3) (Op.Const 3));
  check Alcotest.bool "const ne" false (Op.equal (Op.Const 3) (Op.Const 4));
  check Alcotest.bool "input" true (Op.equal (Op.Input "x") (Op.Input "x"));
  check Alcotest.bool "mixed" false (Op.equal Op.Add Op.Sub)

let test_op_commutative () =
  check Alcotest.bool "add" true (Op.is_commutative Op.Add);
  check Alcotest.bool "sub" false (Op.is_commutative Op.Sub);
  check Alcotest.bool "select" false (Op.is_commutative Op.Select)

(* --- Delay --------------------------------------------------------- *)

let test_delay_model () =
  check Alcotest.int "mul" 2 (Delay.of_op Op.Mul);
  check Alcotest.int "add" 1 (Delay.of_op Op.Add);
  check Alcotest.int "input" 0 (Delay.of_op (Op.Input "x"));
  check Alcotest.int "unit mul" 1 (Delay.unit_delay Op.Mul);
  check Alcotest.int "unit out" 0 (Delay.unit_delay (Op.Output "y"))

(* --- Graph --------------------------------------------------------- *)

let test_graph_construction () =
  let g, a, b, _c, d = diamond () in
  check Alcotest.int "n_vertices" 4 (Graph.n_vertices g);
  check Alcotest.int "n_edges" 4 (Graph.n_edges g);
  check Alcotest.bool "mem_edge" true (Graph.mem_edge g a b);
  check Alcotest.bool "not mem" false (Graph.mem_edge g a d);
  check intl "preds d" [ b; 2 ] (Graph.preds g d);
  check intl "succs a" [ b; 2 ] (Graph.succs g a);
  check intl "sources" [ a ] (Graph.sources g);
  check intl "sinks" [ d ] (Graph.sinks g);
  check Alcotest.string "name" "a" (Graph.name g a)

let test_graph_duplicate_edge_ignored () =
  let g, a, b, _, _ = diamond () in
  Graph.add_edge g a b;
  check Alcotest.int "edges unchanged" 4 (Graph.n_edges g);
  check intl "preds b" [ a ] (Graph.preds g b)

let test_graph_self_loop_rejected () =
  let g, a, _, _, _ = diamond () in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.add_edge: self loop") (fun () ->
      Graph.add_edge g a a)

let test_graph_unknown_vertex () =
  let g, a, _, _, _ = diamond () in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Graph: unknown vertex 99") (fun () ->
      Graph.add_edge g a 99)

let test_graph_remove_edge () =
  let g, a, b, _, _ = diamond () in
  Graph.remove_edge g a b;
  check Alcotest.bool "gone" false (Graph.mem_edge g a b);
  check Alcotest.int "count" 3 (Graph.n_edges g);
  Alcotest.check_raises "absent"
    (Invalid_argument "Graph.remove_edge: no edge 0 -> 1") (fun () ->
      Graph.remove_edge g a b)

let test_graph_replace_operand () =
  let g, a, b, c, d = diamond () in
  (* Rewire d's first operand (b) to come from a. *)
  Graph.replace_operand g d ~old_pred:b ~new_pred:a;
  check intl "preds d" [ a; c ] (Graph.preds g d);
  check Alcotest.bool "a->d now" true (Graph.mem_edge g a d);
  check Alcotest.bool "b->d gone" false (Graph.mem_edge g b d)

(* The n_edges decrement branch: rewiring an operand onto a vertex that
   already feeds the target merges two edges into one. *)
let test_graph_replace_operand_merge () =
  let g, _, b, c, d = diamond () in
  Graph.replace_operand g d ~old_pred:b ~new_pred:c;
  check intl "preds d merge" [ c; c ] (Graph.preds g d);
  check Alcotest.bool "b->d gone" false (Graph.mem_edge g b d);
  check Alcotest.bool "c->d kept" true (Graph.mem_edge g c d);
  check Alcotest.int "edge count decremented" 3 (Graph.n_edges g);
  check Alcotest.int "operand slots still 2" 2 (Graph.in_degree g d);
  check Alcotest.int "c out-degree deduplicated" 1 (Graph.out_degree g c)

(* After a merge the old_pred may still feed the target through another
   operand slot: the shared edge must survive and accounting stay
   exact. *)
let test_graph_replace_operand_duplicate_old () =
  let g, a, b, c, d = diamond () in
  Graph.replace_operand g d ~old_pred:b ~new_pred:c;
  (* preds d = [c; c]; split one slot back out to a *)
  Graph.replace_operand g d ~old_pred:c ~new_pred:a;
  check intl "preds d split" [ a; c ] (Graph.preds g d);
  check Alcotest.bool "c->d survives the split" true (Graph.mem_edge g c d);
  check Alcotest.bool "a->d added" true (Graph.mem_edge g a d);
  check Alcotest.int "edge count restored" 4 (Graph.n_edges g)

(* Rewiring a slot to the vertex it already reads is a complete no-op:
   no edge churn, no succs reordering, no journal growth. *)
let test_graph_replace_operand_self () =
  let g, _, b, _, d = diamond () in
  let gen = Graph.generation g in
  let succs_before = Graph.succs g b in
  Graph.replace_operand g d ~old_pred:b ~new_pred:b;
  check intl "succs b unchanged" succs_before (Graph.succs g b);
  check Alcotest.int "edge count unchanged" 4 (Graph.n_edges g);
  check Alcotest.int "generation unchanged" gen (Graph.generation g)

let test_graph_generation_journal () =
  let g = Graph.create () in
  check Alcotest.int "fresh graph at generation 0" 0 (Graph.generation g);
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Mul in
  Graph.add_edge g a b;
  Graph.add_edge g a b (* duplicate: ignored, not journalled *);
  check Alcotest.int "three mutations" 3 (Graph.generation g);
  let mid = Graph.generation g in
  let c = Graph.add_vertex g Op.Sub in
  Graph.add_edge g b c;
  Graph.remove_edge g a b;
  check Alcotest.bool "journal suffix in order" true
    (Graph.mutations_since g mid
    = [ Graph.Added_vertex c; Graph.Added_edge (b, c);
        Graph.Removed_edge (a, b) ]);
  check Alcotest.bool "caught-up suffix empty" true
    (Graph.mutations_since g (Graph.generation g) = []);
  Alcotest.check_raises "future generation rejected"
    (Invalid_argument "Graph.mutations_since: generation 99 not in [0,6]")
    (fun () -> ignore (Graph.mutations_since g 99))

let test_graph_is_dag () =
  let g, _, _, _, _ = diamond () in
  check Alcotest.bool "dag" true (Graph.is_dag g)

let test_graph_delay_accessors () =
  let g = Graph.create () in
  let m = Graph.add_vertex g Op.Mul in
  check Alcotest.int "default mul delay" 2 (Graph.delay g m);
  Graph.set_delay g m 5;
  check Alcotest.int "updated" 5 (Graph.delay g m);
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.set_delay: negative delay") (fun () ->
      Graph.set_delay g m (-1))

let test_graph_copy_independent () =
  let g, a, b, _, _ = diamond () in
  let g2 = Graph.copy g in
  Graph.remove_edge g a b;
  check Alcotest.bool "copy unaffected" true (Graph.mem_edge g2 a b);
  check Alcotest.int "copy count" 4 (Graph.n_edges g2)

let test_graph_total_delay () =
  let g, _, _, _, _ = diamond () in
  (* add(1) + mul(2) + sub(1) + add(1) *)
  check Alcotest.int "total" 5 (Graph.total_delay g)

(* --- Topo ---------------------------------------------------------- *)

let test_topo_sort () =
  let g, _, _, _, _ = diamond () in
  let order = Topo.sort g in
  check Alcotest.bool "topological" true (Topo.is_topological g order)

let test_topo_sort_by () =
  let g, a, b, c, d = diamond () in
  (* Prefer larger ids among ready vertices. *)
  let order = Topo.sort_by g ~compare:(fun x y -> compare y x) in
  check intl "order" [ a; c; b; d ] order;
  check Alcotest.bool "topological" true (Topo.is_topological g order)

let test_topo_dfs () =
  let g, a, b, c, d = diamond () in
  check intl "preorder" [ a; b; d; c ] (Topo.dfs_preorder g);
  check intl "rpo" [ a; c; b; d ] (Topo.reverse_postorder g);
  check Alcotest.bool "rpo is topological" true
    (Topo.is_topological g (Topo.reverse_postorder g))

let test_topo_is_topological_rejects () =
  let g, a, b, c, d = diamond () in
  check Alcotest.bool "reversed" false (Topo.is_topological g [ d; c; b; a ]);
  check Alcotest.bool "short" false (Topo.is_topological g [ a; b ]);
  check Alcotest.bool "dup" false (Topo.is_topological g [ a; a; b; d ])

(* --- Paths --------------------------------------------------------- *)

let test_paths_distances () =
  let g, a, b, c, d = diamond () in
  (* delays: a=1 b=2 c=1 d=1 *)
  let sdist = Paths.source_distances g in
  check Alcotest.int "sdist a" 1 sdist.(a);
  check Alcotest.int "sdist b" 3 sdist.(b);
  check Alcotest.int "sdist c" 2 sdist.(c);
  check Alcotest.int "sdist d" 4 sdist.(d);
  let tdist = Paths.sink_distances g in
  check Alcotest.int "tdist a" 4 tdist.(a);
  check Alcotest.int "tdist b" 3 tdist.(b);
  check Alcotest.int "tdist d" 1 tdist.(d);
  check Alcotest.int "diameter" 4 (Paths.diameter g);
  check Alcotest.int "through b" 4 (Paths.distance_through g b);
  check Alcotest.int "through c" 3 (Paths.distance_through g c)

let test_paths_critical () =
  let g, a, b, _, d = diamond () in
  check intl "critical path" [ a; b; d ] (Paths.critical_path g)

let test_paths_asap_alap () =
  let g, a, b, c, d = diamond () in
  let asap = Paths.asap_starts g in
  check Alcotest.int "asap a" 0 asap.(a);
  check Alcotest.int "asap d" 3 asap.(d);
  let alap = Paths.alap_starts g ~deadline:4 in
  check Alcotest.int "alap a" 0 alap.(a);
  check Alcotest.int "alap c" 2 alap.(c);
  let slack = Paths.slack g ~deadline:4 in
  check Alcotest.int "slack b" 0 slack.(b);
  check Alcotest.int "slack c" 1 slack.(c);
  Alcotest.check_raises "tight deadline"
    (Invalid_argument "Paths.alap_starts: deadline 3 < diameter 4") (fun () ->
      ignore (Paths.alap_starts g ~deadline:3))

let test_paths_empty () =
  let g = Graph.create () in
  check Alcotest.int "empty diameter" 0 (Paths.diameter g);
  check intl "empty critical" [] (Paths.critical_path g)

(* --- Reach --------------------------------------------------------- *)

let test_reach_basic () =
  let g, a, b, c, d = diamond () in
  let r = Reach.of_graph g in
  check Alcotest.bool "a<d" true (Reach.precedes r a d);
  check Alcotest.bool "b<c" false (Reach.precedes r b c);
  check Alcotest.bool "strict" false (Reach.precedes r a a);
  check Alcotest.bool "preceq refl" true (Reach.preceq r a a);
  check Alcotest.bool "comparable" true (Reach.comparable r d a);
  check intl "descendants a" [ b; c; d ] (Reach.descendants r a);
  check intl "ancestors d" [ a; b; c ] (Reach.ancestors r d);
  (* pairs: a<b a<c a<d b<d c<d *)
  check Alcotest.int "count" 5 (Reach.count_pairs r)

let reach_matches_bruteforce n seed =
  let rng = Random.State.make [| seed |] in
  let g = Generate.random_dag rng ~n ~edge_prob:0.2 in
  let r = Reach.of_graph g in
  let reachable_dfs u v =
    let visited = Array.make n false in
    let rec go w =
      List.exists (fun s -> s = v || ((not visited.(s)) && (visited.(s) <- true; go s)))
        (Graph.succs g w)
    in
    go u
  in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Reach.precedes r u v <> reachable_dfs u v then ok := false
    done
  done;
  !ok

let test_reach_vs_bruteforce () =
  for seed = 1 to 10 do
    check Alcotest.bool
      (Printf.sprintf "seed %d" seed)
      true
      (reach_matches_bruteforce 30 seed)
  done

(* --- Generate ------------------------------------------------------ *)

let test_generate_shapes () =
  let rng = Random.State.make [| 42 |] in
  let g = Generate.random_dag rng ~n:50 ~edge_prob:0.1 in
  check Alcotest.bool "random dag" true (Graph.is_dag g);
  let layered = Generate.layered rng ~layers:5 ~width:4 ~fanin:2 in
  check Alcotest.bool "layered dag" true (Graph.is_dag layered);
  check Alcotest.int "layered size" 20 (Graph.n_vertices layered);
  let chain = Generate.chain ~n:10 in
  check Alcotest.int "chain diameter" 10 (Paths.diameter chain);
  let fj = Generate.fork_join ~width:8 in
  check Alcotest.bool "fork-join dag" true (Graph.is_dag fj);
  let tree = Generate.expression_tree rng ~depth:4 in
  check Alcotest.bool "tree dag" true (Graph.is_dag tree);
  check Alcotest.int "tree leaves+ops" 31 (Graph.n_vertices tree);
  let sp = Generate.series_parallel rng ~size:30 in
  check Alcotest.bool "series-parallel dag" true (Graph.is_dag sp);
  check Alcotest.int "series-parallel size" 30 (Graph.n_vertices sp)

let test_generate_layered_fanin () =
  let rng = Random.State.make [| 7 |] in
  let g = Generate.layered rng ~layers:4 ~width:5 ~fanin:3 in
  Graph.iter_vertices
    (fun v ->
      let d = Graph.in_degree g v in
      if v >= 5 then check Alcotest.int (Printf.sprintf "fanin v%d" v) 3 d)
    g

(* --- Mutate -------------------------------------------------------- *)

let test_mutate_insert_on_edge () =
  let g, a, b, _, _ = diamond () in
  let w = Mutate.insert_on_edge g ~src:a ~dst:b ~op:Op.Wire ~delay:2 () in
  check Alcotest.bool "a->w" true (Graph.mem_edge g a w);
  check Alcotest.bool "w->b" true (Graph.mem_edge g w b);
  check Alcotest.bool "a->b gone" false (Graph.mem_edge g a b);
  check Alcotest.bool "still dag" true (Graph.is_dag g);
  check Alcotest.int "delay" 2 (Graph.delay g w);
  Alcotest.check_raises "absent edge"
    (Invalid_argument "Mutate.insert_on_edge: no edge 0 -> 1") (fun () ->
      ignore (Mutate.insert_on_edge g ~src:a ~dst:b ~op:Op.Wire ()))

let evaluable_graph () =
  let g = Graph.create () in
  let x = Graph.add_vertex g ~name:"x" (Op.Input "x") in
  let y = Graph.add_vertex g ~name:"y" (Op.Input "y") in
  let s = Graph.add_vertex g ~name:"s" Op.Add in
  Graph.add_edge g x s;
  Graph.add_edge g y s;
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  Graph.add_edge g s m;
  Graph.add_edge g y m;
  let o = Graph.add_vertex g ~name:"o" (Op.Output "o") in
  Graph.add_edge g m o;
  (g, s, m)

let test_mutate_wire_preserves_eval () =
  let g, s, m = evaluable_graph () in
  let env = [ ("x", 3); ("y", 4) ] in
  let before = Eval.outputs g env in
  let _w = Mutate.insert_on_edge g ~src:s ~dst:m ~op:Op.Wire ~delay:1 () in
  check
    Alcotest.(list (pair string int))
    "outputs preserved" before (Eval.outputs g env)

let test_mutate_spill_preserves_eval () =
  let g, s, m = evaluable_graph () in
  let env = [ ("x", 3); ("y", 4) ] in
  let before = Eval.outputs g env in
  let st, ld = Mutate.insert_spill g ~value:s ~reload_for:[ m ] in
  check Alcotest.bool "dag" true (Graph.is_dag g);
  check Alcotest.bool "s->st" true (Graph.mem_edge g s st);
  check Alcotest.bool "st->ld" true (Graph.mem_edge g st ld);
  check Alcotest.bool "ld->m" true (Graph.mem_edge g ld m);
  check Alcotest.bool "s->m gone" false (Graph.mem_edge g s m);
  check
    Alcotest.(list (pair string int))
    "outputs preserved" before (Eval.outputs g env)

let test_mutate_spill_bad_consumer () =
  let g, s, _ = evaluable_graph () in
  Alcotest.check_raises "not a consumer"
    (Invalid_argument "Mutate.insert_spill: 0 is not a consumer of 2")
    (fun () -> ignore (Mutate.insert_spill g ~value:s ~reload_for:[ 0 ]))

(* --- Eval ---------------------------------------------------------- *)

let test_eval_run () =
  let g, _, _ = evaluable_graph () in
  let values = Eval.run g [ ("x", 3); ("y", 4) ] in
  check Alcotest.int "sum" 7 values.(2);
  check Alcotest.int "mul" 28 values.(3);
  check
    Alcotest.(list (pair string int))
    "outputs" [ ("o", 28) ]
    (Eval.outputs g [ ("x", 3); ("y", 4) ])

let test_eval_missing_input () =
  let g, _, _ = evaluable_graph () in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Eval.run g [ ("x", 3) ]))

(* --- Dot ----------------------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_output () =
  let g, _, _, _, _ = diamond () in
  let dot = Dfg.Dot.of_graph ~highlight:(Paths.critical_path g) g in
  check Alcotest.bool "digraph" true (contains ~needle:"digraph G {" dot);
  check Alcotest.bool "edge" true (contains ~needle:"n0 -> n1;" dot);
  check Alcotest.bool "highlight" true (contains ~needle:"fillcolor" dot);
  let sched = Dfg.Dot.of_schedule g ~starts:[| 0; 1; 1; 3 |] in
  check Alcotest.bool "clusters" true (contains ~needle:"cluster_0" sched)

(* --- Serial -------------------------------------------------------- *)

let graphs_isomorphic a b =
  (* same names, ops, delays, and name-level edges *)
  let summary g =
    ( List.sort compare
        (List.map
           (fun v -> (Graph.name g v, Op.to_string (Graph.op g v), Graph.delay g v))
           (Graph.vertices g)),
      List.sort compare
        (List.map (fun (u, v) -> (Graph.name g u, Graph.name g v))
           (Graph.edges g)) )
  in
  summary a = summary b

let test_serial_roundtrip () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let back = Dfg.Serial.of_string (Dfg.Serial.to_string g) in
      check Alcotest.bool (e.name ^ " roundtrip") true
        (graphs_isomorphic g back))
    Hls_bench.Suite.all

let test_serial_parse () =
  let g =
    Dfg.Serial.of_string
      "# demo\nvertex x in(x) 0\nvertex m mul\nvertex y out(y) 0\n\
       edge x m\nedge m y\n"
  in
  check Alcotest.int "vertices" 3 (Graph.n_vertices g);
  check Alcotest.int "default delay" 2
    (Graph.delay g
       (List.find (fun v -> Graph.name g v = "m") (Graph.vertices g)))

let expect_serial_error text fragment =
  try
    ignore (Dfg.Serial.of_string text);
    Alcotest.failf "expected parse error on %S" text
  with Dfg.Serial.Parse_error m ->
    check Alcotest.bool
      (Printf.sprintf "%S mentions %S" m fragment)
      true
      (let nl = String.length fragment and hl = String.length m in
       let rec go i = i + nl <= hl && (String.sub m i nl = fragment || go (i + 1)) in
       go 0)

let test_serial_errors () =
  expect_serial_error "vertex a banana 1" "unknown op";
  expect_serial_error "vertex a add 1\nvertex a add 1" "duplicate";
  expect_serial_error "edge a b" "undeclared";
  expect_serial_error "vertex a add -2" "negative delay";
  expect_serial_error "frobnicate" "unknown directive"

let test_serial_eval_preserved () =
  let g, _, _ = evaluable_graph () in
  let back = Dfg.Serial.of_string (Dfg.Serial.to_string g) in
  check
    Alcotest.(list (pair string int))
    "same outputs"
    (Eval.outputs g [ ("x", 3); ("y", 4) ])
    (Eval.outputs back [ ("x", 3); ("y", 4) ])

(* --- Reduce -------------------------------------------------------- *)

let test_reduce_triangle () =
  let g = Graph.create () in
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Add in
  let c = Graph.add_vertex g Op.Add in
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Graph.add_edge g a c;
  check
    Alcotest.(list (pair int int))
    "redundant" [ (a, c) ]
    (Dfg.Reduce.redundant_edges g);
  let r = Dfg.Reduce.transitive_reduction g in
  check Alcotest.int "edges" 2 (Graph.n_edges r);
  check Alcotest.bool "reduced" true (Dfg.Reduce.is_reduced r);
  check Alcotest.bool "original not" false (Dfg.Reduce.is_reduced g)

let prop_reduction_preserves_reachability =
  QCheck.Test.make ~name:"transitive reduction preserves reachability"
    ~count:60
    QCheck.(pair (int_range 1 25) (int_range 0 10_000))
    (fun (n, seed) ->
      let g =
        Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:0.3
      in
      let r = Dfg.Reduce.transitive_reduction g in
      let ra = Reach.of_graph g and rb = Reach.of_graph r in
      let ok = ref (Dfg.Reduce.is_reduced r) in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Reach.precedes ra u v <> Reach.precedes rb u v then
            ok := false
        done
      done;
      !ok)

(* --- qcheck properties --------------------------------------------- *)

let seeded_dag =
  QCheck.make
    ~print:(fun (n, p, seed) -> Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
    QCheck.Gen.(
      triple (int_range 1 40)
        (float_range 0.05 0.5)
        (int_range 0 10_000))

let graph_of (n, p, seed) =
  Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:p

let prop_random_is_dag =
  QCheck.Test.make ~name:"generated graphs are DAGs" ~count:100 seeded_dag
    (fun spec -> Graph.is_dag (graph_of spec))

let prop_topo_valid =
  QCheck.Test.make ~name:"Topo.sort yields a topological order" ~count:100
    seeded_dag (fun spec ->
      let g = graph_of spec in
      Topo.is_topological g (Topo.sort g))

let prop_rpo_valid =
  QCheck.Test.make ~name:"reverse postorder is topological" ~count:100
    seeded_dag (fun spec ->
      let g = graph_of spec in
      Topo.is_topological g (Topo.reverse_postorder g))

let prop_diameter_is_max_distance =
  QCheck.Test.make ~name:"diameter = max vertex distance" ~count:100 seeded_dag
    (fun spec ->
      let g = graph_of spec in
      let dia = Paths.diameter g in
      let max_through =
        Graph.fold_vertices
          (fun acc v -> max acc (Paths.distance_through g v))
          0 g
      in
      dia = max_through)

let prop_lemma5 =
  (* Lemma 5: distance v = delay v + max preds' sdist + max succs' tdist *)
  QCheck.Test.make ~name:"Lemma 5 distance decomposition" ~count:100 seeded_dag
    (fun spec ->
      let g = graph_of spec in
      let sdist = Paths.source_distances g and tdist = Paths.sink_distances g in
      Graph.fold_vertices
        (fun acc v ->
          let best_pred =
            List.fold_left (fun m p -> max m sdist.(p)) 0 (Graph.preds g v)
          in
          let best_succ =
            List.fold_left (fun m s -> max m tdist.(s)) 0 (Graph.succs g v)
          in
          acc
          && Paths.distance_through g v
             = Graph.delay g v + best_pred + best_succ)
        true g)

let prop_critical_path_consistent =
  QCheck.Test.make ~name:"critical path sums to the diameter" ~count:100
    seeded_dag (fun spec ->
      let g = graph_of spec in
      if Graph.n_vertices g = 0 then true
      else begin
        let path = Paths.critical_path g in
        let weight = List.fold_left (fun a v -> a + Graph.delay g v) 0 path in
        weight = Paths.diameter g
        && (* consecutive vertices are connected *)
        (let rec chained = function
           | a :: (b :: _ as rest) -> Graph.mem_edge g a b && chained rest
           | _ -> true
         in
         chained path)
      end)

let prop_reach_transitive =
  QCheck.Test.make ~name:"reachability is transitive" ~count:50 seeded_dag
    (fun spec ->
      let g = graph_of spec in
      let r = Reach.of_graph g in
      let n = Graph.n_vertices g in
      let ok = ref true in
      for a = 0 to n - 1 do
        List.iter
          (fun b ->
            List.iter
              (fun c -> if not (Reach.precedes r a c) then ok := false)
              (Reach.descendants r b))
          (Reach.descendants r a)
      done;
      !ok)

(* Growth-trace oracle: replay a random add_vertex/add_edge sequence
   into one incrementally-maintained Reach and assert it matches a
   from-scratch closure after every step. This is the contract
   [Threaded_graph.sync] relies on when it replays the mutation journal
   instead of rebuilding. *)
let prop_incremental_reach_oracle =
  QCheck.Test.make ~name:"incremental Reach = of_graph on growth traces"
    ~count:60
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n_target, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create () in
      let r = Reach.of_graph g in
      let agree () =
        let fresh = Reach.of_graph g in
        let n = Graph.n_vertices g in
        Reach.size r = n
        && begin
             let ok = ref true in
             for u = 0 to n - 1 do
               for v = 0 to n - 1 do
                 if
                   u <> v
                   && Reach.precedes r u v <> Reach.precedes fresh u v
                 then ok := false
               done
             done;
             !ok
           end
      in
      let ok = ref true in
      for _ = 1 to n_target do
        ignore (Graph.add_vertex g Op.Add);
        ignore (Reach.add_vertex r);
        if !ok && not (agree ()) then ok := false;
        (* a few random edges, always low id -> high id, so the graph
           stays a DAG without a cycle check *)
        let n = Graph.n_vertices g in
        if n >= 2 then
          for _ = 1 to Random.State.int rng 3 do
            let v = 1 + Random.State.int rng (n - 1) in
            let u = Random.State.int rng v in
            if not (Graph.mem_edge g u v) then begin
              Graph.add_edge g u v;
              Reach.add_edge r u v
            end
            else
              (* redundant closure updates must be harmless *)
              Reach.add_edge r u v;
            if !ok && not (agree ()) then ok := false
          done
      done;
      !ok)

let prop_eval_deterministic =
  QCheck.Test.make ~name:"expression trees evaluate consistently" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 0 1000))
    (fun (depth, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.expression_tree rng ~depth in
      let env =
        List.filter_map
          (fun v ->
            match Graph.op g v with
            | Op.Input name -> Some (name, (Hashtbl.hash name mod 21) - 10)
            | _ -> None)
          (Graph.vertices g)
      in
      Eval.run g env = Eval.run g env)

(* parse(print g) is isomorphic to g: the vertex names carry the
   bijection, so compare op/delay and the predecessor *set* vertexwise
   (plain Serial interleaves edge lines by source, so operand order is
   only preserved per (print, parse) pair, not guaranteed here —
   Serve.Fingerprint.canonical is the operand-order-exact variant). *)
let prop_serial_roundtrip_iso =
  QCheck.Test.make ~name:"Serial round-trip is an isomorphism" ~count:100
    seeded_dag (fun spec ->
      let g = graph_of spec in
      let h = Dfg.Serial.of_string (Dfg.Serial.to_string g) in
      let h_of_name = Hashtbl.create 64 in
      Graph.iter_vertices
        (fun v -> Hashtbl.replace h_of_name (Graph.name h v) v)
        h;
      let sorted_pred_names gr v =
        List.sort compare (List.map (Graph.name gr) (Graph.preds gr v))
      in
      Graph.n_vertices g = Graph.n_vertices h
      && Graph.n_edges g = Graph.n_edges h
      && List.for_all
           (fun v ->
             match Hashtbl.find_opt h_of_name (Graph.name g v) with
             | None -> false
             | Some w ->
               Graph.op g v = Graph.op h w
               && Graph.delay g v = Graph.delay h w
               && sorted_pred_names g v = sorted_pred_names h w)
           (Graph.vertices g))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_is_dag;
      prop_topo_valid;
      prop_rpo_valid;
      prop_diameter_is_max_distance;
      prop_lemma5;
      prop_critical_path_consistent;
      prop_reach_transitive;
      prop_incremental_reach_oracle;
      prop_eval_deterministic;
      prop_reduction_preserves_reachability;
      prop_serial_roundtrip_iso;
    ]

let () =
  Alcotest.run "dfg"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "pop/clear" `Quick test_vec_pop_clear;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators/copy" `Quick test_vec_iterators;
          Alcotest.test_case "mem/remove_first" `Quick test_vec_remove_first;
        ] );
      ( "op",
        [
          Alcotest.test_case "arity" `Quick test_op_arity;
          Alcotest.test_case "of_string roundtrip" `Quick
            test_op_of_string_roundtrip;
          Alcotest.test_case "eval" `Quick test_op_eval;
          Alcotest.test_case "eval arity mismatch" `Quick
            test_op_eval_arity_mismatch;
          Alcotest.test_case "equal" `Quick test_op_equal;
          Alcotest.test_case "commutativity" `Quick test_op_commutative;
        ] );
      ("delay", [ Alcotest.test_case "model" `Quick test_delay_model ]);
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_graph_construction;
          Alcotest.test_case "duplicate edge" `Quick
            test_graph_duplicate_edge_ignored;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "unknown vertex" `Quick test_graph_unknown_vertex;
          Alcotest.test_case "remove edge" `Quick test_graph_remove_edge;
          Alcotest.test_case "replace operand" `Quick
            test_graph_replace_operand;
          Alcotest.test_case "replace operand merge" `Quick
            test_graph_replace_operand_merge;
          Alcotest.test_case "replace operand duplicate old" `Quick
            test_graph_replace_operand_duplicate_old;
          Alcotest.test_case "replace operand self" `Quick
            test_graph_replace_operand_self;
          Alcotest.test_case "generation/journal" `Quick
            test_graph_generation_journal;
          Alcotest.test_case "is_dag" `Quick test_graph_is_dag;
          Alcotest.test_case "delays" `Quick test_graph_delay_accessors;
          Alcotest.test_case "copy" `Quick test_graph_copy_independent;
          Alcotest.test_case "total delay" `Quick test_graph_total_delay;
        ] );
      ( "topo",
        [
          Alcotest.test_case "sort" `Quick test_topo_sort;
          Alcotest.test_case "sort_by" `Quick test_topo_sort_by;
          Alcotest.test_case "dfs orders" `Quick test_topo_dfs;
          Alcotest.test_case "is_topological rejects" `Quick
            test_topo_is_topological_rejects;
        ] );
      ( "paths",
        [
          Alcotest.test_case "distances" `Quick test_paths_distances;
          Alcotest.test_case "critical path" `Quick test_paths_critical;
          Alcotest.test_case "asap/alap/slack" `Quick test_paths_asap_alap;
          Alcotest.test_case "empty graph" `Quick test_paths_empty;
        ] );
      ( "reach",
        [
          Alcotest.test_case "basics" `Quick test_reach_basic;
          Alcotest.test_case "vs brute force" `Quick test_reach_vs_bruteforce;
        ] );
      ( "generate",
        [
          Alcotest.test_case "shapes" `Quick test_generate_shapes;
          Alcotest.test_case "layered fanin" `Quick test_generate_layered_fanin;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "insert on edge" `Quick test_mutate_insert_on_edge;
          Alcotest.test_case "wire preserves eval" `Quick
            test_mutate_wire_preserves_eval;
          Alcotest.test_case "spill preserves eval" `Quick
            test_mutate_spill_preserves_eval;
          Alcotest.test_case "spill bad consumer" `Quick
            test_mutate_spill_bad_consumer;
        ] );
      ( "eval",
        [
          Alcotest.test_case "run" `Quick test_eval_run;
          Alcotest.test_case "missing input" `Quick test_eval_missing_input;
        ] );
      ("dot", [ Alcotest.test_case "output" `Quick test_dot_output ]);
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "parse" `Quick test_serial_parse;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "eval preserved" `Quick
            test_serial_eval_preserved;
        ] );
      ( "reduce",
        [ Alcotest.test_case "triangle" `Quick test_reduce_triangle ] );
      ("properties", qcheck_cases);
    ]
