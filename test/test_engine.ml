(* The scheduler portfolio: the Engine registry, the QoR-annotated run
   wrapper, the annealing and branch-and-bound engines, and race mode.

   The load-bearing properties: every registered engine's output is a
   valid resource-constrained schedule (Schedule.check) whose soft
   state — when the engine returns one — passes the full threaded-
   graph invariant; branch and bound degrades to its incumbent on any
   budget; a race is QoR-no-worse than each of its racers. *)

module Graph = Dfg.Graph
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module Engine = Soft.Engine
module Invariant = Soft.Invariant
module Race = Serve.Race

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

let ok_or_fail label = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" label m

let get_engine name =
  match Engine.of_string name with
  | Ok e -> e
  | Error m -> Alcotest.fail m

(* --- registry -------------------------------------------------------- *)

let test_registry_names () =
  let required =
    [ "naive"; "list"; "fdls"; "force_directed"; "anneal"; "bnb"; "soft" ]
  in
  List.iter
    (fun n ->
      check Alcotest.string (n ^ " resolves to itself") n
        (Engine.name (get_engine n)))
    required;
  (* aliases resolve to canonical engines *)
  List.iter
    (fun (alias, canon) ->
      check Alcotest.string (alias ^ " is an alias") canon
        (Engine.name (get_engine alias)))
    [
      ("threaded", "soft");
      ("sa", "anneal");
      ("exact", "bnb");
      ("exhaustive", "bnb");
      ("fds", "force_directed");
      ("ANNEAL", "anneal");
    ];
  (match Engine.of_string "no-such-engine" with
  | Ok _ -> Alcotest.fail "bogus engine resolved"
  | Error m ->
    check Alcotest.bool "error names the portfolio" true
      (let has s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       has m "anneal" && has m "bnb"));
  check Alcotest.bool "at least 7 engines registered" true
    (List.length (Engine.all ()) >= 7);
  let names = Engine.names () in
  check Alcotest.int "names are unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_duplicate_registration () =
  let dup =
    (module struct
      let name = "soft"
      let about = "duplicate"
      let capabilities = []

      let schedule _ ~resources g =
        ( Soft.Scheduler.run_to_schedule ~resources g,
          { Engine.optimal = false; degraded = false; state = None } )
    end : Engine.S)
  in
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Engine.register: duplicate engine soft") (fun () ->
      Engine.register dup)

(* --- annotated runs --------------------------------------------------- *)

let test_run_annotations () =
  let g = Hls_bench.Fig1.graph () in
  let o = Engine.run (get_engine "soft") ~resources:Hls_bench.Fig1.resources g in
  check Alcotest.string "engine name" "soft" o.Engine.annot.Engine.engine;
  check Alcotest.int "csteps = schedule length"
    (S.length o.Engine.schedule)
    o.Engine.annot.Engine.csteps;
  check Alcotest.bool "soft engine returns its state" true
    (Option.is_some o.Engine.state);
  check Alcotest.bool "registers positive on a real graph" true
    (o.Engine.annot.Engine.registers > 0);
  check Alcotest.bool "wall clock non-negative" true
    (o.Engine.annot.Engine.wall_s >= 0.0)

let test_compare_qor () =
  let g = Hls_bench.Fig1.graph () in
  let resources = Hls_bench.Fig1.resources in
  let o = Engine.run (get_engine "soft") ~resources g in
  let shorter =
    { o with annot = { o.Engine.annot with Engine.csteps = o.Engine.annot.Engine.csteps - 1 } }
  in
  check Alcotest.bool "fewer csteps wins" true (Engine.compare_qor shorter o < 0);
  let lighter =
    { o with annot = { o.Engine.annot with Engine.registers = 0 } }
  in
  check Alcotest.bool "registers break cstep ties" true
    (Engine.compare_qor lighter o < 0)

(* --- every engine produces valid schedules (QCheck) ------------------- *)

let random_graph seed =
  let n = 1 + (seed mod 24) in
  Generate.random_dag
    (Random.State.make [| seed; 0xe1 |])
    ~n ~edge_prob:0.25

(* Budgets keep the expensive engines (bnb subsets, naive speculation)
   proportionate on throwaway graphs; validity must hold at any budget. *)
let property_ctx = Engine.ctx ~seed:7 ~budget:5_000 ()

let engine_validity_prop eng seed =
  let g = random_graph seed in
  let o = Engine.run ~ctx:property_ctx eng ~resources:two_two g in
  (match S.check ~resources:two_two o.Engine.schedule with
  | Ok () -> ()
  | Error m ->
    QCheck.Test.fail_reportf "%s: invalid schedule on seed %d: %s"
      (Engine.name eng) seed m);
  (match o.Engine.state with
  | None -> ()
  | Some st -> (
    match Invariant.check_all st with
    | Ok () -> ()
    | Error m ->
      QCheck.Test.fail_reportf "%s: invariant broken on seed %d: %s"
        (Engine.name eng) seed m));
  true

let engine_validity_tests =
  List.map
    (fun eng ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Printf.sprintf "%s: valid schedule + invariant" (Engine.name eng))
           ~count:25 QCheck.small_nat
           (engine_validity_prop eng)))
    (Engine.all ())

(* --- determinism ------------------------------------------------------ *)

let test_seed_determinism () =
  let resources = two_two in
  List.iter
    (fun name ->
      let eng = get_engine name in
      let run seed =
        let g = Hls_bench.Suite.(find "HAL").build () in
        let o = Engine.run ~ctx:(Engine.ctx ~seed ()) eng ~resources g in
        S.starts o.Engine.schedule
      in
      check
        Alcotest.(array int)
        (name ^ ": same seed, same schedule")
        (run 42) (run 42))
    [ "anneal"; "search" ];
  (* and the annealer never regresses its topo-order starting point *)
  let g = Hls_bench.Suite.(find "HAL").build () in
  let soft = Engine.run (get_engine "soft") ~resources g in
  let annealed =
    Engine.run ~ctx:(Engine.ctx ~seed:1 ()) (get_engine "anneal") ~resources g
  in
  check Alcotest.bool "anneal <= soft on csteps" true
    (annealed.Engine.annot.Engine.csteps <= soft.Engine.annot.Engine.csteps)

(* --- branch and bound degradation ------------------------------------- *)

let test_bnb_incumbent_fallback () =
  let g = Hls_bench.Suite.(find "AR").build () in
  let r = Hard.Exact_bb.run ~node_limit:1 ~resources:two_two g in
  check Alcotest.bool "budget exhausted" false r.Hard.Exact_bb.optimal;
  ok_or_fail "incumbent is valid"
    (S.check ~resources:two_two r.Hard.Exact_bb.schedule);
  let seed = Hard.List_sched.run ~resources:two_two g in
  check Alcotest.bool "incumbent no worse than its list-scheduling seed" true
    (S.length r.Hard.Exact_bb.schedule <= S.length seed)

let test_bnb_should_stop () =
  let g = Hls_bench.Suite.(find "AR").build () in
  let r =
    Hard.Exact_bb.run
      ~should_stop:(fun () -> true)
      ~resources:two_two g
  in
  (* the cutoff is polled, so the search stops early but still returns
     the (valid) incumbent *)
  ok_or_fail "stopped search returns a valid schedule"
    (S.check ~resources:two_two r.Hard.Exact_bb.schedule)

let test_bnb_still_optimal_on_chain () =
  (* The ALAP/ASAP pruning must not cut the optimum away. *)
  let g = Generate.chain ~n:6 in
  let r = Hard.Exact_bb.run ~resources:two_two g in
  check Alcotest.bool "optimal" true r.Hard.Exact_bb.optimal;
  let soft = Soft.Scheduler.run_to_schedule ~resources:two_two g in
  check Alcotest.bool "bnb <= soft" true
    (S.length r.Hard.Exact_bb.schedule <= S.length soft)

let bnb_matches_unpruned_prop seed =
  (* The strengthened bounds only prune; the optimum is unchanged. An
     unbounded run on small graphs is the ground truth. *)
  let g =
    Generate.random_dag (Random.State.make [| seed; 0xbb |]) ~n:(1 + (seed mod 8))
      ~edge_prob:0.3
  in
  let r = Hard.Exact_bb.run ~resources:two_two g in
  if not r.Hard.Exact_bb.optimal then true
  else begin
    let brute = Hard.Exact_bb.run ~node_limit:50_000_000 ~resources:two_two g in
    r.Hard.Exact_bb.schedule |> S.length
    = S.length brute.Hard.Exact_bb.schedule
  end

(* --- race mode -------------------------------------------------------- *)

let race_no_worse design resources =
  let g = design () in
  let engines = Race.default_portfolio () in
  match Race.run ~engines ~resources g with
  | Error m -> Alcotest.fail m
  | Ok race ->
    ok_or_fail "winner schedule valid"
      (S.check ~resources race.Race.winner.Engine.schedule);
    List.iter
      (fun (e : Race.entry) ->
        match e.Race.outcome with
        | None -> ()
        | Some o ->
          check Alcotest.bool
            (Printf.sprintf "race no worse than %s" e.Race.engine)
            true
            (race.Race.winner.Engine.annot.Engine.csteps
            <= o.Engine.annot.Engine.csteps))
      race.Race.entries

let test_race_fig1 () = race_no_worse Hls_bench.Fig1.graph Hls_bench.Fig1.resources
let test_race_hal () = race_no_worse Hls_bench.Suite.(find "HAL").build two_two

let test_race_subset_and_errors () =
  let g = Hls_bench.Fig1.graph () in
  let resources = Hls_bench.Fig1.resources in
  (* any subset works, and the winner is marked with a portfolio member *)
  let engines = List.filter_map Engine.find [ "list"; "bnb" ] in
  (match Race.run ~engines ~resources g with
  | Error m -> Alcotest.fail m
  | Ok race ->
    check Alcotest.bool "winner is a racer" true
      (List.mem race.Race.winner.Engine.annot.Engine.engine [ "list"; "bnb" ]));
  match Race.run ~engines:[] ~resources g with
  | Ok _ -> Alcotest.fail "empty portfolio should be an error"
  | Error _ -> ()

let () =
  Alcotest.run "engine"
    [
      ( "registry",
        [
          Alcotest.test_case "names and aliases" `Quick test_registry_names;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_registration;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "run annotates" `Quick test_run_annotations;
          Alcotest.test_case "qor order" `Quick test_compare_qor;
        ] );
      ("validity", engine_validity_tests);
      ( "determinism",
        [ Alcotest.test_case "seeded engines" `Quick test_seed_determinism ] );
      ( "bnb",
        [
          Alcotest.test_case "incumbent fallback" `Quick
            test_bnb_incumbent_fallback;
          Alcotest.test_case "should_stop cutoff" `Quick test_bnb_should_stop;
          Alcotest.test_case "optimal on chain" `Quick
            test_bnb_still_optimal_on_chain;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"pruning preserves the optimum" ~count:20
               QCheck.small_nat bnb_matches_unpruned_prop);
        ] );
      ( "race",
        [
          Alcotest.test_case "fig1 no worse" `Quick test_race_fig1;
          Alcotest.test_case "HAL no worse" `Quick test_race_hal;
          Alcotest.test_case "subsets and errors" `Quick
            test_race_subset_and_errors;
        ] );
    ]
