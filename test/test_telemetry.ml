(* Tests for the telemetry subsystem: events arrive in causal order,
   counters agree with the state's own [stats] after full runs, a
   disabled (or even enabled) sink leaves scheduling results
   bit-identical, and the Chrome trace_event export is well-formed
   JSON with the expected structure. *)

module Graph = Dfg.Graph
module R = Hard.Resources
module T = Soft.Threaded_graph
module Tel = Telemetry

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

let build name = (Hls_bench.Suite.find name).Hls_bench.Suite.build ()

let record_run ?(resources = two_two) g =
  let counters = Tel.Counters.create () in
  let recorder = Tel.Recorder.create () in
  let sink = Tel.Sink.tee (Tel.Counters.sink counters) (Tel.Recorder.sink recorder) in
  let state = Soft.Scheduler.run_traced ~sink ~resources g in
  (state, Tel.Counters.snapshot counters, Tel.Recorder.events recorder)

(* --- causal order --------------------------------------------------- *)

(* Replay the event stream through a per-call state machine: each
   schedule call must open with [Schedule_start], then scan (candidates,
   optional tie-break), then decide ([Chosen] or [Free_placed]), then
   re-tighten (edge events), then close with [Schedule_done]. *)
let test_causal_order () =
  let g = build "HAL" in
  let _, _, events = record_run g in
  Alcotest.(check bool) "events recorded" true (events <> []);
  let open_call = ref None in
  let phase = ref `Closed in
  let candidate_costs = ref [] in
  List.iter
    (fun ({ event; _ } : Tel.timed) ->
      match event with
      | Tel.Schedule_start { v; _ } ->
        check Alcotest.bool "no nested call" true (!open_call = None);
        open_call := Some v;
        phase := `Scanning;
        candidate_costs := []
      | Tel.Candidate { v; cost; _ } ->
        check Alcotest.(option int) "candidate inside its call" (Some v)
          !open_call;
        check Alcotest.bool "candidate during scan" true (!phase = `Scanning);
        candidate_costs := cost :: !candidate_costs
      | Tel.Tie_break { v; ties; _ } ->
        check Alcotest.(option int) "tie-break inside its call" (Some v)
          !open_call;
        check Alcotest.bool "tie-break after candidates" true
          (!phase = `Scanning && List.length !candidate_costs >= ties)
      | Tel.Chosen { v; cost; _ } ->
        check Alcotest.(option int) "chosen inside its call" (Some v)
          !open_call;
        check Alcotest.bool "chosen after scan" true (!phase = `Scanning);
        (* Definition 5 made visible: the chosen cost is the scan minimum. *)
        check Alcotest.int "chosen cost is minimal" (List.fold_left min cost !candidate_costs) cost;
        phase := `Committing
      | Tel.Free_placed { v; _ } ->
        check Alcotest.(option int) "free placement inside its call" (Some v)
          !open_call;
        check Alcotest.bool "free placement before edges" true
          (!phase = `Scanning);
        phase := `Committing
      | Tel.Edge_added _ | Tel.Edge_removed _ ->
        check Alcotest.bool "edges only while committing" true
          (!phase = `Committing)
      | Tel.Reach_update _ ->
        (* Closure syncs happen whenever the state first observes a
           graph mutation — legal both inside and outside a call. *)
        ()
      | Tel.Cache_event _ ->
        (* Result-cache traffic comes from the serving layer, never from
           inside a schedule call. *)
        check Alcotest.bool "cache event outside calls" true
          (!open_call = None)
      | Tel.Schedule_done { v; _ } ->
        check Alcotest.(option int) "done closes its call" (Some v) !open_call;
        open_call := None;
        phase := `Closed)
    events;
  check Alcotest.bool "last call closed" true (!open_call = None)

let test_timestamps_monotone () =
  let g = build "AR" in
  let _, _, events = record_run g in
  let rec walk = function
    | (a : Tel.timed) :: (b : Tel.timed) :: rest ->
      check Alcotest.bool "timestamps non-decreasing" true
        (a.at_ns <= b.at_ns);
      walk (b :: rest)
    | _ -> ()
  in
  walk events

(* --- counters vs the state's own stats ------------------------------ *)

let counters_agree name () =
  let g = build name in
  let state, snap, _ = record_run g in
  let stats = T.stats state in
  check Alcotest.int "schedule calls = |V|" (Graph.n_vertices g)
    snap.Tel.Counters.schedule_calls;
  check Alcotest.int "free placements" stats.T.n_free
    snap.Tel.Counters.free_placements;
  check Alcotest.int "state edges" stats.T.n_state_edges
    snap.Tel.Counters.last_state_edges;
  check Alcotest.int "max in-degree" stats.T.max_thread_in_degree
    snap.Tel.Counters.last_max_in_degree;
  check Alcotest.int "max out-degree" stats.T.max_thread_out_degree
    snap.Tel.Counters.last_max_out_degree;
  check Alcotest.int "final diameter" (T.diameter state)
    snap.Tel.Counters.last_diameter;
  (* Lemma 7: observed degrees never exceeded K. *)
  let k = T.n_threads state in
  check Alcotest.bool "Lemma 7 in-bound" true
    (snap.Tel.Counters.max_in_degree_observed <= k);
  check Alcotest.bool "Lemma 7 out-bound" true
    (snap.Tel.Counters.max_out_degree_observed <= k)

let test_softness_sampling () =
  let g = build "HAL" in
  Tel.set_softness_period 1;
  Fun.protect
    ~finally:(fun () -> Tel.set_softness_period 0)
    (fun () ->
      let state, snap, _ = record_run g in
      let stats = T.stats ~with_softness:true state in
      check
        Alcotest.(option int)
        "last softness sample = |pairs| of the final state"
        stats.T.ordered_pairs
        snap.Tel.Counters.last_ordered_pairs)

(* --- telemetry only observes ---------------------------------------- *)

let identical_schedules name () =
  let plain =
    let g = build name in
    T.to_schedule (Soft.Scheduler.run ~resources:two_two g)
  in
  let instrumented =
    let g = build name in
    let state, _, _ = record_run g in
    T.to_schedule state
  in
  check
    Alcotest.(array int)
    "identical start times"
    (Hard.Schedule.starts plain)
    (Hard.Schedule.starts instrumented);
  check Alcotest.int "identical length" (Hard.Schedule.length plain)
    (Hard.Schedule.length instrumented)

(* The incremental reachability index is an optimisation, never a
   policy change: a spill + wire-insert refinement run must produce the
   same schedule whether the closure is updated in place or rebuilt
   from scratch at every sync, and whether or not telemetry watches. *)
let refined_starts ~instrument mode =
  T.set_reach_mode mode;
  Fun.protect
    ~finally:(fun () -> T.set_reach_mode `Incremental)
    (fun () ->
      let g = build "HAL" in
      let refine state =
        let m2 =
          List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g)
        in
        ignore (Refine.Spill.apply state ~value:m2);
        let fp = Refine.Floorplan.place state in
        ignore
          (Refine.Wire_insert.apply state fp Refine.Floorplan.default_model)
      in
      if instrument then begin
        let counters = Tel.Counters.create () in
        let sink = Tel.Counters.sink counters in
        let state = Soft.Scheduler.run_traced ~sink ~resources:two_two g in
        Tel.with_sink sink (fun () -> refine state);
        ( Hard.Schedule.starts (T.to_schedule state),
          Some (Tel.Counters.snapshot counters) )
      end
      else begin
        let state = Soft.Scheduler.run ~resources:two_two g in
        refine state;
        (Hard.Schedule.starts (T.to_schedule state), None)
      end)

let test_refinement_bit_identity () =
  let plain, _ = refined_starts ~instrument:false `Incremental in
  let incremental, inc_snap = refined_starts ~instrument:true `Incremental in
  let rebuilt, reb_snap = refined_starts ~instrument:true `Rebuild in
  check
    Alcotest.(array int)
    "telemetry does not change the refined schedule" plain incremental;
  check
    Alcotest.(array int)
    "closure mode does not change the refined schedule" plain rebuilt;
  (match inc_snap with
  | None -> Alcotest.fail "instrumented run must snapshot counters"
  | Some s ->
    (* every spill/wire rewire is covered, so the incremental path
       never has to fall back to a full rebuild *)
    check Alcotest.int "no rebuild fallback" 0 s.Tel.Counters.closure_rebuilds;
    check Alcotest.bool "incremental updates happened" true
      (s.Tel.Counters.closure_incremental_updates > 0));
  match reb_snap with
  | None -> Alcotest.fail "instrumented run must snapshot counters"
  | Some s ->
    check Alcotest.bool "rebuild mode rebuilds" true
      (s.Tel.Counters.closure_rebuilds > 0);
    check Alcotest.int "rebuild mode never updates in place" 0
      s.Tel.Counters.closure_incremental_updates

let test_sink_restored () =
  check Alcotest.bool "telemetry disabled outside with_sink" false
    (Tel.enabled ());
  let recorder = Tel.Recorder.create () in
  Tel.with_sink (Tel.Recorder.sink recorder) (fun () ->
      check Alcotest.bool "enabled inside" true (Tel.enabled ()));
  check Alcotest.bool "disabled after" false (Tel.enabled ());
  (* exceptions restore too *)
  (try
     Tel.with_sink (Tel.Recorder.sink recorder) (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "disabled after exception" false (Tel.enabled ())

(* --- exporters ------------------------------------------------------ *)

(* Exporter output is parsed back with the shared JSON reader from the
   QoR library — the same code path the `softsched diff` gate trusts. *)
module Json = Qor.Json

let test_chrome_trace_json () =
  let g = build "HAL" in
  let state, snap, events = record_run g in
  let tracks =
    List.init (T.n_threads state) (fun k ->
        (k, Printf.sprintf "fu %d" k))
  in
  let json_text = Tel.Chrome_trace.to_string ~tracks events in
  let json =
    match Json.parse json_text with
    | j -> j
    | exception Json.Parse_error m ->
      Alcotest.failf "malformed trace JSON: %s" m
  in
  let trace_events =
    match Json.member "traceEvents" json with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  let phase e =
    match Json.member "ph" e with Some (Json.Str p) -> p | _ -> "?"
  in
  let slices = List.filter (fun e -> phase e = "X") trace_events in
  check Alcotest.int "one slice per schedule call"
    snap.Tel.Counters.schedule_calls (List.length slices);
  (* every functional-unit thread used by the schedule has a named
     track, and every slice lands on a known track *)
  let named_tids =
    List.filter_map
      (fun e ->
        match (phase e, Json.member "tid" e) with
        | "M", Some (Json.Num tid) -> Some (int_of_float tid)
        | _ -> None)
      trace_events
  in
  List.iter
    (fun (k, _) ->
      check Alcotest.bool
        (Printf.sprintf "track %d named" k)
        true (List.mem k named_tids))
    tracks;
  List.iter
    (fun e ->
      match Json.member "tid" e with
      | Some (Json.Num tid) ->
        check Alcotest.bool "slice on a named track" true
          (List.mem (int_of_float tid) named_tids)
      | _ -> Alcotest.fail "slice without tid")
    slices;
  (* counter series present *)
  check Alcotest.bool "diameter counter series" true
    (List.exists
       (fun e ->
         phase e = "C"
         && Json.member "name" e = Some (Json.Str "diameter"))
       trace_events)

let test_counters_json () =
  let g = build "HAL" in
  let _, snap, _ = record_run g in
  let json =
    match Json.parse (Tel.Counters.to_json snap) with
    | j -> j
    | exception Json.Parse_error m ->
      Alcotest.failf "malformed counters JSON: %s" m
  in
  let pairs = Tel.Counters.to_alist snap in
  check Alcotest.bool "snapshot not empty" true (pairs <> []);
  List.iter
    (fun (k, v) ->
      match Json.member k json with
      | Some (Json.Num n) -> check (Alcotest.float 1e-9) k v n
      | _ -> Alcotest.failf "counter %s missing from JSON" k)
    pairs;
  let keys = List.map fst pairs in
  check Alcotest.bool "keys sorted" true (List.sort compare keys = keys);
  (* dump: one aligned line per counter, numbers in a fixed column *)
  let lines =
    List.filter
      (fun l -> String.length l > 0)
      (String.split_on_char '\n' (Tel.Counters.dump snap))
  in
  check Alcotest.int "one dump line per counter" (List.length pairs)
    (List.length lines);
  match List.map String.length lines with
  | [] -> ()
  | w :: rest ->
    List.iter
      (fun w' -> check Alcotest.int "lines padded to equal width" w w')
      rest

let test_text_trace () =
  let g = build "HAL" in
  let _, snap, events = record_run g in
  let text = Tel.Text_trace.to_string ~vertex:(Graph.name g) events in
  let lines = String.split_on_char '\n' text in
  let count prefix =
    List.length
      (List.filter
         (fun l ->
           match String.index_opt l ']' with
           | Some i ->
             let body = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
             String.length body >= String.length prefix
             && String.sub body 0 (String.length prefix) = prefix
           | None -> false)
         lines)
  in
  check Alcotest.int "one schedule line per call"
    snap.Tel.Counters.schedule_calls (count "schedule ");
  check Alcotest.int "one done line per call"
    snap.Tel.Counters.schedule_calls (count "done");
  (* design vocabulary, not raw ids *)
  check Alcotest.bool "uses vertex names" true
    (List.exists
       (fun l ->
         match String.index_opt l ']' with
         | Some i ->
           let body = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
           String.length body >= 12 && String.sub body 0 12 = "schedule dx "
         | None -> false)
       lines)

(* --- histograms and gauges ------------------------------------------ *)

module H = Tel.Histogram

let record_all h vs = List.iter (H.record h) vs

(* Small-but-wide value generator: mixes tiny values (exact buckets)
   with large ones (log buckets), which is exactly the latency shape
   the service records (ns). *)
let values_gen =
  QCheck.Gen.(
    list_size (int_range 0 200)
      (oneof
         [
           int_range 0 20;
           int_range 0 10_000;
           map (fun k -> 1 lsl k) (int_range 0 40);
           int_range 0 max_int;
         ]))

let values_arb = QCheck.make ~print:QCheck.Print.(list int) values_gen

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check bool) "fresh is empty" true (H.is_empty h);
  record_all h [ 0; 1; 8; 17; 1000; 1000 ];
  Alcotest.(check int) "count" 6 (H.count h);
  Alcotest.(check int) "sum" 2026 (H.sum h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (2026.0 /. 6.0) (H.mean h);
  (* p0/p100 are exact by the clamp; mid percentiles stay within the
     12.5% relative bucket error. *)
  Alcotest.(check int) "p0 = min" 0 (H.percentile h 0.0);
  Alcotest.(check int) "p100 = max" 1000 (H.percentile h 100.0);
  let p50 = H.percentile h 50.0 in
  Alcotest.(check bool) "p50 near a recorded value" true (p50 >= 8 && p50 <= 20)

let test_histogram_bucket_error () =
  (* Every reported bucket upper bound is within 12.5% above the
     recorded value (sub_bits = 3). *)
  List.iter
    (fun v ->
      let h = H.create () in
      H.record h v;
      let p = H.percentile h 50.0 in
      Alcotest.(check bool)
        (Printf.sprintf "p50 of singleton %d within bucket error (got %d)" v p)
        true
        (p >= v && float_of_int p <= (1.0 +. 0.125) *. float_of_int v +. 1.0))
    [ 1; 7; 8; 9; 100; 1023; 1024; 1025; 999_983; 1 lsl 40; (1 lsl 55) + 3 ]

let prop_merge_is_interleaved =
  QCheck.Test.make ~count:200 ~name:"merge of split == interleaved recording"
    QCheck.(pair values_arb values_arb)
    (fun (xs, ys) ->
      let ha = H.create () and hb = H.create () and hall = H.create () in
      record_all ha xs;
      record_all hb ys;
      record_all hall (xs @ ys);
      H.equal (H.merge ha hb) hall)

let prop_percentiles_monotone =
  QCheck.Test.make ~count:200 ~name:"percentiles monotone in p" values_arb
    (fun vs ->
      QCheck.assume (vs <> []);
      let h = H.create () in
      record_all h vs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ] in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono (List.map (H.percentile h) ps))

let test_histogram_concurrent_merge () =
  (* Per-thread recording then merge must agree with one histogram fed
     the same values sequentially — the daemon's per-thread pattern. *)
  let n_threads = 4 and per_thread = 5_000 in
  let value i j = (i * 31 + j * 7919) land 0xFFFFF in
  let parts = Array.init n_threads (fun _ -> H.create ()) in
  let threads =
    List.init n_threads (fun i ->
        Thread.create
          (fun () ->
            for j = 0 to per_thread - 1 do
              H.record parts.(i) (value i j)
            done)
          ())
  in
  List.iter Thread.join threads;
  let merged =
    Array.fold_left (fun acc h -> H.merge acc h) (H.create ()) parts
  in
  let seq = H.create () in
  for i = 0 to n_threads - 1 do
    for j = 0 to per_thread - 1 do
      H.record seq (value i j)
    done
  done;
  Alcotest.(check bool) "merged == sequential" true (H.equal merged seq);
  Alcotest.(check int) "count" (n_threads * per_thread) (H.count merged)

let test_histogram_json () =
  let h = H.create () in
  record_all h [ 5; 50; 500 ];
  let s = H.to_json h in
  match Qor.Json.parse_result s with
  | Error m -> Alcotest.failf "to_json unparseable: %s" m
  | Ok j ->
    (match Qor.Json.member "count" j with
    | Some (Qor.Json.Num n) -> Alcotest.(check int) "count" 3 (int_of_float n)
    | _ -> Alcotest.fail "no count");
    List.iter
      (fun k ->
        if Qor.Json.member k j = None then Alcotest.failf "missing %S" k)
      [ "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p95"; "p99" ]

let test_gauge () =
  let g = Tel.Gauge.create () in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Tel.Gauge.get g);
  Tel.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Tel.Gauge.get g);
  Tel.Gauge.add g 1.0;
  Tel.Gauge.add g (-3.0);
  Alcotest.(check (float 1e-9)) "add" 0.5 (Tel.Gauge.get g);
  Tel.Gauge.set_int g 7;
  Alcotest.(check (float 0.0)) "set_int" 7.0 (Tel.Gauge.get g)

let metrics_qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_is_interleaved; prop_percentiles_monotone ]

let () =
  Alcotest.run "telemetry"
    [
      ( "causal order",
        [
          Alcotest.test_case "per-call state machine" `Quick test_causal_order;
          Alcotest.test_case "timestamps monotone" `Quick
            test_timestamps_monotone;
        ] );
      ( "counters",
        [
          Alcotest.test_case "agree with stats (HAL)" `Quick
            (counters_agree "HAL");
          Alcotest.test_case "agree with stats (AR)" `Quick
            (counters_agree "AR");
          Alcotest.test_case "softness sampling" `Quick test_softness_sampling;
        ] );
      ( "observation only",
        [
          Alcotest.test_case "bit-identical schedules (HAL)" `Quick
            (identical_schedules "HAL");
          Alcotest.test_case "bit-identical schedules (EF)" `Quick
            (identical_schedules "EF");
          Alcotest.test_case "bit-identical refinement (spill+wire)" `Quick
            test_refinement_bit_identity;
          Alcotest.test_case "sink install/restore" `Quick test_sink_restored;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_json;
          Alcotest.test_case "counters json + dump" `Quick test_counters_json;
          Alcotest.test_case "text trace" `Quick test_text_trace;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "bucket error bound" `Quick
            test_histogram_bucket_error;
          Alcotest.test_case "concurrent per-thread merge" `Quick
            test_histogram_concurrent_merge;
          Alcotest.test_case "json export" `Quick test_histogram_json;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ]
        @ metrics_qcheck_cases );
    ]
