(* QoR layer tests: the JSON reader itself, the versioned run-report
   schema (emit -> parse round-trip), the regression diff gate and the
   online invariant auditor over the whole benchmark suite. *)

module Json = Qor.Json

let check = Alcotest.check

let resources = Hard.Resources.fig3_2alu_2mul

let build name () = (Hls_bench.Suite.find name).Hls_bench.Suite.build ()

let run ?audit_rate name =
  Qor.Flow.run ?audit_rate ~tool_version:"test" ~resources ~design:name
    ~build:(build name) ()

(* --- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\tt");
        ("u", Json.Str "caf\xc3\xa9");
        ("i", Json.int 42);
        ("neg", Json.num (-17.5));
        ("big", Json.num 1e22);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.int 1; Json.Arr []; Json.Obj [] ]);
      ]
  in
  let reparse ?minify () = Json.parse (Json.to_string ?minify v) in
  check Alcotest.bool "pretty round-trip" true (reparse () = v);
  check Alcotest.bool "minified round-trip" true (reparse ~minify:true () = v)

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8 *)
  (match Json.parse {|"café"|} with
  | Json.Str s -> check Alcotest.string "unicode escape" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "expected string");
  match Json.parse {|"\n\t\\\""|} with
  | Json.Str s -> check Alcotest.string "simple escapes" "\n\t\\\"" s
  | _ -> Alcotest.fail "expected string"

let test_json_rejects () =
  let bad s =
    match Json.parse_result s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  List.iter bad
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "{} trailing"; "\"unterminated";
      "{\"a\" 1}"; "[1 2]"; "+5";
    ]

let test_json_numbers () =
  (* integral floats print without a decimal point and survive *)
  check Alcotest.string "integral" "1234567" (Json.to_string (Json.int 1234567));
  check Alcotest.bool "fraction round-trips" true
    (Json.parse (Json.to_string (Json.num 0.1)) = Json.Num 0.1)

(* --- report schema --------------------------------------------------- *)

let test_report_schema () =
  let report = run ~audit_rate:1 "HAL" in
  let text = Qor.Report.to_string report in
  let json = Json.parse text in
  (* top-level stable fields *)
  check Alcotest.bool "tool discriminator" true
    (Json.member "tool" json = Some (Json.Str Qor.Report.tool));
  check Alcotest.bool "schema version" true
    (Json.member "schema_version" json
    = Some (Json.Num (float_of_int Qor.Report.schema_version)));
  check Alcotest.bool "design" true
    (Json.member "design" json = Some (Json.Str "HAL"));
  let phases =
    match Json.member "phases" json with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "missing phases array"
  in
  (* exactly the documented flow phases, in order *)
  let names =
    List.map
      (fun p ->
        match Json.member "phase" p with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "phase entry without name")
      phases
  in
  check Alcotest.(list string) "phase list" Qor.Flow.phases names;
  (* required fields per phase *)
  List.iter
    (fun p ->
      let has k = Json.member k p <> None in
      check Alcotest.bool "wall_ns" true (has "wall_ns");
      check Alcotest.bool "alloc_words" true (has "alloc_words");
      (match Json.member "counters" p with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "counters must be an object");
      match Json.member "metrics" p with
      | Some (Json.Arr ms) ->
        check Alcotest.bool "phase has metrics" true (ms <> []);
        List.iter
          (fun m ->
            (match Json.member "name" m with
            | Some (Json.Str _) -> ()
            | _ -> Alcotest.fail "metric without name");
            (match Json.member "value" m with
            | Some (Json.Num _) -> ()
            | _ -> Alcotest.fail "metric without numeric value");
            match Json.member "better" m with
            | Some (Json.Str ("lower" | "higher" | "info")) -> ()
            | _ -> Alcotest.fail "metric with bad gating direction")
          ms
      | _ -> Alcotest.fail "metrics must be an array")
    phases;
  (* audit block present and clean *)
  (match Json.member "audit" json with
  | Some (Json.Obj _ as a) ->
    check Alcotest.bool "zero violations" true
      (Json.member "violations" a = Some (Json.Num 0.))
  | _ -> Alcotest.fail "audit block missing despite --audit");
  (* the parser accepts what the printer emits, and the round-trip
     preserves every field the diff gate reads *)
  match Qor.Report.of_string text with
  | Error m -> Alcotest.failf "report does not re-parse: %s" m
  | Ok back ->
    check Alcotest.string "design round-trip" report.Qor.Report.design
      back.Qor.Report.design;
    check Alcotest.string "resources round-trip" report.Qor.Report.resources
      back.Qor.Report.resources;
    check Alcotest.int "span count round-trip"
      (List.length report.Qor.Report.spans)
      (List.length back.Qor.Report.spans);
    match Qor.Diff.compare ~baseline:report ~current:back () with
    | Error m -> Alcotest.failf "self-diff errored: %s" m
    | Ok r -> check Alcotest.bool "round-trip is QoR-identical" true
                (Qor.Diff.ok r && r.Qor.Diff.regressions = []
                && r.Qor.Diff.improvements = [])

let test_report_rejects_foreign () =
  let reject s =
    match Qor.Report.of_string s with
    | Ok _ -> Alcotest.failf "accepted foreign report %S" s
    | Error _ -> ()
  in
  List.iter reject
    [
      "{}";
      {|{"tool": "other-tool", "schema_version": 1}|};
      {|{"tool": "softsched-report", "schema_version": 999, "design": "X",
         "resources": "", "tool_version": "", "git": "", "phases": []}|};
      "not json at all";
    ]

(* --- diff gate ------------------------------------------------------- *)

(* Worsen one gated metric by [pct] percent and return the doctored
   report. *)
let worsen report ~phase ~metric:mname ~pct =
  let open Qor.Metrics in
  let spans =
    List.map
      (fun s ->
        if s.phase <> phase then s
        else
          {
            s with
            metrics =
              List.map
                (fun m ->
                  if m.name <> mname then m
                  else
                    let sign =
                      match m.direction with
                      | Lower_better -> 1.
                      | Higher_better -> -1.
                      | Info -> 0.
                    in
                    { m with value = m.value *. (1. +. (sign *. pct /. 100.)) })
                s.metrics;
          })
      report.Qor.Report.spans
  in
  { report with Qor.Report.spans }

let test_diff_regression () =
  let baseline = run "HAL" in
  (* worsen the schedule diameter — the headline gated metric *)
  let current =
    worsen baseline ~phase:"soft_schedule" ~metric:"csteps" ~pct:50.
  in
  match Qor.Diff.compare ~baseline ~current () with
  | Error m -> Alcotest.failf "diff errored: %s" m
  | Ok r ->
    check Alcotest.bool "gate fails" false (Qor.Diff.ok r);
    (match r.Qor.Diff.regressions with
    | [ f ] ->
      check Alcotest.string "names the phase" "soft_schedule" f.Qor.Diff.phase;
      check Alcotest.string "names the metric" "csteps" f.Qor.Diff.name;
      check Alcotest.bool "reports the movement" true
        (abs_float (f.Qor.Diff.change_pct -. 50.) < 1e-6)
    | l -> Alcotest.failf "expected exactly one regression, got %d"
             (List.length l));
    (* the verdict names the offender *)
    let rendered = Qor.Diff.render r in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh
        && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    check Alcotest.bool "render names offender" true
      (contains rendered "soft_schedule/csteps");
    check Alcotest.bool "render says FAIL" true (contains rendered "FAIL")

let test_diff_tolerance () =
  let baseline = run "HAL" in
  let current =
    worsen baseline ~phase:"soft_schedule" ~metric:"csteps" ~pct:5.
  in
  (match Qor.Diff.compare ~max_regress_pct:10. ~baseline ~current () with
  | Error m -> Alcotest.failf "diff errored: %s" m
  | Ok r -> check Alcotest.bool "5% within 10% tolerance" true (Qor.Diff.ok r));
  match Qor.Diff.compare ~max_regress_pct:2. ~baseline ~current () with
  | Error m -> Alcotest.failf "diff errored: %s" m
  | Ok r -> check Alcotest.bool "5% beyond 2% tolerance" false (Qor.Diff.ok r)

let test_diff_improvement_passes () =
  let baseline = run "HAL" in
  (* a *better* current run must never trip the gate *)
  let current =
    worsen baseline ~phase:"soft_schedule" ~metric:"csteps" ~pct:(-20.)
  in
  match Qor.Diff.compare ~baseline ~current () with
  | Error m -> Alcotest.failf "diff errored: %s" m
  | Ok r ->
    check Alcotest.bool "gate passes" true (Qor.Diff.ok r);
    check Alcotest.bool "improvement recorded" true
      (r.Qor.Diff.improvements <> [])

let test_diff_design_mismatch () =
  let a = run "HAL" and b = run "AR" in
  match Qor.Diff.compare ~baseline:a ~current:b () with
  | Ok _ -> Alcotest.fail "cross-design diff must be refused"
  | Error _ -> ()

(* --- auditor over the full suite ------------------------------------- *)

let audit_clean name () =
  let report = run ~audit_rate:1 name in
  match report.Qor.Report.audit with
  | None -> Alcotest.fail "audit summary missing"
  | Some a ->
    check Alcotest.bool "auditor sampled events" true
      (a.Qor.Audit.events_seen > 0);
    check Alcotest.bool "auditor ran checks" true (a.Qor.Audit.checks_run > 0);
    check Alcotest.int "zero invariant violations" 0 a.Qor.Audit.violations

let test_audit_sampling () =
  (* rate 3 checks roughly a third of the commits (plus the per-phase
     boundary checks), never more than rate 1 *)
  let r1 = run ~audit_rate:1 "EF" and r3 = run ~audit_rate:3 "EF" in
  match (r1.Qor.Report.audit, r3.Qor.Report.audit) with
  | Some a1, Some a3 ->
    check Alcotest.int "same event stream" a1.Qor.Audit.events_seen
      a3.Qor.Audit.events_seen;
    check Alcotest.bool "sampling runs fewer checks" true
      (a3.Qor.Audit.checks_run < a1.Qor.Audit.checks_run)
  | _ -> Alcotest.fail "audit summaries missing"

(* --- determinism (what makes reports diffable) ----------------------- *)

let test_flow_deterministic () =
  let a = run "FIR" and b = run "FIR" in
  match Qor.Diff.compare ~baseline:a ~current:b () with
  | Error m -> Alcotest.failf "diff errored: %s" m
  | Ok r ->
    check Alcotest.bool "two runs are QoR-identical" true
      (Qor.Diff.ok r && r.Qor.Diff.regressions = []
      && r.Qor.Diff.improvements = [])

let () =
  let suite_audit =
    List.map
      (fun e ->
        let name = e.Hls_bench.Suite.name in
        Alcotest.test_case name `Quick (audit_clean name))
      Hls_bench.Suite.all
  in
  Alcotest.run "qor"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "number printing" `Quick test_json_numbers;
        ] );
      ( "report schema",
        [
          Alcotest.test_case "emit + parse round-trip" `Quick
            test_report_schema;
          Alcotest.test_case "rejects foreign files" `Quick
            test_report_rejects_foreign;
        ] );
      ( "diff gate",
        [
          Alcotest.test_case "regression fails the gate" `Quick
            test_diff_regression;
          Alcotest.test_case "tolerance" `Quick test_diff_tolerance;
          Alcotest.test_case "improvement passes" `Quick
            test_diff_improvement_passes;
          Alcotest.test_case "design mismatch refused" `Quick
            test_diff_design_mismatch;
        ] );
      ("audit: suite is invariant-clean", suite_audit);
      ( "determinism",
        [
          Alcotest.test_case "audit sampling" `Quick test_audit_sampling;
          Alcotest.test_case "repeated runs diff clean" `Quick
            test_flow_deterministic;
        ] );
    ]
