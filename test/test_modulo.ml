(* Tests for the loop-pipelining subsystem: cyclic loop graphs, the
   .ldfg serial format, the MII bounds, modulo schedules and their
   unrolled meaning, the iterative modulo scheduler, and the engine
   registration. The headline property (the ISSUE acceptance
   criterion): the scheduler achieves II = MII on the textbook FIR and
   IIR loop kernels under every Figure 3 configuration. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module L = Modulo.Loop_graph
module MS = Modulo.Mschedule
module Mii = Modulo.Mii
module Ims = Modulo.Ims
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph
module SG = Retime.Seq_graph

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

(* the accumulator kernel: x -> m -> acc, acc feeding itself next
   iteration — the smallest genuinely cyclic loop *)
let acc_kernel () =
  let g = L.create () in
  let x = L.add_vertex g ~name:"x" (Op.Input "x") in
  let m = L.add_vertex g ~name:"m" Op.Mul in
  let acc = L.add_vertex g ~name:"acc" Op.Add in
  L.add_edge g x m;
  L.add_edge g m acc;
  L.add_edge g ~distance:1 acc acc;
  (g, x, m, acc)

(* --- Loop_graph ----------------------------------------------------- *)

let test_loop_graph_basics () =
  let g, x, m, acc = acc_kernel () in
  check Alcotest.int "vertices" 3 (L.n_vertices g);
  check Alcotest.int "edges" 3 (L.n_edges g);
  check Alcotest.int "back edges" 1 (L.n_back_edges g);
  check Alcotest.int "max distance" 1 (L.max_distance g);
  check Alcotest.(list (pair int int)) "preds acc" [ (m, 0); (acc, 1) ]
    (L.preds g acc);
  check Alcotest.(list (pair int int)) "succs x" [ (m, 0) ] (L.succs g x);
  check Alcotest.int "total delay" 3 (L.total_delay g);
  check Alcotest.bool "well formed" true (L.well_formed g = Ok ())

let test_loop_graph_rejects () =
  let g = L.create () in
  let a = L.add_vertex g Op.Add in
  (try
     L.add_edge g ~distance:(-1) a a;
     Alcotest.fail "expected Invalid_argument on negative distance"
   with Invalid_argument _ -> ());
  (try
     L.add_edge g a a;
     Alcotest.fail "expected Invalid_argument on zero-distance self loop"
   with Invalid_argument _ -> ());
  (try
     L.add_edge g a 99;
     Alcotest.fail "expected Invalid_argument on unknown endpoint"
   with Invalid_argument _ -> ())

let test_loop_graph_multi_distance () =
  let g = L.create () in
  let a = L.add_vertex g Op.Add in
  let b = L.add_vertex g Op.Add in
  L.add_edge g ~distance:1 a b;
  L.add_edge g ~distance:2 a b;
  check Alcotest.int "same pair, two distances" 2 (L.n_edges g);
  L.add_edge g ~distance:1 a b;
  check Alcotest.int "duplicate triple ignored" 2 (L.n_edges g)

let test_zero_distance_cycle_detected () =
  let g = L.create () in
  let a = L.add_vertex g ~name:"a" Op.Add in
  let b = L.add_vertex g ~name:"b" Op.Add in
  L.add_edge g a b;
  L.add_edge g b a;
  check Alcotest.bool "ill formed" true (L.well_formed g <> Ok ());
  (* a distance on the cycle repairs it *)
  let h = L.create () in
  let a = L.add_vertex h Op.Add in
  let b = L.add_vertex h Op.Add in
  L.add_edge h a b;
  L.add_edge h ~distance:1 b a;
  check Alcotest.bool "distance breaks the cycle" true (L.well_formed h = Ok ())

let test_body () =
  let g, _, _, _ = acc_kernel () in
  let body = L.body g in
  check Alcotest.bool "body is a dag" true (Graph.is_dag body);
  check Alcotest.int "body keeps all vertices" 3 (Graph.n_vertices body);
  check Alcotest.int "body drops back edges" 2 (Graph.n_edges body)

let test_of_dag () =
  let dag = (Hls_bench.Suite.find "FIR").build () in
  let g = L.of_dag dag in
  check Alcotest.int "same vertices" (Graph.n_vertices dag) (L.n_vertices g);
  check Alcotest.int "same edges, all distance 0" (Graph.n_edges dag)
    (L.n_edges g);
  check Alcotest.int "no back edges" 0 (L.n_back_edges g);
  Graph.iter_vertices
    (fun v ->
      check Alcotest.bool "ops preserved at same id" true
        (Graph.op dag v = L.op g v && Graph.delay dag v = L.delay g v))
    dag;
  (try
     ignore (L.of_dag ~carries:[ (0, 1, 0) ] dag);
     Alcotest.fail "expected Invalid_argument on distance-0 carry"
   with Invalid_argument _ -> ())

let test_to_seq_graph () =
  let g = L.create () in
  let a = L.add_vertex g Op.Add in
  let b = L.add_vertex g Op.Mul in
  L.add_edge g a b;
  L.add_edge g ~distance:3 b a;
  L.add_edge g ~distance:1 b a;
  (* parallel edges collapse to the minimum distance *)
  let sg = L.to_seq_graph g in
  check Alcotest.int "seq vertices" 2 (SG.n_vertices sg);
  check Alcotest.(list (pair int int)) "min distance wins" [ (a, 1) ]
    (SG.succs sg b);
  check Alcotest.bool "seq well formed" true (SG.well_formed sg = Ok ())

let test_unroll () =
  let g, _, _, _ = acc_kernel () in
  let dag, copies = L.unroll g ~iterations:3 in
  (* 3 copies of 3 vertices + 1 loop-entry input (acc from iteration -1) *)
  check Alcotest.int "unrolled vertices" 10 (Graph.n_vertices dag);
  check Alcotest.bool "unrolled is a dag" true (Graph.is_dag dag);
  check Alcotest.int "one row per iteration" 3 (Array.length copies);
  check Alcotest.int "one column per vertex" 3 (Array.length copies.(0));
  (try
     ignore (L.unroll g ~iterations:0);
     Alcotest.fail "expected Invalid_argument on iterations < 1"
   with Invalid_argument _ -> ())

(* --- Serial (.ldfg) -------------------------------------------------- *)

let same_loop g h =
  L.n_vertices g = L.n_vertices h
  && List.for_all
       (fun v ->
         L.op g v = L.op h v
         && L.delay g v = L.delay h v
         && L.name g v = L.name h v)
       (L.vertices g)
  && List.sort compare (L.edges g) = List.sort compare (L.edges h)

let test_serial_round_trip () =
  List.iter
    (fun (e : Hls_bench.Suite.loop_entry) ->
      let g = e.build_loop () in
      let h = Modulo.Serial.of_string (Modulo.Serial.to_string g) in
      check Alcotest.bool (e.loop_name ^ " round-trips") true (same_loop g h))
    Hls_bench.Suite.loops

let expect_parse_error fragment text =
  match Modulo.Serial.of_string text with
  | _ -> Alcotest.fail ("expected Parse_error for: " ^ text)
  | exception Modulo.Serial.Parse_error m ->
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
      at 0
    in
    check Alcotest.bool
      (Printf.sprintf "%S mentions %S" m fragment)
      true (contains m fragment)

let test_serial_errors () =
  expect_parse_error "line 1" "vertex a frobnicate\n";
  expect_parse_error "undeclared" "vertex a add\nedge a b\n";
  expect_parse_error "duplicate" "vertex a add\nvertex a add\n";
  expect_parse_error "line 3" "vertex a add\nvertex b add\nedge a b -1\n";
  expect_parse_error "unknown directive" "frob a b\n"

(* --- MII -------------------------------------------------------------- *)

let test_mii_fir () =
  let g = Hls_bench.Fir.loop () in
  check Alcotest.int "rec_mii (accumulator)" 1 (Mii.rec_mii g);
  check Alcotest.int "res_mii 2 muls" 8 (Mii.res_mii ~resources:two_two g);
  check Alcotest.int "mii 2 muls" 8 (Mii.mii ~resources:two_two g);
  check Alcotest.int "res_mii 1 mul" 16
    (Mii.res_mii ~resources:R.fig3_2alu_1mul g);
  check Alcotest.int "res_mii 4 muls" 4
    (Mii.res_mii ~resources:R.fig3_4alu_4mul g)

let test_mii_iir () =
  let g = Hls_bench.Iir.loop () in
  check Alcotest.int "rec_mii (w feedback)" 4 (Mii.rec_mii g);
  check Alcotest.int "res_mii 2 muls" 10 (Mii.res_mii ~resources:two_two g);
  check Alcotest.int "mii 2 muls" 10 (Mii.mii ~resources:two_two g);
  (* with ample units the recurrence becomes the binding bound *)
  let ample = R.make [ (R.Alu, 8); (R.Multiplier, 8); (R.Memory, 1) ] in
  check Alcotest.int "mii ample = rec_mii" 4 (Mii.mii ~resources:ample g)

let test_mii_hand_kernels () =
  (* a 2-cycle multiply feeding itself one iteration later: ceil(2/1) *)
  let g = L.create () in
  let m = L.add_vertex g Op.Mul in
  L.add_edge g ~distance:1 m m;
  check Alcotest.int "self loop distance 1" 2 (Mii.rec_mii g);
  (* the same recurrence across two iterations halves the bound *)
  let h = L.create () in
  let m = L.add_vertex h Op.Mul in
  L.add_edge h ~distance:2 m m;
  check Alcotest.int "self loop distance 2" 1 (Mii.rec_mii h);
  (* recurrence_feasible is the monotone predicate rec_mii inverts *)
  let k = Hls_bench.Iir.loop () in
  check Alcotest.bool "feasible at rec_mii" true
    (Mii.recurrence_feasible k ~ii:4);
  check Alcotest.bool "infeasible below" false
    (Mii.recurrence_feasible k ~ii:3)

let test_mii_missing_units () =
  let g, _, _, _ = acc_kernel () in
  let alu_only = R.make [ (R.Alu, 2) ] in
  (try
     ignore (Mii.res_mii ~resources:alu_only g);
     Alcotest.fail "expected Invalid_argument: mul needed, none configured"
   with Invalid_argument _ -> ())

(* --- Mschedule -------------------------------------------------------- *)

let test_mschedule_validation () =
  let g, _, _, _ = acc_kernel () in
  (try
     ignore (MS.make g ~ii:0 ~starts:[| 0; 0; 2 |]);
     Alcotest.fail "expected Invalid_argument on ii = 0"
   with Invalid_argument _ -> ());
  (try
     ignore (MS.make g ~ii:2 ~starts:[| 0; 0 |]);
     Alcotest.fail "expected Invalid_argument on size mismatch"
   with Invalid_argument _ -> ());
  (try
     ignore (MS.make g ~ii:2 ~starts:[| 0; -1; 2 |]);
     Alcotest.fail "expected Invalid_argument on negative start"
   with Invalid_argument _ -> ())

let test_mschedule_check () =
  let g, _, _, _ = acc_kernel () in
  (* x=0, m=0, acc=2: the valid pipelined schedule at II 2 *)
  let ok = MS.make g ~ii:2 ~starts:[| 0; 0; 2 |] in
  check Alcotest.bool "valid schedule accepted" true
    (MS.check ~resources:two_two ok = Ok ());
  (* acc before the multiply finishes: recurrence violation *)
  let bad = MS.make g ~ii:2 ~starts:[| 0; 0; 1 |] in
  check Alcotest.bool "recurrence violation caught" true
    (MS.check ~resources:two_two bad <> Ok ());
  (* two 2-cycle muls in the same modulo slots with one unit *)
  let h = L.create () in
  let a = L.add_vertex h Op.Mul in
  let b = L.add_vertex h Op.Mul in
  L.add_edge h ~distance:1 a b;
  let one_mul = R.make [ (R.Alu, 1); (R.Multiplier, 1) ] in
  let overflow = MS.make h ~ii:2 ~starts:[| 0; 2 |] in
  check Alcotest.bool "mrt overflow caught" true
    (MS.check ~resources:one_mul overflow <> Ok ());
  let packed = MS.make h ~ii:4 ~starts:[| 0; 2 |] in
  check Alcotest.bool "ii 4 separates the muls" true
    (MS.check ~resources:one_mul packed = Ok ())

let test_mschedule_unrolled () =
  let g, _, _, _ = acc_kernel () in
  let ms = MS.make g ~ii:2 ~starts:[| 0; 0; 2 |] in
  let flat = MS.unrolled ms ~iterations:3 in
  check Alcotest.bool "unrolled passes Schedule.check" true
    (S.check ~resources:two_two flat = Ok ());
  (* iteration i of every vertex starts exactly i * II later *)
  let dag, copies = L.unroll g ~iterations:3 in
  ignore dag;
  for i = 0 to 2 do
    L.iter_vertices
      (fun v ->
        check Alcotest.int
          (Printf.sprintf "start of v%d iteration %d" v i)
          (MS.start ms v + (i * 2))
          (S.start flat copies.(i).(v)))
      g
  done

let test_mschedule_metrics () =
  let g, _, _, _ = acc_kernel () in
  let ms = MS.make g ~ii:2 ~starts:[| 0; 0; 2 |] in
  check Alcotest.int "span" 3 (MS.span ms);
  check Alcotest.int "stage count" 2 (MS.stage_count ms);
  let u = MS.steady_state_util ~resources:two_two ms in
  check Alcotest.bool "utilisation in (0, 1]" true (u > 0.0 && u <= 1.0);
  let mrt = MS.mrt ~resources:two_two ms in
  let mul_row = List.assoc R.Multiplier mrt in
  check Alcotest.(array int) "mul occupies both slots" [| 1; 1 |] mul_row

(* --- IMS -------------------------------------------------------------- *)

let test_ims_textbook_kernels () =
  (* the acceptance criterion: II = MII on FIR and IIR under every
     Figure 3 configuration, via modulo scheduling (never the serial
     fallback), and the result is valid *)
  List.iter
    (fun (e : Hls_bench.Suite.loop_entry) ->
      List.iter
        (fun (cname, resources) ->
          let g = e.build_loop () in
          match Ims.run ~resources g with
          | Error m -> Alcotest.fail m
          | Ok (ms, st) ->
            let label = Printf.sprintf "%s %s" e.loop_name cname in
            check Alcotest.int (label ^ ": II = MII") st.Ims.mii st.Ims.ii;
            check Alcotest.bool (label ^ ": pipelined, not serial") false
              st.Ims.serial_fallback;
            check Alcotest.bool (label ^ ": valid") true
              (MS.check ~resources ms = Ok ()))
        R.fig3_all)
    Hls_bench.Suite.loops

let test_ims_deterministic () =
  let run () =
    match Ims.run ~resources:two_two (Hls_bench.Iir.loop ()) with
    | Ok (ms, _) -> Array.init (L.n_vertices ms.MS.loop) (MS.start ms)
    | Error m -> Alcotest.fail m
  in
  check Alcotest.(array int) "same kernel, same schedule" (run ()) (run ())

let test_ims_errors () =
  let g = L.create () in
  let a = L.add_vertex g Op.Add in
  let b = L.add_vertex g Op.Add in
  L.add_edge g a b;
  L.add_edge g b a;
  (match Ims.run ~resources:two_two g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on a zero-distance cycle");
  let k, _, _, _ = acc_kernel () in
  (match Ims.run ~resources:(R.make [ (R.Alu, 2) ]) k with
  | Error m ->
    check Alcotest.bool "error names the missing class" true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected Error: mul needed, none configured")

let test_ims_trivial_and_fallback () =
  (* empty kernel *)
  (match Ims.run ~resources:two_two (L.create ()) with
  | Ok (ms, st) ->
    check Alcotest.int "empty kernel II 1" 1 ms.MS.ii;
    check Alcotest.bool "no fallback" false st.Ims.serial_fallback
  | Error m -> Alcotest.fail m);
  (* max_ii below MII forces the serial fallback, which is still valid *)
  let g = Hls_bench.Fir.loop () in
  match Ims.run ~max_ii:1 ~resources:two_two g with
  | Ok (ms, st) ->
    check Alcotest.bool "fallback used" true st.Ims.serial_fallback;
    check Alcotest.bool "fallback is valid" true
      (MS.check ~resources:two_two ms = Ok ());
    check Alcotest.bool "fallback II >= MII" true (ms.MS.ii >= st.Ims.mii)
  | Error m -> Alcotest.fail m

let test_ims_budget_never_invalid () =
  (* a starved budget may cost II, never validity *)
  let g = Hls_bench.Iir.loop () in
  match Ims.run ~budget:3 ~resources:two_two g with
  | Ok (ms, st) ->
    check Alcotest.bool "valid under budget 3" true
      (MS.check ~resources:two_two ms = Ok ());
    check Alcotest.bool "II >= MII" true (ms.MS.ii >= st.Ims.mii)
  | Error m -> Alcotest.fail m

(* --- Engine ----------------------------------------------------------- *)

let () = Modulo.Engine.ensure_registered ()
let () = Modulo.Engine.ensure_registered () (* idempotent *)

let test_engine_registered () =
  check Alcotest.bool "modulo in the registry" true
    (Soft.Engine.find "modulo" <> None);
  (match Soft.Engine.of_string "ims" with
  | Ok e -> check Alcotest.string "ims alias" "modulo" (Soft.Engine.name e)
  | Error m -> Alcotest.fail m);
  match Soft.Engine.of_string "loop" with
  | Ok e -> check Alcotest.string "loop alias" "modulo" (Soft.Engine.name e)
  | Error m -> Alcotest.fail m

let test_engine_schedules_dags () =
  let eng =
    match Soft.Engine.find "modulo" with
    | Some e -> e
    | None -> Alcotest.fail "modulo not registered"
  in
  let module E = (val eng : Soft.Engine.S) in
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let s, info = E.schedule Soft.Engine.default_ctx ~resources:two_two g in
      check Alcotest.bool (e.name ^ " valid") true
        (S.check ~resources:two_two s = Ok ());
      check Alcotest.bool (e.name ^ " never claims optimality") false
        info.Soft.Engine.optimal)
    Hls_bench.Suite.fig3

(* --- properties ------------------------------------------------------- *)

let seeded_kernel =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 12) (int_range 0 10_000))

let kernel_of (n, seed) =
  Modulo.Generate.random_kernel
    (Random.State.make [| seed |])
    ~n ~edge_prob:0.25 ~back_prob:0.15 ~max_distance:3

let config_of seed = snd (List.nth R.fig3_all (seed mod 3))

let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated kernels are well-formed" ~count:200
    seeded_kernel (fun spec ->
      L.well_formed (kernel_of spec) = Ok ())

let prop_serial_round_trip =
  QCheck.Test.make ~name:".ldfg round-trip is an isomorphism" ~count:100
    seeded_kernel (fun spec ->
      let g = kernel_of spec in
      same_loop g (Modulo.Serial.of_string (Modulo.Serial.to_string g)))

(* The oracle pinned by the ISSUE: on random well-formed kernels the
   scheduler achieves II >= MII, the modulo schedule checks out, and
   unrolled for 3 iterations it is a valid flat DAG schedule. *)
let prop_ims_oracle =
  QCheck.Test.make ~name:"IMS: II >= MII and the unrolled schedule is valid"
    ~count:150 seeded_kernel (fun ((_, seed) as spec) ->
      let g = kernel_of spec in
      let resources = config_of seed in
      match Ims.run ~resources g with
      | Error _ -> false
      | Ok (ms, st) ->
        st.Ims.ii >= Mii.mii ~resources g
        && MS.check ~resources ms = Ok ()
        && S.check ~resources (MS.unrolled ms ~iterations:3) = Ok ())

(* The unrolled DAG is a first-class citizen of the rest of the repo:
   the threaded scheduler consumes it and every invariant holds. *)
let prop_unrolled_feeds_threaded =
  QCheck.Test.make ~name:"unrolled kernels satisfy the threaded invariants"
    ~count:50 seeded_kernel (fun ((_, seed) as spec) ->
      let g = kernel_of spec in
      let resources = config_of seed in
      let dag, _ = L.unroll g ~iterations:3 in
      let st = T.create dag ~resources in
      T.schedule_all st (Soft.Meta.topological dag);
      Soft.Invariant.check_all st = Ok ())

let () =
  Alcotest.run "modulo"
    [
      ( "loop_graph",
        [
          Alcotest.test_case "basics" `Quick test_loop_graph_basics;
          Alcotest.test_case "rejects" `Quick test_loop_graph_rejects;
          Alcotest.test_case "multi distance" `Quick
            test_loop_graph_multi_distance;
          Alcotest.test_case "zero-distance cycle" `Quick
            test_zero_distance_cycle_detected;
          Alcotest.test_case "body" `Quick test_body;
          Alcotest.test_case "of_dag" `Quick test_of_dag;
          Alcotest.test_case "to_seq_graph" `Quick test_to_seq_graph;
          Alcotest.test_case "unroll" `Quick test_unroll;
        ] );
      ( "serial",
        [
          Alcotest.test_case "round trip" `Quick test_serial_round_trip;
          Alcotest.test_case "errors" `Quick test_serial_errors;
        ] );
      ( "mii",
        [
          Alcotest.test_case "FIR loop" `Quick test_mii_fir;
          Alcotest.test_case "IIR loop" `Quick test_mii_iir;
          Alcotest.test_case "hand kernels" `Quick test_mii_hand_kernels;
          Alcotest.test_case "missing units" `Quick test_mii_missing_units;
        ] );
      ( "mschedule",
        [
          Alcotest.test_case "validation" `Quick test_mschedule_validation;
          Alcotest.test_case "check" `Quick test_mschedule_check;
          Alcotest.test_case "unrolled" `Quick test_mschedule_unrolled;
          Alcotest.test_case "metrics" `Quick test_mschedule_metrics;
        ] );
      ( "ims",
        [
          Alcotest.test_case "textbook II = MII" `Quick
            test_ims_textbook_kernels;
          Alcotest.test_case "deterministic" `Quick test_ims_deterministic;
          Alcotest.test_case "errors" `Quick test_ims_errors;
          Alcotest.test_case "trivial + fallback" `Quick
            test_ims_trivial_and_fallback;
          Alcotest.test_case "budget starvation" `Quick
            test_ims_budget_never_invalid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "registered + aliases" `Quick
            test_engine_registered;
          Alcotest.test_case "schedules DAGs" `Quick
            test_engine_schedules_dags;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_well_formed; prop_serial_round_trip;
            prop_ims_oracle; prop_unrolled_feeds_threaded;
          ] );
    ]
