(* Tests for the scheduling service layer: structural fingerprinting,
   the LRU result cache, the worker pool, deadline degradation, NDJSON
   batch determinism and the socket daemon's drain. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Serial = Dfg.Serial
module Generate = Dfg.Generate
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module T = Soft.Threaded_graph
module Fingerprint = Serve.Fingerprint
module Cache = Serve.Cache
module Pool = Serve.Pool
module Protocol = Serve.Protocol
module Service = Serve.Service
module Batch = Serve.Batch
module Daemon = Serve.Daemon
module Metrics = Serve.Metrics
module Json = Qor.Json

let check = Alcotest.check

let contains s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

let default_resources () =
  Resources.make
    [ (Resources.Alu, 2); (Resources.Multiplier, 2); (Resources.Memory, 1) ]

(* --- fingerprint ---------------------------------------------------- *)

(* The same dataflow built under different names, a different vertex
   insertion order and a different edge interleaving (operand order
   kept) must hash equal. *)
let test_fingerprint_iso_invariance () =
  let g1 =
    let g = Graph.create () in
    let x = Graph.add_vertex g ~name:"x" (Op.Input "p") in
    let y = Graph.add_vertex g ~name:"y" (Op.Input "q") in
    let m = Graph.add_vertex g ~name:"m" Op.Mul in
    let s = Graph.add_vertex g ~name:"s" Op.Sub in
    Graph.add_edge g x m;
    Graph.add_edge g y m;
    Graph.add_edge g x s;
    Graph.add_edge g m s;
    g
  in
  let g2 =
    let g = Graph.create () in
    (* reversed insertion order, fresh names, same operand order *)
    let s = Graph.add_vertex g ~name:"out" Op.Sub in
    let m = Graph.add_vertex g ~name:"prod" Op.Mul in
    let y = Graph.add_vertex g ~name:"b" (Op.Input "q") in
    let x = Graph.add_vertex g ~name:"a" (Op.Input "p") in
    Graph.add_edge g x m;
    Graph.add_edge g y m;
    Graph.add_edge g x s;
    Graph.add_edge g m s;
    g
  in
  check Alcotest.bool "isomorphic graphs hash equal" true
    (Fingerprint.hash g1 = Fingerprint.hash g2);
  check Alcotest.string "canonical forms coincide"
    (Fingerprint.canonical g1) (Fingerprint.canonical g2)

(* sub(a, b) vs sub(b, a): operand order is semantic and must move the
   hash even though the underlying edge sets are equal. *)
let test_fingerprint_operand_order () =
  let build flip =
    let g = Graph.create () in
    let a = Graph.add_vertex g (Op.Input "a") in
    let b = Graph.add_vertex g (Op.Input "b") in
    let s = Graph.add_vertex g Op.Sub in
    if flip then begin
      Graph.add_edge g b s;
      Graph.add_edge g a s
    end
    else begin
      Graph.add_edge g a s;
      Graph.add_edge g b s
    end;
    g
  in
  check Alcotest.bool "operand swap moves the hash" false
    (Fingerprint.hash (build false) = Fingerprint.hash (build true))

let test_fingerprint_key () =
  let g = (Hls_bench.Suite.find "HAL").Hls_bench.Suite.build () in
  let r = default_resources () in
  let k = Fingerprint.key ~resources:r g in
  check Alcotest.bool "key carries the hex hash" true
    (String.length k > 16
    && String.sub k 0 16 = Fingerprint.to_hex (Fingerprint.hash g));
  check Alcotest.bool "meta is part of the key" false
    (Fingerprint.key ~meta:"dfs" ~resources:r g = k);
  let r2 = Resources.make [ (Resources.Alu, 1); (Resources.Multiplier, 1) ] in
  check Alcotest.bool "resources are part of the key" false
    (Fingerprint.key ~resources:r2 g = k)

(* --- fingerprint properties ----------------------------------------- *)

let seeded_dag =
  QCheck.make
    ~print:(fun (n, p, seed) -> Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
    QCheck.Gen.(
      triple (int_range 2 30) (float_range 0.05 0.5) (int_range 0 10_000))

let graph_of (n, p, seed) =
  Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:p

let prop_canonical_roundtrip =
  QCheck.Test.make ~name:"canonical serialization round-trips the hash"
    ~count:100 seeded_dag (fun spec ->
      let g = graph_of spec in
      let c = Fingerprint.canonical g in
      let h = Serial.of_string c in
      Fingerprint.hash h = Fingerprint.hash g && Fingerprint.canonical h = c)

let prop_edge_moves_hash =
  QCheck.Test.make ~name:"adding one edge moves the hash" ~count:100
    seeded_dag (fun (n, p, seed) ->
      let g = graph_of (n, p, seed) in
      (* first absent forward pair, if any: adding it keeps the DAG *)
      let missing = ref None in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if !missing = None && not (Graph.mem_edge g i j) then
            missing := Some (i, j)
        done
      done;
      match !missing with
      | None -> true
      | Some (u, v) ->
        let before = Fingerprint.hash g in
        Graph.add_edge g u v;
        Fingerprint.hash g <> before)

(* --- cache ----------------------------------------------------------- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  check Alcotest.(option int) "miss on empty" None (Cache.find c "a");
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check Alcotest.(option int) "hit a" (Some 1) (Cache.find c "a");
  (* "a" is now most recent; adding "c" must evict "b" *)
  Cache.add c "c" 3;
  check Alcotest.(option int) "b evicted" None (Cache.find c "b");
  check Alcotest.(option int) "a kept" (Some 1) (Cache.find c "a");
  check Alcotest.(option int) "c kept" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  check Alcotest.int "hits" 3 s.Cache.hits;
  check Alcotest.int "misses" 2 s.Cache.misses;
  check Alcotest.int "evictions" 1 s.Cache.evictions;
  check Alcotest.int "length" 2 s.Cache.length;
  check
    Alcotest.(list string)
    "recency order" [ "c"; "a" ]
    (List.rev (Cache.fold_mru c (fun acc k _ -> k :: acc) []))

let test_cache_replace () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "a" 2;
  check Alcotest.int "no duplicate" 1 (Cache.length c);
  check Alcotest.(option int) "replaced" (Some 2) (Cache.find c "a");
  check Alcotest.bool "mem is counter-neutral" true (Cache.mem c "a");
  let s = Cache.stats c in
  check Alcotest.int "one hit" 1 s.Cache.hits;
  check Alcotest.int "no misses" 0 s.Cache.misses

let test_cache_telemetry_counters () =
  let counters = Telemetry.Counters.create () in
  Telemetry.with_sink (Telemetry.Counters.sink counters) (fun () ->
      let c = Cache.create ~capacity:2 () in
      ignore (Cache.find c "a");
      Cache.add c "a" 1;
      ignore (Cache.find c "a");
      Cache.add c "b" 2;
      Cache.add c "c" 3);
  let s = Telemetry.Counters.snapshot counters in
  check Alcotest.int "cache_hits" 1 s.Telemetry.Counters.cache_hits;
  check Alcotest.int "cache_misses" 1 s.Telemetry.Counters.cache_misses;
  check Alcotest.int "cache_evictions" 1 s.Telemetry.Counters.cache_evictions;
  check Alcotest.bool "cache rows surface in to_alist" true
    (List.mem_assoc "cache_hits" (Telemetry.Counters.to_alist s));
  (* A cache-less run keeps its historical key set. *)
  let empty =
    Telemetry.Counters.snapshot (Telemetry.Counters.create ())
  in
  check Alcotest.bool "no cache rows without traffic" false
    (List.mem_assoc "cache_hits" (Telemetry.Counters.to_alist empty))

(* The sharded cache must be observably equivalent to a single LRU: a
   pure reference model (mru-first assoc list) and the sharded cache
   replay one random interleaved find/add trace and must agree on every
   find result, every counter, and the final recency order — for any
   shard count, any capacity, and keys both hex-prefixed (the shard
   fast path) and not (the Hashtbl.hash fallback). *)
module Lru_model = struct
  type t = {
    capacity : int;
    mutable entries : (string * int) list;  (* mru first *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create capacity = { capacity; entries = []; hits = 0; misses = 0; evictions = 0 }

  let find m k =
    match List.assoc_opt k m.entries with
    | Some v ->
      m.hits <- m.hits + 1;
      m.entries <- (k, v) :: List.remove_assoc k m.entries;
      Some v
    | None ->
      m.misses <- m.misses + 1;
      None

  let add m k v =
    m.entries <- (k, v) :: List.remove_assoc k m.entries;
    if List.length m.entries > m.capacity then begin
      m.entries <- List.filteri (fun i _ -> i < m.capacity) m.entries;
      m.evictions <- m.evictions + 1
    end
end

type cache_op = C_find of int | C_add of int * int

let cache_trace_arb =
  (* Keys mix fingerprint-shaped hex prefixes with arbitrary names so
     both shard-selection paths are driven. *)
  let keys =
    [| "00aa11"; "1abc"; "2b"; "3cde99"; "deadbeef"; "key-five"; "zz!"; "ff01" |]
  in
  let op =
    QCheck.Gen.(
      int_range 0 2 >>= fun tag ->
      int_range 0 (Array.length keys - 1) >>= fun k ->
      if tag = 0 then return (C_find k)
      else map (fun v -> C_add (k, v)) (int_range 0 99))
  in
  let print_ops (shards, cap, ops) =
    Printf.sprintf "shards=%d cap=%d %s" shards cap
      (String.concat ";"
         (List.map
            (function
              | C_find k -> Printf.sprintf "find %s" keys.(k)
              | C_add (k, v) -> Printf.sprintf "add %s=%d" keys.(k) v)
            ops))
  in
  ( keys,
    QCheck.make ~print:print_ops
      QCheck.Gen.(
        triple (oneofl [ 1; 2; 4; 8 ]) (int_range 1 5) (list_size (int_range 1 60) op)) )

let prop_sharded_cache_oracle =
  let keys, arb = cache_trace_arb in
  QCheck.Test.make ~name:"sharded cache is observably a single LRU" ~count:300
    arb (fun (shards, capacity, ops) ->
      let c = Cache.create ~shards ~capacity () in
      let m = Lru_model.create capacity in
      List.iter
        (function
          | C_find k ->
            let got = Cache.find c keys.(k) in
            let want = Lru_model.find m keys.(k) in
            if got <> want then
              QCheck.Test.fail_reportf "find %s: cache %s, model %s" keys.(k)
                (match got with Some v -> string_of_int v | None -> "miss")
                (match want with Some v -> string_of_int v | None -> "miss")
          | C_add (k, v) ->
            Cache.add c keys.(k) v;
            Lru_model.add m keys.(k) v)
        ops;
      let s = Cache.stats c in
      if s.Cache.hits <> m.Lru_model.hits then
        QCheck.Test.fail_reportf "hits: %d vs %d" s.Cache.hits m.Lru_model.hits;
      if s.Cache.misses <> m.Lru_model.misses then
        QCheck.Test.fail_reportf "misses: %d vs %d" s.Cache.misses
          m.Lru_model.misses;
      if s.Cache.evictions <> m.Lru_model.evictions then
        QCheck.Test.fail_reportf "evictions: %d vs %d" s.Cache.evictions
          m.Lru_model.evictions;
      if s.Cache.length <> List.length m.Lru_model.entries then
        QCheck.Test.fail_reportf "length: %d vs %d" s.Cache.length
          (List.length m.Lru_model.entries);
      let order = List.rev (Cache.fold_mru c (fun acc k _ -> k :: acc) []) in
      let want_order = List.map fst m.Lru_model.entries in
      if order <> want_order then
        QCheck.Test.fail_reportf "recency order: [%s] vs [%s]"
          (String.concat ";" order)
          (String.concat ";" want_order);
      true)

(* [stats] under concurrent traffic: every snapshot must be internally
   consistent — the touch count (hits+misses) can only grow between
   snapshots, and the length can never exceed capacity by more than the
   number of writers mid-add (insert and the global eviction are two
   steps). *)
let test_cache_stats_snapshot_under_load () =
  let jobs = 4 in
  let c = Cache.create ~shards:4 ~capacity:32 () in
  let p = Pool.create ~jobs () in
  let finds = 2000 and adds = 2000 in
  let futs =
    List.init jobs (fun w ->
        Pool.submit p (fun () ->
            for i = 0 to (finds + adds) / jobs do
              let key = Printf.sprintf "%x" (((w * 7919) + i) mod 64) in
              if i land 1 = 0 then ignore (Cache.find c key)
              else Cache.add c key i
            done))
  in
  let last = ref 0 in
  for _ = 1 to 200 do
    let s = Cache.stats c in
    let touches = s.Cache.hits + s.Cache.misses in
    check Alcotest.bool "touch count monotone" true (touches >= !last);
    last := touches;
    check Alcotest.bool "length bounded" true
      (s.Cache.length >= 0 && s.Cache.length <= s.Cache.capacity + jobs)
  done;
  List.iter (fun f -> ignore (Pool.await f)) futs;
  Pool.shutdown p;
  let s = Cache.stats c in
  check Alcotest.bool "settled under capacity" true
    (s.Cache.length <= s.Cache.capacity);
  check Alcotest.int "shards surfaced" 4 s.Cache.shards

(* --- pool ------------------------------------------------------------ *)

let test_pool_results () =
  let p = Pool.create ~jobs:4 () in
  let futs = List.init 40 (fun i -> Pool.submit p (fun () -> i * i)) in
  List.iteri
    (fun i f ->
      match Pool.await f with
      | Ok v -> check Alcotest.int "job result" (i * i) v
      | Error e -> Alcotest.failf "job %d failed: %s" i (Printexc.to_string e))
    futs;
  Pool.shutdown p

let test_pool_exception_captured () =
  let p = Pool.create ~jobs:1 () in
  let f = Pool.submit p (fun () -> failwith "boom") in
  (match Pool.await f with
  | Error (Failure m) when m = "boom" -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the captured Failure");
  Pool.shutdown p

let test_pool_cancel_and_drain () =
  let p = Pool.create ~jobs:1 ~queue_cap:8 () in
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let release = ref false in
  let blocker =
    Pool.submit p (fun () ->
        Mutex.lock gate;
        while not !release do
          Condition.wait cond gate
        done;
        Mutex.unlock gate;
        "blocker")
  in
  Thread.delay 0.05 (* let the single worker claim the blocker *);
  let queued = Pool.submit p (fun () -> "queued") in
  let doomed = Pool.submit p (fun () -> "doomed") in
  check Alcotest.bool "queued job cancels" true (Pool.cancel doomed);
  check Alcotest.bool "cancel is idempotent-false" false (Pool.cancel doomed);
  check Alcotest.bool "running job does not cancel" false (Pool.cancel blocker);
  (match Pool.await doomed with
  | Error (Invalid_argument _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected cancelled await to error");
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  (* Drain: everything still queued runs to completion. *)
  Pool.shutdown p;
  (match Pool.await blocker with
  | Ok "blocker" -> ()
  | _ -> Alcotest.fail "blocker should have completed");
  (match Pool.await queued with
  | Ok "queued" -> ()
  | _ -> Alcotest.fail "queued job should have run during the drain");
  check Alcotest.bool "draining pool refuses work" true
    (Pool.try_submit p (fun () -> ()) = None)

(* Hammer the pool from the outside while the workers (domains on 5.x)
   chew through real compute: no future may be lost, every submitted
   increment must land, and shutdown must run everything already
   queued — drain exactness is what the daemon's SIGTERM relies on. *)
let test_pool_parallel_hammer () =
  let p = Pool.create ~jobs:4 ~queue_cap:64 () in
  let hits = Atomic.make 0 in
  let n = 300 in
  let futs =
    List.init n (fun i ->
        Pool.submit p (fun () ->
            (* a little real work so workers overlap *)
            let acc = ref 0 in
            for k = 1 to 1000 do
              acc := !acc + ((i * k) mod 7)
            done;
            Atomic.incr hits;
            !acc))
  in
  List.iteri
    (fun i f ->
      match Pool.await f with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "job %d lost: %s" i (Printexc.to_string e))
    futs;
  check Alcotest.int "every job ran exactly once" n (Atomic.get hits);
  (* Drain exactness: submissions that beat the shutdown all complete. *)
  let before = Atomic.make 0 in
  let futs2 =
    List.init 50 (fun _ -> Pool.submit p (fun () -> Atomic.incr before))
  in
  Pool.shutdown p;
  check Alcotest.int "drain ran everything queued" 50 (Atomic.get before);
  List.iter (fun f -> ignore (Pool.await f)) futs2

let test_pool_offer_backpressure () =
  let p = Pool.create ~jobs:1 ~queue_cap:1 () in
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let release = ref false in
  let blocker =
    Pool.submit p (fun () ->
        Mutex.lock gate;
        while not !release do
          Condition.wait cond gate
        done;
        Mutex.unlock gate)
  in
  Thread.delay 0.05 (* let the worker claim the blocker *);
  (* One queue slot: the first offer is admitted, the second bounces. *)
  (match Pool.offer p (fun () -> ()) with
  | `Future _ -> ()
  | `Full | `Draining -> Alcotest.fail "first offer should be admitted");
  (match Pool.offer p (fun () -> ()) with
  | `Full -> ()
  | `Future _ | `Draining -> Alcotest.fail "second offer should bounce Full");
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  ignore (Pool.await blocker);
  Pool.shutdown p;
  match Pool.offer p (fun () -> ()) with
  | `Draining -> ()
  | `Future _ | `Full -> Alcotest.fail "draining pool must answer Draining"

let test_pool_backend_identity () =
  let expected =
    if String.length Sys.ocaml_version > 0 && Sys.ocaml_version.[0] >= '5' then
      "domains"
    else "threads"
  in
  check Alcotest.string "backend matches the compiler" expected Pool.backend;
  check Alcotest.bool "default_jobs is at least one" true
    (Pool.default_jobs () >= 1)

(* --- protocol -------------------------------------------------------- *)

let test_protocol_request_defaults () =
  match Protocol.request_of_line {|{"design":"HAL"}|} with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check Alcotest.string "default meta" "topo" r.Protocol.meta;
    check Alcotest.string "default resources" "2 alu, 2 mul, 1 mem"
      (Resources.to_string r.Protocol.resources);
    check Alcotest.bool "default want_schedule" true r.Protocol.want_schedule;
    check Alcotest.(option string) "no id" None r.Protocol.id

let test_protocol_request_errors () =
  let err line =
    match Protocol.request_of_line line with
    | Error _ -> true
    | Ok _ -> false
  in
  check Alcotest.bool "spec required" true (err {|{}|});
  check Alcotest.bool "specs exclusive" true
    (err {|{"design":"HAL","dfg":"vertex a add"}|});
  check Alcotest.bool "unknown meta" true
    (err {|{"design":"HAL","meta":"zigzag"}|});
  check Alcotest.bool "bad resources" true
    (err {|{"design":"HAL","resources":"2tpu"}|});
  check Alcotest.bool "negative deadline" true
    (err {|{"design":"HAL","deadline_ms":-5}|});
  check Alcotest.bool "non-object" true (err {|[1,2]|});
  check Alcotest.bool "bad json" true (err {|{"design":|})

let test_protocol_result_roundtrip () =
  let service = Service.create () in
  match Protocol.request_of_line {|{"design":"EF","meta":"dfs"}|} with
  | Error m -> Alcotest.fail m
  | Ok req -> (
    match Service.prepare service req with
    | Error m -> Alcotest.fail m
    | Ok p ->
      let o, _ = Service.execute service p in
      let r = Service.result_of o in
      (match Protocol.result_of_json (Protocol.result_to_json r) with
      | Ok r' ->
        check Alcotest.bool "result JSON round-trips" true (r = r')
      | Error m -> Alcotest.fail m);
      check Alcotest.string "ok_line equals memoized rendering"
        (Protocol.ok_line ~id:"i" ~trace:"t" ~cached:false
           ~want_schedule:true r)
        (Service.line ~id:"i" ~trace:"t" ~cached:false ~want_schedule:true o))

let test_protocol_effort_and_engines () =
  (match
     Protocol.request_of_line
       {|{"design":"HAL","effort":"race","engines":["list","exact"]}|}
   with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check Alcotest.bool "effort parses to race" true
      (r.Protocol.effort = Protocol.Race);
    check
      Alcotest.(option (list string))
      "engine aliases canonicalised"
      (Some [ "list"; "bnb" ])
      r.Protocol.engines;
    (* effort and engines survive a JSON round-trip *)
    (match Protocol.request_of_json (Protocol.request_to_json r) with
    | Ok r' -> check Alcotest.bool "request round-trips" true (r = r')
    | Error m -> Alcotest.fail m));
  (match Protocol.request_of_line {|{"design":"HAL","effort":"exhaustive"}|} with
  | Ok r ->
    check Alcotest.bool "exhaustive parses" true
      (r.Protocol.effort = Protocol.Exhaustive)
  | Error m -> Alcotest.fail m);
  (* a plain request still defaults to fast with no engine list *)
  (match Protocol.request_of_line {|{"design":"HAL"}|} with
  | Ok r ->
    check Alcotest.bool "default effort is fast" true
      (r.Protocol.effort = Protocol.Fast);
    check Alcotest.(option (list string)) "no engines" None r.Protocol.engines
  | Error m -> Alcotest.fail m);
  let err line =
    match Protocol.request_of_line line with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "unknown effort" true
    (err {|{"design":"HAL","effort":"turbo"}|});
  check Alcotest.bool "engines require race" true
    (err {|{"design":"HAL","engines":["list"]}|});
  check Alcotest.bool "unknown engine name" true
    (err {|{"design":"HAL","effort":"race","engines":["zigzag"]}|});
  check Alcotest.bool "engines must be strings" true
    (err {|{"design":"HAL","effort":"race","engines":[3]}|})

(* --- service --------------------------------------------------------- *)

let request_for ?deadline_ms ?(meta = "topo") ?(effort = Protocol.Fast) ?engines
    design =
  {
    Protocol.id = None;
    spec = Protocol.Named design;
    resources = default_resources ();
    meta;
    deadline_ms;
    want_schedule = true;
    effort;
    engines;
  }

let test_service_cache_flow () =
  let service = Service.create () in
  let prep design =
    match Service.prepare service (request_for design) with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let p1 = prep "HAL" in
  let _, cached1 = Service.execute service p1 in
  check Alcotest.bool "first run computes" false cached1;
  (* Re-preparing a named design goes through the name-memo. *)
  let p2 = prep "HAL" in
  let o2, cached2 = Service.execute service p2 in
  check Alcotest.bool "second run hits" true cached2;
  check Alcotest.bool "hit is advertised" true (Service.cached service p2);
  let s = Service.cache_stats service in
  check Alcotest.int "one hit" 1 s.Cache.hits;
  check Alcotest.int "one miss" 1 s.Cache.misses;
  (* The cached result is a valid schedule of the right shape. *)
  let n =
    Graph.n_vertices ((Hls_bench.Suite.find "HAL").Hls_bench.Suite.build ())
  in
  let r = Service.result_of o2 in
  check Alcotest.int "vertex count" n r.Protocol.vertices;
  check Alcotest.bool "not degraded" false r.Protocol.degraded;
  check Alcotest.int "slots cover the graph" n
    (List.length r.Protocol.assignment)

let test_service_degraded_fallback () =
  let resources = default_resources () in
  let g = (Hls_bench.Suite.find "EF").Hls_bench.Suite.build () in
  let deadline = Unix.gettimeofday () -. 1.0 (* already overrun *) in
  let st, degraded = Service.schedule_graph ~deadline ~meta:"topo" ~resources g in
  check Alcotest.bool "deadline overrun degrades" true degraded;
  (match Soft.Invariant.check_all st with
  | Ok () -> ()
  | Error m -> Alcotest.failf "degraded state breaks invariants: %s" m);
  (match Schedule.check ~resources (T.to_schedule st) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "degraded schedule invalid: %s" m);
  (* Degraded results answer the request but are never cached. *)
  let service = Service.create () in
  match Service.prepare service (request_for ~deadline_ms:0.0 "EF") with
  | Error m -> Alcotest.fail m
  | Ok p ->
    let o, cached = Service.execute ~deadline service p in
    check Alcotest.bool "computed, not cached" false cached;
    check Alcotest.bool "marked degraded" true
      (Service.result_of o).Protocol.degraded;
    check Alcotest.bool "degraded result not stored" false
      (Service.cached service p)

let test_service_save_load () =
  let service = Service.create () in
  List.iter
    (fun d ->
      match Service.prepare service (request_for d) with
      | Ok p -> ignore (Service.execute service p)
      | Error m -> Alcotest.fail m)
    [ "HAL"; "AR"; "EF" ];
  let path = Filename.temp_file "softsched_cache" ".ndjson" in
  Service.save_cache service path;
  let service2 = Service.create () in
  (match Service.load_cache service2 path with
  | Ok n -> check Alcotest.int "three entries load" 3 n
  | Error m -> Alcotest.fail m);
  check Alcotest.int "lengths agree"
    (Service.cache_stats service).Cache.length
    (Service.cache_stats service2).Cache.length;
  (* A reloaded cache answers without scheduling. *)
  (match Service.prepare service2 (request_for "AR") with
  | Ok p ->
    let o, cached = Service.execute service2 p in
    check Alcotest.bool "hit after reload" true cached;
    check Alcotest.int "same diameter"
      (let q = match Service.prepare service (request_for "AR") with
         | Ok q -> q | Error m -> Alcotest.fail m in
       (Service.result_of (fst (Service.execute service q))).Protocol.diameter)
      (Service.result_of o).Protocol.diameter
  | Error m -> Alcotest.fail m);
  (* Malformed files are reported, missing files are empty. *)
  let oc = open_out path in
  output_string oc "not json\n";
  close_out oc;
  (match Service.load_cache (Service.create ()) path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed cache file must be reported");
  Sys.remove path;
  match Service.load_cache (Service.create ()) path with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "missing file loaded %d entries" n
  | Error m -> Alcotest.fail m

let test_service_effort_race () =
  let service = Service.create () in
  let prep req =
    match Service.prepare service req with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let o, cached =
    Service.execute service (prep (request_for ~effort:Protocol.Race "HAL"))
  in
  check Alcotest.bool "race computes" false cached;
  let r = Service.result_of o in
  (match r.Protocol.engine with
  | Some _ -> ()
  | None -> Alcotest.fail "race result must name the winning engine");
  (* the race result is cached under its own (effort-suffixed) key *)
  let o2, cached2 =
    Service.execute service (prep (request_for ~effort:Protocol.Race "HAL"))
  in
  check Alcotest.bool "race hit on repeat" true cached2;
  check Alcotest.bool "cached race result unchanged" true
    (Service.result_of o2 = r);
  (* a fast request for the same design computes separately and never
     carries an engine marker — the fast contract is untouched *)
  let of_, cachedf = Service.execute service (prep (request_for "HAL")) in
  check Alcotest.bool "fast key distinct from race key" false cachedf;
  check Alcotest.bool "fast result carries no engine marker" true
    ((Service.result_of of_).Protocol.engine = None);
  check Alcotest.bool "race no worse than fast" true
    (r.Protocol.diameter <= (Service.result_of of_).Protocol.diameter);
  (* an explicit subset races under its own key and wins from within *)
  let os, cs =
    Service.execute service
      (prep (request_for ~effort:Protocol.Race ~engines:[ "list"; "bnb" ] "HAL"))
  in
  check Alcotest.bool "subset computes under its own key" false cs;
  match (Service.result_of os).Protocol.engine with
  | Some e ->
    check Alcotest.bool "winner is in the subset" true
      (List.mem e [ "list"; "bnb" ])
  | None -> Alcotest.fail "subset race result lacks engine"

let test_service_effort_exhaustive () =
  let service = Service.create () in
  let prep () =
    match
      Service.prepare service (request_for ~effort:Protocol.Exhaustive "EF")
    with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let o, cached = Service.execute service (prep ()) in
  check Alcotest.bool "exhaustive computes" false cached;
  let r = Service.result_of o in
  check Alcotest.(option string) "branch and bound answered" (Some "bnb")
    r.Protocol.engine;
  (* proven-optimal: no fast schedule of the same design is shorter *)
  (match Service.prepare service (request_for "EF") with
  | Ok p ->
    let fast = Service.result_of (fst (Service.execute service p)) in
    check Alcotest.bool "exhaustive <= fast" true
      (r.Protocol.diameter <= fast.Protocol.diameter)
  | Error m -> Alcotest.fail m);
  let _, cached2 = Service.execute service (prep ()) in
  check Alcotest.bool "exhaustive cached on repeat" true cached2

(* --- batch ----------------------------------------------------------- *)

let batch_lines =
  [
    {|{"id":"1","design":"HAL"}|};
    {|{"id":"2","design":"AR","meta":"dfs"}|};
    {|{"id":"3","design":"HAL"}|};
    "";
    {|{"id":"4","dfg":"vertex a in(a)\nvertex b in(b)\nvertex m mul\nedge a m\nedge b m"}|};
    {|{"id":"5","design":"no-such-design"}|};
    {|{"id":"6","design":"EF","schedule":false}|};
  ]

let test_batch_deterministic_across_jobs () =
  let run jobs =
    let service = Service.create () in
    Batch.run_lines service ~jobs batch_lines
  in
  let out1, stats1 = run 1 in
  let out2, _ = run 2 in
  let out8, _ = run 8 in
  check Alcotest.(list string) "jobs=2 equals jobs=1" out1 out2;
  check Alcotest.(list string) "jobs=8 equals jobs=1" out1 out8;
  check Alcotest.int "blank line skipped" 6 stats1.Batch.requests;
  check Alcotest.int "duplicate rides the leader" 1 stats1.Batch.hits;
  check Alcotest.int "one bad design" 1 stats1.Batch.errors;
  check Alcotest.int "responses in input order" 6 (List.length out1);
  (* The duplicate's response differs from the leader's only in id,
     trace and cached flag. *)
  check Alcotest.bool "dup marked cached" true
    (contains (List.nth out1 2) {|"cached":true|})

let test_batch_warm_hit_rate () =
  let service = Service.create () in
  let lines =
    List.map
      (fun (e : Hls_bench.Suite.entry) ->
        Printf.sprintf {|{"design":%S}|} e.Hls_bench.Suite.name)
      Hls_bench.Suite.all
  in
  let _, cold = Batch.run_lines service ~jobs:4 lines in
  check Alcotest.int "cold pass misses" 0 cold.Batch.hits;
  let out_warm, warm = Batch.run_lines service ~jobs:4 lines in
  check Alcotest.int "warm pass all hits" warm.Batch.requests warm.Batch.hits;
  check Alcotest.int "every design answered" (List.length lines)
    (List.length out_warm);
  check Alcotest.bool "summary advertises 100%" true
    (contains (Batch.summary warm) "(100%)")

let test_batch_fast_identity_beside_race () =
  (* The byte-identity contract: fast responses are unchanged by a race
     request sharing the batch (and the cache). The race line comes
     last so the positional trace ids of the fast lines agree. *)
  let plain = [ {|{"id":"1","design":"HAL"}|}; {|{"id":"2","design":"AR"}|} ] in
  let out_plain, _ = Batch.run_lines (Service.create ()) ~jobs:2 plain in
  let mixed = plain @ [ {|{"id":"3","design":"HAL","effort":"race"}|} ] in
  let out_mixed, stats = Batch.run_lines (Service.create ()) ~jobs:2 mixed in
  check Alcotest.int "all answered" 3 (List.length out_mixed);
  check Alcotest.int "race misses the fast HAL entry" 0 stats.Batch.hits;
  check
    Alcotest.(list string)
    "fast lines byte-identical beside a race" out_plain
    (List.filteri (fun i _ -> i < 2) out_mixed);
  check Alcotest.bool "race line names its winning engine" true
    (contains (List.nth out_mixed 2) {|"engine":"|})

(* --- daemon ----------------------------------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let test_daemon_roundtrip_and_drain () =
  let socket = Filename.temp_file "softsched" ".sock" in
  (* temp_file created a regular file; Daemon.start replaces it *)
  let service = Service.create () in
  let d = Daemon.start service ~socket ~jobs:2 () in
  let fd, ic, oc = connect socket in
  send oc {|{"id":"a","design":"HAL","schedule":false}|};
  let reply = input_line ic in
  check Alcotest.bool "ok reply with trace" true
    (contains reply {|"trace":"s-|});
  (* Same request again: served from cache. *)
  send oc {|{"id":"b","design":"HAL","schedule":false}|};
  let reply2 = input_line ic in
  check Alcotest.bool "second reply cached" true
    (contains reply2 {|"cached":true|});
  (* Drain: a request written before stop is still answered. *)
  send oc {|{"id":"c","design":"AR","schedule":false}|};
  Thread.delay 0.2 (* let the connection thread pick the line up *);
  Daemon.stop d;
  let reply3 = input_line ic in
  check Alcotest.bool "in-flight request answered during drain" true
    (contains reply3 {|"id":"c"|});
  (* After the drain the connection is closed. *)
  (match input_line ic with
  | exception End_of_file -> ()
  | exception Sys_error _ -> ()
  | l -> Alcotest.failf "expected EOF after drain, got %s" l);
  Daemon.wait d;
  check Alcotest.bool "socket file removed" false (Sys.file_exists socket);
  try Unix.close fd with Unix.Unix_error _ -> ()

let test_daemon_connection_limit () =
  let socket = Filename.temp_file "softsched" ".sock" in
  let service = Service.create () in
  let d = Daemon.start service ~socket ~jobs:1 ~max_connections:1 () in
  let fd1, ic1, oc1 = connect socket in
  (* Prove the first connection is live (so the daemon has admitted it
     before the second one shows up). *)
  send oc1 {|{"design":"HAL","schedule":false}|};
  ignore (input_line ic1);
  let fd2, ic2, _ = connect socket in
  let reply = input_line ic2 in
  check Alcotest.bool "excess connection turned away" true
    (contains reply "server busy");
  Daemon.stop d;
  Daemon.wait d;
  (try Unix.close fd1 with Unix.Unix_error _ -> ());
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  ignore (ic1, oc1)

(* --- metrics plane ---------------------------------------------------- *)

(* Pull a nested member out of a parsed snapshot, failing loudly. *)
let json_path j path =
  List.fold_left
    (fun j key ->
      match Json.member key j with
      | Some v -> v
      | None -> Alcotest.failf "snapshot missing %S" key)
    j path

let json_int j path =
  match json_path j path with
  | Json.Num n -> int_of_float n
  | _ -> Alcotest.failf "snapshot member %s not a number" (String.concat "." path)

let test_metrics_snapshot_and_prometheus () =
  let m = Metrics.create () in
  let record ?(ok = true) ?(cached = false) total_ns =
    let sp = Metrics.span () in
    sp.Metrics.parse_ns <- 1_000;
    sp.Metrics.lookup_ns <- 2_000;
    sp.Metrics.schedule_ns <- (if cached then 0 else total_ns / 2);
    sp.Metrics.emit_ns <- 500;
    sp.Metrics.total_ns <- total_ns;
    Metrics.record m ~trace:"t" ~design:"HAL" ~ok ~cached ~degraded:false sp
  in
  record 1_000_000;
  record ~cached:true 10_000;
  record ~ok:false 5_000;
  Metrics.turned_away m;
  Metrics.set_pool_queue_depth m 3;
  Metrics.set_cache_occupancy m ~entries:2 ~capacity:8;
  let j =
    match
      Json.parse_result (Json.to_string ~minify:true (Metrics.snapshot_json m))
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "snapshot not JSON: %s" e
  in
  check Alcotest.int "requests" 3 (json_int j [ "requests"; "total" ]);
  check Alcotest.int "ok" 2 (json_int j [ "requests"; "ok" ]);
  check Alcotest.int "errors" 1 (json_int j [ "requests"; "errors" ]);
  check Alcotest.int "cached" 1 (json_int j [ "requests"; "cached" ]);
  check Alcotest.int "turnaways" 1 (json_int j [ "requests"; "busy_turnaways" ]);
  check Alcotest.int "queue depth gauge" 3
    (json_int j [ "gauges"; "pool_queue_depth" ]);
  check Alcotest.int "cache entries gauge" 2
    (json_int j [ "gauges"; "cache_entries" ]);
  List.iter
    (fun phase ->
      check Alcotest.int
        (phase ^ " histogram counts every request")
        3
        (json_int j [ "latency_ms"; phase; "count" ]))
    [ "parse"; "cache_lookup"; "queue_wait"; "schedule"; "emit"; "total" ];
  (* Prometheus exposition: histogram family present, +Inf closes each
     phase at the total count. *)
  let prom = Metrics.to_prometheus m in
  check Alcotest.bool "bucket series present" true
    (contains prom "softsched_request_phase_seconds_bucket{phase=\"total\"");
  check Alcotest.bool "+Inf equals count" true
    (contains prom
       "softsched_request_phase_seconds_bucket{phase=\"total\",le=\"+Inf\"} 3");
  check Alcotest.bool "counter series present" true
    (contains prom "softsched_requests_total 3")

let test_metrics_engine_counters () =
  let m = Metrics.create () in
  Metrics.engine_run m ~engine:"list";
  Metrics.engine_run m ~engine:"list";
  Metrics.engine_run m ~engine:"bnb";
  Metrics.race_win m ~engine:"list";
  let j =
    match
      Json.parse_result (Json.to_string ~minify:true (Metrics.snapshot_json m))
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "snapshot not JSON: %s" e
  in
  check Alcotest.int "races counted" 1 (json_int j [ "races" ]);
  check Alcotest.int "list runs" 2 (json_int j [ "engines"; "list"; "runs" ]);
  check Alcotest.int "list wins" 1
    (json_int j [ "engines"; "list"; "race_wins" ]);
  (* a racer that never won still shows its run count *)
  check Alcotest.int "bnb runs" 1 (json_int j [ "engines"; "bnb"; "runs" ]);
  check Alcotest.int "bnb wins" 0 (json_int j [ "engines"; "bnb"; "race_wins" ]);
  let prom = Metrics.to_prometheus m in
  check Alcotest.bool "labelled run counter" true
    (contains prom {|softsched_engine_runs_total{engine="list"} 2|});
  check Alcotest.bool "labelled win counter" true
    (contains prom {|softsched_race_wins_total{engine="list"} 1|});
  check Alcotest.bool "race total" true (contains prom "softsched_races_total 1")

(* The modulo engine is registered by the serving layer itself (the
   Import initialiser), so a race subset naming it runs it and its
   counters surface in the stats snapshot and the Prometheus dump. *)
let test_metrics_modulo_engine_visible () =
  (match Soft.Engine.of_string "modulo" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "modulo not registered by serve: %s" m);
  let m = Metrics.create () in
  let service = Service.create ~metrics:m () in
  let prep req =
    match Service.prepare service req with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let o, _ =
    Service.execute service
      (prep (request_for ~effort:Protocol.Race ~engines:[ "modulo"; "list" ] "FIR"))
  in
  (match (Service.result_of o).Protocol.engine with
  | Some e ->
    check Alcotest.bool "winner from the subset" true
      (List.mem e [ "modulo"; "list" ])
  | None -> Alcotest.fail "race result lacks engine");
  let j =
    match
      Json.parse_result (Json.to_string ~minify:true (Metrics.snapshot_json m))
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "snapshot not JSON: %s" e
  in
  check Alcotest.int "modulo ran once" 1
    (json_int j [ "engines"; "modulo"; "runs" ]);
  let prom = Metrics.to_prometheus m in
  check Alcotest.bool "modulo run counter exported" true
    (contains prom {|softsched_engine_runs_total{engine="modulo"} 1|})

let test_metrics_retry_after () =
  let m = Metrics.create () in
  check Alcotest.int "no history: flat default" 50
    (Metrics.retry_after_ms m ~queue_depth:4);
  let sp = Metrics.span () in
  sp.Metrics.total_ns <- 2_000_000 (* 2ms *);
  Metrics.record m ~trace:"t" ~design:"HAL" ~ok:true ~cached:false
    ~degraded:false sp;
  let hint = Metrics.retry_after_ms m ~queue_depth:9 in
  check Alcotest.bool
    (Printf.sprintf "scaled by queue depth (got %d)" hint)
    true
    (hint >= 20 && hint <= 25);
  check Alcotest.int "clamped above" 5000
    (Metrics.retry_after_ms m ~queue_depth:1_000_000)

let test_metrics_slow_log_file () =
  let path = Filename.temp_file "softsched" ".slow.ndjson" in
  let m = Metrics.create () in
  Metrics.set_slow_log m ~threshold_ms:1.0 (`File path);
  let fast = Metrics.span () in
  fast.Metrics.total_ns <- 500_000 (* 0.5ms: below threshold *);
  Metrics.record m ~trace:"s-000001" ~design:"HAL" ~ok:true ~cached:true
    ~degraded:false fast;
  let slow = Metrics.span () in
  slow.Metrics.total_ns <- 5_000_000 (* 5ms *);
  slow.Metrics.schedule_ns <- 4_000_000;
  Metrics.record m ~trace:"s-000002" ~design:"AR" ~ok:true ~cached:false
    ~degraded:false slow;
  Metrics.close_slow_log m;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  match !lines with
  | [ line ] -> (
    match Json.parse_result line with
    | Error e -> Alcotest.failf "slow line not JSON: %s" e
    | Ok j ->
      (match json_path j [ "trace" ] with
      | Json.Str s -> check Alcotest.string "slow request's trace" "s-000002" s
      | _ -> Alcotest.fail "trace not a string");
      check Alcotest.bool "has total_ms" true
        (Json.member "total_ms" j <> None);
      check Alcotest.bool "has schedule_ms" true
        (Json.member "schedule_ms" j <> None))
  | ls -> Alcotest.failf "expected exactly one slow line, got %d" (List.length ls)

let test_daemon_stats_admin () =
  let socket = Filename.temp_file "softsched" ".sock" in
  let metrics = Metrics.create () in
  let service = Service.create ~metrics () in
  let d = Daemon.start service ~socket ~jobs:2 () in
  let fd, ic, oc = connect socket in
  send oc {|{"design":"HAL","schedule":false}|};
  ignore (input_line ic);
  send oc {|{"design":"HAL","schedule":false}|};
  ignore (input_line ic);
  send oc {|{"admin":"stats","id":"q1"}|};
  let reply = input_line ic in
  Daemon.stop d;
  Daemon.wait d;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  check Alcotest.bool "stats reply echoes id" true (contains reply {|"id":"q1"|});
  match Json.parse_result reply with
  | Error e -> Alcotest.failf "stats reply not JSON: %s" e
  | Ok j ->
    let stats = json_path j [ "stats" ] in
    check Alcotest.int "both scheduling requests recorded" 2
      (json_int stats [ "requests"; "total" ]);
    check Alcotest.int "one served from cache" 1
      (json_int stats [ "requests"; "cached" ]);
    (* Admin requests stay out of the histograms. *)
    check Alcotest.int "latency counts scheduling requests only" 2
      (json_int stats [ "latency_ms"; "total"; "count" ]);
    check Alcotest.int "cache hit counter rides along" 1
      (json_int stats [ "cache"; "hits" ]);
    check Alcotest.bool "queue-depth gauge present" true
      (Json.member "pool_queue_depth"
         (json_path stats [ "gauges" ])
      <> None)

let test_daemon_busy_retry_hint () =
  let socket = Filename.temp_file "softsched" ".sock" in
  let service = Service.create ~metrics:(Metrics.create ()) () in
  let d = Daemon.start service ~socket ~jobs:1 ~max_connections:1 () in
  let fd1, ic1, oc1 = connect socket in
  send oc1 {|{"design":"HAL","schedule":false}|};
  ignore (input_line ic1);
  let fd2, ic2, _ = connect socket in
  let reply = input_line ic2 in
  Daemon.stop d;
  Daemon.wait d;
  (try Unix.close fd1 with Unix.Unix_error _ -> ());
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  ignore oc1;
  check Alcotest.bool "turn-away names the condition" true
    (contains reply "server busy");
  check Alcotest.bool "turn-away carries retry_after_ms" true
    (contains reply {|"retry_after_ms":|});
  match Json.parse_result reply with
  | Error e -> Alcotest.failf "turn-away not JSON: %s" e
  | Ok j ->
    let hint = json_int j [ "retry_after_ms" ] in
    check Alcotest.bool
      (Printf.sprintf "hint within clamp (got %d)" hint)
      true
      (hint >= 25 && hint <= 5000)

let test_batch_identical_with_metrics () =
  let lines =
    [
      {|{"id":"a","design":"HAL"}|};
      {|{"id":"b","design":"FIR","meta":"dfs"}|};
      {|{"id":"c","design":"HAL"}|};
      {|{"id":"bad"}|};
      {|{"id":"d","design":"AR","schedule":false}|};
    ]
  in
  let plain, _ = Batch.run_lines (Service.create ()) ~jobs:1 lines in
  List.iter
    (fun jobs ->
      let metrics = Metrics.create () in
      let service = Service.create ~metrics () in
      let out, _ = Batch.run_lines service ~jobs lines in
      check
        Alcotest.(list string)
        (Printf.sprintf "metrics-on output identical (jobs=%d)" jobs)
        plain out;
      (* ...and the plane saw every request, error included. *)
      let j =
        match
          Json.parse_result
            (Json.to_string ~minify:true (Metrics.snapshot_json metrics))
        with
        | Ok j -> j
        | Error e -> Alcotest.failf "snapshot not JSON: %s" e
      in
      check Alcotest.int "all requests recorded" (List.length lines)
        (json_int j [ "requests"; "total" ]);
      check Alcotest.int "the bad line recorded as error" 1
        (json_int j [ "requests"; "errors" ]))
    [ 1; 4 ]

(* --- registry plumbing (Resources.of_string / Meta.of_name) ---------- *)

let test_resources_of_string () =
  (match Resources.of_string "2alu,2mul,1mem" with
  | Ok r ->
    check Alcotest.string "parses" "2 alu, 2 mul, 1 mem"
      (Resources.to_string r)
  | Error m -> Alcotest.fail m);
  (* to_string output parses back (the protocol echoes it). *)
  (match Resources.of_string "2 alu, 2 mul, 1 mem" with
  | Ok r ->
    check Alcotest.string "round-trips" "2 alu, 2 mul, 1 mem"
      (Resources.to_string r)
  | Error m -> Alcotest.fail m);
  (match Resources.of_string "2tpu" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown class must be rejected");
  match Resources.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty spec must be rejected"

let test_meta_of_name () =
  let resources = default_resources () in
  List.iter
    (fun n ->
      match Soft.Meta.of_name ~resources n with
      | Some _ -> ()
      | None -> Alcotest.failf "meta %s should resolve" n)
    Soft.Meta.names;
  match Soft.Meta.of_name ~resources "zigzag" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown meta must not resolve"

(* --- daemon over TCP -------------------------------------------------- *)

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* The TCP transport speaks the same protocol as the Unix socket:
   pipelined requests are answered in order (scheduling work and admin
   stats interleaved), and a drain closes the connection after the
   owed replies. Port 0 binds ephemerally; tcp_port reports it. *)
let test_daemon_tcp_smoke () =
  let metrics = Metrics.create () in
  let service = Service.create ~metrics () in
  let d = Daemon.start service ~tcp:("127.0.0.1", 0) ~jobs:2 () in
  check Alcotest.bool "no unix socket" true (Daemon.socket_path d = None);
  let port =
    match Daemon.tcp_port d with
    | Some p -> p
    | None -> Alcotest.fail "tcp daemon must report its port"
  in
  check Alcotest.bool "ephemeral port bound" true (port > 0);
  let fd, ic, oc = connect_tcp port in
  (* Pipeline three lines in one write: replies must come back in
     request order even though the admin probe is answered inline. *)
  output_string oc
    ({|{"id":"a","design":"HAL","schedule":false}|} ^ "\n"
   ^ {|{"admin":"stats"}|} ^ "\n"
   ^ {|{"id":"b","design":"HAL","schedule":false}|} ^ "\n");
  flush oc;
  let r1 = input_line ic in
  let r2 = input_line ic in
  let r3 = input_line ic in
  check Alcotest.bool "first reply is request a" true (contains r1 {|"id":"a"|});
  check Alcotest.bool "second reply is the stats probe" true
    (contains r2 {|"stats":|});
  check Alcotest.bool "third reply is request b" true (contains r3 {|"id":"b"|});
  check Alcotest.bool "second HAL served from cache" true
    (contains r3 {|"cached":true|});
  Daemon.stop d;
  (match input_line ic with
  | exception End_of_file -> ()
  | exception Sys_error _ -> ()
  | l -> Alcotest.failf "expected EOF after drain, got %s" l);
  Daemon.wait d;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --------------------------------------------------------------------- *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_canonical_roundtrip; prop_edge_moves_hash; prop_sharded_cache_oracle ]

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "isomorphism invariance" `Quick
            test_fingerprint_iso_invariance;
          Alcotest.test_case "operand order" `Quick
            test_fingerprint_operand_order;
          Alcotest.test_case "cache key" `Quick test_fingerprint_key;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "replace" `Quick test_cache_replace;
          Alcotest.test_case "telemetry counters" `Quick
            test_cache_telemetry_counters;
          Alcotest.test_case "stats snapshot under load" `Quick
            test_cache_stats_snapshot_under_load;
        ] );
      ( "pool",
        [
          Alcotest.test_case "results" `Quick test_pool_results;
          Alcotest.test_case "exception captured" `Quick
            test_pool_exception_captured;
          Alcotest.test_case "cancel and drain" `Quick
            test_pool_cancel_and_drain;
          Alcotest.test_case "parallel hammer" `Quick test_pool_parallel_hammer;
          Alcotest.test_case "offer backpressure" `Quick
            test_pool_offer_backpressure;
          Alcotest.test_case "backend identity" `Quick
            test_pool_backend_identity;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request defaults" `Quick
            test_protocol_request_defaults;
          Alcotest.test_case "request errors" `Quick
            test_protocol_request_errors;
          Alcotest.test_case "result roundtrip" `Quick
            test_protocol_result_roundtrip;
          Alcotest.test_case "effort and engines" `Quick
            test_protocol_effort_and_engines;
        ] );
      ( "service",
        [
          Alcotest.test_case "cache flow" `Quick test_service_cache_flow;
          Alcotest.test_case "degraded fallback" `Quick
            test_service_degraded_fallback;
          Alcotest.test_case "save and load" `Quick test_service_save_load;
          Alcotest.test_case "race effort" `Quick test_service_effort_race;
          Alcotest.test_case "exhaustive effort" `Quick
            test_service_effort_exhaustive;
        ] );
      ( "batch",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_batch_deterministic_across_jobs;
          Alcotest.test_case "warm hit rate" `Quick test_batch_warm_hit_rate;
          Alcotest.test_case "byte-identical with metrics" `Quick
            test_batch_identical_with_metrics;
          Alcotest.test_case "fast identity beside a race" `Quick
            test_batch_fast_identity_beside_race;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "roundtrip and drain" `Quick
            test_daemon_roundtrip_and_drain;
          Alcotest.test_case "connection limit" `Quick
            test_daemon_connection_limit;
          Alcotest.test_case "stats admin request" `Quick
            test_daemon_stats_admin;
          Alcotest.test_case "busy turn-away retry hint" `Quick
            test_daemon_busy_retry_hint;
          Alcotest.test_case "tcp smoke" `Quick test_daemon_tcp_smoke;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot and prometheus" `Quick
            test_metrics_snapshot_and_prometheus;
          Alcotest.test_case "engine counters" `Quick
            test_metrics_engine_counters;
          Alcotest.test_case "modulo engine visible" `Quick
            test_metrics_modulo_engine_visible;
          Alcotest.test_case "retry-after hint" `Quick test_metrics_retry_after;
          Alcotest.test_case "slow-request log" `Quick
            test_metrics_slow_log_file;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "Resources.of_string" `Quick
            test_resources_of_string;
          Alcotest.test_case "Meta.of_name" `Quick test_meta_of_name;
        ] );
      ("properties", qcheck_cases);
    ]
