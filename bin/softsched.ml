(* softsched — command-line front door to the soft-scheduling library.

   Subcommands:
     schedule   schedule a benchmark or a .beh source file
     table      reproduce the paper's Figure 3
     dot        emit the dataflow graph (or its schedule) as Graphviz
     verilog    run the full HLS flow and emit RTL
     sim        schedule, bind and simulate with given input values
     modulo     pipeline a loop kernel (MII bounds + II search)
     report     run the whole flow under QoR spans, emit a run-report
     diff       compare two run-reports, exit nonzero on regression

   schedule/table/dot/verilog/sim all accept the same telemetry flag
   bundle: --stats (telemetry counters), --trace (Chrome trace_event
   JSON for chrome://tracing / Perfetto) and --trace-text
   (human-readable decision log). report adds --audit[=RATE], the
   online invariant auditor. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- shared arguments ---------------------------------------------- *)

let known_designs () =
  String.concat ", "
    (List.map (fun (e : Hls_bench.Suite.entry) -> e.name) Hls_bench.Suite.all)

let graph_of_spec spec =
  match Hls_bench.Suite.find spec with
  | entry -> entry.Hls_bench.Suite.build ()
  | exception Not_found ->
    if Sys.file_exists spec then begin
      if Filename.check_suffix spec ".dfg" then Dfg.Serial.load spec
      else Ir.Lower.of_source (read_file spec)
    end
    else
      failwith
        (Printf.sprintf
           "unknown design %S: expected a benchmark name (%s) or a path to a \
            .beh/.dfg file"
           spec (known_designs ()))

let design_arg =
  let doc =
    "Design to process: a benchmark name (HAL, AR, EF, FIR, DCT, IIR, MM3, \
     CONV) or a path to a behavioral source file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let parse_resources s =
  (* e.g. "2alu,1mul" or "2alu,2mul,1mem" *)
  match Hard.Resources.of_string s with Ok r -> r | Error m -> failwith m

(* A proper Cmdliner converter, so a bad spec reports through the usual
   "invalid value ... for --resources" channel with a usage hint instead
   of dying with a bare Failure backtrace. *)
let resources_conv =
  let parse s =
    match parse_resources s with
    | r -> Ok r
    | exception (Failure m | Invalid_argument m) ->
      Error
        (`Msg
           (Printf.sprintf
              "%s; expected a comma-separated list of <count><class> with \
               classes alu, mul, mem — e.g. 2alu,2mul,1mem"
              m))
  in
  let print ppf r = Format.pp_print_string ppf (Hard.Resources.to_string r) in
  Arg.conv ~docv:"RES" (parse, print)

let resources_arg =
  let doc = "Resource configuration, e.g. 2alu,2mul,1mem." in
  Arg.(
    value
    & opt resources_conv (parse_resources "2alu,2mul,1mem")
    & info [ "r"; "resources" ] ~docv:"RES" ~doc)

let meta_of_name ~resources name =
  match Soft.Meta.of_name ~resources name with
  | Some m -> m
  | None ->
    failwith
      (Printf.sprintf "unknown meta schedule %S: expected %s" name
         (String.concat ", " Soft.Meta.names))

let meta_arg =
  let doc = "Meta schedule: dfs, topo, paths or list." in
  Arg.(value & opt string "topo" & info [ "m"; "meta" ] ~docv:"META" ~doc)

let scheduler_arg =
  let doc =
    "Scheduler: threaded (the paper's), search (threaded + meta-schedule \
     search), list, asap, or exact. Superseded by $(b,--engine); kept for \
     compatibility."
  in
  Arg.(value & opt string "threaded" & info [ "s"; "scheduler" ] ~doc)

let engine_arg =
  let doc =
    "Scheduling engine from the portfolio: soft, naive, search, anneal, \
     list, fdls, force_directed, bnb or modulo (aliases: threaded, sa, \
     exact, fds, ims, loop). Overrides $(b,--scheduler)."
  in
  Arg.(value & opt (some string) None & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let race_arg =
  let doc =
    "Race a comma-separated engine portfolio on a worker pool and keep the \
     QoR winner (fewest control steps, then registers, then wall time). \
     $(b,--race) $(i,default) races the standard portfolio \
     (soft,list,fdls,anneal)."
  in
  Arg.(value & opt (some string) None & info [ "race" ] ~docv:"A,B,C" ~doc)

let seed_arg =
  let doc =
    "RNG seed for the stochastic engines (anneal, search): same seed, same \
     schedule."
  in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

(* Run [f] and convert the library's Failure errors into Cmdliner term
   errors (usage + message on stderr, exit 124) instead of raw
   exceptions. *)
let term_of_failure f =
  match f () with
  | ok -> `Ok ok
  | exception Failure m -> `Error (false, m)

(* --- telemetry plumbing -------------------------------------------- *)

module Tel_cli = struct
  type opts = { trace : string option; text : string option; stats : bool }

  let term =
    let trace =
      Arg.(
        value
        & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:
              "Record scheduler telemetry and write a Chrome trace_event \
               JSON file (one track per functional-unit thread) loadable in \
               chrome://tracing or ui.perfetto.dev.")
    in
    let text =
      Arg.(
        value
        & opt (some string) None
        & info [ "trace-text" ] ~docv:"FILE"
            ~doc:
              "Record scheduler telemetry and write a human-readable \
               decision log: every candidate position, tie-break, commit \
               re-tightening and free placement.")
    in
    let stats =
      Arg.(
        value & flag
        & info [ "stats" ]
            ~doc:
              "Print scheduler telemetry counters after the run: positions \
               scanned, cross edges re-tightened, degree maxima, final \
               diameter.")
    in
    Term.(
      const (fun trace text stats -> { trace; text; stats })
      $ trace $ text $ stats)

  let active o = o.trace <> None || o.text <> None || o.stats

  (* One track per FU thread, named after its unit class: "alu 0",
     "alu 1", "mul 0", ... *)
  let tracks_of_state state =
    let module T = Soft.Threaded_graph in
    let counts = Hashtbl.create 4 in
    List.init (T.n_threads state) (fun k ->
        let name = Hard.Resources.class_name (T.thread_class state k) in
        let i = Option.value ~default:0 (Hashtbl.find_opt counts name) in
        Hashtbl.replace counts name (i + 1);
        (k, Printf.sprintf "%s %d" name i))

  (* Install a counting + recording sink around [f] when any telemetry
     output was requested, then emit the requested artifacts.
     [vertex] renders vertex ids; [tracks_of] names the trace tracks
     from [f]'s result (the scheduling state knows its threads).
     [log] receives the "wrote …" notes and the counter dump — batch
     and serve point it at stderr, their stdout belongs to the
     protocol. *)
  let run ?(log = stdout) o ~vertex ~tracks_of f =
    if not (active o) then f ()
    else begin
      let counters = Telemetry.Counters.create () in
      let recorder = Telemetry.Recorder.create () in
      let sink =
        Telemetry.Sink.tee
          (Telemetry.Counters.sink counters)
          (Telemetry.Recorder.sink recorder)
      in
      (* Softness (|≺_S|) costs a transitive closure per sample; only
         pay for it when the counters are going to be printed. *)
      if o.stats then Telemetry.set_softness_period 1;
      let result =
        Fun.protect
          ~finally:(fun () -> Telemetry.set_softness_period 0)
          (fun () -> Telemetry.with_sink sink f)
      in
      let events = Telemetry.Recorder.events recorder in
      let write_or_fail path f =
        (try f () with
        | Sys_error m -> failwith (Printf.sprintf "cannot write trace: %s" m));
        Printf.fprintf log "wrote %s (%d events)\n" path
          (Telemetry.Recorder.length recorder)
      in
      (match o.trace with
      | Some path ->
        write_or_fail path (fun () ->
            Telemetry.Chrome_trace.write ~tracks:(tracks_of result) ~path
              events)
      | None -> ());
      (match o.text with
      | Some path ->
        write_or_fail path (fun () ->
            Telemetry.Text_trace.write ~vertex ~path events)
      | None -> ());
      if o.stats then
        output_string log
          (Telemetry.Counters.to_string (Telemetry.Counters.snapshot counters));
      flush log;
      result
    end
end

(* --- schedule ------------------------------------------------------ *)

let parse_portfolio spec =
  if String.trim (String.lowercase_ascii spec) = "default" then
    Serve.Race.default_portfolio ()
  else
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun name ->
           match Soft.Engine.of_string name with
           | Ok e -> e
           | Error m -> failwith m)

let run_schedule design resources meta_s scheduler engine race seed tel =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let schedule, state, annot =
    Tel_cli.run tel
      ~vertex:(fun v -> Dfg.Graph.name g v)
      ~tracks_of:(fun (_, state, _) ->
        match state with
        | Some state -> Tel_cli.tracks_of_state state
        | None -> [])
      (fun () ->
        match (race, engine) with
        | Some spec, _ -> (
          let engines = parse_portfolio spec in
          match Serve.Race.run ~seed ~meta:meta_s ~engines ~resources g with
          | Error m -> failwith m
          | Ok race ->
            Printf.printf "race over %d engines (%.3f ms wall):\n"
              (List.length race.Serve.Race.entries)
              (race.Serve.Race.wall_s *. 1000.);
            List.iter
              (fun (e : Serve.Race.entry) ->
                match e.Serve.Race.outcome with
                | Some o ->
                  let a = o.Soft.Engine.annot in
                  Printf.printf "  %-16s %4d csteps %4d regs %10.3f ms%s\n"
                    e.Serve.Race.engine a.Soft.Engine.csteps
                    a.Soft.Engine.registers
                    (a.Soft.Engine.wall_s *. 1000.)
                    (if a.Soft.Engine.optimal then "  optimal" else "")
                | None ->
                  Printf.printf "  %-16s %s\n" e.Serve.Race.engine
                    (if e.Serve.Race.cancelled then "cancelled"
                     else
                       "failed: "
                       ^ Option.value ~default:"?" e.Serve.Race.error))
              race.Serve.Race.entries;
            let w = race.Serve.Race.winner in
            (w.Soft.Engine.schedule, w.Soft.Engine.state,
             Some w.Soft.Engine.annot))
        | None, Some name ->
          let e =
            match Soft.Engine.of_string name with
            | Ok e -> e
            | Error m -> failwith m
          in
          let ctx = Soft.Engine.ctx ~seed ~meta:meta_s () in
          let o = Soft.Engine.run ~ctx e ~resources g in
          (o.Soft.Engine.schedule, o.Soft.Engine.state, Some o.Soft.Engine.annot)
        | None, None -> (
          match scheduler with
          | "threaded" ->
            let meta = meta_of_name ~resources meta_s in
            let state = Soft.Scheduler.run ~meta ~resources g in
            (Soft.Threaded_graph.to_schedule state, Some state, None)
          | "search" ->
            let state = Soft.Search.best_state ~resources g in
            (Soft.Threaded_graph.to_schedule state, Some state, None)
          | "list" -> (Hard.List_sched.run ~resources g, None, None)
          | "asap" -> (Hard.Asap.run g, None, None)
          | "exact" ->
            let r = Hard.Exact_bb.run ~resources g in
            Printf.printf "exact search: %d nodes, optimal=%b\n"
              r.Hard.Exact_bb.nodes_explored r.Hard.Exact_bb.optimal;
            (r.Hard.Exact_bb.schedule, None, None)
          | other ->
            failwith
              (Printf.sprintf
                 "unknown scheduler %S: expected threaded, search, list, asap \
                  or exact"
                 other)))
  in
  (match state with
  | Some state -> print_string (Soft.Render.threads state)
  | None -> ());
  Format.printf "%a@." Hard.Schedule.pp schedule;
  print_string (Hard.Schedule.gantt schedule);
  (match annot with
  | Some (a : Soft.Engine.annotations) ->
    Printf.printf "engine: %s (%d registers, %.3f ms%s%s)\n"
      a.Soft.Engine.engine a.Soft.Engine.registers
      (a.Soft.Engine.wall_s *. 1000.)
      (if a.Soft.Engine.optimal then ", optimal" else "")
      (if a.Soft.Engine.degraded then ", degraded" else "")
  | None -> ());
  (match Hard.Schedule.check ~resources schedule with
  | Ok () -> Printf.printf "valid under %s\n" (Hard.Resources.to_string resources)
  | Error m -> Printf.printf "INVALID: %s\n" m);
  Printf.printf "control steps: %d\n" (Hard.Schedule.length schedule)

let schedule_cmd =
  let term =
    Term.(
      ret
        (const run_schedule $ design_arg $ resources_arg $ meta_arg
        $ scheduler_arg $ engine_arg $ race_arg $ seed_arg $ Tel_cli.term))
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Schedule a design and print the result")
    term

(* --- table --------------------------------------------------------- *)

let run_table tel =
  term_of_failure @@ fun () ->
  Tel_cli.run tel
    ~vertex:(fun v -> Printf.sprintf "v%d" v)
    ~tracks_of:(fun () -> [])
    (fun () ->
      Printf.printf "%-4s %-12s" "BM" "Sched. Alg.";
      List.iter (fun (l, _) -> Printf.printf " %8s" l) Hard.Resources.fig3_all;
      print_newline ();
      List.iter
        (fun (e : Hls_bench.Suite.entry) ->
          List.iteri
            (fun i name ->
              Printf.printf "%-4s %-12s" e.name name;
              List.iter
                (fun (_, resources) ->
                  let g = e.build () in
                  let meta =
                    List.nth (Soft.Meta.fig3 ~resources) i |> snd
                  in
                  Printf.printf " %8d" (Soft.Scheduler.csteps ~meta ~resources g))
                Hard.Resources.fig3_all;
              print_newline ())
            [ "meta sched1"; "meta sched2"; "meta sched3"; "meta sched4" ];
          Printf.printf "%-4s %-12s" e.name "list sched";
          List.iter
            (fun (_, resources) ->
              let g = e.build () in
              Printf.printf " %8d"
                (Hard.Schedule.length (Hard.List_sched.run ~resources g)))
            Hard.Resources.fig3_all;
          print_newline ())
        Hls_bench.Suite.fig3)

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce Figure 3 of the paper")
    Term.(ret (const run_table $ Tel_cli.term))

(* --- dot ----------------------------------------------------------- *)

let run_dot design with_schedule resources tel =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  if with_schedule then begin
    let s, _ =
      Tel_cli.run tel
        ~vertex:(fun v -> Dfg.Graph.name g v)
        ~tracks_of:(fun (_, state) -> Tel_cli.tracks_of_state state)
        (fun () ->
          let state = Soft.Scheduler.run ~resources g in
          (Soft.Threaded_graph.to_schedule state, state))
    in
    print_string (Dfg.Dot.of_schedule g ~starts:(Hard.Schedule.starts s))
  end
  else
    print_string
      (Dfg.Dot.of_graph ~highlight:(Dfg.Paths.critical_path g) g)

let dot_cmd =
  let with_schedule =
    Arg.(value & flag & info [ "schedule" ] ~doc:"Rank vertices by control step.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz (critical path highlighted)")
    Term.(
      ret
        (const run_dot $ design_arg $ with_schedule $ resources_arg
        $ Tel_cli.term))

(* --- verilog ------------------------------------------------------- *)

let run_verilog design resources meta_s tel =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let meta = meta_of_name ~resources meta_s in
  let state =
    Tel_cli.run tel
      ~vertex:(fun v -> Dfg.Graph.name g v)
      ~tracks_of:Tel_cli.tracks_of_state
      (fun () -> Soft.Scheduler.run ~meta ~resources g)
  in
  let binding = Rtl.Binding.of_state state in
  print_string (Rtl.Verilog.emit ~module_name:"design" binding)

let verilog_cmd =
  Cmd.v
    (Cmd.info "verilog" ~doc:"Full HLS flow: schedule, bind, emit RTL")
    Term.(
      ret
        (const run_verilog $ design_arg $ resources_arg $ meta_arg
        $ Tel_cli.term))

(* --- sim ----------------------------------------------------------- *)

let run_sim design resources inputs vcd_path testbench tel =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let env =
    List.map
      (fun kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] -> (k, int_of_string v)
        | _ -> failwith (Printf.sprintf "bad input binding %S (want name=int)" kv))
      inputs
  in
  let state =
    Tel_cli.run tel
      ~vertex:(fun v -> Dfg.Graph.name g v)
      ~tracks_of:Tel_cli.tracks_of_state
      (fun () -> Soft.Scheduler.run ~resources g)
  in
  let binding = Rtl.Binding.of_state state in
  (match vcd_path with
  | Some path ->
    let oc = open_out path in
    output_string oc (Rtl.Vcd.of_run binding ~env);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  if testbench then
    print_string (Rtl.Verilog.emit_testbench binding ~env)
  else begin
  let outputs, trace = Rtl.Sim.run ~trace:true binding ~env in
  List.iter
    (fun e ->
      match e.Rtl.Sim.event, e.Rtl.Sim.value with
      | `Writeback, Some value ->
        Printf.printf "cycle %2d: %s = %d\n" e.Rtl.Sim.cycle
          (Dfg.Graph.name g e.Rtl.Sim.vertex)
          value
      | _ -> ())
    trace;
  List.iter (fun (k, v) -> Printf.printf "output %s = %d\n" k v) outputs;
    match Rtl.Sim.check_against_eval binding ~env with
    | Ok () -> print_endline "simulation agrees with dataflow evaluation"
    | Error m -> print_endline ("MISMATCH: " ^ m)
  end

let sim_cmd =
  let inputs =
    Arg.(value & opt_all string [] & info [ "i"; "input" ] ~docv:"NAME=VAL"
           ~doc:"Input binding, repeatable.")
  in
  let vcd =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Dump the simulation as a VCD waveform.")
  in
  let testbench =
    Arg.(value & flag & info [ "testbench" ]
           ~doc:"Print a self-checking Verilog testbench instead of the trace.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Schedule, bind and simulate cycle by cycle")
    Term.(
      ret
        (const run_sim $ design_arg $ resources_arg $ inputs $ vcd
        $ testbench $ Tel_cli.term))

(* --- map ----------------------------------------------------------- *)

let run_map design resources =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let before = Soft.Scheduler.csteps ~resources g in
  let result = Techmap.Mapper.schedule_driven ~resources g in
  Printf.printf "fused cells: %d\n" (List.length result.Techmap.Mapper.accepted);
  List.iter
    (fun (m : Techmap.Cover.match_) ->
      Printf.printf "  %s at %s (absorbs %s)\n" m.cell.Techmap.Cell.name
        (Dfg.Graph.name g m.root)
        (String.concat ", " (List.map (Dfg.Graph.name g) m.fused_away)))
    result.Techmap.Mapper.accepted;
  Printf.printf "control steps: %d -> %d\n" before
    (Techmap.Mapper.csteps ~resources result);
  print_string (Dfg.Serial.to_string result.Techmap.Mapper.mapped)

let map_cmd =
  Cmd.v
    (Cmd.info "map"
       ~doc:"Technology mapping with the threaded scheduler as kernel")
    Term.(ret (const run_map $ design_arg $ resources_arg))

(* --- retime --------------------------------------------------------- *)

let run_retime workload resources =
  term_of_failure @@ fun () ->
  let g =
    match workload with
    | "ring" -> Retime.Workloads.ring ~ops:8 ~registers:2
    | "correlator" -> Retime.Workloads.correlator ~taps:6
    | "pipeline" -> Retime.Workloads.pipeline ~stages:5 ~slack_registers:2
    | other -> failwith (Printf.sprintf "unknown workload %S (ring|correlator|pipeline)" other)
  in
  let o = Retime.Retimer.constrained ~resources g in
  Printf.printf
    "combinational period: %d -> %d\nscheduled csteps:     %d -> %d\nlag: %s\n"
    o.Retime.Retimer.period_before o.Retime.Retimer.period_after
    o.Retime.Retimer.csteps_before o.Retime.Retimer.csteps_after
    (String.concat " " (Array.to_list (Array.map string_of_int o.Retime.Retimer.lag)))

let retime_cmd =
  let workload =
    Arg.(value & pos 0 string "ring" & info [] ~docv:"WORKLOAD"
           ~doc:"Sequential workload: ring, correlator or pipeline.")
  in
  Cmd.v
    (Cmd.info "retime"
       ~doc:"Resource-constrained retiming with the scheduling kernel")
    Term.(ret (const run_retime $ workload $ resources_arg))

(* --- vliw ----------------------------------------------------------- *)

let run_vliw design resources =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let prog = Vliw.Emit.run binding in
  (match Vliw.Isa.validate prog with
  | Ok () -> ()
  | Error m -> failwith ("internal: invalid program: " ^ m));
  print_string (Vliw.Asm.print prog);
  Printf.printf "; %d instructions over %d bundles, slot utilisation %.0f%%\n"
    (Vliw.Isa.n_instructions prog)
    (Array.length prog.Vliw.Isa.bundles)
    (100.0 *. Vliw.Isa.slot_utilisation prog)

let vliw_cmd =
  Cmd.v
    (Cmd.info "vliw" ~doc:"Emit VLIW assembly for a scheduled design")
    Term.(ret (const run_vliw $ design_arg $ resources_arg))

(* --- report --------------------------------------------------------- *)

let run_report design resources meta_s audit json_path =
  term_of_failure @@ fun () ->
  let meta = meta_of_name ~resources meta_s in
  let report =
    Qor.Flow.run ?audit_rate:audit ~meta ~tool_version:Version.version
      ~resources ~design
      ~build:(fun () -> graph_of_spec design)
      ()
  in
  print_string (Qor.Report.summary report);
  match json_path with
  | Some path ->
    (try Qor.Report.write ~path report with
    | Sys_error m -> failwith (Printf.sprintf "cannot write report: %s" m));
    Printf.printf "wrote %s\n" path
  | None -> ()

let audit_arg =
  Arg.(
    value
    & opt ~vopt:(Some 1) (some int) None
    & info [ "audit" ] ~docv:"RATE"
        ~doc:
          "Run the online invariant auditor: every RATE-th scheduling \
           commit replays the live state through the full invariant \
           battery (correctness, threading, acyclicity, Lemma 7 degree \
           bound). RATE defaults to 1 — audit every commit. Violation \
           counts land in the report.")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the report as schema-versioned JSON to $(docv).")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the full HLS flow under QoR spans and emit a run-report \
          (per-phase wall clock, allocation, telemetry-counter deltas and \
          quality-of-results metrics)")
    Term.(
      ret
        (const run_report $ design_arg $ resources_arg $ meta_arg $ audit_arg
        $ json_out_arg))

(* --- diff ----------------------------------------------------------- *)

let run_diff baseline current max_regress =
  term_of_failure @@ fun () ->
  let load path =
    match Qor.Report.load path with
    | Ok r -> r
    | Error m -> failwith (Printf.sprintf "%s: %s" path m)
  in
  let b = load baseline in
  let c = load current in
  match
    Qor.Diff.compare ~max_regress_pct:max_regress ~baseline:b ~current:c ()
  with
  | Error m -> failwith m
  | Ok result ->
    print_string (Qor.Diff.render result);
    if not (Qor.Diff.ok result) then exit 1

let diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline run-report (JSON).")
  in
  let current =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current run-report (JSON).")
  in
  let max_regress =
    Arg.(
      value & opt float 0.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Tolerated worsening per gated metric, in percent of the \
             baseline value. The default 0 fails on any worsening.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two QoR run-reports metric by metric; exit 1 when a \
          gated metric regressed past --max-regress (the CI QoR gate)")
    Term.(ret (const run_diff $ baseline $ current $ max_regress))

(* --- selfcheck ------------------------------------------------------ *)

let run_selfcheck design resources =
  term_of_failure @@ fun () ->
  let g = graph_of_spec design in
  let failures = ref 0 in
  let report label = function
    | Ok () -> Printf.printf "  ok    %s\n" label
    | Error m ->
      incr failures;
      Printf.printf "  FAIL  %s: %s\n" label m
  in
  Printf.printf "design: %d vertices, %d edges, diameter %d, dag %b\n"
    (Dfg.Graph.n_vertices g) (Dfg.Graph.n_edges g) (Dfg.Paths.diameter g)
    (Dfg.Graph.is_dag g);
  List.iter
    (fun (label, meta) ->
      let state = Soft.Scheduler.run ~meta ~resources g in
      report (label ^ " invariants") (Soft.Invariant.check_all state);
      report
        (label ^ " schedule")
        (Hard.Schedule.check ~resources
           (Soft.Threaded_graph.to_schedule state)))
    (Soft.Meta.fig3 ~resources);
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let alloc =
    {
      Refine.Regalloc.assignment = binding.Rtl.Binding.register_of_value;
      n_registers = binding.Rtl.Binding.n_registers;
      spilled = [];
    }
  in
  report "register binding"
    (Refine.Regalloc.verify alloc binding.Rtl.Binding.schedule);
  let prog = Vliw.Emit.run binding in
  report "vliw program" (Vliw.Isa.validate prog);
  if !failures = 0 then print_endline "all checks passed"
  else begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end

let selfcheck_cmd =
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:"Run every validity checker on a design end to end")
    Term.(ret (const run_selfcheck $ design_arg $ resources_arg))

(* --- batch / serve -------------------------------------------------- *)

let jobs_arg =
  let doc =
    "Workers for the scheduling pool (domains on OCaml 5, threads on 4.14). \
     Defaults to the detected core count; set explicitly to pin the \
     parallelism. Batch output is byte-identical for any value."
  in
  Arg.(
    value
    & opt int (Serve.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_size_arg =
  let doc = "Result-cache capacity (LRU entries)." in
  Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"N" ~doc)

let cache_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-file" ] ~docv:"FILE"
        ~doc:
          "Load the result cache from $(docv) at startup (if it exists) and \
           save it back (atomically) on exit, so cache hits survive across \
           invocations.")

let load_cache_or_fail service = function
  | None -> ()
  | Some path -> (
    match Serve.Service.load_cache service path with
    | Ok n ->
      if n > 0 then Printf.eprintf "loaded %d cached results from %s\n%!" n path
    | Error m -> failwith m)

let save_cache service = function
  | None -> ()
  | Some path -> Serve.Service.save_cache service path

(* The service-layer spans carry opaque vertex/thread ids (no single
   design is in scope), so trace files from batch/serve render vertices
   numerically. *)
let numeric_vertex v = Printf.sprintf "v%d" v

let run_batch jobs cache_size cache_file tel =
  term_of_failure @@ fun () ->
  if jobs <= 0 then failwith "--jobs must be positive";
  if cache_size <= 0 then failwith "--cache-size must be positive";
  let metrics =
    if tel.Tel_cli.stats then Some (Serve.Metrics.create ()) else None
  in
  let service = Serve.Service.create ~cache_capacity:cache_size ?metrics () in
  load_cache_or_fail service cache_file;
  let stats =
    Tel_cli.run ~log:stderr tel ~vertex:numeric_vertex ~tracks_of:(fun _ -> [])
      (fun () -> Serve.Batch.run_channels service ~jobs stdin stdout)
  in
  save_cache service cache_file;
  prerr_endline (Serve.Batch.summary stats);
  match metrics with
  | Some m -> prerr_string (Serve.Metrics.summary m)
  | None -> ()

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Schedule a stream of NDJSON requests: one JSON request object per \
          stdin line, one JSON response per stdout line, in input order. \
          Identical requests are answered from the fingerprint cache; the \
          output is byte-identical for any --jobs, with or without \
          telemetry. A summary line goes to stderr; --stats adds the \
          scheduler counters and a per-phase latency table (also stderr).")
    Term.(
      ret
        (const run_batch $ jobs_arg $ cache_size_arg $ cache_file_arg
        $ Tel_cli.term))

(* Atomic (tmp + rename) so a scraper reading the file mid-dump never
   sees a torn snapshot. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* One dump = the JSON snapshot to FILE plus Prometheus text exposition
   to FILE.prom. *)
let dump_metrics service metrics path =
  let cache = Serve.Service.cache_stats service in
  write_atomic path
    (Qor.Json.to_string ~minify:false
       (Serve.Metrics.snapshot_json ~cache metrics)
    ^ "\n");
  write_atomic (path ^ ".prom") (Serve.Metrics.to_prometheus ~cache metrics)

let run_serve socket tcp jobs max_connections cache_size cache_file
    metrics_file metrics_interval slow_ms slow_log tel =
  term_of_failure @@ fun () ->
  if jobs <= 0 then failwith "--jobs must be positive";
  if socket = None && tcp = None then
    failwith "need --socket PATH, --tcp HOST:PORT, or both";
  if cache_size <= 0 then failwith "--cache-size must be positive";
  if max_connections <= 0 then failwith "--max-connections must be positive";
  if metrics_interval <= 0.0 then failwith "--metrics-interval must be positive";
  (match slow_ms with
  | Some t when t < 0.0 -> failwith "--slow-ms must be non-negative"
  | _ -> ());
  let metrics = Serve.Metrics.create () in
  (match (slow_ms, slow_log) with
  | None, None -> ()
  | threshold, target ->
    let threshold_ms = Option.value ~default:100.0 threshold in
    let target = match target with None -> `Stderr | Some p -> `File p in
    Serve.Metrics.set_slow_log metrics ~threshold_ms target);
  let service = Serve.Service.create ~cache_capacity:cache_size ~metrics () in
  load_cache_or_fail service cache_file;
  let dump () =
    match metrics_file with
    | None -> ()
    | Some path -> dump_metrics service metrics path
  in
  Tel_cli.run ~log:stderr tel ~vertex:numeric_vertex ~tracks_of:(fun _ -> [])
    (fun () ->
      let daemon =
        Serve.Daemon.start service ?socket ?tcp ~jobs ~max_connections ()
      in
      (* The handler only raises a flag; the main thread notices it between
         naps and runs the actual drain — signal-handler-safe by
         construction. *)
      let stop_requested = ref false in
      let request_stop _ = stop_requested := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      let endpoints =
        (match socket with Some p -> [ p ] | None -> [])
        @
        match (tcp, Serve.Daemon.tcp_port daemon) with
        | Some (host, _), Some port -> [ Printf.sprintf "%s:%d" host port ]
        | _ -> []
      in
      Printf.eprintf
        "softsched serve: listening on %s (%d jobs via %s, %d connections)\n%!"
        (String.concat " and " endpoints)
        jobs Serve.Pool.backend max_connections;
      let last_dump = ref (Unix.gettimeofday ()) in
      while not !stop_requested do
        Thread.delay 0.1;
        if
          metrics_file <> None
          && Unix.gettimeofday () -. !last_dump >= metrics_interval
        then begin
          dump ();
          last_dump := Unix.gettimeofday ()
        end
      done;
      Printf.eprintf "softsched serve: draining...\n%!";
      Serve.Daemon.stop daemon;
      Serve.Daemon.wait daemon);
  save_cache service cache_file;
  dump ();
  let s = Serve.Service.cache_stats service in
  Printf.eprintf
    "softsched serve: drained; cache %d/%d entries, %d hits, %d misses, %d \
     evictions\n\
     %!"
    s.Serve.Cache.length s.Serve.Cache.capacity s.Serve.Cache.hits
    s.Serve.Cache.misses s.Serve.Cache.evictions;
  prerr_string (Serve.Metrics.summary metrics);
  flush stderr;
  Serve.Metrics.close_slow_log metrics

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (stale files are replaced).")

(* HOST:PORT for the TCP transport; the split is on the last ':' so a
   numeric IPv6 host would need brackets stripped upstream — the
   daemon resolves names via gethostbyname. *)
let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad HOST:PORT %S" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 ->
      Ok ((if host = "" then "127.0.0.1" else host), p)
    | Some _ | None -> Error (Printf.sprintf "bad port in %S" s))

let host_port_conv =
  let parse s =
    match parse_host_port s with Ok v -> Ok v | Error m -> Error (`Msg m)
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let tcp_arg =
  Arg.(
    value
    & opt (some host_port_conv) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "TCP endpoint to listen on, alongside (or instead of) --socket. \
           Port 0 binds an ephemeral port.")

let serve_cmd =
  let max_connections =
    Arg.(
      value & opt int 32
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Concurrent connection limit; excess connections receive one \
             error line (with a retry_after_ms back-off hint) and are \
             closed.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Dump the metrics snapshot every --metrics-interval seconds and \
             once more on drain: JSON to $(docv), Prometheus text \
             exposition to $(docv).prom. Dumps are atomic (tmp + rename).")
  in
  let metrics_interval =
    Arg.(
      value & opt float 5.0
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between --metrics-file dumps (default 5).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log every request whose total latency is at least $(docv) \
             milliseconds as one NDJSON line with the per-phase breakdown \
             (to stderr, or --slow-log). Implies a 100ms threshold when \
             only --slow-log is given.")
  in
  let slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:"Append slow-request NDJSON lines to $(docv) instead of stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon on a Unix-domain socket (--socket) \
          and/or TCP (--tcp HOST:PORT), speaking the same NDJSON protocol \
          as batch (one request line, one response line). A \
          {\"admin\":\"stats\"} request line answers with a live metrics \
          snapshot (see the stats subcommand). SIGTERM/SIGINT drain: \
          in-flight requests complete and are answered before exit.")
    Term.(
      ret
        (const run_serve $ socket_arg $ tcp_arg $ jobs_arg $ max_connections
        $ cache_size_arg $ cache_file_arg $ metrics_file $ metrics_interval
        $ slow_ms $ slow_log $ Tel_cli.term))

(* --- stats: one-shot metrics client --------------------------------- *)

let run_stats socket tcp raw =
  term_of_failure @@ fun () ->
  let target, fd =
    match (socket, tcp) with
    | Some _, Some _ -> failwith "--socket and --tcp are mutually exclusive"
    | None, None -> failwith "need --socket PATH or --tcp HOST:PORT"
    | Some path, None ->
      (path, (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path))
    | None, Some (host, port) ->
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
            failwith (Printf.sprintf "cannot resolve %s" host))
      in
      let sa = Unix.ADDR_INET (addr, port) in
      ( Printf.sprintf "%s:%d" host port,
        (Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0, sa) )
  in
  let fd, sockaddr = fd in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith
      (Printf.sprintf "cannot connect to %s: %s" target (Unix.error_message e)));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let reply =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        output_string oc "{\"admin\":\"stats\"}\n";
        flush oc;
        match input_line ic with
        | line -> line
        | exception End_of_file ->
          failwith "daemon closed the connection without a reply")
  in
  if raw then print_endline reply
  else
    match Qor.Json.parse_result reply with
    | Error m -> failwith (Printf.sprintf "unparseable reply: %s" m)
    | Ok j -> (
      match Qor.Json.member "stats" j with
      | Some stats -> print_endline (Qor.Json.to_string ~minify:false stats)
      | None -> failwith (Printf.sprintf "daemon replied without stats: %s" reply))

let stats_cmd =
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Print the daemon's NDJSON reply line verbatim instead of the \
             pretty-printed stats object.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Ask a running softsched serve daemon for its metrics snapshot \
          (latency histograms per request phase, cache hit/miss counters, \
          pool and connection gauges) over its Unix socket (--socket) or \
          TCP endpoint (--tcp HOST:PORT). Exits nonzero if the daemon is \
          unreachable or the reply is not a stats object.")
    Term.(ret (const run_stats $ socket_arg $ tcp_arg $ raw))

(* --- modulo --------------------------------------------------------- *)

let known_loops () =
  String.concat ", "
    (List.map
       (fun (e : Hls_bench.Suite.loop_entry) -> e.loop_name)
       Hls_bench.Suite.loops)

let loop_of_spec spec =
  match Hls_bench.Suite.find_loop spec with
  | entry -> entry.Hls_bench.Suite.build_loop ()
  | exception Not_found ->
    if Sys.file_exists spec then
      try Modulo.Serial.load spec
      with Modulo.Serial.Parse_error m -> failwith (spec ^ ": " ^ m)
    else
      failwith
        (Printf.sprintf
           "unknown loop kernel %S: expected a kernel name (%s) or a path to \
            a .ldfg file"
           spec (known_loops ()))

let run_modulo design resources budget unroll json_path =
  term_of_failure @@ fun () ->
  let g = loop_of_spec design in
  (match Modulo.Ims.run ?budget ~resources g with
  | Error m -> failwith m
  | Ok (ms, stats) ->
    Printf.printf "%s under %s: MII %d (res %d, rec %d) -> II %d%s\n" design
      (Hard.Resources.to_string resources)
      stats.Modulo.Ims.mii stats.Modulo.Ims.res_mii stats.Modulo.Ims.rec_mii
      stats.Modulo.Ims.ii
      (if stats.Modulo.Ims.serial_fallback then " (serial fallback)" else "");
    Format.printf "%a@." Modulo.Mschedule.pp ms;
    Printf.printf "steady-state utilisation %.3f, %d placements, %d evictions\n"
      (Modulo.Mschedule.steady_state_util ~resources ms)
      stats.Modulo.Ims.placements stats.Modulo.Ims.evictions;
    (match unroll with
    | Some iterations when iterations >= 1 ->
      let flat = Modulo.Mschedule.unrolled ms ~iterations in
      Printf.printf "\nunrolled x%d (%d control steps):\n%s" iterations
        (Hard.Schedule.length flat)
        (Hard.Schedule.gantt flat)
    | Some _ -> failwith "--unroll needs at least 1 iteration"
    | None -> ()));
  match json_path with
  | Some path ->
    let report =
      Qor.Loop_flow.run ?budget ~tool_version:Version.version ~resources
        ~design
        ~build:(fun () -> loop_of_spec design)
        ()
    in
    (try Qor.Report.write ~path report with
    | Sys_error m -> failwith (Printf.sprintf "cannot write report: %s" m));
    Printf.printf "wrote %s\n" path
  | None -> ()

let modulo_cmd =
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Placement budget per candidate II (default 8 ops per vertex); \
             when it runs out the search moves to the next II.")
  in
  let unroll =
    Arg.(
      value
      & opt (some int) None
      & info [ "unroll" ] ~docv:"N"
          ~doc:
            "Also flatten $(docv) pipelined iterations and print the flat \
             schedule's Gantt chart.")
  in
  let design =
    let doc =
      "Loop kernel: a name (FIR_LOOP, IIR_LOOP) or a path to a .ldfg file \
       (lines: vertex <name> <op> [<delay>] / edge <src> <dst> [<distance>])."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)
  in
  Cmd.v
    (Cmd.info "modulo"
       ~doc:
         "Pipeline a loop kernel: compute the MII bounds, search the \
          initiation interval with the iterative modulo scheduler and print \
          the steady-state schedule (--json writes the QoR run-report the CI \
          gate diffs)")
    Term.(
      ret
        (const run_modulo $ design $ resources_arg $ budget $ unroll
       $ json_out_arg))

(* --- main ---------------------------------------------------------- *)

(* With SIGPIPE ignored, writing into a closed pipe surfaces as a
   Sys_error we can turn into a clean exit — `softsched dot HAL | head`
   should not die with a signal or a backtrace. *)
let is_broken_pipe m =
  let needle = "Broken pipe" in
  let lm = String.length m and ln = String.length needle in
  let rec at i = i + ln <= lm && (String.sub m i ln = needle || at (i + 1)) in
  at 0

let () =
  Modulo.Engine.ensure_registered ();
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let doc = "soft (threaded) scheduling for high level synthesis" in
  let info = Cmd.info "softsched" ~version:Version.version ~doc in
  let group =
    Cmd.group info
      [ schedule_cmd; table_cmd; dot_cmd; verilog_cmd; sim_cmd;
        map_cmd; retime_cmd; vliw_cmd; modulo_cmd; selfcheck_cmd;
        report_cmd; diff_cmd; batch_cmd; serve_cmd; stats_cmd ]
  in
  let code =
    try Cmd.eval ~catch:false group with
    | Sys_error m when is_broken_pipe m -> 0
    | e ->
      let bt = Printexc.get_raw_backtrace () in
      Format.eprintf "softsched: internal error, uncaught exception:@.%s@."
        (Printexc.to_string e);
      Printexc.print_raw_backtrace stderr bt;
      125
  in
  (* exit itself flushes the standard formatters, which re-raises the
     broken-pipe error; each at_exit handler runs at most once, so
     retrying skips the offender and reaches the real exit. *)
  let rec exit_clean code =
    try exit code with Sys_error m when is_broken_pipe m -> exit_clean code
  in
  exit_clean code
