(* softsched — command-line front door to the soft-scheduling library.

   Subcommands:
     schedule   schedule a benchmark or a .beh source file
     table      reproduce the paper's Figure 3
     dot        emit the dataflow graph (or its schedule) as Graphviz
     verilog    run the full HLS flow and emit RTL
     sim        schedule, bind and simulate with given input values *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- shared arguments ---------------------------------------------- *)

let graph_of_spec spec =
  match Hls_bench.Suite.find spec with
  | entry -> entry.Hls_bench.Suite.build ()
  | exception Not_found ->
    if Sys.file_exists spec then begin
      if Filename.check_suffix spec ".dfg" then Dfg.Serial.load spec
      else Ir.Lower.of_source (read_file spec)
    end
    else
      failwith
        (Printf.sprintf
           "unknown design %S (expected a benchmark name %s or a file)" spec
           (String.concat "|"
              (List.map
                 (fun (e : Hls_bench.Suite.entry) -> e.name)
                 Hls_bench.Suite.all)))

let design_arg =
  let doc =
    "Design to process: a benchmark name (HAL, AR, EF, FIR, DCT, IIR) or a \
     path to a behavioral source file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let parse_resources s =
  (* e.g. "2alu,1mul" or "2alu,2mul,1mem" *)
  let parse_one part =
    let part = String.trim part in
    let split =
      let rec first_alpha i =
        if i >= String.length part then i
        else
          match part.[i] with '0' .. '9' -> first_alpha (i + 1) | _ -> i
      in
      first_alpha 0
    in
    if split = 0 || split = String.length part then
      failwith (Printf.sprintf "bad resource spec %S (want e.g. 2alu)" part);
    let n = int_of_string (String.sub part 0 split) in
    let cls =
      match String.sub part split (String.length part - split) with
      | "alu" -> Hard.Resources.Alu
      | "mul" -> Hard.Resources.Multiplier
      | "mem" -> Hard.Resources.Memory
      | other -> failwith (Printf.sprintf "unknown unit class %S" other)
    in
    (cls, n)
  in
  Hard.Resources.make (List.map parse_one (String.split_on_char ',' s))

let resources_arg =
  let doc = "Resource configuration, e.g. 2alu,2mul,1mem." in
  Arg.(
    value
    & opt string "2alu,2mul,1mem"
    & info [ "r"; "resources" ] ~docv:"RES" ~doc)

let meta_of_name ~resources = function
  | "dfs" -> Soft.Meta.dfs
  | "topo" -> Soft.Meta.topological
  | "paths" -> Soft.Meta.by_paths
  | "list" -> Soft.Meta.list_like ~resources
  | other -> failwith (Printf.sprintf "unknown meta schedule %S" other)

let meta_arg =
  let doc = "Meta schedule: dfs, topo, paths or list." in
  Arg.(value & opt string "topo" & info [ "m"; "meta" ] ~docv:"META" ~doc)

let scheduler_arg =
  let doc =
    "Scheduler: threaded (the paper's), search (threaded + meta-schedule \
     search), list, asap, or exact."
  in
  Arg.(value & opt string "threaded" & info [ "s"; "scheduler" ] ~doc)

(* --- schedule ------------------------------------------------------ *)

let run_schedule design resources_s meta_s scheduler =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let schedule =
    match scheduler with
    | "threaded" ->
      let meta = meta_of_name ~resources meta_s in
      let state = Soft.Scheduler.run ~meta ~resources g in
      print_string (Soft.Render.threads state);
      Soft.Threaded_graph.to_schedule state
    | "search" ->
      let state = Soft.Search.best_state ~resources g in
      print_string (Soft.Render.threads state);
      Soft.Threaded_graph.to_schedule state
    | "list" -> Hard.List_sched.run ~resources g
    | "asap" -> Hard.Asap.run g
    | "exact" ->
      let r = Hard.Exact_bb.run ~resources g in
      Printf.printf "exact search: %d nodes, optimal=%b\n"
        r.Hard.Exact_bb.nodes_explored r.Hard.Exact_bb.optimal;
      r.Hard.Exact_bb.schedule
    | other -> failwith (Printf.sprintf "unknown scheduler %S" other)
  in
  Format.printf "%a@." Hard.Schedule.pp schedule;
  print_string (Hard.Schedule.gantt schedule);
  (match Hard.Schedule.check ~resources schedule with
  | Ok () -> Printf.printf "valid under %s\n" (Hard.Resources.to_string resources)
  | Error m -> Printf.printf "INVALID: %s\n" m);
  Printf.printf "control steps: %d\n" (Hard.Schedule.length schedule)

let schedule_cmd =
  let term =
    Term.(const run_schedule $ design_arg $ resources_arg $ meta_arg
          $ scheduler_arg)
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Schedule a design and print the result")
    term

(* --- table --------------------------------------------------------- *)

let run_table () =
  Printf.printf "%-4s %-12s" "BM" "Sched. Alg.";
  List.iter (fun (l, _) -> Printf.printf " %8s" l) Hard.Resources.fig3_all;
  print_newline ();
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iteri
        (fun i name ->
          Printf.printf "%-4s %-12s" e.name name;
          List.iter
            (fun (_, resources) ->
              let g = e.build () in
              let meta =
                List.nth (Soft.Meta.fig3 ~resources) i |> snd
              in
              Printf.printf " %8d" (Soft.Scheduler.csteps ~meta ~resources g))
            Hard.Resources.fig3_all;
          print_newline ())
        [ "meta sched1"; "meta sched2"; "meta sched3"; "meta sched4" ];
      Printf.printf "%-4s %-12s" e.name "list sched";
      List.iter
        (fun (_, resources) ->
          let g = e.build () in
          Printf.printf " %8d"
            (Hard.Schedule.length (Hard.List_sched.run ~resources g)))
        Hard.Resources.fig3_all;
      print_newline ())
    Hls_bench.Suite.fig3

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce Figure 3 of the paper")
    Term.(const run_table $ const ())

(* --- dot ----------------------------------------------------------- *)

let run_dot design with_schedule resources_s =
  let g = graph_of_spec design in
  if with_schedule then begin
    let resources = parse_resources resources_s in
    let s = Soft.Scheduler.run_to_schedule ~resources g in
    print_string (Dfg.Dot.of_schedule g ~starts:(Hard.Schedule.starts s))
  end
  else
    print_string
      (Dfg.Dot.of_graph ~highlight:(Dfg.Paths.critical_path g) g)

let dot_cmd =
  let with_schedule =
    Arg.(value & flag & info [ "schedule" ] ~doc:"Rank vertices by control step.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz (critical path highlighted)")
    Term.(const run_dot $ design_arg $ with_schedule $ resources_arg)

(* --- verilog ------------------------------------------------------- *)

let run_verilog design resources_s meta_s =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let meta = meta_of_name ~resources meta_s in
  let state = Soft.Scheduler.run ~meta ~resources g in
  let binding = Rtl.Binding.of_state state in
  print_string (Rtl.Verilog.emit ~module_name:"design" binding)

let verilog_cmd =
  Cmd.v
    (Cmd.info "verilog" ~doc:"Full HLS flow: schedule, bind, emit RTL")
    Term.(const run_verilog $ design_arg $ resources_arg $ meta_arg)

(* --- sim ----------------------------------------------------------- *)

let run_sim design resources_s inputs vcd_path testbench =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let env =
    List.map
      (fun kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] -> (k, int_of_string v)
        | _ -> failwith (Printf.sprintf "bad input binding %S (want name=int)" kv))
      inputs
  in
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  (match vcd_path with
  | Some path ->
    let oc = open_out path in
    output_string oc (Rtl.Vcd.of_run binding ~env);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  if testbench then
    print_string (Rtl.Verilog.emit_testbench binding ~env)
  else begin
  let outputs, trace = Rtl.Sim.run ~trace:true binding ~env in
  List.iter
    (fun e ->
      match e.Rtl.Sim.event, e.Rtl.Sim.value with
      | `Writeback, Some value ->
        Printf.printf "cycle %2d: %s = %d\n" e.Rtl.Sim.cycle
          (Dfg.Graph.name g e.Rtl.Sim.vertex)
          value
      | _ -> ())
    trace;
  List.iter (fun (k, v) -> Printf.printf "output %s = %d\n" k v) outputs;
    match Rtl.Sim.check_against_eval binding ~env with
    | Ok () -> print_endline "simulation agrees with dataflow evaluation"
    | Error m -> print_endline ("MISMATCH: " ^ m)
  end

let sim_cmd =
  let inputs =
    Arg.(value & opt_all string [] & info [ "i"; "input" ] ~docv:"NAME=VAL"
           ~doc:"Input binding, repeatable.")
  in
  let vcd =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Dump the simulation as a VCD waveform.")
  in
  let testbench =
    Arg.(value & flag & info [ "testbench" ]
           ~doc:"Print a self-checking Verilog testbench instead of the trace.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Schedule, bind and simulate cycle by cycle")
    Term.(const run_sim $ design_arg $ resources_arg $ inputs $ vcd
          $ testbench)

(* --- map ----------------------------------------------------------- *)

let run_map design resources_s =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let before = Soft.Scheduler.csteps ~resources g in
  let result = Techmap.Mapper.schedule_driven ~resources g in
  Printf.printf "fused cells: %d\n" (List.length result.Techmap.Mapper.accepted);
  List.iter
    (fun (m : Techmap.Cover.match_) ->
      Printf.printf "  %s at %s (absorbs %s)\n" m.cell.Techmap.Cell.name
        (Dfg.Graph.name g m.root)
        (String.concat ", " (List.map (Dfg.Graph.name g) m.fused_away)))
    result.Techmap.Mapper.accepted;
  Printf.printf "control steps: %d -> %d\n" before
    (Techmap.Mapper.csteps ~resources result);
  print_string (Dfg.Serial.to_string result.Techmap.Mapper.mapped)

let map_cmd =
  Cmd.v
    (Cmd.info "map"
       ~doc:"Technology mapping with the threaded scheduler as kernel")
    Term.(const run_map $ design_arg $ resources_arg)

(* --- retime --------------------------------------------------------- *)

let run_retime workload resources_s =
  let resources = parse_resources resources_s in
  let g =
    match workload with
    | "ring" -> Retime.Workloads.ring ~ops:8 ~registers:2
    | "correlator" -> Retime.Workloads.correlator ~taps:6
    | "pipeline" -> Retime.Workloads.pipeline ~stages:5 ~slack_registers:2
    | other -> failwith (Printf.sprintf "unknown workload %S (ring|correlator|pipeline)" other)
  in
  let o = Retime.Retimer.constrained ~resources g in
  Printf.printf
    "combinational period: %d -> %d\nscheduled csteps:     %d -> %d\nlag: %s\n"
    o.Retime.Retimer.period_before o.Retime.Retimer.period_after
    o.Retime.Retimer.csteps_before o.Retime.Retimer.csteps_after
    (String.concat " " (Array.to_list (Array.map string_of_int o.Retime.Retimer.lag)))

let retime_cmd =
  let workload =
    Arg.(value & pos 0 string "ring" & info [] ~docv:"WORKLOAD"
           ~doc:"Sequential workload: ring, correlator or pipeline.")
  in
  Cmd.v
    (Cmd.info "retime"
       ~doc:"Resource-constrained retiming with the scheduling kernel")
    Term.(const run_retime $ workload $ resources_arg)

(* --- vliw ----------------------------------------------------------- *)

let run_vliw design resources_s =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let prog = Vliw.Emit.run binding in
  (match Vliw.Isa.validate prog with
  | Ok () -> ()
  | Error m -> failwith ("internal: invalid program: " ^ m));
  print_string (Vliw.Asm.print prog);
  Printf.printf "; %d instructions over %d bundles, slot utilisation %.0f%%\n"
    (Vliw.Isa.n_instructions prog)
    (Array.length prog.Vliw.Isa.bundles)
    (100.0 *. Vliw.Isa.slot_utilisation prog)

let vliw_cmd =
  Cmd.v
    (Cmd.info "vliw" ~doc:"Emit VLIW assembly for a scheduled design")
    Term.(const run_vliw $ design_arg $ resources_arg)

(* --- selfcheck ------------------------------------------------------ *)

let run_selfcheck design resources_s =
  let g = graph_of_spec design in
  let resources = parse_resources resources_s in
  let failures = ref 0 in
  let report label = function
    | Ok () -> Printf.printf "  ok    %s\n" label
    | Error m ->
      incr failures;
      Printf.printf "  FAIL  %s: %s\n" label m
  in
  Printf.printf "design: %d vertices, %d edges, diameter %d, dag %b\n"
    (Dfg.Graph.n_vertices g) (Dfg.Graph.n_edges g) (Dfg.Paths.diameter g)
    (Dfg.Graph.is_dag g);
  List.iter
    (fun (label, meta) ->
      let state = Soft.Scheduler.run ~meta ~resources g in
      report (label ^ " invariants") (Soft.Invariant.check_all state);
      report
        (label ^ " schedule")
        (Hard.Schedule.check ~resources
           (Soft.Threaded_graph.to_schedule state)))
    (Soft.Meta.fig3 ~resources);
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let alloc =
    {
      Refine.Regalloc.assignment = binding.Rtl.Binding.register_of_value;
      n_registers = binding.Rtl.Binding.n_registers;
      spilled = [];
    }
  in
  report "register binding"
    (Refine.Regalloc.verify alloc binding.Rtl.Binding.schedule);
  let prog = Vliw.Emit.run binding in
  report "vliw program" (Vliw.Isa.validate prog);
  if !failures = 0 then print_endline "all checks passed"
  else begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end

let selfcheck_cmd =
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:"Run every validity checker on a design end to end")
    Term.(const run_selfcheck $ design_arg $ resources_arg)

(* --- main ---------------------------------------------------------- *)

let () =
  let doc = "soft (threaded) scheduling for high level synthesis" in
  let info = Cmd.info "softsched" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schedule_cmd; table_cmd; dot_cmd; verilog_cmd; sim_cmd;
            map_cmd; retime_cmd; vliw_cmd; selfcheck_cmd ]))
