(* Tests for the RTL back end: binding, controller, simulation,
   netlist, Verilog emission. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul
let meta = Soft.Meta.topological

let bench_env g =
  List.filter_map
    (fun v ->
      match Graph.op g v with
      | Op.Input n -> Some (n, (Hashtbl.hash n mod 15) - 7)
      | _ -> None)
    (Graph.vertices g)

let bound name =
  let g = (Hls_bench.Suite.find name).build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  (g, state, Rtl.Binding.of_state state)

(* --- Binding ------------------------------------------------------- *)

let test_binding_fu_assignment () =
  let g, state, binding = bound "HAL" in
  Graph.iter_vertices
    (fun v ->
      match T.thread_of state v with
      | Some k ->
        check Alcotest.(option int)
          (Printf.sprintf "fu of %s" (Graph.name g v))
          (Some k) (Rtl.Binding.fu_of binding v)
      | None ->
        check Alcotest.(option int) "no fu" None (Rtl.Binding.fu_of binding v))
    g

let test_binding_fu_classes_match_ops () =
  let g, _, binding = bound "HAL" in
  Graph.iter_vertices
    (fun v ->
      match Rtl.Binding.fu_of binding v with
      | Some fu ->
        check Alcotest.bool
          (Printf.sprintf "%s on right class" (Graph.name g v))
          true
          (R.can_execute (binding.Rtl.Binding.fu_class fu) (Graph.op g v))
      | None -> ())
    g

let test_binding_registers_cover_values () =
  let _g, _, binding = bound "EF" in
  let alloc_count = List.length binding.Rtl.Binding.register_of_value in
  check Alcotest.bool "has registers" true
    (binding.Rtl.Binding.n_registers > 0
    && alloc_count >= binding.Rtl.Binding.n_registers)

let test_binding_operand_sources () =
  let g, _, binding = bound "HAL" in
  (* m1 = 3 * x: one constant source, one register source *)
  let m1 = List.find (fun v -> Graph.name g v = "m1") (Graph.vertices g) in
  match Rtl.Binding.operand_sources binding m1 with
  | [ Rtl.Binding.From_constant 3; Rtl.Binding.From_register _ ] -> ()
  | _ -> Alcotest.fail "m1 sources"

let test_binding_mux_width () =
  let _g, _, binding = bound "EF" in
  let total = ref 0 in
  for fu = 0 to binding.Rtl.Binding.n_fus - 1 do
    for port = 0 to 1 do
      total := !total + Rtl.Binding.mux_width binding ~fu ~port
    done
  done;
  check Alcotest.bool "some steering" true (!total > 0)

(* --- FSM ----------------------------------------------------------- *)

let test_fsm_each_op_once () =
  let g, _, binding = bound "HAL" in
  let fsm = Rtl.Fsm.of_binding binding in
  let issues = Hashtbl.create 32 and wbs = Hashtbl.create 32 in
  for state = 0 to Rtl.Fsm.n_states fsm do
    List.iter
      (fun a ->
        match a with
        | Rtl.Fsm.Issue v ->
          Hashtbl.replace issues v (1 + Option.value ~default:0 (Hashtbl.find_opt issues v))
        | Rtl.Fsm.Writeback v ->
          Hashtbl.replace wbs v (1 + Option.value ~default:0 (Hashtbl.find_opt wbs v)))
      (Rtl.Fsm.actions fsm ~state)
  done;
  Graph.iter_vertices
    (fun v ->
      check Alcotest.int
        (Printf.sprintf "%s issued once" (Graph.name g v))
        1
        (Option.value ~default:0 (Hashtbl.find_opt issues v));
      let expected_wb = if Graph.delay g v > 0 then 1 else 0 in
      check Alcotest.int
        (Printf.sprintf "%s written back" (Graph.name g v))
        expected_wb
        (Option.value ~default:0 (Hashtbl.find_opt wbs v)))
    g

let test_fsm_issue_at_start () =
  let g, _, binding = bound "FIR" in
  let fsm = Rtl.Fsm.of_binding binding in
  let schedule = binding.Rtl.Binding.schedule in
  for state = 0 to Rtl.Fsm.n_states fsm do
    List.iter
      (fun a ->
        match a with
        | Rtl.Fsm.Issue v ->
          check Alcotest.int
            (Printf.sprintf "%s start" (Graph.name g v))
            (S.start schedule v) state
        | Rtl.Fsm.Writeback v ->
          check Alcotest.int
            (Printf.sprintf "%s finish" (Graph.name g v))
            (S.finish schedule v) state)
      (Rtl.Fsm.actions fsm ~state)
  done

let test_fsm_bad_state () =
  let _, _, binding = bound "HAL" in
  let fsm = Rtl.Fsm.of_binding binding in
  (try
     ignore (Rtl.Fsm.actions fsm ~state:(Rtl.Fsm.n_states fsm + 1));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* --- Simulation ---------------------------------------------------- *)

let test_sim_hal_reference () =
  let _, _, binding = bound "HAL" in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let outputs, _ = Rtl.Sim.run binding ~env in
  let expected = Hls_bench.Hal.reference ~x:2 ~y:3 ~u:4 ~dx:5 ~a:10 in
  check
    Alcotest.(list (pair string int))
    "against closed form"
    (List.sort compare expected)
    (List.sort compare outputs)

let test_sim_all_benchmarks () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let binding = Rtl.Binding.of_state state in
      match Rtl.Sim.check_against_eval binding ~env:(bench_env g) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" e.name m)
    Hls_bench.Suite.all

let test_sim_trace_structure () =
  let g, _, binding = bound "HAL" in
  let env = [ ("x", 1); ("y", 1); ("u", 1); ("dx", 1); ("a", 1) ] in
  let _, trace = Rtl.Sim.run ~trace:true binding ~env in
  check Alcotest.bool "nonempty" true (trace <> []);
  (* every unit op has exactly one issue and one writeback, in order *)
  Graph.iter_vertices
    (fun v ->
      if Graph.delay g v > 0 then begin
        let events =
          List.filter (fun e -> e.Rtl.Sim.vertex = v) trace
        in
        match events with
        | [ i; w ] ->
          check Alcotest.bool "issue first" true (i.Rtl.Sim.event = `Issue);
          check Alcotest.bool "wb second" true (w.Rtl.Sim.event = `Writeback);
          check Alcotest.bool "time ordered" true
            (i.Rtl.Sim.cycle + Graph.delay g v = w.Rtl.Sim.cycle)
        | _ -> Alcotest.failf "%s event count" (Graph.name g v)
      end)
    g

let test_sim_after_spill_and_eco () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  let s1 = List.find (fun v -> Graph.name g v = "s1") (Graph.vertices g) in
  let s2 = List.find (fun v -> Graph.name g v = "s2") (Graph.vertices g) in
  let _ = Refine.Eco.insert_on_edge state ~src:s1 ~dst:s2 ~op:Op.Mov () in
  let binding = Rtl.Binding.of_state state in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  match Rtl.Sim.check_against_eval binding ~env with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_sim_ir_programs () =
  let sources =
    [
      "input a, b; output y; y = (a + b) * (a - b);";
      "input a, b, c; output y, z; y = a*b + c; if (y < 0) { z = 0 - y; } \
       else { z = y; }";
      "input a; output y; t = a * a; u = t * t; y = u * u;";
    ]
  in
  List.iteri
    (fun i source ->
      let g = Ir.Lower.of_source source in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let binding = Rtl.Binding.of_state state in
      let env = [ ("a", 5); ("b", -3); ("c", 2) ] in
      let env =
        List.filter
          (fun (n, _) ->
            List.exists
              (fun v -> Graph.op g v = Op.Input n)
              (Graph.vertices g))
          env
      in
      match Rtl.Sim.check_against_eval binding ~env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "program %d: %s" i m)
    sources

let prop_sim_matches_eval_random =
  QCheck.Test.make ~name:"datapath simulation = dataflow evaluation"
    ~count:60
    QCheck.(pair (int_range 1 5) (int_range 0 10_000))
    (fun (depth, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.expression_tree rng ~depth in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let binding = Rtl.Binding.of_state state in
      Rtl.Sim.check_against_eval binding ~env:(bench_env g) = Ok ())

(* --- Netlist ------------------------------------------------------- *)

let test_netlist_components () =
  let _, _, binding = bound "HAL" in
  let nl = Rtl.Netlist.of_binding binding in
  let fus =
    List.filter
      (function Rtl.Netlist.Fu _ -> true | _ -> false)
      nl.Rtl.Netlist.components
  in
  check Alcotest.int "fus" binding.Rtl.Binding.n_fus (List.length fus);
  let regs =
    List.filter
      (function Rtl.Netlist.Register _ -> true | _ -> false)
      nl.Rtl.Netlist.components
  in
  check Alcotest.int "registers" binding.Rtl.Binding.n_registers
    (List.length regs);
  check Alcotest.bool "connections" true (nl.Rtl.Netlist.connections <> [])

let test_netlist_mux_metric () =
  let _, _, binding = bound "EF" in
  let nl = Rtl.Netlist.of_binding binding in
  check Alcotest.bool "sharing needs muxes" true
    (Rtl.Netlist.n_mux_inputs nl > 0)

let test_netlist_pp () =
  let _, _, binding = bound "HAL" in
  let nl = Rtl.Netlist.of_binding binding in
  let text = Format.asprintf "%a" Rtl.Netlist.pp nl in
  check Alcotest.bool "mentions fu0" true
    (let needle = "fu0" in
     let rec go i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* --- Verilog ------------------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_verilog_structure () =
  let _, _, binding = bound "HAL" in
  let v = Rtl.Verilog.emit ~module_name:"hal" binding in
  check Alcotest.bool "module" true (contains ~needle:"module hal(" v);
  check Alcotest.bool "endmodule" true (contains ~needle:"endmodule" v);
  check Alcotest.bool "clk" true (contains ~needle:"input wire clk" v);
  check Alcotest.bool "done" true (contains ~needle:"output reg done" v);
  check Alcotest.bool "inputs" true (contains ~needle:"in_x" v);
  check Alcotest.bool "outputs" true (contains ~needle:"out_ul" v);
  check Alcotest.bool "case" true (contains ~needle:"case (state)" v);
  check Alcotest.bool "multiplier latched" true (contains ~needle:"lat" v);
  (* begins and ends balance *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length v then acc
      else if String.sub v i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "begin/end balance"
    (count "begin")
    (count "end" - count "endcase" - count "endmodule")

let test_verilog_ports () =
  let _, _, binding = bound "FIR" in
  let ins, outs = Rtl.Verilog.port_names binding in
  check Alcotest.bool "x0 port" true (List.mem "x0" ins);
  check Alcotest.(list string) "y out" [ "y" ] outs

let test_verilog_rejects_zero_delay_op () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~delay:0 Op.Add in
  let b = Graph.add_vertex g (Op.Input "b") in
  Graph.add_edge g b a;
  ignore (Graph.add_vertex g (Op.Input "c"));
  Graph.add_edge g 2 a;
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let binding = Rtl.Binding.of_state state in
  (try
     ignore (Rtl.Verilog.emit binding);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_verilog_memory_emitted_for_spill () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  let binding = Rtl.Binding.of_state state in
  let v = Rtl.Verilog.emit binding in
  check Alcotest.bool "memory array" true (contains ~needle:"mem [0:0]" v)

(* --- Register-binding policies --------------------------------------- *)

let test_regbind_policies_verify () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let schedule = T.to_schedule state in
      List.iter
        (fun policy ->
          let alloc = Rtl.Regbind.bind policy state schedule in
          match Refine.Regalloc.verify alloc schedule with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s" e.name m)
        [ `Left_edge; `Mux_aware ])
    Hls_bench.Suite.all

let test_regbind_mux_aware_narrows_muxes () =
  (* across the whole suite the mux-aware policy must not lose on
     aggregate steering *)
  let totals policy =
    List.fold_left
      (fun acc (e : Hls_bench.Suite.entry) ->
        let g = e.build () in
        let state = Soft.Scheduler.run ~meta ~resources:two_two g in
        let b = Rtl.Binding.of_state ~register_policy:policy state in
        acc + Rtl.Netlist.n_mux_inputs (Rtl.Netlist.of_binding b))
      0 Hls_bench.Suite.all
  in
  let left = totals `Left_edge and aware = totals `Mux_aware in
  check Alcotest.bool
    (Printf.sprintf "aware %d < left-edge %d" aware left)
    true (aware < left)

let test_regbind_mux_aware_simulates () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let b = Rtl.Binding.of_state ~register_policy:`Mux_aware state in
      match Rtl.Sim.check_against_eval b ~env:(bench_env g) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" e.name m)
    Hls_bench.Suite.all

(* --- VCD -------------------------------------------------------------- *)

let test_vcd_structure () =
  let _, _, binding = bound "HAL" in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let vcd = Rtl.Vcd.of_run binding ~env in
  check Alcotest.bool "header" true (contains ~needle:"$timescale" vcd);
  check Alcotest.bool "enddefinitions" true
    (contains ~needle:"$enddefinitions" vcd);
  check Alcotest.bool "registers declared" true
    (contains ~needle:"$var wire 32" vcd);
  check Alcotest.bool "output signal" true (contains ~needle:"out_ul" vcd);
  check Alcotest.bool "time zero" true (contains ~needle:"#0" vcd);
  (* the known output value -161 must be dumped somewhere *)
  let expected_bits =
    let n = -161 land 0xFFFFFFFF in
    let b = Bytes.make 32 '0' in
    for bit = 0 to 31 do
      if (n lsr bit) land 1 = 1 then Bytes.set b (31 - bit) '1'
    done;
    Bytes.to_string b
  in
  check Alcotest.bool "ul value present" true
    (contains ~needle:expected_bits vcd)

let test_vcd_spilled_design () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  let binding = Rtl.Binding.of_state state in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let vcd = Rtl.Vcd.of_run binding ~env in
  check Alcotest.bool "memory signal" true (contains ~needle:"mem0" vcd)

(* --- Testbench --------------------------------------------------------- *)

let test_testbench_structure () =
  let _, _, binding = bound "HAL" in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let tb = Rtl.Verilog.emit_testbench ~module_name:"hal" binding ~env in
  check Alcotest.bool "module" true (contains ~needle:"module hal_tb;" tb);
  check Alcotest.bool "dut" true (contains ~needle:"hal dut(" tb);
  check Alcotest.bool "clock" true (contains ~needle:"always #5 clk" tb);
  check Alcotest.bool "input driven" true (contains ~needle:"in_x = 2" tb);
  (* the expected ul value from the oracle appears in a check *)
  check Alcotest.bool "expected value" true (contains ~needle:"-161" tb);
  check Alcotest.bool "pass message" true (contains ~needle:"PASS" tb);
  check Alcotest.bool "finish" true (contains ~needle:"$finish" tb)

let () =
  Alcotest.run "rtl"
    [
      ( "binding",
        [
          Alcotest.test_case "fu assignment" `Quick test_binding_fu_assignment;
          Alcotest.test_case "fu classes" `Quick
            test_binding_fu_classes_match_ops;
          Alcotest.test_case "registers" `Quick
            test_binding_registers_cover_values;
          Alcotest.test_case "operand sources" `Quick
            test_binding_operand_sources;
          Alcotest.test_case "mux width" `Quick test_binding_mux_width;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "each op once" `Quick test_fsm_each_op_once;
          Alcotest.test_case "timing" `Quick test_fsm_issue_at_start;
          Alcotest.test_case "bad state" `Quick test_fsm_bad_state;
        ] );
      ( "sim",
        [
          Alcotest.test_case "HAL closed form" `Quick test_sim_hal_reference;
          Alcotest.test_case "all benchmarks" `Quick test_sim_all_benchmarks;
          Alcotest.test_case "trace" `Quick test_sim_trace_structure;
          Alcotest.test_case "after spill+eco" `Quick
            test_sim_after_spill_and_eco;
          Alcotest.test_case "ir programs" `Quick test_sim_ir_programs;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "components" `Quick test_netlist_components;
          Alcotest.test_case "mux metric" `Quick test_netlist_mux_metric;
          Alcotest.test_case "pretty printer" `Quick test_netlist_pp;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "ports" `Quick test_verilog_ports;
          Alcotest.test_case "zero delay rejected" `Quick
            test_verilog_rejects_zero_delay_op;
          Alcotest.test_case "spill memory" `Quick
            test_verilog_memory_emitted_for_spill;
        ] );
      ( "regbind",
        [
          Alcotest.test_case "policies verify" `Quick
            test_regbind_policies_verify;
          Alcotest.test_case "mux-aware narrows" `Quick
            test_regbind_mux_aware_narrows_muxes;
          Alcotest.test_case "mux-aware simulates" `Quick
            test_regbind_mux_aware_simulates;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "spilled design" `Quick test_vcd_spilled_design;
        ] );
      ( "testbench",
        [ Alcotest.test_case "structure" `Quick test_testbench_structure ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sim_matches_eval_random ]
      );
    ]
