(* Tests for the VLIW backend: emission, assembly round-trip and the
   executable semantics. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module R = Hard.Resources
module Isa = Vliw.Isa

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul
let meta = Soft.Meta.topological

let bench_env g =
  List.filter_map
    (fun v ->
      match Graph.op g v with
      | Op.Input n -> Some (n, (Hashtbl.hash n mod 9) - 4)
      | _ -> None)
    (Graph.vertices g)

let program_of name =
  let g = (Hls_bench.Suite.find name).build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  (g, Vliw.Emit.run (Rtl.Binding.of_state state))

(* --- emission --------------------------------------------------------- *)

let test_emit_validates () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let _, prog = program_of e.name in
      match Isa.validate prog with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" e.name m)
    Hls_bench.Suite.all

let test_emit_shape () =
  let g, prog = program_of "HAL" in
  (* bundle count = schedule length + port-load bundle + drain bundle *)
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let csteps = Hard.Schedule.length (Soft.Threaded_graph.to_schedule state) in
  check Alcotest.int "bundles" (csteps + 2) (Array.length prog.Isa.bundles);
  (* every non-constant vertex has exactly one instruction *)
  let expected =
    Graph.fold_vertices
      (fun acc v ->
        match Graph.op g v with Op.Const _ -> acc | _ -> acc + 1)
      0 g
  in
  check Alcotest.int "instructions" expected (Isa.n_instructions prog);
  (* first bundle is all port loads *)
  List.iter
    (fun (i : Isa.instruction) ->
      match i.Isa.op with
      | Op.Input _ -> ()
      | op -> Alcotest.failf "bundle 0 holds %s" (Op.to_string op))
    prog.Isa.bundles.(0)

let test_emit_rejects_zero_delay () =
  let g = Graph.create () in
  let x = Graph.add_vertex g (Op.Input "x") in
  let y = Graph.add_vertex g (Op.Input "y") in
  let a = Graph.add_vertex g ~delay:0 Op.Add in
  Graph.add_edge g x a;
  Graph.add_edge g y a;
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let binding = Rtl.Binding.of_state state in
  (try
     ignore (Vliw.Emit.run binding);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_utilisation_bounds () =
  let _, prog = program_of "AR" in
  let u = Isa.slot_utilisation prog in
  check Alcotest.bool "0 < util <= 1" true (u > 0.0 && u <= 1.0)

(* --- simulation -------------------------------------------------------- *)

let test_sim_matches_dataflow () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g, prog = program_of e.name in
      match Vliw.Sim.check_against_graph prog g ~env:(bench_env g) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" e.name m)
    Hls_bench.Suite.all

let test_sim_spilled_design () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  let prog = Vliw.Emit.run (Rtl.Binding.of_state state) in
  check Alcotest.bool "memory used" true (prog.Isa.n_mem_slots = 1);
  (match Isa.validate prog with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match
    Vliw.Sim.check_against_graph prog g
      ~env:[ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ]
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* --- assembly ---------------------------------------------------------- *)

let test_asm_roundtrip_idempotent () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let _, prog = program_of e.name in
      let text = Vliw.Asm.print prog in
      let reparsed = Vliw.Asm.parse text in
      check Alcotest.string (e.name ^ " roundtrip") text
        (Vliw.Asm.print reparsed))
    Hls_bench.Suite.all

let test_asm_reparsed_program_executes () =
  let g, prog = program_of "EF" in
  let reparsed = Vliw.Asm.parse (Vliw.Asm.print prog) in
  match Vliw.Sim.check_against_graph reparsed g ~env:(bench_env g) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_asm_parse_errors () =
  let expect_fail text =
    try
      ignore (Vliw.Asm.parse text);
      Alcotest.failf "expected Parse_error on %S" text
    with Vliw.Asm.Parse_error _ -> ()
  in
  expect_fail "cycle 0:\n  s0: r0 <- add r1, r2";
  (* missing latency *)
  expect_fail ".slots 1\ncycle 0:\n  r0 <- add r1, r2 @1";
  (* missing slot *)
  expect_fail ".slots 1\ncycle 0:\n  s0: r0 <- banana r1 @1";
  (* unknown op *)
  expect_fail ".slots 1\ncycle 0:\n  s0: r0 <- add q1, r2 @1"
  (* bad operand *)

let test_validate_catches_double_issue () =
  let broken =
    {
      Isa.n_slots = 1;
      n_registers = 2;
      n_mem_slots = 0;
      bundles =
        [|
          [
            { Isa.slot = 0; op = Op.Add; latency = 1; dst = Isa.To_reg 0;
              srcs = [ Isa.Reg 1; Isa.Imm 2 ] };
            { Isa.slot = 0; op = Op.Sub; latency = 1; dst = Isa.To_reg 1;
              srcs = [ Isa.Reg 0; Isa.Imm 1 ] };
          ];
        |];
      inputs = [];
      outputs = [];
    }
  in
  match Isa.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double issue went undetected"

let prop_vliw_random_graphs =
  QCheck.Test.make
    ~name:"vliw emission + sim match dataflow on random trees" ~count:60
    QCheck.(pair (int_range 1 5) (int_range 0 10_000))
    (fun (depth, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Dfg.Generate.expression_tree rng ~depth in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let prog = Vliw.Emit.run (Rtl.Binding.of_state state) in
      Isa.validate prog = Ok ()
      && Vliw.Sim.check_against_graph prog g ~env:(bench_env g) = Ok ())

let () =
  Alcotest.run "vliw"
    [
      ( "emit",
        [
          Alcotest.test_case "validates" `Quick test_emit_validates;
          Alcotest.test_case "shape" `Quick test_emit_shape;
          Alcotest.test_case "zero delay rejected" `Quick
            test_emit_rejects_zero_delay;
          Alcotest.test_case "utilisation" `Quick test_utilisation_bounds;
        ] );
      ( "sim",
        [
          Alcotest.test_case "matches dataflow" `Quick test_sim_matches_dataflow;
          Alcotest.test_case "spilled design" `Quick test_sim_spilled_design;
        ] );
      ( "asm",
        [
          Alcotest.test_case "roundtrip" `Quick test_asm_roundtrip_idempotent;
          Alcotest.test_case "reparsed executes" `Quick
            test_asm_reparsed_program_executes;
          Alcotest.test_case "parse errors" `Quick test_asm_parse_errors;
          Alcotest.test_case "double issue" `Quick
            test_validate_catches_double_issue;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_vliw_random_graphs ] );
    ]
