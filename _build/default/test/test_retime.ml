(* Tests for the retiming substrate and the resource-constrained
   retimer (paper outlook #2). *)

module SG = Retime.Seq_graph
module W = Retime.Workloads
module R = Hard.Resources

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

(* --- Seq_graph ------------------------------------------------------ *)

let tiny () =
  (* a -> b (0 regs), b -> a (2 regs): a legal 2-vertex loop *)
  let g = SG.create () in
  let a = SG.add_vertex g ~name:"a" Dfg.Op.Add in
  let b = SG.add_vertex g ~name:"b" Dfg.Op.Mul in
  SG.add_edge g a b ~weight:0;
  SG.add_edge g b a ~weight:2;
  (g, a, b)

let test_seq_graph_basics () =
  let g, a, b = tiny () in
  check Alcotest.int "vertices" 2 (SG.n_vertices g);
  check Alcotest.int "registers" 2 (SG.total_registers g);
  check Alcotest.(list (pair int int)) "succs a" [ (b, 0) ] (SG.succs g a);
  check Alcotest.(list (pair int int)) "preds a" [ (b, 2) ] (SG.preds g a);
  check Alcotest.bool "well formed" true (SG.well_formed g = Ok ())

let test_seq_graph_rejects () =
  let g = SG.create () in
  let a = SG.add_vertex g Dfg.Op.Add in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Seq_graph.add_edge: negative weight") (fun () ->
      SG.add_edge g a a ~weight:(-1));
  Alcotest.check_raises "zero self loop"
    (Invalid_argument "Seq_graph.add_edge: zero-weight self loop") (fun () ->
      SG.add_edge g a a ~weight:0)

let test_combinational_loop_detected () =
  let g = SG.create () in
  let a = SG.add_vertex g Dfg.Op.Add in
  let b = SG.add_vertex g Dfg.Op.Add in
  SG.add_edge g a b ~weight:0;
  SG.add_edge g b a ~weight:0;
  check Alcotest.bool "ill formed" true (SG.well_formed g <> Ok ())

let test_combinational_slice () =
  let g, _, _ = tiny () in
  let dag, map = SG.combinational_slice g in
  check Alcotest.bool "dag" true (Dfg.Graph.is_dag dag);
  (* 2 ops + 1 register-input pseudo vertex *)
  check Alcotest.int "slice vertices" 3 (Dfg.Graph.n_vertices dag);
  check Alcotest.int "period = a+b delay" 3 (SG.combinational_period g);
  check Alcotest.int "map size" 2 (Array.length map)

let test_retime_legality () =
  let g, _, _ = tiny () in
  (* moving one register from b->a onto a->b *)
  let r = SG.retime g ~lag:[| 0; 1 |] in
  check Alcotest.int "registers conserved" 2 (SG.total_registers r);
  check Alcotest.int "period drops" 2 (SG.combinational_period r);
  Alcotest.check_raises "illegal lag"
    (Invalid_argument "Seq_graph.retime: edge a -> b gets weight -1")
    (fun () -> ignore (SG.retime g ~lag:[| 1; 0 |]))

let test_retime_bad_lag_size () =
  let g, _, _ = tiny () in
  (try
     ignore (SG.retime g ~lag:[| 0 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* --- workloads ------------------------------------------------------ *)

let test_workload_shapes () =
  let ring = W.ring ~ops:8 ~registers:2 in
  check Alcotest.bool "ring well formed" true (SG.well_formed ring = Ok ());
  check Alcotest.int "ring registers" 2 (SG.total_registers ring);
  let correlator = W.correlator ~taps:6 in
  check Alcotest.bool "correlator well formed" true
    (SG.well_formed correlator = Ok ());
  let pipeline = W.pipeline ~stages:5 ~slack_registers:2 in
  check Alcotest.bool "pipeline well formed" true
    (SG.well_formed pipeline = Ok ())

(* --- retimer -------------------------------------------------------- *)

let test_min_period_ring () =
  (* 8 ops alternating mul(2)/add(1): total delay 12, 2 registers; the
     cycle bound is ceil(12/2) = 6 and FEAS must reach it. *)
  let g = W.ring ~ops:8 ~registers:2 in
  let period, lag = Retime.Retimer.min_period g in
  check Alcotest.int "min period" 6 period;
  let retimed = SG.retime g ~lag in
  check Alcotest.int "achieved" 6 (SG.combinational_period retimed);
  check Alcotest.int "registers conserved" 2 (SG.total_registers retimed)

let test_min_period_pipeline () =
  (* 5 stages of mul+add = 15 delay, 2 slack registers: best split is
     ceil over three segments >= 5; FEAS should get close to 5..6 *)
  let g = W.pipeline ~stages:5 ~slack_registers:2 in
  let period, _ = Retime.Retimer.min_period g in
  check Alcotest.bool (Printf.sprintf "period %d in [5, 7]" period) true
    (period >= 5 && period <= 7)

let test_feas_infeasible () =
  let g = W.ring ~ops:8 ~registers:2 in
  (* below the cycle bound of 6 no retiming exists *)
  check Alcotest.bool "period 5 infeasible" true
    (Retime.Retimer.feas g ~period:5 = None)

let test_constrained_never_regresses () =
  List.iter
    (fun (name, g) ->
      let o = Retime.Retimer.constrained ~resources:two_two g in
      check Alcotest.bool
        (Printf.sprintf "%s csteps %d <= %d" name o.Retime.Retimer.csteps_after
           o.Retime.Retimer.csteps_before)
        true
        (o.Retime.Retimer.csteps_after <= o.Retime.Retimer.csteps_before))
    [
      ("ring8x2", W.ring ~ops:8 ~registers:2);
      ("ring12x3", W.ring ~ops:12 ~registers:3);
      ("correlator6", W.correlator ~taps:6);
      ("pipeline5+2", W.pipeline ~stages:5 ~slack_registers:2);
    ]

let test_constrained_respects_resources () =
  (* With only one multiplier the schedule-driven choice can differ
     from the pure-period optimum: verify the reported csteps are real
     (re-schedule the chosen retiming and compare). *)
  let resources = R.make [ (R.Alu, 1); (R.Multiplier, 1) ] in
  let g = W.ring ~ops:12 ~registers:3 in
  let o = Retime.Retimer.constrained ~resources g in
  let dag, _ =
    SG.combinational_slice (SG.retime g ~lag:o.Retime.Retimer.lag)
  in
  let s = Soft.Scheduler.run_to_schedule ~resources dag in
  check Alcotest.int "reported = recomputed" o.Retime.Retimer.csteps_after
    (Hard.Schedule.length s);
  check Alcotest.bool "valid" true
    (Hard.Schedule.check ~resources s = Ok ())

let prop_retiming_conserves_cycle_registers =
  QCheck.Test.make ~name:"retiming conserves registers on the ring cycle"
    ~count:40
    QCheck.(pair (int_range 2 12) (int_range 1 4))
    (fun (ops, registers) ->
      let g = W.ring ~ops ~registers in
      match Retime.Retimer.min_period g with
      | _, lag ->
        SG.total_registers (SG.retime g ~lag) = registers)

let prop_feas_meets_target =
  QCheck.Test.make ~name:"FEAS results meet their target period" ~count:40
    QCheck.(pair (int_range 2 12) (int_range 1 4))
    (fun (ops, registers) ->
      let g = W.ring ~ops ~registers in
      let upper = SG.combinational_period g in
      List.for_all
        (fun period ->
          match Retime.Retimer.feas g ~period with
          | None -> true
          | Some lag ->
            SG.combinational_period (SG.retime g ~lag) <= period)
        (List.init (max 0 (upper - 1)) (fun i -> i + 1)))

let () =
  Alcotest.run "retime"
    [
      ( "seq-graph",
        [
          Alcotest.test_case "basics" `Quick test_seq_graph_basics;
          Alcotest.test_case "rejects" `Quick test_seq_graph_rejects;
          Alcotest.test_case "combinational loop" `Quick
            test_combinational_loop_detected;
          Alcotest.test_case "slice" `Quick test_combinational_slice;
          Alcotest.test_case "retime legality" `Quick test_retime_legality;
          Alcotest.test_case "bad lag" `Quick test_retime_bad_lag_size;
        ] );
      ( "workloads",
        [ Alcotest.test_case "shapes" `Quick test_workload_shapes ] );
      ( "retimer",
        [
          Alcotest.test_case "ring min period" `Quick test_min_period_ring;
          Alcotest.test_case "pipeline min period" `Quick
            test_min_period_pipeline;
          Alcotest.test_case "infeasible target" `Quick test_feas_infeasible;
          Alcotest.test_case "never regresses" `Quick
            test_constrained_never_regresses;
          Alcotest.test_case "resources respected" `Quick
            test_constrained_respects_resources;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_retiming_conserves_cycle_registers; prop_feas_meets_target ]
      );
    ]
