(* Fault injection: every checker in the repository must actually fire
   when handed a corrupted artifact. A validation suite that never says
   "no" proves nothing — these tests break things on purpose. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul
let meta = Soft.Meta.topological

let expect_error label = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: corruption went undetected" label

(* --- Schedule.check ------------------------------------------------- *)

let corrupt_starts schedule ~mutate =
  let g = S.graph schedule in
  let starts = S.starts schedule in
  mutate starts;
  S.make g ~starts

let test_schedule_check_catches_precedence () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  (* pull a non-source vertex to cycle 0: some producer must break *)
  let victim =
    List.find
      (fun v -> S.start s v > 0 && Graph.preds g v <> [])
      (Graph.vertices g)
  in
  let bad = corrupt_starts s ~mutate:(fun starts -> starts.(victim) <- 0) in
  expect_error "precedence" (S.check bad)

let test_schedule_check_catches_resource_overflow () =
  let g = (Hls_bench.Suite.find "AR").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  (* pile every multiplication onto cycle 0 *)
  let bad =
    corrupt_starts s ~mutate:(fun starts ->
        Graph.iter_vertices
          (fun v -> if Graph.op g v = Op.Mul && Graph.preds g v = [] then ()
            else if Graph.op g v = Op.Mul then starts.(v) <- 0)
          g)
  in
  (* the piled-up schedule may also break precedence; resources must be
     flagged when precedence happens to hold, so check both paths *)
  match S.check ~resources:two_two bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mul pile-up went undetected"

let test_schedule_check_catches_missing_unit_class () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  expect_error "unit class"
    (S.check ~resources:(R.make [ (R.Alu, 4) ]) s)

(* --- Invariant checkers --------------------------------------------- *)

let test_invariant_catches_wrong_order () =
  (* Build a dependency a -> b, then force b *before* a via commit_at
     on a fresh state where a is not yet scheduled: afterwards schedule
     a; correctness must flag the scheduled pair if we then corrupt the
     graph by adding the edge a -> b. *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" Op.Add in
  let b = Graph.add_vertex g ~name:"b" Op.Add in
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  (* no edges yet: force b strictly before a in the single thread *)
  T.commit_at state b { T.thread = 0; after = None };
  T.commit_at state a { T.thread = 0; after = Some b };
  (* now the behaviour changes: a must precede b (an ECO gone wrong) *)
  Graph.add_edge g a b;
  expect_error "correctness" (Soft.Invariant.check_correctness state)

let test_refines_detects_lost_constraint () =
  let reference = Graph.create () in
  let a = Graph.add_vertex reference ~name:"a" Op.Add in
  let b = Graph.add_vertex reference ~name:"b" Op.Add in
  Graph.add_edge reference a b;
  (* schedule an edgeless twin: the state cannot know a < b *)
  let twin = Graph.create () in
  let _ = Graph.add_vertex twin ~name:"a" Op.Add in
  let _ = Graph.add_vertex twin ~name:"b" Op.Add in
  let state = T.create twin ~resources:two_two in
  T.schedule state a;
  T.schedule state b;
  match Soft.Invariant.check_refines ~reference state with
  | Error _ -> ()
  | Ok () ->
    (* the two ops may have landed serialised by chance on one thread;
       only fail if the state really claims the right order *)
    if not (T.precedes state a b) then
      Alcotest.fail "lost reference constraint went undetected"

(* --- Regalloc.verify ------------------------------------------------ *)

let test_regalloc_verify_catches_sharing () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  let alloc = Refine.Regalloc.left_edge s in
  (* collapse every value into register 0 *)
  let broken =
    {
      alloc with
      Refine.Regalloc.assignment =
        List.map (fun (v, _) -> (v, 0)) alloc.Refine.Regalloc.assignment;
    }
  in
  expect_error "register sharing" (Refine.Regalloc.verify broken s)

let test_regalloc_verify_catches_unplaced () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  let alloc = Refine.Regalloc.left_edge s in
  let broken =
    { alloc with Refine.Regalloc.assignment =
        List.tl alloc.Refine.Regalloc.assignment }
  in
  expect_error "unplaced value" (Refine.Regalloc.verify broken s)

(* --- Simulation as an oracle ----------------------------------------- *)

let test_sim_detects_wrong_binding () =
  (* swap two registers in the binding's allocation: the datapath now
     computes garbage and check_against_eval must say so *)
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let binding = Rtl.Binding.of_state state in
  let assignment = binding.Rtl.Binding.register_of_value in
  (* find two values bound to different registers with overlapping
     lifetimes disjoint enough to matter: just swap the first two
     distinct registers *)
  match assignment with
  | (v1, r1) :: rest ->
    (match List.find_opt (fun (_, r) -> r <> r1) rest with
    | Some (v2, r2) ->
      let swapped =
        List.map
          (fun (v, r) ->
            if v = v1 then (v, r2)
            else if v = v2 then (v, r1)
            else (v, r))
          assignment
      in
      let broken = { binding with Rtl.Binding.register_of_value = swapped } in
      let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
      (match Rtl.Sim.check_against_eval broken ~env with
      | Error _ -> ()
      | Ok () ->
        (* a lucky swap can be harmless; at minimum the verifier must
           reject the allocation *)
        let alloc =
          {
            Refine.Regalloc.assignment = swapped;
            n_registers = broken.Rtl.Binding.n_registers;
            spilled = [];
          }
        in
        expect_error "binding swap"
          (Refine.Regalloc.verify alloc binding.Rtl.Binding.schedule))
    | None -> Alcotest.skip ())
  | [] -> Alcotest.skip ()

let test_sim_detects_corrupted_schedule () =
  (* start a consumer before its producer finishes and simulate: either
     the checker flags it, or the simulator crashes on a missing
     pending value — never a silent pass *)
  let g = (Hls_bench.Suite.find "FIR").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  let victim =
    List.find
      (fun v ->
        Graph.preds g v <> []
        && List.exists (fun p -> Graph.delay g p > 0) (Graph.preds g v))
      (List.rev (Graph.vertices g))
  in
  let bad = corrupt_starts s ~mutate:(fun starts -> starts.(victim) <- 0) in
  expect_error "corrupted schedule" (S.check bad)

(* --- Serial format --------------------------------------------------- *)

let test_serial_rejects_cycle_smuggling () =
  (* the format cannot express a cycle check at parse time, but the
     loaded graph must then fail is_dag *)
  let text = "vertex a add\nvertex b add\nedge a b\nedge b a\n" in
  let g = Dfg.Serial.of_string text in
  check Alcotest.bool "cycle detected" false (Graph.is_dag g)

let () =
  Alcotest.run "faults"
    [
      ( "schedule-check",
        [
          Alcotest.test_case "precedence" `Quick
            test_schedule_check_catches_precedence;
          Alcotest.test_case "resource overflow" `Quick
            test_schedule_check_catches_resource_overflow;
          Alcotest.test_case "missing class" `Quick
            test_schedule_check_catches_missing_unit_class;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "wrong order" `Quick
            test_invariant_catches_wrong_order;
          Alcotest.test_case "lost refinement" `Quick
            test_refines_detects_lost_constraint;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "register sharing" `Quick
            test_regalloc_verify_catches_sharing;
          Alcotest.test_case "unplaced value" `Quick
            test_regalloc_verify_catches_unplaced;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "wrong binding" `Quick
            test_sim_detects_wrong_binding;
          Alcotest.test_case "corrupted schedule" `Quick
            test_sim_detects_corrupted_schedule;
        ] );
      ( "serial",
        [
          Alcotest.test_case "cycle smuggling" `Quick
            test_serial_rejects_cycle_smuggling;
        ] );
    ]
