(* Tests for the technology-mapping kernel (paper outlook #1). *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Generate = Dfg.Generate
module R = Hard.Resources
module Cell = Techmap.Cell
module Cover = Techmap.Cover
module Mapper = Techmap.Mapper

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

let bench_env g =
  List.filter_map
    (fun v ->
      match Graph.op g v with
      | Op.Input n -> Some (n, (Hashtbl.hash n mod 15) - 7)
      | _ -> None)
    (Graph.vertices g)

(* y = a*b + c, the canonical mac shape *)
let mac_graph () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" (Op.Input "a") in
  let b = Graph.add_vertex g ~name:"b" (Op.Input "b") in
  let c = Graph.add_vertex g ~name:"c" (Op.Input "c") in
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  Graph.add_edge g a m;
  Graph.add_edge g b m;
  let s = Graph.add_vertex g ~name:"s" Op.Add in
  Graph.add_edge g m s;
  Graph.add_edge g c s;
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g s o;
  (g, m, s)

(* --- cells ---------------------------------------------------------- *)

let test_cells_validate () =
  List.iter
    (fun cell ->
      check Alcotest.bool cell.Cell.name true (Cell.validate cell = Ok ()))
    Cell.default_library

let test_cell_leaves () =
  check Alcotest.int "mac leaves" 3 (Cell.n_leaves Cell.mac.Cell.pattern);
  check Alcotest.int "any" 1 (Cell.n_leaves Cell.Any)

let test_cell_validate_rejects () =
  let bad = { Cell.mac with Cell.operand_order = [ 0; 0; 2 ] } in
  check Alcotest.bool "bad permutation" true (Cell.validate bad <> Ok ());
  let bad2 = { Cell.mac with Cell.delay = 0 } in
  check Alcotest.bool "bad delay" true (Cell.validate bad2 <> Ok ())

(* --- cover ---------------------------------------------------------- *)

let test_match_at_mac () =
  let g, m, s = mac_graph () in
  match Cover.match_at g Cell.mac s with
  | Some found ->
    check Alcotest.int "root" s found.Cover.root;
    check Alcotest.(list int) "fused away" [ m ] found.Cover.fused_away;
    check Alcotest.(list int) "operands abc" [ 0; 1; 2 ] found.Cover.operands
  | None -> Alcotest.fail "expected a mac match"

let test_match_rejects_shared_intermediate () =
  (* if the mul result is also read elsewhere, fusing would lose it *)
  let g, m, s = mac_graph () in
  let extra = Graph.add_vertex g ~name:"extra" Op.Neg in
  Graph.add_edge g m extra;
  check Alcotest.bool "no match" true (Cover.match_at g Cell.mac s = None)

let test_match_commuted () =
  (* y = c + a*b matches mac' with permuted operands *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" (Op.Input "a") in
  let b = Graph.add_vertex g ~name:"b" (Op.Input "b") in
  let c = Graph.add_vertex g ~name:"c" (Op.Input "c") in
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  Graph.add_edge g a m;
  Graph.add_edge g b m;
  let s = Graph.add_vertex g ~name:"s" Op.Add in
  Graph.add_edge g c s;
  Graph.add_edge g m s;
  (match Cover.match_at g Cell.mac_commuted s with
  | Some found ->
    check Alcotest.(list int) "operands a b c" [ a; b; c ]
      found.Cover.operands
  | None -> Alcotest.fail "expected mac' match");
  check Alcotest.bool "plain mac does not fire" true
    (Cover.match_at g Cell.mac s = None)

let test_all_matches_on_hal () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let matches = Cover.all_matches g in
  check Alcotest.bool "found some" true (matches <> [])

(* --- mapper --------------------------------------------------------- *)

let test_apply_matches_semantics () =
  let g, _, s = mac_graph () in
  let m = Option.get (Cover.match_at g Cell.mac s) in
  let result = Mapper.apply_matches g [ m ] in
  check Alcotest.bool "dag" true (Graph.is_dag result.Mapper.mapped);
  check Alcotest.int "one vertex fewer"
    (Graph.n_vertices g - 1)
    (Graph.n_vertices result.Mapper.mapped);
  let env = [ ("a", 3); ("b", 4); ("c", 5) ] in
  check
    Alcotest.(list (pair string int))
    "same outputs"
    (Dfg.Eval.outputs g env)
    (Dfg.Eval.outputs result.Mapper.mapped env)

let test_apply_matches_rejects_overlap () =
  let g, _, s = mac_graph () in
  let m = Option.get (Cover.match_at g Cell.mac s) in
  (try
     ignore (Mapper.apply_matches g [ m; m ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_greedy_and_driven_preserve_semantics () =
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let env = bench_env g in
      let expected = List.sort compare (Dfg.Eval.outputs g env) in
      let greedy = Mapper.greedy g in
      check
        Alcotest.(list (pair string int))
        (name ^ " greedy semantics") expected
        (List.sort compare (Dfg.Eval.outputs greedy.Mapper.mapped env));
      let driven = Mapper.schedule_driven ~resources:two_two g in
      check
        Alcotest.(list (pair string int))
        (name ^ " driven semantics") expected
        (List.sort compare (Dfg.Eval.outputs driven.Mapper.mapped env)))
    [ "HAL"; "AR"; "EF"; "FIR"; "IIR" ]

let test_schedule_driven_never_regresses () =
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let before = Soft.Scheduler.csteps ~resources:two_two g in
      let driven = Mapper.schedule_driven ~resources:two_two g in
      let after = Mapper.csteps ~resources:two_two driven in
      check Alcotest.bool
        (Printf.sprintf "%s: %d <= %d" name after before)
        true (after <= before))
    [ "HAL"; "AR"; "EF"; "FIR"; "DCT"; "IIR" ]

let test_schedule_driven_beats_greedy_or_ties () =
  (* The kernel-driven mapper may fuse fewer cells but never schedules
     worse than the structure-only greedy mapper. *)
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let greedy = Mapper.csteps ~resources:two_two (Mapper.greedy g) in
      let driven =
        Mapper.csteps ~resources:two_two
          (Mapper.schedule_driven ~resources:two_two g)
      in
      check Alcotest.bool
        (Printf.sprintf "%s: driven %d <= greedy %d" name driven greedy)
        true (driven <= greedy))
    [ "HAL"; "AR"; "EF"; "FIR"; "IIR" ]

let test_mapped_design_simulates () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let driven = Mapper.schedule_driven ~resources:two_two g in
  let state = Soft.Scheduler.run ~resources:two_two driven.Mapper.mapped in
  let binding = Rtl.Binding.of_state state in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  match Rtl.Sim.check_against_eval binding ~env with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let prop_mapping_preserves_semantics =
  QCheck.Test.make ~name:"mapping random graphs preserves outputs" ~count:60
    QCheck.(pair (int_range 1 5) (int_range 0 10_000))
    (fun (depth, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.expression_tree rng ~depth in
      (* add output markers so Eval.outputs is meaningful *)
      List.iter
        (fun v ->
          if Graph.succs g v = [] then begin
            let o =
              Graph.add_vertex g ~name:"out" (Op.Output "out")
            in
            Graph.add_edge g v o
          end)
        (Graph.vertices g);
      let env = bench_env g in
      let expected = List.sort compare (Dfg.Eval.outputs g env) in
      let greedy = Mapper.greedy g in
      expected
      = List.sort compare (Dfg.Eval.outputs greedy.Mapper.mapped env))

let prop_mapped_graphs_schedule_validly =
  QCheck.Test.make ~name:"mapped graphs produce valid schedules" ~count:40
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.random_dag rng ~n ~edge_prob:0.3 in
      let result = Mapper.greedy g in
      let s =
        Soft.Scheduler.run_to_schedule ~resources:two_two result.Mapper.mapped
      in
      Hard.Schedule.check ~resources:two_two s = Ok ())

let () =
  Alcotest.run "techmap"
    [
      ( "cells",
        [
          Alcotest.test_case "library validates" `Quick test_cells_validate;
          Alcotest.test_case "leaf counting" `Quick test_cell_leaves;
          Alcotest.test_case "validation rejects" `Quick
            test_cell_validate_rejects;
        ] );
      ( "cover",
        [
          Alcotest.test_case "mac match" `Quick test_match_at_mac;
          Alcotest.test_case "shared intermediate" `Quick
            test_match_rejects_shared_intermediate;
          Alcotest.test_case "commuted" `Quick test_match_commuted;
          Alcotest.test_case "HAL matches" `Quick test_all_matches_on_hal;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "apply semantics" `Quick
            test_apply_matches_semantics;
          Alcotest.test_case "overlap rejected" `Quick
            test_apply_matches_rejects_overlap;
          Alcotest.test_case "semantics preserved" `Quick
            test_greedy_and_driven_preserve_semantics;
          Alcotest.test_case "never regresses" `Slow
            test_schedule_driven_never_regresses;
          Alcotest.test_case "driven <= greedy" `Slow
            test_schedule_driven_beats_greedy_or_ties;
          Alcotest.test_case "mapped design simulates" `Quick
            test_mapped_design_simulates;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mapping_preserves_semantics;
            prop_mapped_graphs_schedule_validly ] );
    ]
