(* Tests for the behavioral front end: lexer, parser, SSA, lowering. *)

module L = Ir.Lexer
module P = Ir.Parser
module A = Ir.Ast
module S = Ir.Ssa

let check = Alcotest.check

let tokens_of s = List.map (fun t -> t.L.token) (L.tokenize s)

(* --- Lexer --------------------------------------------------------- *)

let test_lex_basic () =
  check Alcotest.int "count" 7 (List.length (tokens_of "x = a + 42;"));
  match tokens_of "x = a + 42;" with
  | [ L.IDENT "x"; L.ASSIGN; L.IDENT "a"; L.PLUS; L.INT 42; L.SEMI; L.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_operators () =
  match tokens_of "< > == << >> & | ^ ( ) { } , ;" with
  | [ L.LT; L.GT; L.EQEQ; L.SHL; L.SHR; L.AMP; L.PIPE; L.CARET; L.LPAREN;
      L.RPAREN; L.LBRACE; L.RBRACE; L.COMMA; L.SEMI; L.EOF ] ->
    ()
  | _ -> Alcotest.fail "operator stream"

let test_lex_keywords () =
  match tokens_of "input output if else iffy" with
  | [ L.KW_INPUT; L.KW_OUTPUT; L.KW_IF; L.KW_ELSE; L.IDENT "iffy"; L.EOF ] ->
    ()
  | _ -> Alcotest.fail "keywords"

let test_lex_comments () =
  check Alcotest.int "hash comment" 2
    (List.length (tokens_of "# nothing here\nx"));
  check Alcotest.int "slash comment" 2
    (List.length (tokens_of "// nothing\nx"))

let test_lex_positions () =
  let toks = L.tokenize "a\n  b" in
  (match toks with
  | [ a; b; _eof ] ->
    check Alcotest.int "a line" 1 a.L.line;
    check Alcotest.int "b line" 2 b.L.line;
    check Alcotest.int "b col" 3 b.L.column
  | _ -> Alcotest.fail "positions stream")

let test_lex_error () =
  (try
     ignore (L.tokenize "x = $;");
     Alcotest.fail "expected Lex_error"
   with L.Lex_error m ->
     check Alcotest.bool "position in message" true
       (String.length m > 0 && m.[0] = '1'))

(* --- Parser -------------------------------------------------------- *)

let test_parse_precedence () =
  (* mul binds tighter than add; add tighter than compare. *)
  match P.parse_expr "a + b * c < d" with
  | A.Binop
      ( A.Lt,
        A.Binop (A.Add, A.Var "a", A.Binop (A.Mul, A.Var "b", A.Var "c")),
        A.Var "d" ) ->
    ()
  | e -> Alcotest.failf "precedence: got %s" (Format.asprintf "%a" A.pp_expr e)

let test_parse_associativity () =
  match P.parse_expr "a - b - c" with
  | A.Binop (A.Sub, A.Binop (A.Sub, A.Var "a", A.Var "b"), A.Var "c") -> ()
  | _ -> Alcotest.fail "left associativity"

let test_parse_unary () =
  match P.parse_expr "-a * b" with
  | A.Binop (A.Mul, A.Neg (A.Var "a"), A.Var "b") -> ()
  | _ -> Alcotest.fail "unary binds tightest"

let test_parse_parens () =
  match P.parse_expr "(a + b) * c" with
  | A.Binop (A.Mul, A.Binop (A.Add, _, _), _) -> ()
  | _ -> Alcotest.fail "parens"

let test_parse_program () =
  let p = P.parse "input a, b; output y; y = a + b;" in
  check Alcotest.(list string) "inputs" [ "a"; "b" ] p.A.inputs;
  check Alcotest.(list string) "outputs" [ "y" ] p.A.outputs;
  check Alcotest.int "stmts" 1 (List.length p.A.body)

let test_parse_if () =
  let p =
    P.parse "input a; output y; if (a < 3) { y = 1; } else { y = 2; }"
  in
  match p.A.body with
  | [ A.If (A.Binop (A.Lt, _, _), [ A.Assign ("y", _) ], [ A.Assign ("y", _) ])
    ] ->
    ()
  | _ -> Alcotest.fail "if/else shape"

let test_parse_if_without_else () =
  let p = P.parse "input a; output y; y = 0; if (a) { y = 1; }" in
  match p.A.body with
  | [ _; A.If (_, [ _ ], []) ] -> ()
  | _ -> Alcotest.fail "if without else"

let expect_parse_error source fragment =
  try
    ignore (P.parse source);
    Alcotest.failf "expected failure on %S" source
  with
  | P.Parse_error m ->
    if
      not
        (let nl = String.length fragment and hl = String.length m in
         let rec go i =
           i + nl <= hl && (String.sub m i nl = fragment || go (i + 1))
         in
         go 0)
    then Alcotest.failf "error %S does not mention %S" m fragment
  | L.Lex_error _ -> ()

let test_parse_errors () =
  expect_parse_error "input a output y;" "expected";
  expect_parse_error "input a; output y; y = ;" "expected expression";
  expect_parse_error "input a; output y; y = (a;" "expected";
  expect_parse_error "input a; output y; if a { y = 1; }" "expected"

let test_validate_errors () =
  expect_parse_error "input a; output y; a = 1; y = a;" "assignment to input";
  expect_parse_error "input a; output y; y = z;" "read before assignment";
  expect_parse_error "input a; output y; x = a;" "output y never assigned";
  expect_parse_error "input a, a; output y; y = a;" "duplicate declaration";
  expect_parse_error "input a; output y; if (a) { t = 1; } else { }  y = t;"
    "read before assignment"

(* --- SSA ----------------------------------------------------------- *)

let hal_source =
  "input x, y, u, dx, a; output xl, ul, yl, c;\n\
   xl = x + dx; ul = u - 3*x*u*dx - 3*y*dx; yl = y + u*dx;\n\
   if (xl < a) { c = 1; } else { c = 0; }"

let test_ssa_single_assignment () =
  let ssa = S.of_ast (P.parse hal_source) in
  let names = S.defined_names ssa in
  check Alcotest.int "unique defs" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_ssa_phi_created () =
  let ssa = S.of_ast (P.parse hal_source) in
  check Alcotest.int "one phi" 1 (S.n_phis ssa)

let test_ssa_reassignment_versions () =
  let ssa =
    S.of_ast (P.parse "input a; output y; y = a; y = y + 1; y = y + 2;")
  in
  check Alcotest.int "three versions" 3 (List.length (S.defined_names ssa));
  check Alcotest.int "no phi" 0 (S.n_phis ssa);
  match ssa.S.outputs with
  | [ ("y", "y$3") ] -> ()
  | _ -> Alcotest.fail "output maps to last version"

let test_ssa_nested_if () =
  let src =
    "input a, b; output y;\n\
     y = 0;\n\
     if (a) { if (b) { y = 1; } else { y = 2; } } else { y = 3; }"
  in
  let ssa = S.of_ast (P.parse src) in
  check Alcotest.int "two phis" 2 (S.n_phis ssa)

let test_ssa_semantics_match_ast () =
  let ast = P.parse hal_source in
  let ssa = S.of_ast ast in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  check
    Alcotest.(list (pair string int))
    "ast = ssa"
    (List.sort compare (Ir.Interp.run ast env))
    (List.sort compare (Ir.Interp.run_ssa ssa env))

(* --- Lowering ------------------------------------------------------ *)

let test_lower_matches_interp () =
  let ast = P.parse hal_source in
  let ssa = S.of_ast ast in
  let g = Ir.Lower.run ssa in
  check Alcotest.bool "dag" true (Dfg.Graph.is_dag g);
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  check
    Alcotest.(list (pair string int))
    "dfg = interp"
    (List.sort compare (Ir.Interp.run ast env))
    (List.sort compare (Dfg.Eval.outputs g env))

let test_lower_duplicate_operand () =
  let g = Ir.Lower.of_source "input a; output y; y = a * a;" in
  check Alcotest.bool "dag" true (Dfg.Graph.is_dag g);
  let movs =
    List.filter
      (fun v -> Dfg.Graph.op g v = Dfg.Op.Mov)
      (Dfg.Graph.vertices g)
  in
  check Alcotest.int "mov copy" 1 (List.length movs);
  check
    Alcotest.(list (pair string int))
    "squared" [ ("y", 49) ]
    (Dfg.Eval.outputs g [ ("a", 7) ])

let test_lower_select () =
  let g =
    Ir.Lower.of_source
      "input a, b; output y; if (a < b) { y = a; } else { y = b; }"
  in
  let selects =
    List.filter
      (fun v -> Dfg.Graph.op g v = Dfg.Op.Select)
      (Dfg.Graph.vertices g)
  in
  check Alcotest.int "one select" 1 (List.length selects);
  check
    Alcotest.(list (pair string int))
    "min(3,9)" [ ("y", 3) ]
    (Dfg.Eval.outputs g [ ("a", 3); ("b", 9) ]);
  check
    Alcotest.(list (pair string int))
    "min(9,3)" [ ("y", 3) ]
    (Dfg.Eval.outputs g [ ("a", 9); ("b", 3) ])

let test_lower_shared_constants () =
  let g = Ir.Lower.of_source "input a; output y, z; y = a + 3; z = a * 3;" in
  let consts =
    List.filter
      (fun v ->
        match Dfg.Graph.op g v with Dfg.Op.Const _ -> true | _ -> false)
      (Dfg.Graph.vertices g)
  in
  check Alcotest.int "one shared const" 1 (List.length consts)

(* --- repeat (bounded loops) ----------------------------------------- *)

let test_repeat_unrolls () =
  let src =
    "input x, c; output y; y = 0; t = x; repeat 4 { y = y + c * t; t = t + 1; }"
  in
  let ast = P.parse src in
  let ssa = S.of_ast ast in
  (* 2 assignments per iteration x 4 + the 2 initial defs, no phis *)
  check Alcotest.int "defs" 10 (List.length (S.defined_names ssa));
  check Alcotest.int "no phi" 0 (S.n_phis ssa);
  let env = [ ("x", 2); ("c", 3) ] in
  check Alcotest.int "value" 42 (List.assoc "y" (Ir.Interp.run ast env));
  check Alcotest.int "dfg value" 42
    (List.assoc "y" (Dfg.Eval.outputs (Ir.Lower.run ssa) env))

let test_repeat_zero () =
  let ast = P.parse "input x; output y; y = x; repeat 0 { y = y + 1; }" in
  check Alcotest.int "skipped" 5
    (List.assoc "y" (Ir.Interp.run ast [ ("x", 5) ]))

let test_repeat_with_if_inside () =
  let src =
    "input x; output y;\n\
     y = x;\n\
     repeat 3 { if (y < 10) { y = y * 2; } else { y = y + 1; } }"
  in
  let ast = P.parse src in
  let ssa = S.of_ast ast in
  check Alcotest.int "three phis" 3 (S.n_phis ssa);
  let run v = List.assoc "y" (Ir.Interp.run ast [ ("x", v) ]) in
  check Alcotest.int "from 1" 8 (run 1);
  check Alcotest.int "from 9" 20 (run 9);
  check Alcotest.int "from 50" 53 (run 50);
  let g = Ir.Lower.run ssa in
  check Alcotest.int "dfg agrees" 8
    (List.assoc "y" (Dfg.Eval.outputs g [ ("x", 1) ]))

let test_repeat_validation () =
  (* a variable first assigned inside the loop is usable afterwards *)
  let p = P.parse "input x; output y; repeat 2 { y = x + 1; }" in
  check Alcotest.bool "valid" true (A.validate p = Ok ());
  expect_parse_error "input x; output y; repeat 0 { y = x; }"
    "output y never assigned"

let test_repeat_schedulable () =
  let g =
    Ir.Lower.of_source
      "input x, c; output y; y = 0; t = x;\n\
       repeat 6 { y = y + c * t; t = t + 1; }"
  in
  let resources = Hard.Resources.fig3_2alu_2mul in
  let s = Soft.Scheduler.run_to_schedule ~resources g in
  check Alcotest.bool "valid schedule" true
    (Hard.Schedule.check ~resources s = Ok ())

(* --- optimizer ------------------------------------------------------- *)

let test_optimize_folds_constants () =
  let ssa =
    S.of_ast (P.parse "input x; output y; a = 3 * 4; y = a + x;")
  in
  let opt = Ir.Optimize.run ssa in
  check Alcotest.bool "fewer statements" true
    (Ir.Optimize.n_statements opt <= Ir.Optimize.n_statements ssa);
  check Alcotest.int "semantics" 17
    (List.assoc "y" (Ir.Interp.run_ssa opt [ ("x", 5) ]))

let test_optimize_kills_dead_code () =
  let ssa =
    S.of_ast
      (P.parse "input x; output y; dead = x * x; deader = dead + 1; y = x;")
  in
  let opt = Ir.Optimize.run ssa in
  (* y = x copy-propagates into the output map, so nothing remains *)
  check Alcotest.int "all dead code gone" 0 (Ir.Optimize.n_statements opt);
  check Alcotest.int "output reads the input directly" 9
    (List.assoc "y" (Ir.Interp.run_ssa opt [ ("x", 9) ]))

let test_optimize_resolves_constant_phi () =
  let ssa =
    S.of_ast
      (P.parse
         "input x; output y; c = 1; if (c) { y = x + 1; } else { y = x - 1; }")
  in
  let opt = Ir.Optimize.run ssa in
  check Alcotest.int "phi resolved" 0 (S.n_phis opt);
  check Alcotest.int "kept the taken branch" 6
    (List.assoc "y" (Ir.Interp.run_ssa opt [ ("x", 5) ]))

let test_optimize_unrolled_induction () =
  let ssa =
    S.of_ast
      (P.parse
         "input x; output y; y = 0; i = 0; repeat 5 { y = y + x * i; i = i + 1; }")
  in
  let opt = Ir.Optimize.run ssa in
  (* the induction variable folds away entirely *)
  check Alcotest.bool "i-chain folded" true
    (Ir.Optimize.n_statements opt < Ir.Optimize.n_statements ssa - 4);
  check Alcotest.int "value" 50
    (List.assoc "y" (Ir.Interp.run_ssa opt [ ("x", 5) ]))

(* --- random-program property --------------------------------------- *)

let random_program seed =
  let rng = Random.State.make [| seed |] in
  let inputs = [ "i0"; "i1"; "i2" ] in
  let vars = ref inputs in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let rec expr depth =
    if depth = 0 || Random.State.int rng 3 = 0 then
      if Random.State.bool rng then A.Var (pick !vars)
      else A.Int (Random.State.int rng 19 - 9)
    else begin
      let ops = [ A.Add; A.Sub; A.Mul; A.Lt; A.Xor; A.And ] in
      A.Binop (pick ops, expr (depth - 1), expr (depth - 1))
    end
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "t%d" !counter
  in
  let rec stmts budget =
    if budget = 0 then []
    else if Random.State.int rng 4 = 0 then begin
      let x = fresh () in
      let s =
        A.If (expr 2, [ A.Assign (x, expr 2) ], [ A.Assign (x, expr 2) ])
      in
      vars := x :: !vars;
      s :: stmts (budget - 1)
    end
    else begin
      let x = fresh () in
      let s = A.Assign (x, expr 3) in
      vars := x :: !vars;
      s :: stmts (budget - 1)
    end
  in
  let body = stmts (3 + Random.State.int rng 6) in
  let last =
    match List.rev body with
    | A.Assign (x, _) :: _ -> x
    | A.If (_, [ A.Assign (x, _) ], _) :: _ -> x
    | _ -> "t1"
  in
  let body = body @ [ A.Assign ("result", A.Var last) ] in
  { A.inputs; outputs = [ "result" ]; body }

let prop_pipeline_agrees =
  QCheck.Test.make ~name:"interp = ssa interp = dfg eval" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ast = random_program seed in
      match A.validate ast with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let ssa = S.of_ast ast in
        let g = Ir.Lower.run ssa in
        let env = [ ("i0", 3); ("i1", -2); ("i2", 7) ] in
        let a = List.sort compare (Ir.Interp.run ast env) in
        let b = List.sort compare (Ir.Interp.run_ssa ssa env) in
        let c = List.sort compare (Dfg.Eval.outputs g env) in
        a = b && b = c)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves program semantics" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ast = random_program seed in
      match A.validate ast with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let ssa = S.of_ast ast in
        let opt = Ir.Optimize.run ssa in
        let env = [ ("i0", 3); ("i1", -2); ("i2", 7) ] in
        List.sort compare (Ir.Interp.run_ssa ssa env)
        = List.sort compare (Ir.Interp.run_ssa opt env))

let prop_ssa_unique_defs =
  QCheck.Test.make ~name:"SSA never defines a name twice" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ast = random_program seed in
      match A.validate ast with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let names = S.defined_names (S.of_ast ast) in
        List.length names = List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "ir"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "keywords" `Quick test_lex_keywords;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "error" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "unary" `Quick test_parse_unary;
          Alcotest.test_case "parens" `Quick test_parse_parens;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "if/else" `Quick test_parse_if;
          Alcotest.test_case "if without else" `Quick
            test_parse_if_without_else;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "validation errors" `Quick test_validate_errors;
        ] );
      ( "ssa",
        [
          Alcotest.test_case "single assignment" `Quick
            test_ssa_single_assignment;
          Alcotest.test_case "phi creation" `Quick test_ssa_phi_created;
          Alcotest.test_case "reassignment versions" `Quick
            test_ssa_reassignment_versions;
          Alcotest.test_case "nested if" `Quick test_ssa_nested_if;
          Alcotest.test_case "semantics preserved" `Quick
            test_ssa_semantics_match_ast;
        ] );
      ( "lower",
        [
          Alcotest.test_case "matches interpreter" `Quick
            test_lower_matches_interp;
          Alcotest.test_case "duplicate operand" `Quick
            test_lower_duplicate_operand;
          Alcotest.test_case "select" `Quick test_lower_select;
          Alcotest.test_case "shared constants" `Quick
            test_lower_shared_constants;
        ] );
      ( "repeat",
        [
          Alcotest.test_case "unrolls" `Quick test_repeat_unrolls;
          Alcotest.test_case "zero iterations" `Quick test_repeat_zero;
          Alcotest.test_case "with conditional" `Quick
            test_repeat_with_if_inside;
          Alcotest.test_case "validation" `Quick test_repeat_validation;
          Alcotest.test_case "schedulable" `Quick test_repeat_schedulable;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "constant folding" `Quick
            test_optimize_folds_constants;
          Alcotest.test_case "dead code" `Quick test_optimize_kills_dead_code;
          Alcotest.test_case "constant phi" `Quick
            test_optimize_resolves_constant_phi;
          Alcotest.test_case "unrolled induction" `Quick
            test_optimize_unrolled_induction;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pipeline_agrees; prop_ssa_unique_defs;
            prop_optimize_preserves_semantics ] );
    ]
