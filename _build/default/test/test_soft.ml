(* Tests for the paper's contribution: the threaded (soft) scheduler.

   The properties here are the executable versions of the paper's
   claims: Definition 3 (correct + incremental online schedule),
   Definition 4 (threaded state), Lemma 4 (monotone diameter), Lemma 6
   (stable neighbour labels), Lemma 7 (degree bound) and Theorem 2
   (online optimality, cross-checked against the naive speculative
   scheduler). *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Reach = Dfg.Reach
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph
module Invariant = Soft.Invariant
module Meta = Soft.Meta

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

let ok_or_fail label = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" label m

(* --- basic state mechanics ----------------------------------------- *)

let test_create_threads () =
  let g = Graph.create () in
  let state = T.create g ~resources:two_two in
  check Alcotest.int "threads" 5 (T.n_threads state);
  check Alcotest.int "diameter empty" 0 (T.diameter state);
  check Alcotest.int "scheduled" 0 (T.n_scheduled state);
  let classes = List.init 5 (T.thread_class state) in
  check Alcotest.int "alus" 2
    (List.length (List.filter (fun c -> c = R.Alu) classes));
  check Alcotest.int "muls" 2
    (List.length (List.filter (fun c -> c = R.Multiplier) classes))

let test_schedule_single_op () =
  let g = Graph.create () in
  let m = Graph.add_vertex g Op.Mul in
  let state = T.create g ~resources:two_two in
  T.schedule state m;
  check Alcotest.bool "scheduled" true (T.is_scheduled state m);
  (match T.thread_of state m with
  | Some k -> check Alcotest.bool "mul thread" true (T.thread_class state k = R.Multiplier)
  | None -> Alcotest.fail "expected a thread");
  check Alcotest.int "diameter" 2 (T.diameter state);
  (* idempotent *)
  T.schedule state m;
  check Alcotest.int "still one" 1 (T.n_scheduled state)

let test_zero_resource_ops_are_free () =
  let g = Graph.create () in
  let x = Graph.add_vertex g (Op.Input "x") in
  let c = Graph.add_vertex g (Op.Const 3) in
  let state = T.create g ~resources:two_two in
  T.schedule state x;
  T.schedule state c;
  check Alcotest.bool "input free" true (T.thread_of state x = None);
  check Alcotest.bool "const free" true (T.thread_of state c = None);
  check Alcotest.bool "scheduled" true (T.is_scheduled state x);
  check Alcotest.int "no delay" 0 (T.diameter state)

let test_no_thread_for_class () =
  let g = Graph.create () in
  let m = Graph.add_vertex g Op.Mul in
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  (try
     T.schedule state m;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_serialisation_on_one_unit () =
  (* two independent 2-cycle muls on one multiplier: diameter 4 *)
  let g = Graph.create () in
  let m1 = Graph.add_vertex g Op.Mul in
  let m2 = Graph.add_vertex g Op.Mul in
  let state = T.create g ~resources:(R.make [ (R.Multiplier, 1) ]) in
  T.schedule state m1;
  T.schedule state m2;
  check Alcotest.int "serialised" 4 (T.diameter state);
  check Alcotest.bool "ordered in state" true
    (T.precedes state m1 m2 || T.precedes state m2 m1)

let test_parallel_on_two_units () =
  let g = Graph.create () in
  let m1 = Graph.add_vertex g Op.Mul in
  let m2 = Graph.add_vertex g Op.Mul in
  let state = T.create g ~resources:two_two in
  T.schedule state m1;
  T.schedule state m2;
  check Alcotest.int "parallel" 2 (T.diameter state);
  check Alcotest.bool "unordered" false
    (T.precedes state m1 m2 || T.precedes state m2 m1)

let test_thread_members_order () =
  let g = Generate.chain ~n:5 in
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  T.schedule_all state (Graph.vertices g);
  let members = T.thread_members state 0 in
  check Alcotest.(list int) "chain order" [ 0; 1; 2; 3; 4 ] members;
  check Alcotest.int "diameter" 5 (T.diameter state)

let test_copy_is_independent () =
  let g = Generate.chain ~n:3 in
  let state = T.create g ~resources:two_two in
  T.schedule state 0;
  let snapshot = T.copy state in
  T.schedule state 1;
  check Alcotest.int "original moved on" 2 (T.n_scheduled state);
  check Alcotest.int "copy frozen" 1 (T.n_scheduled snapshot)

let test_to_schedule_requires_completeness () =
  let g = Generate.chain ~n:3 in
  let state = T.create g ~resources:two_two in
  T.schedule state 0;
  (try
     ignore (T.to_schedule state);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_commit_at_infeasible () =
  (* b depends on a; committing b before a in the same thread must be
     rejected. *)
  let g = Graph.create () in
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Add in
  Graph.add_edge g a b;
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  T.schedule state a;
  (try
     T.commit_at state b { T.thread = 0; after = None };
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* committing after a is fine *)
  T.commit_at state b { T.thread = 0; after = Some a };
  check Alcotest.int "both in" 2 (T.n_scheduled state)

let test_feasible_positions_structure () =
  let g = Graph.create () in
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Add in
  Graph.add_edge g a b;
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  T.schedule state a;
  let positions = T.feasible_positions state b in
  (* only "after a" is feasible: the head slot would put b before a *)
  check Alcotest.int "one position" 1 (List.length positions);
  (match positions with
  | [ { T.thread = 0; after = Some v } ] ->
    check Alcotest.int "after a" a v
  | _ -> Alcotest.fail "unexpected positions")

let test_predicted_cost_matches_reality () =
  let g = Graph.create () in
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Add in
  Graph.add_edge g a b;
  let state = T.create g ~resources:(R.make [ (R.Alu, 2) ]) in
  T.schedule state a;
  List.iter
    (fun position ->
      let predicted = T.predicted_cost state b position in
      let trial = T.copy state in
      T.commit_at trial b position;
      let actual = max (T.diameter state) predicted in
      check Alcotest.int "prediction" (T.diameter trial) actual)
    (T.feasible_positions state b)

(* --- full benchmark coverage --------------------------------------- *)

let test_benchmarks_all_configs_all_metas () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iter
        (fun (rlabel, resources) ->
          List.iter
            (fun (mlabel, meta) ->
              let g = e.build () in
              let state = Soft.Scheduler.run ~meta ~resources g in
              ok_or_fail
                (Printf.sprintf "%s/%s/%s invariants" e.name rlabel mlabel)
                (Invariant.check_all state);
              let schedule = T.to_schedule state in
              ok_or_fail
                (Printf.sprintf "%s/%s/%s schedule" e.name rlabel mlabel)
                (S.check ~resources schedule);
              check Alcotest.bool
                (Printf.sprintf "%s/%s/%s >= diameter" e.name rlabel mlabel)
                true
                (S.length schedule >= Paths.diameter g);
              check Alcotest.int
                (Printf.sprintf "%s/%s/%s matches state diameter" e.name
                   rlabel mlabel)
                (T.diameter state) (S.length schedule))
            (Meta.fig3 ~resources))
        R.fig3_all)
    Hls_bench.Suite.fig3

(* --- meta schedules ------------------------------------------------ *)

let test_path_partition_covers () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let paths = Meta.path_partition g in
      let flat = List.concat paths in
      check Alcotest.int
        (Printf.sprintf "%s cover" e.name)
        (Graph.n_vertices g) (List.length flat);
      check Alcotest.int
        (Printf.sprintf "%s disjoint" e.name)
        (Graph.n_vertices g)
        (List.length (List.sort_uniq compare flat));
      (* each piece is a chain under the precedence order *)
      let reach = Reach.of_graph g in
      List.iter
        (fun path ->
          let rec chain = function
            | a :: (b :: _ as rest) ->
              check Alcotest.bool "ordered" true (Reach.precedes reach a b);
              chain rest
            | _ -> ()
          in
          chain path)
        paths)
    Hls_bench.Suite.fig3

let test_meta_orders_are_permutations () =
  let g = (Hls_bench.Suite.find "EF").build () in
  List.iter
    (fun (label, meta) ->
      let order = meta g in
      check Alcotest.int (label ^ " covers") (Graph.n_vertices g)
        (List.length (List.sort_uniq compare order)))
    (Meta.fig3 ~resources:two_two
    @ [ ("random", Meta.random ~seed:7) ])

let test_meta_random_is_deterministic () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  check Alcotest.(list int) "same seed"
    (Meta.random ~seed:3 g) (Meta.random ~seed:3 g)

(* --- regression tests for the paper's Algorithm 1 defects -----------
   (DESIGN.md §2: the repairs this implementation makes and must keep) *)

let test_repair1_empty_thread_insertion () =
  (* Paper's select loop starts at s.out[k] and can never fill an empty
     thread; ours must. *)
  let g = Graph.create () in
  let m = Graph.add_vertex g Op.Mul in
  let state = T.create g ~resources:(R.make [ (R.Multiplier, 1) ]) in
  let positions = T.feasible_positions state m in
  check Alcotest.bool "head slot of the empty thread" true
    (List.mem { T.thread = 0; after = None } positions);
  T.schedule state m;
  check Alcotest.(option int) "placed" (Some 0) (T.thread_of state m)

let test_repair2_cost_uses_new_vertex_delay () =
  (* Two feasible anchors with different delays; scoring by the
     anchor's delay (as printed in the paper) would prefer the position
     that actually lengthens the schedule. Setup: thread [m(2); a(1)],
     new op b(1) independent of both. After-m and after-a both feasible;
     the diameter-optimal choice appends after a (cost 4 would be the
     in-between slot... we simply require the resulting diameter to be
     the naive optimum). *)
  let g = Graph.create () in
  let m = Graph.add_vertex g Op.Mul in
  let a = Graph.add_vertex g Op.Add in
  let b = Graph.add_vertex g Op.Sub in
  Graph.add_edge g m a;
  let state = T.create g ~resources:(R.make [ (R.Alu, 1); (R.Multiplier, 1) ]) in
  T.schedule state m;
  T.schedule state a;
  (match Soft.Naive.select state b with
  | Some (_, best) ->
    T.schedule state b;
    check Alcotest.int "diameter matches exhaustive optimum" best
      (T.diameter state)
  | None -> Alcotest.fail "expected a position for b")

let test_repair3_feasibility_window_not_just_neighbours () =
  (* Thread 0 holds [a; b; c] with a ≺_G v and c ≺_G v but b unrelated.
     The paper's neighbour-only test would accept inserting v after a
     (its successor b is unrelated), creating the cycle v ≺ c ≺ v once
     commit links c → v. Our window test must only offer the slot after
     c. *)
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" Op.Add in
  let b = Graph.add_vertex g ~name:"b" Op.Add in
  let c = Graph.add_vertex g ~name:"c" Op.Add in
  let v = Graph.add_vertex g ~name:"v" Op.Add in
  Graph.add_edge g a v;
  Graph.add_edge g c v;
  let state = T.create g ~resources:(R.make [ (R.Alu, 1) ]) in
  T.commit_at state a { T.thread = 0; after = None };
  T.commit_at state b { T.thread = 0; after = Some a };
  T.commit_at state c { T.thread = 0; after = Some b };
  let positions = T.feasible_positions state v in
  check
    Alcotest.(list (pair int (option int)))
    "only after c"
    [ (0, Some c) ]
    (List.map (fun p -> (p.T.thread, p.T.after)) positions);
  T.schedule state v;
  ok_or_fail "still sound" (Invariant.check_all state)

let test_repair4_two_predecessors_share_a_thread () =
  (* p1 and p2 live in the same thread and both feed v (another
     thread): the paper's unconditional overwrite of v.in[thread]
     could drop the constraint from the later predecessor. *)
  let g = Graph.create () in
  let p1 = Graph.add_vertex g ~name:"p1" Op.Add in
  let p2 = Graph.add_vertex g ~name:"p2" Op.Add in
  let v = Graph.add_vertex g ~name:"v" Op.Mul in
  Graph.add_edge g p1 v;
  Graph.add_edge g p2 v;
  let state =
    T.create g ~resources:(R.make [ (R.Alu, 1); (R.Multiplier, 1) ])
  in
  T.commit_at state p1 { T.thread = 0; after = None };
  T.commit_at state p2 { T.thread = 0; after = Some p1 };
  T.schedule state v;
  check Alcotest.bool "p1 before v" true (T.precedes state p1 v);
  check Alcotest.bool "p2 before v" true (T.precedes state p2 v);
  ok_or_fail "invariants" (Invariant.check_all state);
  ok_or_fail "degree bound" (Invariant.check_degree_bound state)

(* --- tie-break policies --------------------------------------------- *)

let test_tie_breaks_all_valid () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      List.iter
        (fun tie ->
          let g = e.build () in
          let state = Soft.Scheduler.run ~tie ~resources:two_two g in
          ok_or_fail (e.name ^ " invariants") (Invariant.check_all state);
          ok_or_fail (e.name ^ " schedule")
            (S.check ~resources:two_two (T.to_schedule state)))
        [ `First; `Balance; `Pack ])
    Hls_bench.Suite.fig3

let test_tie_breaks_close_results () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let run tie = Soft.Scheduler.csteps ~tie ~resources:two_two (e.build ()) in
      let first = run `First and balance = run `Balance and pack = run `Pack in
      check Alcotest.bool
        (Printf.sprintf "%s spread %d/%d/%d small" e.name first balance pack)
        true
        (abs (balance - first) <= 2 && abs (pack - first) <= 2))
    Hls_bench.Suite.fig3

(* --- meta-schedule search ------------------------------------------- *)

let test_search_never_loses_to_standard_metas () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let o = Soft.Search.run ~restarts:8 ~resources:two_two g in
      let standards =
        List.map
          (fun (_, meta) -> Soft.Scheduler.csteps ~meta ~resources:two_two g)
          (Meta.fig3 ~resources:two_two)
      in
      let best_standard = List.fold_left min max_int standards in
      check Alcotest.bool
        (Printf.sprintf "%s search %d <= best standard %d" e.name
           o.Soft.Search.best_csteps best_standard)
        true
        (o.Soft.Search.best_csteps <= best_standard))
    Hls_bench.Suite.all

let test_search_history_monotone () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let o = Soft.Search.run ~restarts:10 ~resources:two_two g in
  check Alcotest.int "history length" o.Soft.Search.evaluated
    (List.length o.Soft.Search.history);
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "best-so-far is monotone" true
    (decreasing o.Soft.Search.history)

let test_search_best_state_reproducible () =
  let g = (Hls_bench.Suite.find "FIR").build () in
  let o = Soft.Search.run ~restarts:8 ~resources:two_two g in
  let state = Soft.Search.best_state ~restarts:8 ~resources:two_two g in
  check Alcotest.int "state matches reported csteps"
    o.Soft.Search.best_csteps (T.diameter state);
  ok_or_fail "champion invariants" (Invariant.check_all state)

let test_hill_climb_never_worse () =
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let sampled = Soft.Search.run ~restarts:6 ~resources:two_two g in
      let climbed =
        Soft.Search.hill_climb ~steps:60 ~resources:two_two g
      in
      check Alcotest.bool
        (Printf.sprintf "%s climbed %d <= sampled %d" name
           climbed.Soft.Search.best_csteps sampled.Soft.Search.best_csteps)
        true
        (climbed.Soft.Search.best_csteps
        <= sampled.Soft.Search.best_csteps);
      (* the champion order must reproduce its score *)
      let state = T.create g ~resources:two_two in
      T.schedule_all state climbed.Soft.Search.best_order;
      check Alcotest.int (name ^ " reproducible")
        climbed.Soft.Search.best_csteps (T.diameter state))
    [ "HAL"; "FIR" ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_threads () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~resources:two_two g in
  let text = Soft.Render.threads state in
  check Alcotest.bool "thread 0" true (contains ~needle:"thread 0 (alu)" text);
  check Alcotest.bool "mul thread" true (contains ~needle:"(mul)" text);
  check Alcotest.bool "free vertices" true (contains ~needle:"free:" text)

let test_render_timeline () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~resources:two_two g in
  let text = Soft.Render.timeline state in
  check Alcotest.bool "cycles header" true (contains ~needle:"cycles: 0.." text);
  check Alcotest.bool "occupied marks" true (contains ~needle:"#" text);
  (* partial state renders the fallback *)
  let partial = T.create g ~resources:two_two in
  T.schedule partial (List.hd (Graph.vertices g));
  check Alcotest.bool "partial fallback" true
    (contains ~needle:"partially scheduled"
       (Soft.Render.timeline partial))

(* --- property tests ------------------------------------------------ *)

let seeded_dag =
  QCheck.make
    ~print:(fun (n, p, seed) -> Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
    QCheck.Gen.(
      triple (int_range 1 25) (float_range 0.05 0.4) (int_range 0 100_000))

let graph_of (n, p, seed) =
  Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:p

let shuffled_order seed g = Meta.random ~seed g

let prop_invariants_hold_after_every_step =
  QCheck.Test.make ~name:"invariants hold after every schedule call"
    ~count:60 seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      List.for_all
        (fun v ->
          T.schedule state v;
          Invariant.check_all state = Ok ())
        (shuffled_order seed g))

let prop_diameter_monotone =
  (* Lemma 4 *)
  QCheck.Test.make ~name:"Lemma 4: diameter is monotone" ~count:60 seeded_dag
    (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      let last = ref 0 in
      List.for_all
        (fun v ->
          T.schedule state v;
          let d = T.diameter state in
          let ok = d >= !last in
          last := d;
          ok)
        (shuffled_order (seed + 1) g))

let prop_incremental_order_preserved =
  (* Definition 3.3: p ≺_S q before implies p ≺_S q after. *)
  QCheck.Test.make ~name:"Definition 3: scheduling only refines the order"
    ~count:40 seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      let scheduled = ref [] in
      List.for_all
        (fun v ->
          let before =
            List.concat_map
              (fun p ->
                List.filter_map
                  (fun q ->
                    if p <> q && T.precedes state p q then Some (p, q)
                    else None)
                  !scheduled)
              !scheduled
          in
          T.schedule state v;
          scheduled := v :: !scheduled;
          List.for_all (fun (p, q) -> T.precedes state p q) before)
        (shuffled_order (seed + 2) g))

let prop_extracted_schedule_valid =
  QCheck.Test.make ~name:"extracted hard schedules are resource-valid"
    ~count:60 seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      T.schedule_all state (shuffled_order (seed + 3) g);
      let s = T.to_schedule state in
      S.check ~resources:two_two s = Ok ()
      && S.length s = T.diameter state)

let prop_online_optimality =
  (* Theorem 2: the fast select achieves the same resulting diameter as
     exhaustive speculation, at every step. *)
  QCheck.Test.make ~name:"Theorem 2: select is online-optimal" ~count:40
    (QCheck.make
       ~print:(fun (n, p, seed) ->
         Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
       QCheck.Gen.(
         triple (int_range 1 14) (float_range 0.05 0.5) (int_range 0 100_000)))
    (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      List.for_all
        (fun v ->
          let naive_best = Soft.Naive.select state v in
          let trial = T.copy state in
          T.schedule trial v;
          let fast_result = T.diameter trial in
          let ok =
            match naive_best with
            | None -> true (* zero-resource op *)
            | Some (_, best) -> fast_result = best
          in
          T.schedule state v;
          ok)
        (shuffled_order (seed + 4) g))

let prop_degree_bound =
  (* Lemma 7 *)
  QCheck.Test.make ~name:"Lemma 7: state degree bounded by K" ~count:60
    seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let state = T.create g ~resources:two_two in
      T.schedule_all state (shuffled_order (seed + 5) g);
      Invariant.check_degree_bound state = Ok ())

let prop_meta_order_independence_of_correctness =
  (* any feeding order yields a correct (not necessarily equal) result *)
  QCheck.Test.make ~name:"all meta orders give correct states" ~count:40
    seeded_dag (fun spec ->
      let g = graph_of spec in
      List.for_all
        (fun meta ->
          let state = Soft.Scheduler.run ~meta ~resources:two_two g in
          Invariant.check_all state = Ok ())
        [ Meta.dfs; Meta.topological; Meta.by_paths ])

let prop_state_order_equals_reference =
  (* The tightened edge structure must represent *exactly* the partial
     order generated by (a) the data edges among scheduled ops and
     (b) the thread insertions performed so far — no constraint lost
     (correctness) and none invented (softness). We replay the fast
     scheduler's own placement decisions into a naive constraint list
     and compare the full relations. *)
  QCheck.Test.make ~name:"state order = closure of data + insertion edges"
    ~count:40 seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let reach_g = Reach.of_graph g in
      let state = T.create g ~resources:two_two in
      (* reference: explicit constraint edges, closed transitively on
         demand *)
      let constraints = ref [] in
      let reference_precedes a b =
        (* plain DFS with a global visited set (the naive model must
           still terminate in polynomial time on dense DAGs) *)
        let visited = Hashtbl.create 16 in
        let rec reach x =
          x = b
          || (not (Hashtbl.mem visited x))
             &&
             (Hashtbl.replace visited x ();
              List.exists (fun (u, v) -> u = x && reach v) !constraints)
        in
        a <> b && reach a
      in
      let scheduled = ref [] in
      List.for_all
        (fun v ->
          (* replay: find where the fast scheduler put v *)
          T.schedule state v;
          (match T.thread_of state v with
          | Some k ->
            (* v's thread neighbours are the insertion constraints *)
            let rec neighbours prev = function
              | [] -> (None, None)
              | x :: rest when x = v -> (prev, List.nth_opt rest 0)
              | x :: rest -> neighbours (Some x) rest
            in
            let prev, next = neighbours None (T.thread_members state k) in
            (match prev with
            | Some p -> constraints := (p, v) :: !constraints
            | None -> ());
            (match next with
            | Some nxt -> constraints := (v, nxt) :: !constraints
            | None -> ())
          | None -> ());
          (* dataflow order against already-scheduled vertices — through
             unscheduled intermediates too (Definition 3.2 relates
             scheduled pairs under the full ≺_G) *)
          List.iter
            (fun u ->
              if Reach.precedes reach_g u v then
                constraints := (u, v) :: !constraints;
              if Reach.precedes reach_g v u then
                constraints := (v, u) :: !constraints)
            !scheduled;
          scheduled := v :: !scheduled;
          (* compare full relations over scheduled vertices *)
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  a = b
                  || T.precedes state a b = reference_precedes a b)
                !scheduled)
            !scheduled)
        (shuffled_order (seed + 7) g))

let prop_lemma6_stable_labels =
  (* Lemma 6: committing v does not change its predecessors' source
     distances nor its successors' sink distances. *)
  QCheck.Test.make ~name:"Lemma 6: neighbour labels are stable" ~count:40
    seeded_dag (fun ((_, _, seed) as spec) ->
      let g = graph_of spec in
      let reach = Reach.of_graph g in
      let state = T.create g ~resources:two_two in
      List.for_all
        (fun v ->
          let sg = T.state_graph state in
          let sdist_before = Paths.source_distances sg in
          let tdist_before = Paths.sink_distances sg in
          T.schedule state v;
          let sg' = T.state_graph state in
          let sdist_after = Paths.source_distances sg' in
          let tdist_after = Paths.sink_distances sg' in
          List.for_all
            (fun p ->
              (not (T.is_scheduled state p)) || p = v
              || (not (Reach.precedes reach p v))
              || sdist_before.(p) = sdist_after.(p))
            (Graph.vertices g)
          && List.for_all
               (fun q ->
                 (not (T.is_scheduled state q)) || q = v
                 || (not (Reach.precedes reach v q))
                 || tdist_before.(q) = tdist_after.(q))
               (Graph.vertices g))
        (shuffled_order (seed + 6) g))

let () =
  Alcotest.run "soft"
    [
      ( "state",
        [
          Alcotest.test_case "create" `Quick test_create_threads;
          Alcotest.test_case "single op" `Quick test_schedule_single_op;
          Alcotest.test_case "free ops" `Quick test_zero_resource_ops_are_free;
          Alcotest.test_case "missing class" `Quick test_no_thread_for_class;
          Alcotest.test_case "serialisation" `Quick
            test_serialisation_on_one_unit;
          Alcotest.test_case "parallelism" `Quick test_parallel_on_two_units;
          Alcotest.test_case "thread members" `Quick test_thread_members_order;
          Alcotest.test_case "copy" `Quick test_copy_is_independent;
          Alcotest.test_case "to_schedule partial" `Quick
            test_to_schedule_requires_completeness;
          Alcotest.test_case "commit_at infeasible" `Quick
            test_commit_at_infeasible;
          Alcotest.test_case "feasible positions" `Quick
            test_feasible_positions_structure;
          Alcotest.test_case "predicted cost" `Quick
            test_predicted_cost_matches_reality;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "all configs x metas" `Slow
            test_benchmarks_all_configs_all_metas;
        ] );
      ( "meta",
        [
          Alcotest.test_case "path partition" `Quick test_path_partition_covers;
          Alcotest.test_case "permutations" `Quick
            test_meta_orders_are_permutations;
          Alcotest.test_case "random deterministic" `Quick
            test_meta_random_is_deterministic;
        ] );
      ( "paper-repairs",
        [
          Alcotest.test_case "1: empty thread" `Quick
            test_repair1_empty_thread_insertion;
          Alcotest.test_case "2: cost delay" `Quick
            test_repair2_cost_uses_new_vertex_delay;
          Alcotest.test_case "3: feasibility window" `Quick
            test_repair3_feasibility_window_not_just_neighbours;
          Alcotest.test_case "4: shared pred thread" `Quick
            test_repair4_two_predecessors_share_a_thread;
        ] );
      ( "tie-breaks",
        [
          Alcotest.test_case "all valid" `Quick test_tie_breaks_all_valid;
          Alcotest.test_case "close results" `Quick
            test_tie_breaks_close_results;
        ] );
      ( "search",
        [
          Alcotest.test_case "never loses to standards" `Slow
            test_search_never_loses_to_standard_metas;
          Alcotest.test_case "history monotone" `Quick
            test_search_history_monotone;
          Alcotest.test_case "best state reproducible" `Quick
            test_search_best_state_reproducible;
          Alcotest.test_case "hill climb monotone" `Quick
            test_hill_climb_never_worse;
        ] );
      ( "render",
        [
          Alcotest.test_case "threads view" `Quick test_render_threads;
          Alcotest.test_case "timeline view" `Quick test_render_timeline;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_invariants_hold_after_every_step;
            prop_diameter_monotone;
            prop_incremental_order_preserved;
            prop_extracted_schedule_valid;
            prop_online_optimality;
            prop_degree_bound;
            prop_meta_order_independence_of_correctness;
            prop_state_order_equals_reference;
            prop_lemma6_stable_labels;
          ] );
    ]
