(* Tests for the refinement phases: lifetimes, register allocation,
   spilling, floorplanning, wire-delay insertion and ECOs. *)

module Graph = Dfg.Graph
module Op = Dfg.Op
module Generate = Dfg.Generate
module R = Hard.Resources
module S = Hard.Schedule
module T = Soft.Threaded_graph
module Lifetime = Refine.Lifetime
module Regalloc = Refine.Regalloc

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul
let meta = Soft.Meta.topological

(* a(1) -> m(2) -> b(1); extra input feeding b so two values coexist. *)
let small_schedule () =
  let g = Graph.create () in
  let x = Graph.add_vertex g ~name:"x" (Op.Input "x") in
  let y = Graph.add_vertex g ~name:"y" (Op.Input "y") in
  let a = Graph.add_vertex g ~name:"a" Op.Add in
  Graph.add_edge g x a;
  Graph.add_edge g y a;
  let m = Graph.add_vertex g ~name:"m" Op.Mul in
  Graph.add_edge g a m;
  Graph.add_edge g y m;
  let o = Graph.add_vertex g ~name:"o" (Op.Output "o") in
  Graph.add_edge g m o;
  (g, S.make g ~starts:[| 0; 0; 0; 1; 3 |], x, y, a, m)

(* --- Lifetime ------------------------------------------------------ *)

let test_lifetime_intervals () =
  let _g, s, x, y, a, m = small_schedule () in
  let ivs = Lifetime.intervals s in
  let find v = List.find (fun iv -> iv.Lifetime.producer = v) ivs in
  (* x: born 0 (input finishes at 0), consumed by a at 0 -> death 1 *)
  check Alcotest.int "x birth" 0 (find x).Lifetime.birth;
  check Alcotest.int "x death" 1 (find x).Lifetime.death;
  (* y feeds a (start 0) and m (start 1): death 2 *)
  check Alcotest.int "y death" 2 (find y).Lifetime.death;
  (* a: born at 1, consumed by m at 1: death 2 *)
  check Alcotest.int "a birth" 1 (find a).Lifetime.birth;
  (* m: born at 3, feeds the output marker at 3: death 4 *)
  check Alcotest.int "m birth" 3 (find m).Lifetime.birth;
  check Alcotest.int "m death" 4 (find m).Lifetime.death

let test_lifetime_pressure () =
  let _g, s, _, _, _, _ = small_schedule () in
  let p = Lifetime.pressure s in
  (* cycle 0: x and y live *)
  check Alcotest.int "cycle 0" 2 p.(0);
  check Alcotest.int "max" 2 (Lifetime.max_pressure s)

let test_lifetime_live_at () =
  let _g, s, x, y, _, _ = small_schedule () in
  check Alcotest.(list int) "live at 0" [ x; y ] (Lifetime.live_at s ~cycle:0)

(* --- Regalloc ------------------------------------------------------ *)

let test_left_edge_optimal () =
  let _g, s, _, _, _, _ = small_schedule () in
  let alloc = Regalloc.left_edge s in
  check Alcotest.int "registers = pressure" (Lifetime.max_pressure s)
    alloc.Regalloc.n_registers;
  check Alcotest.bool "verified" true (Regalloc.verify alloc s = Ok ());
  check Alcotest.(list int) "no spills" [] alloc.Regalloc.spilled

let test_with_limit_spills () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let s = Hard.List_sched.run ~resources:two_two g in
  let need = Lifetime.max_pressure s in
  let limit = need - 3 in
  let alloc = Regalloc.with_limit ~registers:limit s in
  check Alcotest.bool "spilled something" true
    (alloc.Regalloc.spilled <> []);
  check Alcotest.bool "fits budget" true
    (alloc.Regalloc.n_registers <= limit);
  check Alcotest.bool "verified" true (Regalloc.verify alloc s = Ok ())

let test_with_limit_enough_registers () =
  let _g, s, _, _, _, _ = small_schedule () in
  let alloc = Regalloc.with_limit ~registers:10 s in
  check Alcotest.(list int) "no spills" [] alloc.Regalloc.spilled

let test_with_limit_rejects_zero () =
  let _g, s, _, _, _, _ = small_schedule () in
  Alcotest.check_raises "zero registers"
    (Invalid_argument "Regalloc.with_limit: need a register") (fun () ->
      ignore (Regalloc.with_limit ~registers:0 s))

let prop_left_edge_valid =
  QCheck.Test.make ~name:"left edge never double-books a register" ~count:60
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let g =
        Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:0.2
      in
      let s = Hard.List_sched.run ~resources:two_two g in
      let alloc = Regalloc.left_edge s in
      Regalloc.verify alloc s = Ok ()
      && alloc.Regalloc.n_registers = Lifetime.max_pressure s)

(* --- Spill refinement ---------------------------------------------- *)

let test_spill_apply_refines () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let before = T.diameter state in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let st, ld = Refine.Spill.apply state ~value:m2 in
  check Alcotest.bool "store scheduled" true (T.is_scheduled state st);
  check Alcotest.bool "load scheduled" true (T.is_scheduled state ld);
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  let schedule = T.to_schedule state in
  check Alcotest.bool "valid" true
    (S.check ~resources:two_two schedule = Ok ());
  check Alcotest.bool "diameter grew modestly" true
    (S.length schedule >= before && S.length schedule <= before + 4)

let test_spill_preserves_semantics () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let expected = Dfg.Eval.outputs g env in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _ = Refine.Spill.apply state ~value:m2 in
  check
    Alcotest.(list (pair string int))
    "outputs preserved"
    (List.sort compare expected)
    (List.sort compare (Dfg.Eval.outputs g env))

let test_spill_requires_memory_thread () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let no_mem = R.make [ (R.Alu, 2); (R.Multiplier, 2) ] in
  let state = Soft.Scheduler.run ~meta ~resources:no_mem g in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  (try
     ignore (Refine.Spill.apply state ~value:m2);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_spill_compare_strategies () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let cmp =
    Refine.Spill.compare_strategies ~resources:two_two ~meta ~values:[ m2 ] g
  in
  check Alcotest.bool "soft >= original" true
    (cmp.Refine.Spill.soft_csteps >= cmp.Refine.Spill.original_csteps);
  (* soft refinement should be competitive with a full redo *)
  check Alcotest.bool "soft close to resched" true
    (cmp.Refine.Spill.soft_csteps <= cmp.Refine.Spill.resched_csteps + 2)

(* --- Spill.until_fits: the closed scheduling/regalloc loop ---------- *)

(* A value pinned early (it heads the critical chain) whose register
   stays captive until the very last operation: spilling it is the
   textbook win, and even ALAP extraction cannot dodge it. *)
let long_liver_graph () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~name:"a" (Op.Input "a") in
  let b = Graph.add_vertex g ~name:"b" (Op.Input "b") in
  let v = Graph.add_vertex g ~name:"v" Op.Add in
  Graph.add_edge g a v;
  Graph.add_edge g b v;
  (* the chain hangs off v, forcing v to be computed first … *)
  let prev = ref v in
  for i = 1 to 10 do
    let c = Graph.add_vertex g ~name:(Printf.sprintf "c%d" i) Op.Add in
    Graph.add_edge g !prev c;
    Graph.add_edge g b c;
    prev := c
  done;
  (* … and v is also read at the very end. *)
  let w = Graph.add_vertex g ~name:"w" Op.Add in
  Graph.add_edge g !prev w;
  Graph.add_edge g v w;
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g w o;
  g

let test_until_fits_spills_long_liver () =
  let g = long_liver_graph () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let before = Refine.Pressure.max_pressure_of_state state in
  let spills = Refine.Spill.until_fits ~registers:(before - 1) state in
  check Alcotest.bool "spilled something" true (spills <> []);
  let after = Refine.Pressure.extract state in
  check Alcotest.bool "pressure met" true
    (Lifetime.max_pressure after <= before - 1);
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check Alcotest.bool "schedule valid" true
    (Hard.Schedule.check ~resources:two_two after = Ok ());
  (* semantics survived the refinement *)
  let env = [ ("a", 5); ("b", 2) ] in
  let v = 5 + 2 in
  check
    Alcotest.(list (pair string int))
    "outputs"
    [ ("y", v + (10 * 2) + v) ]
    (Dfg.Eval.outputs g env)

let test_until_fits_noop_when_fitting () =
  let g = long_liver_graph () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let spills = Refine.Spill.until_fits ~registers:64 state in
  check Alcotest.(list (triple int int int)) "no spills" [] spills

let test_until_fits_unreachable_raises () =
  let g = long_liver_graph () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  (try
     ignore (Refine.Spill.until_fits ~registers:1 state);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_alap_extraction_lowers_pressure () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let asap = T.to_schedule state in
  let alap = T.to_schedule ~placement:`Alap state in
  check Alcotest.int "same length" (S.length asap) (S.length alap);
  check Alcotest.bool "alap valid" true
    (S.check ~resources:two_two alap = Ok ());
  check Alcotest.bool "alap pressure <= asap pressure" true
    (Lifetime.max_pressure alap <= Lifetime.max_pressure asap)

(* --- Pressure-aware extraction -------------------------------------- *)

let test_pressure_extract_valid () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let s = Refine.Pressure.extract state in
      check Alcotest.int (e.name ^ " length = diameter")
        (T.diameter state) (S.length s);
      check Alcotest.bool (e.name ^ " valid") true
        (S.check ~resources:two_two s = Ok ()))
    Hls_bench.Suite.all

let test_pressure_extract_beats_plain () =
  List.iter
    (fun (e : Hls_bench.Suite.entry) ->
      let g = e.build () in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let aware = Lifetime.max_pressure (Refine.Pressure.extract state) in
      let asap = Lifetime.max_pressure (T.to_schedule state) in
      let alap = Lifetime.max_pressure (T.to_schedule ~placement:`Alap state) in
      check Alcotest.bool
        (Printf.sprintf "%s aware %d <= min(asap %d, alap %d)" e.name aware
           asap alap)
        true
        (aware <= min asap alap))
    Hls_bench.Suite.fig3

let prop_pressure_extract_valid_random =
  QCheck.Test.make ~name:"pressure-aware extraction is always valid"
    ~count:40
    QCheck.(pair (int_range 1 25) (int_range 0 10_000))
    (fun (n, seed) ->
      let g =
        Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:0.25
      in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let s = Refine.Pressure.extract state in
      S.check ~resources:two_two s = Ok ()
      && S.length s = T.diameter state)

(* --- Floorplan ----------------------------------------------------- *)

let test_floorplan_positions_distinct () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let fp = Refine.Floorplan.place state in
  let k = T.n_threads state in
  let positions = List.init k (Refine.Floorplan.position fp) in
  check Alcotest.int "distinct cells" k
    (List.length (List.sort_uniq compare positions))

let test_floorplan_distance_metric () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let fp = Refine.Floorplan.place state in
  check Alcotest.int "self distance" 0 (Refine.Floorplan.distance fp 0 0);
  check Alcotest.int "symmetric"
    (Refine.Floorplan.distance fp 0 1)
    (Refine.Floorplan.distance fp 1 0);
  let model = Refine.Floorplan.default_model in
  check Alcotest.int "same unit free" 0
    (Refine.Floorplan.wire_delay fp model ~src:1 ~dst:1);
  let worst = Refine.Floorplan.worst_case_delay fp model in
  for a = 0 to T.n_threads state - 1 do
    for b = 0 to T.n_threads state - 1 do
      if a <> b then
        check Alcotest.bool "worst dominates" true
          (Refine.Floorplan.wire_delay fp model ~src:a ~dst:b <= worst)
    done
  done

let test_floorplan_heavy_traffic_is_close () =
  let g = (Hls_bench.Suite.find "AR").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let fp = Refine.Floorplan.place state in
  (* The busiest pair should sit no further apart than the overall
     span: a weak but honest sanity property of the greedy placer. *)
  let k = T.n_threads state in
  let busiest = ref (0, 1) and weight = ref (-1) in
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      let t = Refine.Floorplan.traffic state (a, b) in
      if t > !weight then begin
        weight := t;
        busiest := (a, b)
      end
    done
  done;
  let a, b = !busiest in
  let max_dist = ref 0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      max_dist := max !max_dist (Refine.Floorplan.distance fp i j)
    done
  done;
  check Alcotest.bool "busiest pair not the farthest" true
    (Refine.Floorplan.distance fp a b <= !max_dist)

(* --- Wire insertion ------------------------------------------------ *)

let test_wire_apply_valid_and_semantic () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let env =
    List.filter_map
      (fun v ->
        match Graph.op g v with
        | Op.Input n -> Some (n, (Hashtbl.hash n mod 13) - 6)
        | _ -> None)
      (Graph.vertices g)
  in
  let expected = Dfg.Eval.outputs g env in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let fp = Refine.Floorplan.place state in
  let report =
    Refine.Wire_insert.apply state fp Refine.Floorplan.default_model
  in
  check Alcotest.bool "inserted some" true
    (report.Refine.Wire_insert.inserted <> []);
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check Alcotest.bool "schedule valid" true
    (S.check ~resources:two_two (T.to_schedule state) = Ok ());
  check
    Alcotest.(list (pair string int))
    "semantics preserved"
    (List.sort compare expected)
    (List.sort compare (Dfg.Eval.outputs g env))

let test_wire_apply_idempotent () =
  let g = (Hls_bench.Suite.find "EF").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let fp = Refine.Floorplan.place state in
  let model = Refine.Floorplan.default_model in
  let first = Refine.Wire_insert.apply state fp model in
  let second = Refine.Wire_insert.apply state fp model in
  check Alcotest.bool "first inserted" true
    (first.Refine.Wire_insert.inserted <> []);
  check Alcotest.(list int) "second is a no-op" []
    second.Refine.Wire_insert.inserted

let test_wire_compare_strategies () =
  let cmp =
    Refine.Wire_insert.compare_strategies ~resources:two_two ~meta
      ((Hls_bench.Suite.find "EF").build ())
  in
  check Alcotest.bool "soft >= original" true
    (cmp.Refine.Wire_insert.soft_csteps
    >= cmp.Refine.Wire_insert.original_csteps);
  check Alcotest.bool "soft beats pessimistic" true
    (cmp.Refine.Wire_insert.soft_csteps
    <= cmp.Refine.Wire_insert.pessimistic_csteps)

(* --- ECO ----------------------------------------------------------- *)

let test_eco_insert_on_edge () =
  let g = (Hls_bench.Suite.find "FIR").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let acc = List.find (fun v -> Graph.name g v = "acc") (Graph.vertices g) in
  let src = List.hd (Graph.preds g acc) in
  let w = Refine.Eco.insert_on_edge state ~src ~dst:acc ~op:Op.Mov () in
  check Alcotest.bool "scheduled" true (T.is_scheduled state w);
  (match Soft.Invariant.check_all state with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check Alcotest.bool "valid" true
    (S.check ~resources:two_two (T.to_schedule state) = Ok ())

let test_eco_add_consumer () =
  let g = (Hls_bench.Suite.find "FIR").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  let p0 = List.find (fun v -> Graph.name g v = "p0") (Graph.vertices g) in
  let p1 = List.find (fun v -> Graph.name g v = "p1") (Graph.vertices g) in
  let tap = Refine.Eco.add_consumer state ~inputs:[ p0; p1 ] ~op:Op.Xor () in
  check Alcotest.bool "scheduled" true (T.is_scheduled state tap);
  check Alcotest.bool "ordered after producers" true
    (T.precedes state p0 tap && T.precedes state p1 tap)

let test_eco_arity_mismatch () =
  let g = (Hls_bench.Suite.find "FIR").build () in
  let state = Soft.Scheduler.run ~meta ~resources:two_two g in
  (try
     ignore (Refine.Eco.add_consumer state ~inputs:[ 0 ] ~op:Op.Xor ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_eco_diameter_growth () =
  let g = (Hls_bench.Suite.find "HAL").build () in
  let before, after =
    Refine.Eco.diameter_growth ~resources:two_two ~meta
      ~change:(fun state ->
        let g = T.graph state in
        let s2 =
          List.find (fun v -> Graph.name g v = "s2") (Graph.vertices g)
        in
        ignore
          (Refine.Eco.add_consumer state ~inputs:[ s2 ] ~op:Op.Neg ()))
      g
  in
  check Alcotest.bool "growth bounded" true
    (after >= before && after <= before + 1)

let prop_spill_any_value_keeps_invariants =
  QCheck.Test.make ~name:"spilling any eligible value keeps the state sound"
    ~count:40
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let g =
        Generate.random_dag (Random.State.make [| seed |]) ~n ~edge_prob:0.3
      in
      let state = Soft.Scheduler.run ~meta ~resources:two_two g in
      let candidates =
        List.filter
          (fun v ->
            Graph.succs g v <> []
            && (match Graph.op g v with
               | Op.Store | Op.Load -> false
               | _ -> true))
          (Graph.vertices g)
      in
      match candidates with
      | [] -> true
      | v :: _ ->
        let _ = Refine.Spill.apply state ~value:v in
        Soft.Invariant.check_all state = Ok ()
        && S.check ~resources:two_two (T.to_schedule state) = Ok ())

(* --- online refinement stress ---------------------------------------

   The paper's whole point: the scheduling state survives interleaved
   growth. Randomly interleave (a) scheduling the next operation,
   (b) inserting a wire-delay vertex on a random data edge between
   already-scheduled ops, and (c) spilling a random scheduled value -
   after every event, all invariants must hold; at the end, the
   extracted schedule must be valid and the (mutated) graph must still
   be a DAG. *)

let prop_interleaved_refinement_stress =
  QCheck.Test.make ~name:"interleaved schedule/spill/wire stress" ~count:30
    QCheck.(pair (int_range 4 18) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.random_dag rng ~n ~edge_prob:0.3 in
      let state = T.create g ~resources:two_two in
      let pending = ref (Soft.Meta.random ~seed g) in
      let ok = ref true in
      let refine_wire () =
        let candidates =
          List.filter
            (fun (u, v) ->
              T.thread_of state u <> None
              && T.thread_of state v <> None
              && (match Graph.op g u with Op.Wire -> false | _ -> true)
              && match Graph.op g v with Op.Wire -> false | _ -> true)
            (Graph.edges g)
        in
        match candidates with
        | [] -> ()
        | edges ->
          let u, v =
            List.nth edges (Random.State.int rng (List.length edges))
          in
          let w =
            Dfg.Mutate.insert_on_edge g ~src:u ~dst:v ~op:Op.Wire ~delay:1 ()
          in
          T.schedule state w
      in
      let refine_spill () =
        let candidates =
          List.filter
            (fun v ->
              T.is_scheduled state v
              && Graph.succs g v <> []
              && match Graph.op g v with
                 | Op.Load | Op.Store | Op.Wire -> false
                 | _ -> true)
            (Graph.vertices g)
        in
        match candidates with
        | [] -> ()
        | vs ->
          let victim = List.nth vs (Random.State.int rng (List.length vs)) in
          (try ignore (Refine.Spill.apply state ~value:victim)
           with Invalid_argument _ -> ())
      in
      let step () =
        match Random.State.int rng 4, !pending with
        | (0 | 1), v :: rest ->
          T.schedule state v;
          pending := rest
        | 2, _ -> refine_wire ()
        | 3, _ -> refine_spill ()
        | _, [] -> refine_wire ()
        | _ -> ()
      in
      for _ = 1 to 4 * n do
        step ();
        if Soft.Invariant.check_all state <> Ok () then ok := false
      done;
      List.iter (T.schedule state) !pending;
      Graph.iter_vertices
        (fun v -> if not (T.is_scheduled state v) then T.schedule state v)
        g;
      !ok
      && Graph.is_dag g
      && Soft.Invariant.check_all state = Ok ()
      && S.check ~resources:two_two (T.to_schedule state) = Ok ())

let () =
  Alcotest.run "refine"
    [
      ( "lifetime",
        [
          Alcotest.test_case "intervals" `Quick test_lifetime_intervals;
          Alcotest.test_case "pressure" `Quick test_lifetime_pressure;
          Alcotest.test_case "live_at" `Quick test_lifetime_live_at;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "left edge optimal" `Quick test_left_edge_optimal;
          Alcotest.test_case "with limit spills" `Quick test_with_limit_spills;
          Alcotest.test_case "enough registers" `Quick
            test_with_limit_enough_registers;
          Alcotest.test_case "zero registers" `Quick
            test_with_limit_rejects_zero;
        ] );
      ( "spill",
        [
          Alcotest.test_case "apply refines" `Quick test_spill_apply_refines;
          Alcotest.test_case "semantics preserved" `Quick
            test_spill_preserves_semantics;
          Alcotest.test_case "needs memory thread" `Quick
            test_spill_requires_memory_thread;
          Alcotest.test_case "strategy comparison" `Quick
            test_spill_compare_strategies;
          Alcotest.test_case "until_fits long liver" `Quick
            test_until_fits_spills_long_liver;
          Alcotest.test_case "until_fits no-op" `Quick
            test_until_fits_noop_when_fitting;
          Alcotest.test_case "until_fits unreachable" `Quick
            test_until_fits_unreachable_raises;
          Alcotest.test_case "alap extraction" `Quick
            test_alap_extraction_lowers_pressure;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "extract valid" `Quick
            test_pressure_extract_valid;
          Alcotest.test_case "beats plain extractions" `Quick
            test_pressure_extract_beats_plain;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "distinct positions" `Quick
            test_floorplan_positions_distinct;
          Alcotest.test_case "distance metric" `Quick
            test_floorplan_distance_metric;
          Alcotest.test_case "traffic-aware" `Quick
            test_floorplan_heavy_traffic_is_close;
        ] );
      ( "wire",
        [
          Alcotest.test_case "apply" `Quick test_wire_apply_valid_and_semantic;
          Alcotest.test_case "idempotent" `Quick test_wire_apply_idempotent;
          Alcotest.test_case "strategies" `Quick test_wire_compare_strategies;
        ] );
      ( "eco",
        [
          Alcotest.test_case "insert on edge" `Quick test_eco_insert_on_edge;
          Alcotest.test_case "add consumer" `Quick test_eco_add_consumer;
          Alcotest.test_case "arity mismatch" `Quick test_eco_arity_mismatch;
          Alcotest.test_case "diameter growth" `Quick test_eco_diameter_growth;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_left_edge_valid; prop_spill_any_value_keeps_invariants;
            prop_pressure_extract_valid_random;
            prop_interleaved_refinement_stress ] );
    ]
