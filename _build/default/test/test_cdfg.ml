(* Tests for the multi-block CDFG flow. *)

module A = Ir.Ast
module P = Ir.Parser
module Cfg = Cdfg.Cfg
module BS = Cdfg.Block_sched
module R = Hard.Resources

let check = Alcotest.check
let two_two = R.fig3_2alu_2mul

let branchy_source =
  "input a, b, c; output y, z;\n\
   t = a * b + c;\n\
   if (t < 0) { y = 0 - t; z = t * t; }\n\
   else { y = t; if (b < c) { z = t + b; } else { z = t + c; } }"

(* --- construction ---------------------------------------------------- *)

let test_cfg_shape () =
  let cfg = Cfg.of_ast (P.parse branchy_source) in
  check Alcotest.int "blocks" 6 (Cfg.n_blocks cfg);
  (* entry is block 0 and it branches *)
  (match cfg.Cfg.blocks.(0).Cfg.terminator with
  | Cfg.Branch (_, _, _) -> ()
  | _ -> Alcotest.fail "entry should branch");
  (* exactly one exit *)
  let exits =
    Array.to_list cfg.Cfg.blocks
    |> List.filter (fun b -> b.Cfg.terminator = Cfg.Exit)
  in
  check Alcotest.int "one exit" 1 (List.length exits)

let test_cfg_straight_line_single_block () =
  let cfg =
    Cfg.of_ast (P.parse "input a, b; output y; y = a * b + a - b;")
  in
  (* one body block + the exit block *)
  check Alcotest.int "two blocks" 2 (Cfg.n_blocks cfg)

let test_cfg_repeat_unrolls_blocks () =
  let cfg =
    Cfg.of_ast
      (P.parse
         "input a; output y; y = a;\n\
          repeat 3 { if (y < 100) { y = y * 2; } else { y = y + 1; } }")
  in
  (* 3 diamonds: each contributes branch-head/then/else; plus entry
     assignments merge into the first head and one exit block *)
  check Alcotest.bool "unrolled"
    true
    (Cfg.n_blocks cfg >= 10)

let test_cfg_dense_ids () =
  let cfg = Cfg.of_ast (P.parse branchy_source) in
  Array.iteri
    (fun i b -> check Alcotest.int "dense id" i b.Cfg.id)
    cfg.Cfg.blocks;
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          check Alcotest.bool "target in range" true
            (s >= 0 && s < Cfg.n_blocks cfg))
        (Cfg.successors b))
    cfg.Cfg.blocks

(* --- liveness --------------------------------------------------------- *)

let test_liveness_entry_needs_only_inputs () =
  let ast = P.parse branchy_source in
  let cfg = Cfg.of_ast ast in
  let live = Cfg.live_sets cfg in
  let entry_in, _ = live.(0) in
  List.iter
    (fun v ->
      check Alcotest.bool
        (Printf.sprintf "%s is a program input" v)
        true
        (List.mem v ast.A.inputs))
    entry_in

let test_liveness_exit_covers_outputs () =
  let ast = P.parse branchy_source in
  let cfg = Cfg.of_ast ast in
  let live = Cfg.live_sets cfg in
  let exit_id =
    let found = ref (-1) in
    Array.iter
      (fun b -> if b.Cfg.terminator = Cfg.Exit then found := b.Cfg.id)
      cfg.Cfg.blocks;
    !found
  in
  let live_in, _ = live.(exit_id) in
  List.iter
    (fun o ->
      check Alcotest.bool (o ^ " live into exit") true (List.mem o live_in))
    ast.A.outputs

(* --- interpretation --------------------------------------------------- *)

let test_interp_matches_ast () =
  let ast = P.parse branchy_source in
  let cfg = Cfg.of_ast ast in
  List.iter
    (fun env ->
      check
        Alcotest.(list (pair string int))
        "cfg = ast"
        (List.sort compare (Ir.Interp.run ast env))
        (List.sort compare (Cfg.interp cfg env)))
    [
      [ ("a", -3); ("b", 4); ("c", 5) ];
      [ ("a", 3); ("b", 4); ("c", 2) ];
      [ ("a", 3); ("b", 1); ("c", 9) ];
      [ ("a", 0); ("b", 0); ("c", 0) ];
    ]

(* reuse the front-end random program generator shape *)
let random_program seed =
  let rng = Random.State.make [| seed |] in
  let inputs = [ "i0"; "i1"; "i2" ] in
  let vars = ref inputs in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let rec expr depth =
    if depth = 0 || Random.State.int rng 3 = 0 then
      if Random.State.bool rng then A.Var (pick !vars)
      else A.Int (Random.State.int rng 19 - 9)
    else
      A.Binop
        ( pick [ A.Add; A.Sub; A.Mul; A.Lt; A.Xor ],
          expr (depth - 1),
          expr (depth - 1) )
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "t%d" !counter
  in
  let rec stmts budget =
    if budget = 0 then []
    else if Random.State.int rng 3 = 0 then begin
      let x = fresh () in
      let s =
        A.If (expr 2, [ A.Assign (x, expr 2) ], [ A.Assign (x, expr 2) ])
      in
      vars := x :: !vars;
      s :: stmts (budget - 1)
    end
    else begin
      let x = fresh () in
      let s = A.Assign (x, expr 3) in
      vars := x :: !vars;
      s :: stmts (budget - 1)
    end
  in
  let body = stmts (3 + Random.State.int rng 5) in
  let last = Printf.sprintf "t%d" !counter in
  { A.inputs; outputs = [ "result" ];
    body = body @ [ A.Assign ("result", A.Var last) ] }

let prop_cfg_interp_equivalence =
  QCheck.Test.make ~name:"CFG execution = AST interpretation" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ast = random_program seed in
      match A.validate ast with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let cfg = Cfg.of_ast ast in
        let env = [ ("i0", 3); ("i1", -2); ("i2", 7) ] in
        List.sort compare (Ir.Interp.run ast env)
        = List.sort compare (Cfg.interp cfg env))

(* --- scheduling -------------------------------------------------------- *)

let test_block_schedules_valid () =
  let cfg = Cfg.of_ast (P.parse branchy_source) in
  let report = BS.run ~resources:two_two cfg in
  check Alcotest.int "one csteps entry per block" (Cfg.n_blocks cfg)
    (Array.length report.BS.block_csteps);
  check Alcotest.bool "worst >= any block" true
    (Array.for_all
       (fun c -> c <= report.BS.worst_case_latency)
       report.BS.block_csteps)

let test_versus_if_conversion_sanity () =
  let ast = P.parse branchy_source in
  let cmp = BS.versus_if_conversion ~resources:two_two ast in
  check Alcotest.bool "best <= worst" true
    (cmp.BS.multi_block_best <= cmp.BS.multi_block_worst);
  check Alcotest.bool "blocks counted" true (cmp.BS.blocks >= 4);
  check Alcotest.bool "everything positive" true
    (cmp.BS.superblock_csteps > 0 && cmp.BS.multi_block_best > 0)

let test_multi_block_wins_under_scarce_resources () =
  (* speculation executes both branch bodies; with a single multiplier
     and multiply-heavy branches, branching should beat if-conversion
     on the worst-case path *)
  let src =
    "input a, b; output y;\n\
     if (a < b) { y = a * a * a * a; } else { y = b * b * b * b; }"
  in
  let resources = R.make [ (R.Alu, 1); (R.Multiplier, 1) ] in
  let cmp = BS.versus_if_conversion ~resources (P.parse src) in
  check Alcotest.bool
    (Printf.sprintf "multi %d < super %d" cmp.BS.multi_block_worst
       cmp.BS.superblock_csteps)
    true
    (cmp.BS.multi_block_worst < cmp.BS.superblock_csteps)

let prop_block_schedules_always_valid =
  QCheck.Test.make ~name:"every block schedule is resource-valid" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ast = random_program seed in
      match A.validate ast with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let cfg = Cfg.of_ast ast in
        (* run raises on an invalid block schedule *)
        let report = BS.run ~resources:two_two cfg in
        report.BS.worst_case_latency >= 0)

let () =
  Alcotest.run "cdfg"
    [
      ( "construction",
        [
          Alcotest.test_case "shape" `Quick test_cfg_shape;
          Alcotest.test_case "straight line" `Quick
            test_cfg_straight_line_single_block;
          Alcotest.test_case "repeat unrolls" `Quick
            test_cfg_repeat_unrolls_blocks;
          Alcotest.test_case "dense ids" `Quick test_cfg_dense_ids;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "entry" `Quick
            test_liveness_entry_needs_only_inputs;
          Alcotest.test_case "exit" `Quick test_liveness_exit_covers_outputs;
        ] );
      ( "interp",
        [ Alcotest.test_case "matches ast" `Quick test_interp_matches_ast ] );
      ( "scheduling",
        [
          Alcotest.test_case "blocks valid" `Quick test_block_schedules_valid;
          Alcotest.test_case "vs if-conversion" `Quick
            test_versus_if_conversion_sanity;
          Alcotest.test_case "scarce resources favour branching" `Quick
            test_multi_block_wins_under_scarce_resources;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cfg_interp_equivalence; prop_block_schedules_always_valid ]
      );
    ]
