test/test_integration.ml: Alcotest Array Dfg Filename Fun Hard Hls_bench Ir List Printf Random Refine Rtl Soft Sys Vliw
