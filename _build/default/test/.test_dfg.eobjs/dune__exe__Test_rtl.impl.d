test/test_rtl.ml: Alcotest Bytes Dfg Format Hard Hashtbl Hls_bench Ir List Option Printf QCheck QCheck_alcotest Random Refine Rtl Soft String
