test/test_ir.ml: Alcotest Dfg Format Hard Ir List Printf QCheck QCheck_alcotest Random Soft String
