test/test_techmap.ml: Alcotest Dfg Hard Hashtbl Hls_bench List Option Printf QCheck QCheck_alcotest Random Rtl Soft Techmap
