test/test_hard.mli:
