test/test_vliw.ml: Alcotest Array Dfg Hard Hashtbl Hls_bench List QCheck QCheck_alcotest Random Refine Rtl Soft Vliw
