test/test_retime.ml: Alcotest Array Dfg Hard List Printf QCheck QCheck_alcotest Retime Soft
