test/test_cdfg.ml: Alcotest Array Cdfg Hard Ir List Printf QCheck QCheck_alcotest Random
