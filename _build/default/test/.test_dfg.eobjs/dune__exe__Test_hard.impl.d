test/test_hard.ml: Alcotest Array Dfg Hard Hashtbl Hls_bench List Printf QCheck QCheck_alcotest Random Soft String
