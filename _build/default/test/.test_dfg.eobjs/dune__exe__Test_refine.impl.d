test/test_refine.ml: Alcotest Array Dfg Hard Hashtbl Hls_bench List Printf QCheck QCheck_alcotest Random Refine Soft
