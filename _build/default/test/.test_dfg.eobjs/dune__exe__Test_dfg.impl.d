test/test_dfg.ml: Alcotest Array Dfg Hashtbl Hls_bench List Printf QCheck QCheck_alcotest Random String
