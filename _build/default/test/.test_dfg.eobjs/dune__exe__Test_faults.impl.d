test/test_faults.ml: Alcotest Array Dfg Hard Hls_bench List Refine Rtl Soft
