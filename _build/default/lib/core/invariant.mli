open Import

(** Executable statements of the paper's definitions and lemmas, used by
    the unit and property tests (the companion tech report with the
    proofs is not available; these checks are its replacement). *)

val check_correctness : Threaded_graph.t -> (unit, string) result
(** Definition 3.2: for every pair of {e scheduled} vertices,
    [p ≺_G q → p ≺_S q]. *)

val check_threaded : Threaded_graph.t -> (unit, string) result
(** Definition 4: thread membership partitions the scheduled
    non-free vertices; within a thread the order is total and acyclic;
    every thread-consecutive pair is ordered in the state. *)

val check_acyclic : Threaded_graph.t -> (unit, string) result
(** The scheduling state is a DAG (a cycle would make it not a
    precedence graph at all). *)

val check_degree_bound : Threaded_graph.t -> (unit, string) result
(** Lemma 7: every scheduled vertex has at most [K] explicit state
    predecessors in threads (one per thread) and at most [K] explicit
    state successors in threads — free neighbours excepted, as free
    vertices fall outside the K-thread model. *)

val check_refines : reference:Graph.t -> Threaded_graph.t -> (unit, string) result
(** The state's order restricted to [reference]'s vertices refines
    [reference]'s partial order — used after graph mutation to show
    old decisions survive refinement. *)

val check_all : Threaded_graph.t -> (unit, string) result
(** All of the above. *)
