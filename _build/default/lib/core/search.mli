open Import

(** Meta-schedule search.

    Section 5 is explicit that online optimality does not fix the
    global result: the meta schedule (feeding order) matters. The order
    space is cheap to sample because one full threaded scheduling run
    is linear-ish; this module searches it — the missing "outer loop"
    a production tool would ship. *)

type outcome = {
  best_csteps : int;
  best_order : Graph.vertex list;
  evaluated : int;
  history : int list;  (** best-so-far after each evaluation *)
}

val run :
  ?tie:Threaded_graph.tie_break -> ?restarts:int -> ?seed:int ->
  resources:Resources.t -> Graph.t -> outcome
(** Evaluates the four standard meta schedules plus [restarts] random
    orders (default 16) and returns the champion. Deterministic given
    [seed] (default 0). *)

val best_state :
  ?tie:Threaded_graph.tie_break -> ?restarts:int -> ?seed:int ->
  resources:Resources.t -> Graph.t -> Threaded_graph.t
(** Re-runs the champion order and returns its scheduling state. *)

val hill_climb :
  ?tie:Threaded_graph.tie_break -> ?steps:int -> ?seed:int ->
  resources:Resources.t -> Graph.t -> outcome
(** Local search on top of {!run}: starting from the sampled champion,
    repeatedly move one random operation to a random place in the
    feeding order and keep the move when the result does not get worse
    (sideways moves escape plateaus). [steps] mutations are tried
    (default 200). Monotone in the best: never worse than {!run}. *)
