
(** ASCII rendering of a scheduling state — the Figure 1(e)-style view
    of threads and the cross-thread dependences between them. *)

val timeline : Threaded_graph.t -> string
(** One row per thread, operations boxed at their ASAP cycle with
    [#] for occupied cycles; free vertices on a trailing row. *)

val threads : Threaded_graph.t -> string
(** Compact per-thread listing: [thread 0 (alu): a -> b -> c]. *)
