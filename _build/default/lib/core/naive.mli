open Import

(** The naive speculative scheduler the paper dismisses in Section 4.2:
    evaluate every insertion position by actually performing it on a
    copy of the state and measuring the resulting diameter —
    O(|V|²·|E|) per operation against Algorithm 1's O(|V|).

    It is the executable specification of Definition 5: the fast select
    must pick a position with the same resulting diameter (Theorem 2).
    The property tests cross-check them; the complexity bench plots the
    asymptotic gap. *)

val select :
  Threaded_graph.t -> Graph.vertex ->
  (Threaded_graph.position * int) option
(** Best position and the diameter it produces, scanning positions in
    the same deterministic order as the fast select (first strict
    minimum wins). [None] for zero-resource ops. *)

val schedule : Threaded_graph.t -> Graph.vertex -> unit
(** Schedule one operation using the speculative select. *)

val run :
  ?meta:Meta.t -> resources:Resources.t -> Graph.t -> Threaded_graph.t

val run_to_schedule :
  ?meta:Meta.t -> resources:Resources.t -> Graph.t -> Schedule.t
