open Import

let threads state =
  let g = Threaded_graph.graph state in
  let buf = Buffer.create 256 in
  for k = 0 to Threaded_graph.n_threads state - 1 do
    Buffer.add_string buf
      (Printf.sprintf "thread %d (%s): %s\n" k
         (Resources.class_name (Threaded_graph.thread_class state k))
         (String.concat " -> "
            (List.map (Graph.name g) (Threaded_graph.thread_members state k))))
  done;
  let free =
    List.filter
      (fun v ->
        Threaded_graph.is_scheduled state v
        && Threaded_graph.thread_of state v = None)
      (Graph.vertices g)
  in
  if free <> [] then
    Buffer.add_string buf
      (Printf.sprintf "free: %s\n"
         (String.concat ", " (List.map (Graph.name g) free)));
  Buffer.contents buf

let timeline state =
  if Threaded_graph.n_scheduled state = 0 then "(empty state)\n"
  else begin
    let g = Threaded_graph.graph state in
    let schedule =
      (* render what is scheduled so far: pad missing vertices at 0 *)
      if Threaded_graph.n_scheduled state = Graph.n_vertices g then
        Some (Threaded_graph.to_schedule state)
      else None
    in
    let buf = Buffer.create 512 in
    (match schedule with
    | None ->
      Buffer.add_string buf
        "(state partially scheduled; cycle view needs completion)\n";
      Buffer.add_string buf (threads state)
    | Some schedule ->
      let total = Schedule.length schedule in
      Buffer.add_string buf (Printf.sprintf "cycles: 0..%d\n" (total - 1));
      for k = 0 to Threaded_graph.n_threads state - 1 do
        Buffer.add_string buf
          (Printf.sprintf "t%d %-4s|" k
             (Resources.class_name (Threaded_graph.thread_class state k)));
        let row = Bytes.make total '.' in
        List.iter
          (fun v ->
            for c = Schedule.start schedule v to Schedule.finish schedule v - 1
            do
              if c < total then
                Bytes.set row c
                  (if c = Schedule.start schedule v then
                     (let name = Graph.name g v in
                      if String.length name > 0 then name.[0] else '#')
                   else '#')
            done)
          (Threaded_graph.thread_members state k);
        Buffer.add_string buf (Bytes.to_string row);
        Buffer.add_char buf '\n'
      done);
    Buffer.contents buf
  end
