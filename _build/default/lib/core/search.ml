open Import

type outcome = {
  best_csteps : int;
  best_order : Graph.vertex list;
  evaluated : int;
  history : int list;
}

let candidate_orders ~restarts ~seed ~resources g =
  let standard =
    List.map (fun (_, meta) -> meta g) (Meta.fig3 ~resources)
  in
  let random =
    List.init restarts (fun i -> Meta.random ~seed:(seed + i) g)
  in
  standard @ random

let run ?tie ?(restarts = 16) ?(seed = 0) ~resources g =
  let orders = candidate_orders ~restarts ~seed ~resources g in
  let evaluate order =
    let state = Threaded_graph.create g ~resources in
    Threaded_graph.schedule_all ?tie state order;
    Threaded_graph.diameter state
  in
  let best = ref None in
  let history = ref [] in
  List.iter
    (fun order ->
      let csteps = evaluate order in
      (match !best with
      | Some (best_csteps, _) when best_csteps <= csteps -> ()
      | _ -> best := Some (csteps, order));
      let current_best = match !best with Some (c, _) -> c | None -> csteps in
      history := current_best :: !history)
    orders;
  match !best with
  | None -> invalid_arg "Search.run: empty graph produced no candidates"
  | Some (best_csteps, best_order) ->
    {
      best_csteps;
      best_order;
      evaluated = List.length orders;
      history = List.rev !history;
    }

let best_state ?tie ?restarts ?seed ~resources g =
  let { best_order; _ } = run ?tie ?restarts ?seed ~resources g in
  let state = Threaded_graph.create g ~resources in
  Threaded_graph.schedule_all ?tie state best_order;
  state

(* Move the element at [from] to sit at position [to_] (positions in
   the list with the element removed). *)
let relocate order ~from ~to_ =
  let array = Array.of_list order in
  let moved = array.(from) in
  let rest =
    Array.to_list array |> List.filteri (fun i _ -> i <> from)
  in
  let rec insert i = function
    | rest when i = 0 -> moved :: rest
    | [] -> [ moved ]
    | x :: tl -> x :: insert (i - 1) tl
  in
  insert to_ rest

let hill_climb ?tie ?(steps = 200) ?(seed = 0) ~resources g =
  let start = run ?tie ~seed ~resources g in
  let n = Graph.n_vertices g in
  if n < 2 then start
  else begin
    let rng = Random.State.make [| seed + 101 |] in
    let evaluate order =
      let state = Threaded_graph.create g ~resources in
      Threaded_graph.schedule_all ?tie state order;
      Threaded_graph.diameter state
    in
    let best_order = ref start.best_order in
    let best_csteps = ref start.best_csteps in
    let history = ref (List.rev start.history) in
    for _ = 1 to steps do
      let from = Random.State.int rng n in
      let to_ = Random.State.int rng n in
      let candidate = relocate !best_order ~from ~to_ in
      let csteps = evaluate candidate in
      if csteps <= !best_csteps then begin
        best_csteps := csteps;
        best_order := candidate
      end;
      history := !best_csteps :: !history
    done;
    {
      best_csteps = !best_csteps;
      best_order = !best_order;
      evaluated = start.evaluated + steps;
      history = List.rev !history;
    }
  end
