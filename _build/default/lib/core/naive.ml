let select state v =
  let positions = Threaded_graph.feasible_positions state v in
  List.fold_left
    (fun best position ->
      let trial = Threaded_graph.copy state in
      Threaded_graph.commit_at trial v position;
      let dia = Threaded_graph.diameter trial in
      match best with
      | Some (_, best_dia) when best_dia <= dia -> best
      | Some _ | None -> Some (position, dia))
    None positions

let schedule state v =
  if not (Threaded_graph.is_scheduled state v) then
    match select state v with
    | None -> Threaded_graph.schedule state v (* zero-resource: free *)
    | Some (position, _) -> Threaded_graph.commit_at state v position

let run ?(meta = Meta.topological) ~resources g =
  let state = Threaded_graph.create g ~resources in
  List.iter (schedule state) (meta g);
  state

let run_to_schedule ?meta ~resources g =
  Threaded_graph.to_schedule (run ?meta ~resources g)
