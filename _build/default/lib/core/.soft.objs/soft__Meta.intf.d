lib/core/meta.mli: Graph Import Resources
