lib/core/search.mli: Graph Import Resources Threaded_graph
