lib/core/meta.ml: Array Graph Import List List_sched Random Topo
