lib/core/render.mli: Threaded_graph
