lib/core/search.ml: Array Graph Import List Meta Random Threaded_graph
