lib/core/invariant.mli: Graph Import Threaded_graph
