lib/core/invariant.ml: Graph Hashtbl Import List Printf Reach Resources Threaded_graph
