lib/core/render.ml: Buffer Bytes Graph Import List Printf Resources Schedule String Threaded_graph
