lib/core/naive.ml: List Meta Threaded_graph
