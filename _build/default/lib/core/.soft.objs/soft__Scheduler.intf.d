lib/core/scheduler.mli: Graph Import Meta Resources Schedule Threaded_graph
