lib/core/import.ml: Dfg Hard
