lib/core/threaded_graph.mli: Graph Import Resources Schedule
