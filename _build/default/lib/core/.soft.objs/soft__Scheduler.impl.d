lib/core/scheduler.ml: Import Meta Schedule Threaded_graph
