lib/core/naive.mli: Graph Import Meta Resources Schedule Threaded_graph
