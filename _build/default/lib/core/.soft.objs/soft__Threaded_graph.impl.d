lib/core/threaded_graph.ml: Array Dfg Fun Graph Hashtbl Import List Op Printf Queue Reach Resources Schedule
