let of_op : Op.t -> int = function
  | Mul | Div | Mac | Msu -> 2
  | Add | Sub | Neg | Lt | Gt | Eq | And | Or | Xor | Shl | Shr | Select -> 1
  | Load | Store | Mov | Wire -> 1
  | Const _ | Input _ | Output _ -> 0

let unit_delay : Op.t -> int = function
  | Const _ | Input _ | Output _ -> 0
  | Add | Sub | Mul | Div | Neg | Lt | Gt | Eq | And | Or | Xor | Shl | Shr | Select | Mac | Msu
  | Mov | Load | Store | Wire ->
    1
