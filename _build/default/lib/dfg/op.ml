type t =
  | Add
  | Sub
  | Mul
  | Div
  | Neg
  | Lt
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Mac
  | Msu
  | Select
  | Mov
  | Load
  | Store
  | Wire
  | Const of int
  | Input of string
  | Output of string

let equal a b =
  match a, b with
  | Const x, Const y -> x = y
  | Input x, Input y | Output x, Output y -> String.equal x y
  | Add, Add | Sub, Sub | Mul, Mul | Div, Div | Neg, Neg
  | Lt, Lt | Gt, Gt | Eq, Eq | And, And | Or, Or | Xor, Xor
  | Shl, Shl | Shr, Shr | Mac, Mac | Msu, Msu | Select, Select
  | Mov, Mov | Load, Load | Store, Store
  | Wire, Wire ->
    true
  | ( ( Add | Sub | Mul | Div | Neg | Lt | Gt | Eq | And | Or | Xor | Shl
      | Shr | Mac | Msu | Select | Mov | Load | Store | Wire | Const _
      | Input _ | Output _ ),
      _ ) ->
    false

let arity = function
  | Const _ | Input _ -> 0
  | Neg | Mov | Load | Store | Wire | Output _ -> 1
  | Add | Sub | Mul | Div | Lt | Gt | Eq | And | Or | Xor | Shl | Shr -> 2
  | Mac | Msu | Select -> 3

let is_commutative = function
  | Add | Mul | Eq | And | Or | Xor -> true
  | Sub | Div | Neg | Lt | Gt | Shl | Shr | Mac | Msu | Select | Mov
  | Load | Store | Wire | Const _ | Input _ | Output _ ->
    false

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Neg -> "neg"
  | Lt -> "lt"
  | Gt -> "gt"
  | Eq -> "eq"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mac -> "mac"
  | Msu -> "msu"
  | Select -> "select"
  | Mov -> "mov"
  | Load -> "ld"
  | Store -> "st"
  | Wire -> "wd"
  | Const c -> Printf.sprintf "const(%d)" c
  | Input s -> Printf.sprintf "in(%s)" s
  | Output s -> Printf.sprintf "out(%s)" s

let symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Neg -> "~"
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Mac -> "mac"
  | Msu -> "msu"
  | Select -> "sel"
  | Mov -> "mov"
  | Load -> "ld"
  | Store -> "st"
  | Wire -> "wd"
  | Const c -> string_of_int c
  | Input s -> s
  | Output s -> s

let of_string s =
  match s with
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "neg" -> Some Neg
  | "lt" -> Some Lt
  | "gt" -> Some Gt
  | "eq" -> Some Eq
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "mac" -> Some Mac
  | "msu" -> Some Msu
  | "select" -> Some Select
  | "mov" -> Some Mov
  | "ld" -> Some Load
  | "st" -> Some Store
  | "wd" -> Some Wire
  | s ->
    let wrapped ~prefix =
      let pl = String.length prefix in
      if
        String.length s > pl + 1
        && String.sub s 0 pl = prefix
        && s.[pl] = '(' && s.[String.length s - 1] = ')'
      then Some (String.sub s (pl + 1) (String.length s - pl - 2))
      else None
    in
    (match wrapped ~prefix:"const" with
    | Some body -> int_of_string_opt body |> Option.map (fun c -> Const c)
    | None ->
      (match wrapped ~prefix:"in" with
      | Some name -> Some (Input name)
      | None ->
        (match wrapped ~prefix:"out" with
        | Some name -> Some (Output name)
        | None -> None)))

let pp fmt op = Format.pp_print_string fmt (to_string op)

let bool_int b = if b then 1 else 0

let eval op args =
  match op, args with
  | Add, [ a; b ] -> a + b
  | Sub, [ a; b ] -> a - b
  | Mul, [ a; b ] -> a * b
  | Div, [ a; b ] -> if b = 0 then 0 else a / b
  | Neg, [ a ] -> -a
  | Lt, [ a; b ] -> bool_int (a < b)
  | Gt, [ a; b ] -> bool_int (a > b)
  | Eq, [ a; b ] -> bool_int (a = b)
  | And, [ a; b ] -> a land b
  | Or, [ a; b ] -> a lor b
  | Xor, [ a; b ] -> a lxor b
  | Shl, [ a; b ] -> a lsl (b land 62)
  | Shr, [ a; b ] -> a asr (b land 62)
  | Mac, [ a; b; c ] -> (a * b) + c
  | Msu, [ a; b; c ] -> c - (a * b)
  | Select, [ c; a; b ] -> if c <> 0 then a else b
  | (Mov | Load | Store | Wire | Output _), [ a ] -> a
  | Const c, [] -> c
  | Input _, [] ->
    invalid_arg "Op.eval: Input must be resolved from the environment"
  | op, args ->
    invalid_arg
      (Printf.sprintf "Op.eval: %s applied to %d arguments" (to_string op)
         (List.length args))
