type vertex = int

type node = {
  op : Op.t;
  mutable delay : int;
  name : string;
  mutable preds : vertex list; (* operand order *)
  mutable succs : vertex list; (* insertion order *)
}

type t = { nodes : node Vec.t; mutable n_edges : int }

let dummy_node =
  { op = Op.Const 0; delay = 0; name = ""; preds = []; succs = [] }

let create () = { nodes = Vec.create ~dummy:dummy_node (); n_edges = 0 }

let n_vertices g = Vec.length g.nodes
let n_edges g = g.n_edges

let node g v =
  if v < 0 || v >= n_vertices g then
    invalid_arg (Printf.sprintf "Graph: unknown vertex %d" v);
  Vec.get g.nodes v

let add_vertex g ?delay ?name op =
  let delay = match delay with Some d -> d | None -> Delay.of_op op in
  if delay < 0 then invalid_arg "Graph.add_vertex: negative delay";
  let id = Vec.length g.nodes in
  let name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  let _index = Vec.push g.nodes { op; delay; name; preds = []; succs = [] } in
  id

let mem_edge g u v =
  let nu = node g u in
  List.mem v nu.succs

let add_edge g u v =
  if u = v then invalid_arg "Graph.add_edge: self loop";
  let nu = node g u and nv = node g v in
  if not (List.mem v nu.succs) then begin
    nu.succs <- nu.succs @ [ v ];
    nv.preds <- nv.preds @ [ u ];
    g.n_edges <- g.n_edges + 1
  end

let remove_edge g u v =
  let nu = node g u and nv = node g v in
  if not (List.mem v nu.succs) then
    invalid_arg (Printf.sprintf "Graph.remove_edge: no edge %d -> %d" u v);
  nu.succs <- List.filter (fun w -> w <> v) nu.succs;
  (* preds may list u several times only if duplicate edges were allowed;
     they are not, so removing all occurrences removes exactly one. *)
  nv.preds <- List.filter (fun w -> w <> u) nv.preds;
  g.n_edges <- g.n_edges - 1

let replace_operand g v ~old_pred ~new_pred =
  let nv = node g v in
  if not (List.mem old_pred nv.preds) then
    invalid_arg
      (Printf.sprintf "Graph.replace_operand: %d does not feed %d" old_pred v);
  let replaced = ref false in
  nv.preds <-
    List.map
      (fun p ->
        if p = old_pred && not !replaced then begin
          replaced := true;
          new_pred
        end
        else p)
      nv.preds;
  let n_old = node g old_pred in
  n_old.succs <- List.filter (fun w -> w <> v) n_old.succs;
  let n_new = node g new_pred in
  if not (List.mem v n_new.succs) then n_new.succs <- n_new.succs @ [ v ]
  else g.n_edges <- g.n_edges - 1

let op g v = (node g v).op
let delay g v = (node g v).delay
let set_delay g v d =
  if d < 0 then invalid_arg "Graph.set_delay: negative delay";
  (node g v).delay <- d

let name g v = (node g v).name
let preds g v = (node g v).preds
let succs g v = (node g v).succs
let in_degree g v = List.length (preds g v)
let out_degree g v = List.length (succs g v)

let vertices g = List.init (n_vertices g) Fun.id

let iter_vertices f g =
  for v = 0 to n_vertices g - 1 do
    f v
  done

let fold_vertices f acc g =
  let acc = ref acc in
  iter_vertices (fun v -> acc := f !acc v) g;
  !acc

let iter_edges f g = iter_vertices (fun u -> List.iter (f u) (succs g u)) g

let edges g =
  List.rev
    (fold_vertices
       (fun acc u -> List.fold_left (fun acc v -> (u, v) :: acc) acc (succs g u))
       [] g)

let sources g = List.filter (fun v -> preds g v = []) (vertices g)
let sinks g = List.filter (fun v -> succs g v = []) (vertices g)

(* Kahn's algorithm; a graph is a DAG iff every vertex gets popped. *)
let is_dag g =
  let n = n_vertices g in
  let indeg = Array.make n 0 in
  iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let popped = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr popped;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (succs g u)
  done;
  !popped = n

let copy g =
  let nodes = Vec.create ~capacity:(max 1 (n_vertices g)) ~dummy:dummy_node () in
  Vec.iter
    (fun n ->
      ignore
        (Vec.push nodes
           { op = n.op; delay = n.delay; name = n.name; preds = n.preds;
             succs = n.succs }))
    g.nodes;
  { nodes; n_edges = g.n_edges }

let total_delay g = fold_vertices (fun acc v -> acc + delay g v) 0 g

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d vertices, %d edges" (n_vertices g)
    (n_edges g);
  iter_vertices
    (fun v ->
      Format.fprintf fmt "@,  %s [%a, d=%d] -> %s" (name g v) Op.pp (op g v)
        (delay g v)
        (String.concat ", " (List.map (name g) (succs g v))))
    g;
  Format.fprintf fmt "@]"
