(** Precedence graphs (Definition 1 of the paper).

    A precedence graph is a DAG [G = (V, E, D)] whose vertices are
    operations, whose edges are data/serialisation dependences and whose
    delay function [D] gives each vertex a non-negative cycle count.

    Vertices are dense integer ids in [0 .. n_vertices g - 1]; ids are
    stable (vertices are never removed — refinement passes that "replace"
    behaviour build a new graph via {!Mutate}). The list of predecessors
    of a vertex is kept in insertion order because it doubles as the
    operand list for evaluation of non-commutative operations. *)

type t
type vertex = int

val create : unit -> t

val add_vertex : t -> ?delay:int -> ?name:string -> Op.t -> vertex
(** Adds an operation vertex. [delay] defaults to {!Delay.of_op}.
    [name] is a debugging / output label. *)

val add_edge : t -> vertex -> vertex -> unit
(** [add_edge g u v] records the dependence [u -> v] ("u before v").
    Duplicate edges are ignored. @raise Invalid_argument on a self loop
    or an unknown endpoint. Acyclicity is {e not} checked here (it would
    make construction quadratic); call {!is_dag} after construction, as
    every front end and generator in this repository does. *)

val remove_edge : t -> vertex -> vertex -> unit
(** @raise Invalid_argument if the edge is absent. *)

val replace_operand : t -> vertex -> old_pred:vertex -> new_pred:vertex -> unit
(** [replace_operand g v ~old_pred ~new_pred] rewires the first operand
    slot of [v] currently fed by [old_pred] to read from [new_pred],
    preserving operand order. @raise Invalid_argument if [old_pred] does
    not feed [v]. *)

val n_vertices : t -> int
val n_edges : t -> int
val op : t -> vertex -> Op.t
val delay : t -> vertex -> int
val set_delay : t -> vertex -> int -> unit
val name : t -> vertex -> string
(** Vertex label; defaults to ["v<i>"]. *)

val preds : t -> vertex -> vertex list
(** Immediate predecessors in operand order. *)

val succs : t -> vertex -> vertex list
val in_degree : t -> vertex -> int
val out_degree : t -> vertex -> int
val mem_edge : t -> vertex -> vertex -> bool
val vertices : t -> vertex list
val iter_vertices : (vertex -> unit) -> t -> unit
val fold_vertices : ('acc -> vertex -> 'acc) -> 'acc -> t -> 'acc
val iter_edges : (vertex -> vertex -> unit) -> t -> unit
val edges : t -> (vertex * vertex) list

val sources : t -> vertex list
(** Vertices with no predecessors (the paper's "primary inputs"). *)

val sinks : t -> vertex list
(** Vertices with no successors (the paper's "primary outputs"). *)

val is_dag : t -> bool

val copy : t -> t

val total_delay : t -> int
(** Sum of all vertex delays — a lower bound on any 1-resource schedule. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump: one vertex per line with op, delay and successors. *)
