type env = (string * int) list

let run g env =
  let values = Array.make (Graph.n_vertices g) 0 in
  let eval_vertex v =
    let op = Graph.op g v in
    let args = List.map (fun p -> values.(p)) (Graph.preds g v) in
    let value =
      match op with
      | Op.Input name -> List.assoc name env
      | op ->
        if List.length args <> Op.arity op then
          invalid_arg
            (Printf.sprintf "Eval.run: %s at %s has %d operands, expected %d"
               (Op.to_string op) (Graph.name g v) (List.length args)
               (Op.arity op))
        else Op.eval op args
    in
    values.(v) <- value
  in
  List.iter eval_vertex (Topo.sort g);
  values

let outputs g env =
  let values = run g env in
  List.filter_map
    (fun v ->
      match Graph.op g v with
      | Op.Output name -> Some (name, values.(v))
      | _ -> None)
    (Graph.vertices g)
