let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let vertex_label g v =
  Printf.sprintf "%s: %s (%d)" (Graph.name g v)
    (Op.symbol (Graph.op g v))
    (Graph.delay g v)

let of_graph ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph G {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  Graph.iter_vertices
    (fun v ->
      let extra =
        if List.mem v highlight then
          " style=filled fillcolor=\"#ffd27f\""
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v
           (escape (vertex_label g v))
           extra))
    g;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_schedule g ~starts =
  if Array.length starts <> Graph.n_vertices g then
    invalid_arg "Dot.of_schedule: starts array size mismatch";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph S {\n  rankdir=TB;\n  node [shape=box];\n";
  let steps = Array.fold_left max 0 starts in
  for step = 0 to steps do
    let members =
      List.filter (fun v -> starts.(v) = step) (Graph.vertices g)
    in
    if members <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"step %d\";\n"
           step step);
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "    n%d [label=\"%s\"];\n" v
               (escape (vertex_label g v))))
        members;
      Buffer.add_string buf "  }\n"
    end
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
