(** Graphviz export of precedence graphs and schedules. *)

val of_graph : ?highlight:Graph.vertex list -> Graph.t -> string
(** DOT text; vertices labelled ["name: symbol (d)"]. [highlight]ed
    vertices (e.g. the critical path) are drawn filled. *)

val of_schedule : Graph.t -> starts:int array -> string
(** DOT text with vertices ranked by start control step (one cluster per
    step), visualising a hard schedule. *)
