(** Transitive reduction of a DAG.

    The threaded scheduling state keeps cross-thread edges tight; the
    reduction is the yardstick: a state with no transitively-redundant
    edges is maximally soft for its partial order. Also a generally
    useful cleanup for front-end graphs. *)

val transitive_reduction : Graph.t -> Graph.t
(** The unique minimal subgraph of a DAG with the same reachability
    (same vertices, vertex ids preserved). @raise Invalid_argument on a
    cyclic input. *)

val redundant_edges : Graph.t -> (Graph.vertex * Graph.vertex) list
(** Edges removed by {!transitive_reduction}. *)

val is_reduced : Graph.t -> bool
