(** Plain-text serialisation of precedence graphs — the [.dfg] format
    accepted by the CLI.

    {v
      # anything after '#' is a comment
      vertex <name> <op> [<delay>]
      edge <src-name> <dst-name>
    v}

    Ops are spelled as {!Op.to_string} spells them ([add], [mul],
    [const(3)], [in(x)], [out(y)], …); the delay defaults to the
    standard model. Vertex names must be unique and declared before the
    edges that use them. *)

exception Parse_error of string
(** Message carries the 1-based line number. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input (unknown op, duplicate or
    undeclared vertex name, negative delay, malformed line). *)

val load : string -> Graph.t
(** Read a graph from a file path. *)

val save : string -> Graph.t -> unit
