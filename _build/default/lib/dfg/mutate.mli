(** Behaviour-refining graph edits.

    These model the Section-1 scenarios: spilling and interconnect delay
    both {e change the original behaviour} by adding vertices. Each edit
    returns the id(s) of the vertices it created. The edits preserve
    operand order (the new vertex takes the old producer's slot in each
    rewritten consumer), so {!Eval.run} still computes the same outputs
    for value-preserving ops (Wire, Mov, Store/Load pairs). *)

val insert_on_edge :
  Graph.t -> src:Graph.vertex -> dst:Graph.vertex -> op:Op.t -> ?delay:int ->
  ?name:string -> unit -> Graph.vertex
(** Replace edge [src -> dst] with [src -> w -> dst] where [w] is a new
    vertex. @raise Invalid_argument if the edge does not exist. *)

val insert_spill :
  Graph.t -> value:Graph.vertex -> reload_for:Graph.vertex list ->
  Graph.vertex * Graph.vertex
(** Spill the value produced by [value]: adds [st] (Store) fed by
    [value] and [ld] (Load) fed by [st]; consumers listed in
    [reload_for] are rewired to read from [ld] instead of [value]
    (Figure 1(c)). Returns [(st, ld)].
    @raise Invalid_argument if some consumer is not a successor. *)
