(** Reference evaluation of a dataflow graph over the integers.

    Used as the functional-correctness oracle: whatever a scheduler,
    binder or netlist simulator produces must compute the same values.
    Operand order is the graph's predecessor order. *)

type env = (string * int) list
(** Values for [Op.Input] vertices, keyed by input name. *)

val run : Graph.t -> env -> int array
(** [run g env] computes every vertex's value in topological order.
    @raise Not_found if an input name is missing from [env].
    @raise Invalid_argument if the graph has a cycle or an operation's
    in-degree does not match its arity. *)

val outputs : Graph.t -> env -> (string * int) list
(** Values of the [Op.Output]-labelled vertices, in vertex order. *)
