(* Row v of [down] is a bitset over vertices: bit u set iff v reaches u. *)
type t = { n : int; words : int; down : Bytes.t array; up : Bytes.t array }

let bit_set row u = Bytes.set_uint8 row (u lsr 3)
    (Bytes.get_uint8 row (u lsr 3) lor (1 lsl (u land 7)))

let bit_get row u = Bytes.get_uint8 row (u lsr 3) land (1 lsl (u land 7)) <> 0

let row_or ~into src =
  let len = Bytes.length into in
  for i = 0 to len - 1 do
    Bytes.set_uint8 into i (Bytes.get_uint8 into i lor Bytes.get_uint8 src i)
  done

let of_graph g =
  let n = Graph.n_vertices g in
  let words = (n + 7) / 8 in
  let make () = Array.init n (fun _ -> Bytes.make (max words 1) '\000') in
  let down = make () and up = make () in
  let order = Topo.sort g in
  (* Reverse topological sweep: v reaches the union of its successors'
     reach sets plus the successors themselves. *)
  List.iter
    (fun v ->
      List.iter
        (fun s ->
          bit_set down.(v) s;
          row_or ~into:down.(v) down.(s))
        (Graph.succs g v))
    (List.rev order);
  List.iter
    (fun v ->
      List.iter
        (fun p ->
          bit_set up.(v) p;
          row_or ~into:up.(v) up.(p))
        (Graph.preds g v))
    order;
  { n; words; down; up }

let check r v =
  if v < 0 || v >= r.n then
    invalid_arg (Printf.sprintf "Reach: unknown vertex %d" v)

let precedes r u v =
  check r u;
  check r v;
  bit_get r.down.(u) v

let preceq r u v = u = v || precedes r u v
let comparable r u v = precedes r u v || precedes r v u

let collect row n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if bit_get row u then acc := u :: !acc
  done;
  !acc

let descendants r v =
  check r v;
  collect r.down.(v) r.n

let ancestors r v =
  check r v;
  collect r.up.(v) r.n

let count_pairs r =
  let count = ref 0 in
  Array.iter
    (fun row ->
      Bytes.iter
        (fun c ->
          let byte = Char.code c in
          for b = 0 to 7 do
            if byte land (1 lsl b) <> 0 then incr count
          done)
        row)
    r.down;
  !count
