(** Longest-path metrics of Definition 1: source distance, sink distance,
    vertex distance and the graph diameter.

    All distances are {e inclusive} of the endpoint vertex's own delay,
    matching Lemma 5 of the paper:
    [distance v = delay v + max sdist(preds) + max tdist(succs)]. *)

val source_distances : Graph.t -> int array
(** [sdist.(v)] = total delay along the longest path from a source to
    [v], including [delay v]. *)

val sink_distances : Graph.t -> int array
(** [tdist.(v)] = total delay along the longest path from [v] to a sink,
    including [delay v]. *)

val distance_through : Graph.t -> Graph.vertex -> int
(** The paper's [‖-> v <-‖]: longest source-to-sink path through [v]. *)

val diameter : Graph.t -> int
(** Longest source-to-sink path; 0 for the empty graph. This is the
    figure of merit the threaded scheduler minimises (Definition 5). *)

val critical_path : Graph.t -> Graph.vertex list
(** One longest source-to-sink path, in order. Empty for the empty
    graph. Deterministic (smallest-id tie-breaking). *)

val asap_starts : Graph.t -> int array
(** Earliest start time of each vertex with unlimited resources:
    [sdist v - delay v]. *)

val alap_starts : Graph.t -> deadline:int -> int array
(** Latest start times meeting [deadline].
    @raise Invalid_argument if [deadline < diameter g]. *)

val slack : Graph.t -> deadline:int -> int array
(** [alap - asap] per vertex under [deadline]; 0 on the critical path
    when [deadline = diameter]. *)
