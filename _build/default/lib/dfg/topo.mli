(** Vertex orderings of a precedence graph.

    These are the raw material for the paper's {e meta schedules}: the
    order in which operations are fed to the online scheduler. *)

val sort : Graph.t -> Graph.vertex list
(** A topological order (Kahn, FIFO tie-breaking — deterministic).
    @raise Invalid_argument if the graph has a cycle. *)

val sort_by : Graph.t -> compare:(Graph.vertex -> Graph.vertex -> int)
  -> Graph.vertex list
(** Topological order where, among simultaneously-ready vertices, the
    smallest under [compare] is emitted first. Deterministic. *)

val dfs_preorder : Graph.t -> Graph.vertex list
(** Depth-first preorder from the sources, in source-id order.
    Note: a DFS {e preorder} of a DAG is not in general topological; the
    paper's meta schedule 1 uses it precisely to show the online
    scheduler copes with non-topological feeds. *)

val dfs_postorder : Graph.t -> Graph.vertex list

val reverse_postorder : Graph.t -> Graph.vertex list
(** Reverse DFS postorder — a topological order for DAGs. *)

val is_topological : Graph.t -> Graph.vertex list -> bool
(** [is_topological g order] checks [order] is a permutation of the
    vertices in which every edge goes forward. *)
