(** Reachability (the partial order ≼ induced by a precedence graph).

    The threaded scheduler's feasibility test and the correctness
    invariant both need fast "does u precede v" queries. A bitset
    transitive closure answers them in O(1) after O(V·E/word) setup. *)

type t

val of_graph : Graph.t -> t

val precedes : t -> Graph.vertex -> Graph.vertex -> bool
(** [precedes r u v] iff there is a non-empty path from [u] to [v]
    (strict: [precedes r v v = false]). *)

val preceq : t -> Graph.vertex -> Graph.vertex -> bool
(** Reflexive closure of {!precedes}. *)

val comparable : t -> Graph.vertex -> Graph.vertex -> bool
(** [u ≼ v] or [v ≼ u]. *)

val descendants : t -> Graph.vertex -> Graph.vertex list
(** Strict descendants, ascending id order. *)

val ancestors : t -> Graph.vertex -> Graph.vertex list

val count_pairs : t -> int
(** Number of ordered pairs [(u, v)] with [u ≺ v] — a measure of how
    constrained the partial order is; used by the flexibility ablation. *)
