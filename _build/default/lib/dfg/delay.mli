(** The cycle-delay model used throughout the reproduction.

    The DAC-99 paper never states its delay assignment, but the Figure 3
    numbers pin it down: the elliptic wave filter reaches 17 control steps
    under ample resources and HAL reaches 6, which are the classic values
    for single-cycle ALU operations and a two-cycle multiplier. *)

val of_op : Op.t -> int
(** Default delay: [Mul]/[Div] take 2 cycles; [Add]/[Sub]/comparisons/
    logic take 1; [Load]/[Store] take 1 (on-chip background memory);
    [Mov] takes 1; [Const]/[Input]/[Output] take 0; [Wire] delay is
    context-dependent and defaults to 1 (refinement passes override it). *)

val unit_delay : Op.t -> int
(** Every operation takes one cycle except zero-delay pseudo-ops; used by
    tests that compare against textbook unit-delay schedules. *)
