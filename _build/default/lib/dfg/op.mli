(** Operation kinds carried by dataflow-graph vertices.

    The set covers what the DAC-99 benchmarks need (arithmetic,
    comparison), the refinement phases (memory spill traffic, register
    moves, wire-delay pseudo-operations) and the front end (constants,
    inputs). *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Neg
  | Lt  (** signed less-than comparison *)
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Mac  (** multiply-accumulate [a*b + c] — a fused cell produced by
             the technology mapper; executes on a multiplier *)
  | Msu  (** multiply-subtract [c - a*b] — fused cell, multiplier *)
  | Select  (** [select c a b = if c <> 0 then a else b] — an
                if-converted SSA phi node *)
  | Mov  (** register move, e.g. a resolved SSA phi *)
  | Load  (** load from background memory (spill reload) *)
  | Store  (** store to background memory (spill) *)
  | Wire  (** interconnect-delay pseudo-operation inserted after floorplanning *)
  | Const of int  (** compile-time constant; zero delay, no resource *)
  | Input of string  (** primary input; zero delay, no resource *)
  | Output of string  (** primary output marker *)

val equal : t -> t -> bool

val arity : t -> int
(** Number of data operands the operation consumes. [Const] and [Input]
    take none; unary and binary operations as expected. *)

val is_commutative : t -> bool

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (e.g. ["mul"], ["const(3)"], ["in(x)"]). *)

val pp : Format.formatter -> t -> unit

val symbol : t -> string
(** Short infix-style symbol used in DOT labels and schedule dumps,
    e.g. ["+"] for [Add]. *)

val eval : t -> int list -> int
(** [eval op args] applies the integer semantics of [op]. Comparison
    operations return 0/1. [Load]/[Store]/[Wire]/[Mov]/[Output] behave as
    identity on their first operand (the simulator models memory
    separately). @raise Invalid_argument on arity mismatch. *)
