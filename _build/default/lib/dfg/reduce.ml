(* For a DAG, edge (u, v) is redundant iff some other successor of u
   still reaches v. *)
let redundant_edges g =
  if not (Graph.is_dag g) then
    invalid_arg "Reduce: input graph is cyclic";
  let reach = Reach.of_graph g in
  List.filter
    (fun (u, v) ->
      List.exists (fun w -> w <> v && Reach.preceq reach w v) (Graph.succs g u))
    (Graph.edges g)

let transitive_reduction g =
  let redundant = redundant_edges g in
  let reduced = Graph.create () in
  Graph.iter_vertices
    (fun v ->
      let id =
        Graph.add_vertex reduced ~delay:(Graph.delay g v)
          ~name:(Graph.name g v) (Graph.op g v)
      in
      assert (id = v))
    g;
  Graph.iter_edges
    (fun u v ->
      if not (List.mem (u, v) redundant) then Graph.add_edge reduced u v)
    g;
  reduced

let is_reduced g = redundant_edges g = []
