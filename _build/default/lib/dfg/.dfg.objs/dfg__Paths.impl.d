lib/dfg/paths.ml: Array Graph List Printf Topo
