lib/dfg/reach.ml: Array Bytes Char Graph List Printf Topo
