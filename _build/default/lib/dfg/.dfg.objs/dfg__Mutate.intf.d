lib/dfg/mutate.mli: Graph Op
