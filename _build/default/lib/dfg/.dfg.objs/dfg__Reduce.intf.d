lib/dfg/reduce.mli: Graph
