lib/dfg/topo.ml: Array Graph List Queue
