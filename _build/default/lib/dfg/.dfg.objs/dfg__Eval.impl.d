lib/dfg/eval.ml: Array Graph List Op Printf Topo
