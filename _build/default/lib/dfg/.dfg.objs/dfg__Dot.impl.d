lib/dfg/dot.ml: Array Buffer Graph List Op Printf String
