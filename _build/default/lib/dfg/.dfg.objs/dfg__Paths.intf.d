lib/dfg/paths.mli: Graph
