lib/dfg/vec.ml: Array List Printf
