lib/dfg/generate.ml: Array Graph List Op Printf Random
