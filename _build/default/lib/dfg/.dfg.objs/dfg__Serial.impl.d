lib/dfg/serial.ml: Buffer Fun Graph Hashtbl List Op Printf String
