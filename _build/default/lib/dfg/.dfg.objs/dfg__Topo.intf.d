lib/dfg/topo.mli: Graph
