lib/dfg/delay.mli: Op
