lib/dfg/eval.mli: Graph
