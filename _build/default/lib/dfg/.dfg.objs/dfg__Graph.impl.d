lib/dfg/graph.ml: Array Delay Format Fun List Op Printf Queue String Vec
