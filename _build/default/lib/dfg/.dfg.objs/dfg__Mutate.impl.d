lib/dfg/mutate.ml: Graph List Op Printf
