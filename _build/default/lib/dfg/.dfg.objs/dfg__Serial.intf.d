lib/dfg/serial.mli: Graph
