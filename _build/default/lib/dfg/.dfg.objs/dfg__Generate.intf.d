lib/dfg/generate.mli: Graph Op Random
