lib/dfg/reach.mli: Graph
