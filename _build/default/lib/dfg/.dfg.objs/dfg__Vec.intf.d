lib/dfg/vec.mli:
