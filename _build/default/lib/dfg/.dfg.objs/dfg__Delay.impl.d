lib/dfg/delay.ml: Op
