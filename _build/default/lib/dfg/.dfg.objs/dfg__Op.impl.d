lib/dfg/op.ml: Format List Option Printf String
