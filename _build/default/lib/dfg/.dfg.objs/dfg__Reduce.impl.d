lib/dfg/reduce.ml: Graph List Reach
