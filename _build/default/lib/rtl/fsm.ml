open Import

type action =
  | Issue of Graph.vertex
  | Writeback of Graph.vertex

type t = {
  binding : Binding.t;
  topo_rank : int array;
  length : int;
}

let of_binding binding =
  let g = Schedule.graph binding.Binding.schedule in
  let rank = Array.make (Graph.n_vertices g) 0 in
  List.iteri (fun i v -> rank.(v) <- i) (Dfg.Topo.sort g);
  { binding; topo_rank = rank; length = Schedule.length binding.Binding.schedule }

let n_states t = t.length

let actions t ~state =
  if state < 0 || state > t.length then
    invalid_arg (Printf.sprintf "Fsm.actions: no state %d" state);
  let schedule = t.binding.Binding.schedule in
  let g = Schedule.graph schedule in
  let by_rank vs = List.sort (fun a b -> compare t.topo_rank.(a) t.topo_rank.(b)) vs in
  let writebacks =
    by_rank
      (List.filter
         (fun v ->
           Graph.delay g v > 0 && Schedule.finish schedule v = state)
         (Graph.vertices g))
  in
  (* Zero-delay stragglers (output markers) may start exactly at the
     final boundary state; anything with delay would extend the
     schedule, so only they can appear there. *)
  let issues =
    by_rank
      (List.filter
         (fun v -> Schedule.start schedule v = state)
         (Graph.vertices g))
  in
  List.map (fun v -> Writeback v) writebacks
  @ List.map (fun v -> Issue v) issues

let pp fmt t =
  let g = Schedule.graph t.binding.Binding.schedule in
  Format.fprintf fmt "@[<v>controller: %d states" t.length;
  for state = 0 to t.length do
    let acts = actions t ~state in
    if acts <> [] then begin
      Format.fprintf fmt "@,  s%-3d" state;
      List.iter
        (fun a ->
          match a with
          | Issue v -> Format.fprintf fmt " issue(%s)" (Graph.name g v)
          | Writeback v -> Format.fprintf fmt " wb(%s)" (Graph.name g v))
        acts
    end
  done;
  Format.fprintf fmt "@]"
