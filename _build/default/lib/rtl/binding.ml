open Import

type source =
  | From_register of int
  | From_constant of int
  | From_memory of int

type t = {
  schedule : Schedule.t;
  fu_of_op : (Graph.vertex * int) list;
  fu_class : int -> Resources.fu_class;
  n_fus : int;
  register_of_value : (Graph.vertex * int) list;
  n_registers : int;
  memory_slot : (Graph.vertex * int) list;
}

let of_state ?(register_policy = `Left_edge) state =
  let schedule = Threaded_graph.to_schedule state in
  let g = Schedule.graph schedule in
  let fu_of_op =
    List.concat_map
      (fun k ->
        List.map (fun v -> (v, k)) (Threaded_graph.thread_members state k))
      (List.init (Threaded_graph.n_threads state) Fun.id)
  in
  let allocation = Regbind.bind register_policy state schedule in
  let memory_slot =
    List.mapi (fun slot v -> (v, slot))
      (List.filter
         (fun v -> match Graph.op g v with Op.Store -> true | _ -> false)
         (Graph.vertices g))
  in
  {
    schedule;
    fu_of_op;
    fu_class = Threaded_graph.thread_class state;
    n_fus = Threaded_graph.n_threads state;
    register_of_value = allocation.Regalloc.assignment;
    n_registers = allocation.Regalloc.n_registers;
    memory_slot;
  }

let fu_of t v = List.assoc_opt v t.fu_of_op
let register_of t v = List.assoc_opt v t.register_of_value
let slot_of_store t v = List.assoc_opt v t.memory_slot

let operand_sources t v =
  let g = Schedule.graph t.schedule in
  List.map
    (fun p ->
      match Graph.op g p with
      | Op.Const n -> From_constant n
      | Op.Store ->
        (match slot_of_store t p with
        | Some slot -> From_memory slot
        | None -> invalid_arg "Binding.operand_sources: unmapped store")
      | _ ->
        (match register_of t p with
        | Some r -> From_register r
        | None ->
          invalid_arg
            (Printf.sprintf
               "Binding.operand_sources: value of %s has no register"
               (Graph.name g p))))
    (Graph.preds g v)

let mux_width t ~fu ~port =
  let sources = Hashtbl.create 8 in
  List.iter
    (fun (v, f) ->
      if f = fu then begin
        let operands = operand_sources t v in
        match List.nth_opt operands port with
        | Some s -> Hashtbl.replace sources s ()
        | None -> ()
      end)
    t.fu_of_op;
  Hashtbl.length sources

let summary t =
  let g = Schedule.graph t.schedule in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "datapath: %d FUs, %d registers, %d memory slots\n"
       t.n_fus t.n_registers (List.length t.memory_slot));
  for fu = 0 to t.n_fus - 1 do
    let ops =
      List.filter_map (fun (v, f) -> if f = fu then Some v else None)
        t.fu_of_op
    in
    Buffer.add_string buf
      (Printf.sprintf "  fu%d (%s): %s\n" fu
         (Resources.class_name (t.fu_class fu))
         (String.concat " -> " (List.map (Graph.name g) ops)))
  done;
  Buffer.contents buf
