open Import

(** Value-change-dump (IEEE 1364 §18) export of a datapath simulation —
    load the result in GTKWave next to the emitted Verilog. *)

val of_run : ?module_name:string -> Binding.t -> env:Eval.env -> string
(** Simulate the bound design over [env] and dump every register, the
    spill memory slots and the output ports, one timestep per control
    step. @raise Not_found for a missing input. *)
