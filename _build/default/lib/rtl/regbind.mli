open Import

(** Register binding policies.

    Left-edge minimises the register count but scatters unrelated
    values across registers, inflating the steering logic (each FU
    input port needs a mux over every distinct source it ever reads).
    The mux-aware policy packs values that share a producer unit or a
    consumer unit into the same register, trading an occasional extra
    register for narrower muxes — the classic interconnect-oriented
    binding of the layout-driven HLS literature the paper cites
    (ChipEst, 3D scheduling). *)

type policy = [ `Left_edge | `Mux_aware ]

val bind :
  policy -> Threaded_graph.t -> Schedule.t -> Regalloc.allocation
(** Register assignment for every register value of the schedule (the
    state supplies the FU binding used by the affinity scoring). The
    result always passes {!Regalloc.verify}. *)
