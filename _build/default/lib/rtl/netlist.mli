open Import

(** Structural view of the bound datapath: components and the
    point-to-point connections the steering logic (muxes) must
    provide. *)

type component =
  | Fu of { id : int; cls : Resources.fu_class }
  | Register of int
  | Memory_slot of int
  | Const_source of int
  | In_port of string
  | Out_port of string

type endpoint =
  | Fu_output of int
  | Fu_input of { fu : int; port : int }
  | Register_out of int
  | Register_in of int
  | Memory_out of int
  | Memory_in of int
  | Const_out of int
  | Port_in of string  (** value entering from an input port *)
  | Port_out of string

type t = {
  components : component list;
  connections : (endpoint * endpoint) list;  (** (driver, sink) *)
}

val of_binding : Binding.t -> t

val n_mux_inputs : t -> int
(** Total steering cost: for every sink with more than one driver, the
    number of drivers — the interconnect-complexity metric of the
    binding ablation. *)

val pp : Format.formatter -> t -> unit
