module Graph = Dfg.Graph
module Op = Dfg.Op
module Eval = Dfg.Eval
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module Threaded_graph = Soft.Threaded_graph
module Lifetime = Refine.Lifetime
module Regalloc = Refine.Regalloc
