open Import

type component =
  | Fu of { id : int; cls : Resources.fu_class }
  | Register of int
  | Memory_slot of int
  | Const_source of int
  | In_port of string
  | Out_port of string

type endpoint =
  | Fu_output of int
  | Fu_input of { fu : int; port : int }
  | Register_out of int
  | Register_in of int
  | Memory_out of int
  | Memory_in of int
  | Const_out of int
  | Port_in of string
  | Port_out of string

type t = {
  components : component list;
  connections : (endpoint * endpoint) list;
}

let source_endpoint = function
  | Binding.From_register r -> Register_out r
  | Binding.From_constant n -> Const_out n
  | Binding.From_memory slot -> Memory_out slot

let of_binding binding =
  let g = Schedule.graph binding.Binding.schedule in
  let components = ref [] in
  let connections = ref [] in
  let add_component c =
    if not (List.mem c !components) then components := c :: !components
  in
  let add_connection c = if not (List.mem c !connections) then
      connections := c :: !connections
  in
  for fu = 0 to binding.Binding.n_fus - 1 do
    add_component (Fu { id = fu; cls = binding.Binding.fu_class fu })
  done;
  for r = 0 to binding.Binding.n_registers - 1 do
    add_component (Register r)
  done;
  List.iter (fun (_, slot) -> add_component (Memory_slot slot))
    binding.Binding.memory_slot;
  Graph.iter_vertices
    (fun v ->
      match Graph.op g v with
      | Op.Input name ->
        add_component (In_port name);
        (match Binding.register_of binding v with
        | Some r -> add_connection (Port_in name, Register_in r)
        | None -> ())
      | Op.Output name ->
        add_component (Out_port name);
        List.iter
          (fun s -> add_connection (source_endpoint s, Port_out name))
          (Binding.operand_sources binding v)
      | Op.Const n -> add_component (Const_source n)
      | _ ->
        let sources = Binding.operand_sources binding v in
        (match Binding.fu_of binding v with
        | Some fu ->
          (* operands into the unit's input ports … *)
          List.iteri
            (fun port s ->
              add_connection (source_endpoint s, Fu_input { fu; port }))
            sources;
          (* … result into its register or memory slot. *)
          (match Binding.register_of binding v with
          | Some r -> add_connection (Fu_output fu, Register_in r)
          | None -> ());
          (match Binding.slot_of_store binding v with
          | Some slot -> add_connection (Fu_output fu, Memory_in slot)
          | None -> ())
        | None ->
          (* free op (wire delay): value passes register to register *)
          (match Binding.register_of binding v with
          | Some r ->
            List.iter
              (fun s -> add_connection (source_endpoint s, Register_in r))
              sources
          | None -> ())))
    g;
  { components = List.rev !components; connections = List.rev !connections }

let n_mux_inputs t =
  let sinks = Hashtbl.create 32 in
  List.iter
    (fun (_, sink) ->
      Hashtbl.replace sinks sink (1 + Option.value ~default:0 (Hashtbl.find_opt sinks sink)))
    t.connections;
  Hashtbl.fold (fun _ n acc -> if n > 1 then acc + n else acc) sinks 0

let endpoint_to_string = function
  | Fu_output fu -> Printf.sprintf "fu%d.out" fu
  | Fu_input { fu; port } -> Printf.sprintf "fu%d.in%d" fu port
  | Register_out r -> Printf.sprintf "r%d.out" r
  | Register_in r -> Printf.sprintf "r%d.in" r
  | Memory_out s -> Printf.sprintf "mem%d.out" s
  | Memory_in s -> Printf.sprintf "mem%d.in" s
  | Const_out n -> Printf.sprintf "const(%d)" n
  | Port_in p -> Printf.sprintf "port.%s" p
  | Port_out p -> Printf.sprintf "port.%s" p

let component_to_string = function
  | Fu { id; cls } -> Printf.sprintf "fu%d:%s" id (Resources.class_name cls)
  | Register r -> Printf.sprintf "r%d" r
  | Memory_slot s -> Printf.sprintf "mem%d" s
  | Const_source n -> Printf.sprintf "const(%d)" n
  | In_port p -> Printf.sprintf "in:%s" p
  | Out_port p -> Printf.sprintf "out:%s" p

let pp fmt t =
  Format.fprintf fmt "@[<v>netlist: %d components, %d connections, %d mux inputs"
    (List.length t.components)
    (List.length t.connections)
    (n_mux_inputs t);
  List.iter
    (fun c -> Format.fprintf fmt "@,  %s" (component_to_string c))
    t.components;
  List.iter
    (fun (a, b) ->
      Format.fprintf fmt "@,  %s -> %s" (endpoint_to_string a)
        (endpoint_to_string b))
    t.connections;
  Format.fprintf fmt "@]"
