open Import

type policy = [ `Left_edge | `Mux_aware ]

(* Per-register affinity bookkeeping for the mux-aware policy. *)
type register_state = {
  mutable free_at : int;
  mutable writer_fus : int list;  (** units that ever write this register *)
  mutable reader_fus : int list;  (** units that ever read this register *)
}

let mux_aware state schedule =
  let g = Schedule.graph schedule in
  let fu_of v = Threaded_graph.thread_of state v in
  let registers : register_state Dfg.Vec.t =
    Dfg.Vec.create ~dummy:{ free_at = 0; writer_fus = []; reader_fus = [] } ()
  in
  let assignment = ref [] in
  let sorted =
    List.sort
      (fun (a : Lifetime.interval) b ->
        compare (a.birth, a.producer) (b.birth, b.producer))
      (Lifetime.intervals schedule)
  in
  List.iter
    (fun (iv : Lifetime.interval) ->
      let producer_fu = fu_of iv.producer in
      let consumer_fus =
        List.filter_map fu_of (Graph.succs g iv.producer)
      in
      (* Score each free register by shared steering. *)
      let best = ref None in
      for r = 0 to Dfg.Vec.length registers - 1 do
        let reg = Dfg.Vec.get registers r in
        if reg.free_at <= iv.birth then begin
          let writer_gain =
            match producer_fu with
            | Some fu when List.mem fu reg.writer_fus -> 2
            | _ -> 0
          in
          let reader_gain =
            List.length
              (List.filter (fun fu -> List.mem fu reg.reader_fus) consumer_fus)
          in
          let score = writer_gain + reader_gain in
          match !best with
          | Some (_, best_score) when best_score >= score -> ()
          | _ -> best := Some (r, score)
        end
      done;
      let r =
        match !best with
        | Some (r, _) -> r
        | None ->
          Dfg.Vec.push registers
            { free_at = 0; writer_fus = []; reader_fus = [] }
      in
      let reg = Dfg.Vec.get registers r in
      reg.free_at <- iv.death;
      (match producer_fu with
      | Some fu when not (List.mem fu reg.writer_fus) ->
        reg.writer_fus <- fu :: reg.writer_fus
      | _ -> ());
      List.iter
        (fun fu ->
          if not (List.mem fu reg.reader_fus) then
            reg.reader_fus <- fu :: reg.reader_fus)
        consumer_fus;
      assignment := (iv.producer, r) :: !assignment)
    sorted;
  {
    Regalloc.assignment = List.rev !assignment;
    n_registers = Dfg.Vec.length registers;
    spilled = [];
  }

let bind policy state schedule =
  match policy with
  | `Left_edge -> Regalloc.left_edge schedule
  | `Mux_aware -> mux_aware state schedule
