open Import

(** Cycle-accurate simulation of the bound datapath under its
    controller — the end-to-end functional check that scheduling,
    binding and register reuse preserved the behaviour. *)

type trace_entry = {
  cycle : int;
  vertex : Graph.vertex;
  event : [ `Issue | `Writeback ];
  value : int option;  (** result value on writeback *)
}

val run :
  ?trace:bool -> Binding.t -> env:Eval.env ->
  (string * int) list * trace_entry list
(** Executes the FSM cycle by cycle over the register file and spill
    memory. Returns the output-port values (in vertex order) and, when
    [trace], the event log. Register reuse is real: a register may hold
    different values over time, and the simulation faithfully breaks if
    the left-edge allocation were wrong (exercised by tests).
    @raise Not_found for a missing input value. *)

val check_against_eval : Binding.t -> env:Eval.env -> (unit, string) result
(** Compare {!run} against the pure dataflow evaluation
    {!Dfg.Eval.outputs}. *)
