open Import

type trace_entry = {
  cycle : int;
  vertex : Graph.vertex;
  event : [ `Issue | `Writeback ];
  value : int option;
}

let run ?(trace = false) binding ~env =
  let schedule = binding.Binding.schedule in
  let g = Schedule.graph schedule in
  let fsm = Fsm.of_binding binding in
  let registers = Array.make (max binding.Binding.n_registers 1) 0 in
  let memory = Array.make (max (List.length binding.Binding.memory_slot) 1) 0 in
  let pending = Hashtbl.create 16 in (* vertex -> computed result *)
  let outputs = ref [] in
  let log = ref [] in
  let note cycle vertex event value =
    if trace then log := { cycle; vertex; event; value } :: !log
  in
  let read_source = function
    | Binding.From_register r -> registers.(r)
    | Binding.From_constant n -> n
    | Binding.From_memory slot -> memory.(slot)
  in
  let commit v result =
    (match Graph.op g v with
    | Op.Store ->
      (match Binding.slot_of_store binding v with
      | Some slot -> memory.(slot) <- result
      | None -> invalid_arg "Sim.run: store without a slot")
    | Op.Output name -> outputs := (name, result) :: !outputs
    | _ ->
      (match Binding.register_of binding v with
      | Some r -> registers.(r) <- result
      | None -> () (* dead value: no consumer, nothing to keep *)))
  in
  let compute v =
    match Graph.op g v with
    | Op.Input name -> List.assoc name env
    | op ->
      let operands = List.map read_source (Binding.operand_sources binding v) in
      Op.eval op operands
  in
  for cycle = 0 to Fsm.n_states fsm do
    List.iter
      (fun action ->
        match action with
        | Fsm.Writeback v ->
          let result =
            match Hashtbl.find_opt pending v with
            | Some r -> r
            | None -> failwith "Sim.run: writeback without issue"
          in
          Hashtbl.remove pending v;
          commit v result;
          note cycle v `Writeback (Some result)
        | Fsm.Issue v ->
          (* Operands are read (latched) at issue. *)
          let result = compute v in
          note cycle v `Issue None;
          if Graph.delay g v = 0 then begin
            (* combinational this cycle *)
            commit v result;
            note cycle v `Writeback (Some result)
          end
          else Hashtbl.replace pending v result)
      (Fsm.actions fsm ~state:cycle)
  done;
  if Hashtbl.length pending <> 0 then
    failwith "Sim.run: operations still in flight after the last state";
  (List.rev !outputs, List.rev !log)

let check_against_eval binding ~env =
  let g = Schedule.graph binding.Binding.schedule in
  let expected = Eval.outputs g env in
  let actual, _ = run binding ~env in
  let sort = List.sort compare in
  if sort expected = sort actual then Ok ()
  else
    Error
      (Printf.sprintf "simulation mismatch: expected {%s} got {%s}"
         (String.concat "; "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
               (sort expected)))
         (String.concat "; "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
               (sort actual))))
