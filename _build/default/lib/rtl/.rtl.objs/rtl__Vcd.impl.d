lib/rtl/vcd.ml: Array Binding Buffer Bytes Char Graph Import List Op Printf Schedule Sim String
