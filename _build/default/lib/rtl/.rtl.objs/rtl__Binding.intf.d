lib/rtl/binding.mli: Graph Import Regbind Resources Schedule Threaded_graph
