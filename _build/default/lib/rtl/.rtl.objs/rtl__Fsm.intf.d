lib/rtl/fsm.mli: Binding Format Graph Import
