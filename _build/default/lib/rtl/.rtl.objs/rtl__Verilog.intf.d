lib/rtl/verilog.mli: Binding Import
