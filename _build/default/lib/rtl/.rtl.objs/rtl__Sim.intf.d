lib/rtl/sim.mli: Binding Eval Graph Import
