lib/rtl/fsm.ml: Array Binding Dfg Format Graph Import List Printf Schedule
