lib/rtl/import.ml: Dfg Hard Refine Soft
