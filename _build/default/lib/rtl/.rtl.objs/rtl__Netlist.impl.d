lib/rtl/netlist.ml: Binding Format Graph Hashtbl Import List Op Option Printf Resources Schedule
