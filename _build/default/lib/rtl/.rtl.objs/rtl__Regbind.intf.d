lib/rtl/regbind.mli: Import Regalloc Schedule Threaded_graph
