lib/rtl/verilog.ml: Binding Buffer Graph Import List Op Printf Schedule Sim String
