lib/rtl/vcd.mli: Binding Eval Import
