lib/rtl/netlist.mli: Binding Format Import Resources
