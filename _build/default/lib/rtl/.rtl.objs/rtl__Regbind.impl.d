lib/rtl/regbind.ml: Dfg Graph Import Lifetime List Regalloc Schedule Threaded_graph
