lib/rtl/sim.ml: Array Binding Eval Fsm Graph Hashtbl Import List Op Printf Schedule String
