lib/rtl/binding.ml: Buffer Fun Graph Hashtbl Import List Op Printf Regalloc Regbind Resources Schedule String Threaded_graph
