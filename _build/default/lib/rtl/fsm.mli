open Import

(** The controller: a Moore FSM with one state per control step,
    issuing operations and latching results. *)

type action =
  | Issue of Graph.vertex
      (** operation starts: operands are read/latched this cycle *)
  | Writeback of Graph.vertex
      (** operation's result is committed entering this cycle *)

type t

val of_binding : Binding.t -> t

val n_states : t -> int
(** Schedule length; states are [0 .. n_states - 1]. *)

val actions : t -> state:int -> action list
(** Writebacks first, then issues, each group in topological order of
    the dataflow graph — the in-cycle ordering a zero-delay chain
    needs. [state = n_states] is allowed and carries the final
    writebacks plus any zero-delay output markers sampling them. *)

val pp : Format.formatter -> t -> unit
(** One line per state listing its control word. *)
