
(** Behavioral-RTL Verilog emission of the bound design: one module
    with a state-counter controller, the shared functional units'
    operand latches, the left-edge-allocated register file and the
    spill memory.

    State mapping: Verilog state 0 samples the input ports into their
    registers; state [s] executes control step [s - 1]; [done] rises
    with the last state. Every operation must have delay ≥ 1 except the
    [Input]/[Const]/[Output] pseudo-ops (zero-delay arithmetic would
    need combinational chaining across registers, which this emitter
    deliberately does not model). *)

val emit : ?module_name:string -> ?width:int -> Binding.t -> string
(** @raise Invalid_argument on a zero-delay resource operation or an
    unbound value. [width] defaults to 32 bits, [module_name] to
    ["design"]. *)

val port_names : Binding.t -> string list * string list
(** [(inputs, outputs)] port base names, in vertex order. *)

val emit_testbench :
  ?module_name:string -> ?width:int -> Binding.t -> env:Import.Eval.env ->
  string
(** A self-checking testbench: drives [env] into the design, waits for
    [done], compares every output against the cycle-accurate
    simulator's prediction and prints PASS/FAIL. Runs under any
    IEEE-1364 simulator ([iverilog tb.v design.v && ./a.out]).
    @raise Not_found for a missing input value. *)
