open Import

(** Binding: operations to functional-unit instances, values to
    registers — the microarchitecture half of "HLS computes a datapath
    and a controller".

    The threaded scheduling state hands over functional-unit binding
    for free: thread k {e is} unit k (the paper: "each thread
    corresponds to one functional unit in the datapath"). Register
    binding is left-edge over the extracted hard schedule. *)

type source =
  | From_register of int
  | From_constant of int
  | From_memory of int  (** spill slot a [Load] reads *)

type t = {
  schedule : Schedule.t;
  fu_of_op : (Graph.vertex * int) list;
      (** operation -> unit instance (thread index); resource-free ops
          are absent *)
  fu_class : int -> Resources.fu_class;
  n_fus : int;
  register_of_value : (Graph.vertex * int) list;
      (** producer -> register; constants/stores/outputs absent *)
  n_registers : int;
  memory_slot : (Graph.vertex * int) list;
      (** [Store] vertex -> spill slot *)
}

val of_state : ?register_policy:Regbind.policy -> Threaded_graph.t -> t
(** @raise Invalid_argument unless the state is fully scheduled.
    [register_policy] defaults to [`Left_edge]; see {!Regbind}. *)

val fu_of : t -> Graph.vertex -> int option
val register_of : t -> Graph.vertex -> int option
val slot_of_store : t -> Graph.vertex -> int option

val operand_sources : t -> Graph.vertex -> source list
(** Where each operand of an operation is read from, in operand order. *)

val mux_width : t -> fu:int -> port:int -> int
(** Number of distinct sources arriving at an input port of a unit —
    the multiplexer size the interconnect needs. [port] is 0-based. *)

val summary : t -> string
(** Human-readable datapath inventory. *)
