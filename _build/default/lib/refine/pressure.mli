open Import

(** Register-pressure-aware hard-schedule extraction.

    The soft state leaves slack: any start times consistent with its
    partial order are a legal hard schedule, and both plain extractions
    are poor for registers (ASAP computes values as early as possible,
    ALAP postpones value {e kills} — spill stores included — as long as
    possible). This pass sweeps forward cycle by cycle and places a
    ready operation early only when doing so frees at least as many
    registers as it occupies (it is the last consumer of some live
    value); everything else waits for its ALAP deadline. The result
    always has length = state diameter and respects the thread
    serialisation, i.e. the resource bounds. *)

val extract : Threaded_graph.t -> Schedule.t
(** @raise Invalid_argument unless the state is fully scheduled. *)

val max_pressure_of_state : Threaded_graph.t -> int
(** [Lifetime.max_pressure (extract state)] — the register requirement
    the refinement loop steers by. *)
