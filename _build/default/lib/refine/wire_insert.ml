open Import

type report = {
  inserted : Graph.vertex list;
  total_wire_cycles : int;
}

let is_wire g v = match Graph.op g v with Op.Wire -> true | _ -> false

let apply state floorplan model =
  let g = Threaded_graph.graph state in
  let edges = Graph.edges g in
  let inserted = ref [] in
  let total = ref 0 in
  List.iter
    (fun (p, q) ->
      if not (is_wire g p || is_wire g q) then
        match
          Threaded_graph.thread_of state p, Threaded_graph.thread_of state q
        with
        | Some tp, Some tq when tp <> tq ->
          let delay = Floorplan.wire_delay floorplan model ~src:tp ~dst:tq in
          if delay > 0 then begin
            let w =
              Mutate.insert_on_edge g ~src:p ~dst:q ~op:Op.Wire ~delay
                ~name:(Printf.sprintf "wd_%s_%s" (Graph.name g p)
                         (Graph.name g q))
                ()
            in
            Threaded_graph.schedule state w;
            inserted := w :: !inserted;
            total := !total + delay
          end
        | _ -> ())
    edges;
  { inserted = List.rev !inserted; total_wire_cycles = !total }

type comparison = {
  original_csteps : int;
  soft_csteps : int;
  pessimistic_csteps : int;
}

let compare_strategies ~resources ~meta ?(model = Floorplan.default_model)
    graph =
  let g = Graph.copy graph in
  let state = Scheduler.run ~meta ~resources g in
  let original_csteps = Schedule.length (Threaded_graph.to_schedule state) in
  let floorplan = Floorplan.place state in
  let _report = apply state floorplan model in
  let soft_csteps = Schedule.length (Threaded_graph.to_schedule state) in
  (* Pessimistic alternative: without knowing the binding, every data
     edge between two unit-bound operations must be padded with the
     worst-case interconnect delay. *)
  let worst = Floorplan.worst_case_delay floorplan model in
  let pessimistic_csteps =
    if worst = 0 then original_csteps
    else begin
      let gp = Graph.copy graph in
      let unit_bound v =
        Graph.delay gp v > 0
        && Resources.class_of_op (Graph.op gp v) <> None
      in
      List.iter
        (fun (p, q) ->
          if unit_bound p && unit_bound q then
            ignore
              (Mutate.insert_on_edge gp ~src:p ~dst:q ~op:Op.Wire ~delay:worst
                 ()))
        (Graph.edges gp);
      Schedule.length (Scheduler.run_to_schedule ~meta ~resources gp)
    end
  in
  { original_csteps; soft_csteps; pessimistic_csteps }
