open Import

(** Value lifetimes of a hard schedule.

    The value produced by an operation is born when the operation
    finishes and dies when its last consumer starts (values feeding
    [Op.Output] markers stay alive to the end of the schedule). The
    per-cycle count of simultaneously live values is the register
    requirement that couples scheduling with register allocation
    (Section 1, first scenario). *)

type interval = {
  producer : Graph.vertex;
  birth : int;  (** first cycle during which the value must be held *)
  death : int;  (** exclusive: the value is dead from this cycle on *)
}

val produces_register_value : Graph.t -> Graph.vertex -> bool
(** Whether the vertex's result occupies a register: false for
    constants (hardwired), stores (memory), output markers and dead
    values. *)

val intervals : Schedule.t -> interval list
(** One interval per vertex that has at least one data consumer or an
    output marker; ops with zero-width lifetimes are omitted. Sorted by
    birth (then producer id). *)

val pressure : Schedule.t -> int array
(** Live-value count per cycle. *)

val max_pressure : Schedule.t -> int
(** Registers needed to hold every value in the datapath. *)

val live_at : Schedule.t -> cycle:int -> Graph.vertex list
(** Producers whose values are live during [cycle]. *)
