open Import

let insert_on_edge state ~src ~dst ~op ?delay () =
  let g = Threaded_graph.graph state in
  let w = Mutate.insert_on_edge g ~src ~dst ~op ?delay () in
  Threaded_graph.schedule state w;
  w

let add_consumer state ~inputs ~op ?delay ?name () =
  if List.length inputs <> Op.arity op then
    invalid_arg
      (Printf.sprintf "Eco.add_consumer: %s expects %d inputs, got %d"
         (Op.to_string op) (Op.arity op) (List.length inputs));
  let g = Threaded_graph.graph state in
  let v = Graph.add_vertex g ?delay ?name op in
  List.iter (fun p -> Graph.add_edge g p v) inputs;
  Threaded_graph.schedule state v;
  v

let diameter_growth ~resources ~meta ~change graph =
  let g = Graph.copy graph in
  let state = Scheduler.run ~meta ~resources g in
  let before = Schedule.length (Threaded_graph.to_schedule state) in
  change state;
  let after = Schedule.length (Threaded_graph.to_schedule state) in
  (before, after)
