open Import

(** Register allocation over a hard schedule: the left-edge algorithm
    plus spill selection when the datapath has fewer registers than the
    peak value pressure — the first phase-coupling scenario of
    Section 1. *)

type allocation = {
  assignment : (Graph.vertex * int) list;
      (** producer -> register index, for every register value *)
  n_registers : int;  (** registers actually used *)
  spilled : Graph.vertex list;
      (** producers whose values were pushed to background memory *)
}

val left_edge : Schedule.t -> allocation
(** Classic left-edge packing, no spilling ([spilled = []]);
    [n_registers] equals the peak pressure (left-edge is optimal for
    interval graphs). *)

val with_limit : registers:int -> Schedule.t -> allocation
(** Left-edge under a register budget. When an interval does not fit,
    the live value with the furthest next use is spilled (Belady's
    heuristic) and excluded from register packing. The caller is
    expected to materialise the spills with {!Spill.apply} and refine
    the schedule. @raise Invalid_argument if [registers < 1]. *)

val verify : allocation -> Schedule.t -> (unit, string) result
(** No two overlapping intervals share a register; every register value
    is either assigned or spilled. *)
