open Import

(** Engineering changes on a live schedule (the paper's conclusion:
    results "can be refined and are hence immune to … engineering
    changes"). An ECO adds operations to an already-scheduled design;
    the soft state absorbs them through the ordinary online scheduler,
    no re-scheduling pass required. *)

val insert_on_edge :
  Threaded_graph.t -> src:Graph.vertex -> dst:Graph.vertex -> op:Op.t ->
  ?delay:int -> unit -> Graph.vertex
(** Splice a new operation into an existing data edge (e.g. add a
    saturation or scaling step) and schedule it immediately. *)

val add_consumer :
  Threaded_graph.t -> inputs:Graph.vertex list -> op:Op.t ->
  ?delay:int -> ?name:string -> unit -> Graph.vertex
(** Add a brand-new operation consuming existing values (e.g. a debug
    tap or a checksum) and schedule it. @raise Invalid_argument if
    [inputs] does not match the op's arity. *)

val diameter_growth :
  resources:Resources.t -> meta:Meta.t ->
  change:(Threaded_graph.t -> unit) -> Graph.t -> int * int
(** [(before, after)] control steps around an arbitrary change applied
    to a freshly scheduled copy — the measurement used by the ECO
    bench. *)
