lib/refine/floorplan.ml: Array Fun Graph Import List Threaded_graph
