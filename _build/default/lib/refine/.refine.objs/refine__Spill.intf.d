lib/refine/spill.mli: Graph Import Meta Resources Threaded_graph
