lib/refine/pressure.ml: Array Graph Import Lifetime List Paths Schedule Threaded_graph
