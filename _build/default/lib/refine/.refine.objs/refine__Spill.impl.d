lib/refine/spill.ml: Array Fun Graph Import Lifetime List Mutate Op Pressure Printf Resources Schedule Scheduler Threaded_graph
