lib/refine/eco.mli: Graph Import Meta Op Resources Threaded_graph
