lib/refine/import.ml: Dfg Hard Soft
