lib/refine/eco.ml: Graph Import List Mutate Op Printf Schedule Scheduler Threaded_graph
