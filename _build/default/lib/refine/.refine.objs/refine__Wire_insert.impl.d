lib/refine/wire_insert.ml: Floorplan Graph Import List Mutate Op Printf Resources Schedule Scheduler Threaded_graph
