lib/refine/wire_insert.mli: Floorplan Graph Import Meta Resources Threaded_graph
