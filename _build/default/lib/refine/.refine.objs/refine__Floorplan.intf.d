lib/refine/floorplan.mli: Import Threaded_graph
