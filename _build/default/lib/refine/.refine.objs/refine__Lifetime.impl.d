lib/refine/lifetime.ml: Array Graph Import List Op Schedule
