lib/refine/regalloc.ml: Graph Import Lifetime List Printf Schedule
