lib/refine/lifetime.mli: Graph Import Schedule
