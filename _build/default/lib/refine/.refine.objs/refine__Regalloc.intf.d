lib/refine/regalloc.mli: Graph Import Schedule
