lib/refine/pressure.mli: Import Schedule Threaded_graph
