open Import

type allocation = {
  assignment : (Graph.vertex * int) list;
  n_registers : int;
  spilled : Graph.vertex list;
}

(* Left-edge: sweep intervals by birth; give each the smallest register
   whose previous occupant has died. *)
let pack intervals =
  let sorted =
    List.sort
      (fun (a : Lifetime.interval) b ->
        compare (a.birth, a.producer) (b.birth, b.producer))
      intervals
  in
  let free_at = ref [] in (* register -> cycle it becomes free *)
  let assignment = ref [] in
  List.iter
    (fun (iv : Lifetime.interval) ->
      let rec find idx = function
        | (r, free) :: rest ->
          if free <= iv.birth then Some r
          else begin
            ignore idx;
            find (idx + 1) rest
          end
        | [] -> None
      in
      let sorted_regs =
        List.sort (fun (a, _) (b, _) -> compare a b) !free_at
      in
      let reg =
        match find 0 sorted_regs with
        | Some r -> r
        | None -> List.length !free_at
      in
      free_at := (reg, iv.death) :: List.remove_assoc reg !free_at;
      assignment := (iv.producer, reg) :: !assignment)
    sorted;
  {
    assignment = List.rev !assignment;
    n_registers = List.length !free_at;
    spilled = [];
  }

let left_edge schedule = pack (Lifetime.intervals schedule)

let with_limit ~registers schedule =
  if registers < 1 then invalid_arg "Regalloc.with_limit: need a register";
  let intervals = Lifetime.intervals schedule in
  (* Sweep cycles; wherever pressure exceeds the budget, spill the live
     value whose next use is furthest (approximated by interval death,
     i.e. last use). Inputs of ongoing operations are kept. *)
  let spilled = ref [] in
  let alive (iv : Lifetime.interval) cycle =
    iv.birth <= cycle && cycle < iv.death
    && not (List.mem iv.producer !spilled)
  in
  let horizon = Schedule.length schedule + 1 in
  for cycle = 0 to horizon - 1 do
    let live = List.filter (fun iv -> alive iv cycle) intervals in
    let excess = List.length live - registers in
    if excess > 0 then begin
      let by_death =
        List.sort
          (fun (a : Lifetime.interval) b ->
            compare (-a.death, a.producer) (-b.death, b.producer))
          live
      in
      let rec take n = function
        | iv :: rest when n > 0 ->
          spilled := iv.Lifetime.producer :: !spilled;
          take (n - 1) rest
        | _ -> ()
      in
      take excess by_death
    end
  done;
  let kept =
    List.filter
      (fun (iv : Lifetime.interval) -> not (List.mem iv.producer !spilled))
      intervals
  in
  let packed = pack kept in
  { packed with spilled = List.rev !spilled }

let verify allocation schedule =
  let intervals = Lifetime.intervals schedule in
  let find_interval v =
    List.find_opt (fun (iv : Lifetime.interval) -> iv.producer = v) intervals
  in
  let overlap (a : Lifetime.interval) (b : Lifetime.interval) =
    a.birth < b.death && b.birth < a.death
  in
  let bad = ref None in
  let record m = if !bad = None then bad := Some m in
  (* Coverage. *)
  List.iter
    (fun (iv : Lifetime.interval) ->
      let assigned = List.mem_assoc iv.producer allocation.assignment in
      let spilled = List.mem iv.producer allocation.spilled in
      if not (assigned || spilled) then
        record (Printf.sprintf "value of vertex %d unplaced" iv.producer))
    intervals;
  (* No overlapping co-residents. *)
  List.iter
    (fun (v1, r1) ->
      List.iter
        (fun (v2, r2) ->
          if v1 < v2 && r1 = r2 then
            match find_interval v1, find_interval v2 with
            | Some a, Some b when overlap a b ->
              record
                (Printf.sprintf "register %d holds overlapping values %d and %d"
                   r1 v1 v2)
            | _ -> ())
        allocation.assignment)
    allocation.assignment;
  match !bad with None -> Ok () | Some m -> Error m
