open Import

(** A toy floorplanner standing in for place & route — the substrate of
    the second phase-coupling scenario (Section 1): interconnect delay
    can only be known after placement, which is only possible after
    scheduling/binding.

    Each thread of a scheduled state is one functional unit; units are
    placed on a unit grid to minimise (greedily) the Manhattan length of
    the busiest unit-to-unit connections, and a linear model converts
    wire length to whole-cycle interconnect delays. *)

type t

val place : Threaded_graph.t -> t
(** Greedy placement: units sorted by total traffic (number of
    cross-thread data edges) are assigned to grid cells spiralling out
    from the centre, heaviest first. Deterministic. *)

val position : t -> int -> int * int
(** Grid coordinates of a thread/unit. *)

val distance : t -> int -> int -> int
(** Manhattan distance between two units. *)

type delay_model = { cells_per_cycle : int }
(** A signal crosses [cells_per_cycle] grid cells per clock; crossing
    fewer costs nothing (it fits in the producing cycle's slack). *)

val default_model : delay_model
(** [{ cells_per_cycle = 1 }] — every unit of distance beyond a
    neighbouring cell costs a cycle; deliberately harsh so the deep-
    submicron effect is visible on small benchmarks. *)

val wire_delay : t -> delay_model -> src:int -> dst:int -> int
(** Whole cycles of interconnect delay between two units:
    [max 0 ((distance - 1) / cells_per_cycle)]. Zero for same-unit. *)

val worst_case_delay : t -> delay_model -> int
(** Max {!wire_delay} over all unit pairs — what a pessimistic hard
    scheduler would have to assume for every transfer. *)

val traffic : Threaded_graph.t -> (int * int) -> int
(** Number of data-flow edges between the two threads' operations (in
    either direction) — the weight the placer minimises. *)
