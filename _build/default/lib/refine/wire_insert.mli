open Import

(** Interconnect-delay refinement — Figure 1 (d)/(e).

    After the floorplanner has placed the functional units, every data
    transfer between two distant units costs extra cycles. A hard
    scheduler must either have assumed the worst everywhere or be
    re-run; the soft scheduler inserts a [Wire] pseudo-operation on each
    affected data edge and keeps going. *)

type report = {
  inserted : Graph.vertex list;  (** the wire-delay vertices added *)
  total_wire_cycles : int;
}

val apply :
  Threaded_graph.t -> Floorplan.t -> Floorplan.delay_model -> report
(** For every data edge whose producer and consumer sit on different
    units at non-trivial distance, splice a [Wire] vertex with the
    modelled delay into the graph and schedule it (free — wires are not
    shared resources). Idempotent: already-inserted wire vertices are
    not re-refined. *)

type comparison = {
  original_csteps : int;  (** ignoring interconnect, as traditional HLS *)
  soft_csteps : int;  (** after soft wire-delay refinement *)
  pessimistic_csteps : int;
      (** every cross-unit transfer assumed to cost the worst-case
          delay, the "pessimistic estimate" escape of Section 1 *)
}

val compare_strategies :
  resources:Resources.t -> meta:Meta.t -> ?model:Floorplan.delay_model ->
  Graph.t -> comparison
(** Full experiment on a fresh copy of [graph]: schedule ignoring
    wires, place, then (a) refine softly with actual delays and (b)
    rebuild a schedule where every cross-unit edge carries the worst-
    case delay. *)
