open Import

(** Spill-code refinement — Figure 1 (c)/(e).

    Spilling a value inserts a [Store] and a [Load] and rewires the
    consumers; with a hard scheduler that invalidates the schedule, with
    the soft scheduler the two new operations are simply fed to the
    online algorithm and the partial order absorbs them. *)

val apply :
  ?consumers:Graph.vertex list -> Threaded_graph.t ->
  value:Graph.vertex -> Graph.vertex * Graph.vertex
(** Mutates the underlying graph ({!Dfg.Mutate.insert_spill}) and
    schedules the new store/load into the state's memory thread(s).
    Returns [(store, load)]. [consumers] restricts which readers are
    rewired to the reload (default: all of them) — real spill code
    reloads only past the pressure region, keeping earlier readers on
    the register. @raise Invalid_argument if no consumer is rewired,
    or if the state has no memory thread. *)

val until_fits :
  registers:int -> Threaded_graph.t ->
  (Graph.vertex * Graph.vertex * Graph.vertex) list
(** Close the scheduling/register-allocation loop: while the extracted
    schedule needs more than [registers] registers, spill the live
    value with the longest remaining lifetime ({!Regalloc.with_limit}'s
    choice) and refine the state online; repeat. Returns
    [(value, store, load)] per spill, in order.
    @raise Invalid_argument if [registers < 1] or if the budget is
    unreachable (no spillable value remains). *)

type comparison = {
  original_csteps : int;  (** before the spill *)
  soft_csteps : int;  (** after soft refinement of the live state *)
  resched_csteps : int;
      (** full hard re-scheduling of the mutated graph from scratch —
          the expensive "iterate the entire design process" escape the
          paper wants to avoid *)
}

val compare_strategies :
  resources:Resources.t -> meta:Meta.t -> values:Graph.vertex list ->
  Graph.t -> comparison
(** Runs the whole experiment on a fresh copy of [graph]: schedule,
    spill [values] one by one with soft refinement, and independently
    re-schedule the mutated graph from scratch. *)
