open Import

type t = { positions : (int * int) array }

type delay_model = { cells_per_cycle : int }

let default_model = { cells_per_cycle = 1 }

let traffic state (ka, kb) =
  let g = Threaded_graph.graph state in
  let count = ref 0 in
  Graph.iter_edges
    (fun u v ->
      match Threaded_graph.thread_of state u, Threaded_graph.thread_of state v with
      | Some tu, Some tv
        when (tu = ka && tv = kb) || (tu = kb && tv = ka) ->
        incr count
      | _ -> ())
    g;
  !count

(* Grid cells ordered by distance from the origin cell (0,0): a spiral
   of increasing Manhattan rings, deterministic. *)
let spiral_cells n =
  let cells = ref [] in
  let radius = ref 0 in
  while List.length !cells < n do
    let r = !radius in
    for x = -r to r do
      let y = r - abs x in
      if abs x + abs y = r then begin
        cells := (x, y) :: !cells;
        if y <> 0 then cells := (x, -y) :: !cells
      end
    done;
    incr radius
  done;
  let sorted =
    List.sort
      (fun (xa, ya) (xb, yb) ->
        compare (abs xa + abs ya, xa, ya) (abs xb + abs yb, xb, yb))
      !cells
  in
  Array.of_list sorted

let place state =
  let k = Threaded_graph.n_threads state in
  let total_traffic k0 =
    let sum = ref 0 in
    for k1 = 0 to k - 1 do
      if k1 <> k0 then sum := !sum + traffic state (k0, k1)
    done;
    !sum
  in
  let order =
    List.sort
      (fun a b -> compare (-total_traffic a, a) (-total_traffic b, b))
      (List.init k Fun.id)
  in
  let cells = spiral_cells (max k 1) in
  let positions = Array.make (max k 1) (0, 0) in
  List.iteri (fun i unit -> positions.(unit) <- cells.(i)) order;
  { positions }

let position t unit =
  if unit < 0 || unit >= Array.length t.positions then
    invalid_arg "Floorplan.position: unknown unit";
  t.positions.(unit)

let distance t a b =
  let xa, ya = position t a and xb, yb = position t b in
  abs (xa - xb) + abs (ya - yb)

let wire_delay t model ~src ~dst =
  if src = dst then 0
  else begin
    if model.cells_per_cycle < 1 then
      invalid_arg "Floorplan.wire_delay: degenerate delay model";
    max 0 ((distance t src dst - 1) / model.cells_per_cycle)
  end

let worst_case_delay t model =
  let k = Array.length t.positions in
  let worst = ref 0 in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if a <> b then worst := max !worst (wire_delay t model ~src:a ~dst:b)
    done
  done;
  !worst
