open Import

let destination_of binding g v =
  match Graph.op g v with
  | Op.Store ->
    (match Binding.slot_of_store binding v with
    | Some slot -> Isa.To_mem slot
    | None -> invalid_arg "Vliw.Emit: store without a memory slot")
  | Op.Output name -> Isa.To_port name
  | _ ->
    (match Binding.register_of binding v with
    | Some r -> Isa.To_reg r
    | None -> Isa.Discard)

let source_of = function
  | Binding.From_register r -> Isa.Reg r
  | Binding.From_constant n -> Isa.Imm n
  | Binding.From_memory slot -> Isa.Mem slot

let run binding =
  let schedule = binding.Binding.schedule in
  let g = Schedule.graph schedule in
  Graph.iter_vertices
    (fun v ->
      match Graph.op g v with
      | Op.Input _ | Op.Const _ | Op.Output _ -> ()
      | op ->
        if Graph.delay g v = 0 then
          invalid_arg
            (Printf.sprintf "Vliw.Emit: zero-delay operation %s (%s)"
               (Graph.name g v) (Op.to_string op)))
    g;
  let total = Schedule.length schedule + 2 in
  (* bundle 0 = port loads; control step c = bundle c + 1 *)
  let bundles = Array.make total [] in
  let io_next = Array.make total 0 in
  let n_fus = binding.Binding.n_fus in
  let issue cycle instruction =
    bundles.(cycle) <- bundles.(cycle) @ [ instruction ]
  in
  let io_slot cycle =
    let s = n_fus + io_next.(cycle) in
    io_next.(cycle) <- io_next.(cycle) + 1;
    s
  in
  Graph.iter_vertices
    (fun v ->
      let op = Graph.op g v in
      match op with
      | Op.Const _ -> ()
      | Op.Input name ->
        issue 0
          {
            Isa.slot = io_slot 0;
            op;
            latency = 1;
            dst = destination_of binding g v;
            srcs = [ Isa.Port name ];
          }
      | Op.Output _ ->
        let cycle = Schedule.start schedule v + 1 in
        issue cycle
          {
            Isa.slot = io_slot cycle;
            op;
            latency = 1;
            dst = destination_of binding g v;
            srcs = List.map source_of (Binding.operand_sources binding v);
          }
      | op ->
        let cycle = Schedule.start schedule v + 1 in
        let slot =
          match Binding.fu_of binding v with
          | Some fu -> fu
          | None -> io_slot cycle (* free op (wire/move pass-through) *)
        in
        issue cycle
          {
            Isa.slot;
            op;
            latency = Graph.delay g v;
            dst = destination_of binding g v;
            srcs = List.map source_of (Binding.operand_sources binding v);
          })
    g;
  let io_width = Array.fold_left max 0 io_next in
  let inputs, outputs = Rtl.Verilog.port_names binding in
  {
    Isa.n_slots = n_fus + io_width;
    n_registers = max binding.Binding.n_registers 1;
    n_mem_slots = List.length binding.Binding.memory_slot;
    bundles;
    inputs;
    outputs;
  }
