open Import

(** Executable semantics of the VLIW target: a register file, the spill
    memory and in-flight latency tracking. The check that matters:
    executing the {e emitted text} reproduces the dataflow semantics of
    the source graph. *)

val run : Isa.program -> env:Eval.env -> (string * int) list
(** Output-port values after the last bundle drains.
    @raise Not_found for a missing input port value.
    @raise Failure on a structural error during execution (e.g. a
    write-after-write collision in the same cycle). *)

val check_against_graph :
  Isa.program -> Graph.t -> env:Eval.env -> (unit, string) result
