open Import

let run (p : Isa.program) ~env =
  let registers = Array.make (max p.Isa.n_registers 1) 0 in
  let memory = Array.make (max p.Isa.n_mem_slots 1) 0 in
  let ports = Hashtbl.create 8 in
  (* (cycle -> pending commits) *)
  let pending : (int, (Isa.destination * int) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let queue_write cycle dst value =
    let existing =
      match Hashtbl.find_opt pending cycle with Some l -> l | None -> []
    in
    Hashtbl.replace pending cycle ((dst, value) :: existing)
  in
  let commit cycle =
    match Hashtbl.find_opt pending cycle with
    | None -> ()
    | Some writes ->
      Hashtbl.remove pending cycle;
      (* detect same-destination collisions in one cycle *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (dst, value) ->
          (match dst with
          | Isa.To_reg r | Isa.To_mem r ->
            let key = (dst = Isa.To_mem r, r) in
            if Hashtbl.mem seen key then
              failwith "Vliw.Sim: write collision";
            Hashtbl.replace seen key ()
          | _ -> ());
          match dst with
          | Isa.To_reg r -> registers.(r) <- value
          | Isa.To_mem m -> memory.(m) <- value
          | Isa.To_port name -> Hashtbl.replace ports name value
          | Isa.Discard -> ())
        writes
  in
  let read = function
    | Isa.Reg r -> registers.(r)
    | Isa.Imm n -> n
    | Isa.Mem m -> memory.(m)
    | Isa.Port name -> List.assoc name env
  in
  let horizon =
    Array.length p.Isa.bundles
    + Array.fold_left
        (fun acc bundle ->
          List.fold_left (fun acc i -> max acc i.Isa.latency) acc bundle)
        1 p.Isa.bundles
  in
  for cycle = 0 to horizon do
    commit cycle;
    if cycle < Array.length p.Isa.bundles then
      List.iter
        (fun (i : Isa.instruction) ->
          let value =
            match i.Isa.op, i.Isa.srcs with
            | Op.Input name, _ -> List.assoc name env
            | Op.Output _, [ src ] -> read src
            | op, srcs -> Op.eval op (List.map read srcs)
          in
          queue_write (cycle + i.Isa.latency) i.Isa.dst value)
        p.Isa.bundles.(cycle)
  done;
  List.filter_map
    (fun name ->
      Option.map (fun v -> (name, v)) (Hashtbl.find_opt ports name))
    p.Isa.outputs

let check_against_graph p g ~env =
  let expected = List.sort compare (Eval.outputs g env) in
  let actual = List.sort compare (run p ~env) in
  if expected = actual then Ok ()
  else
    Error
      (Printf.sprintf "vliw mismatch: expected {%s} got {%s}"
         (String.concat "; "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) expected))
         (String.concat "; "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) actual)))
