lib/vliw/asm.ml: Array Buffer Hashtbl Import Isa List Op Printf String
