lib/vliw/sim.ml: Array Eval Hashtbl Import Isa List Op Option Printf String
