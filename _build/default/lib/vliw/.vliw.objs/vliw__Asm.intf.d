lib/vliw/asm.mli: Isa
