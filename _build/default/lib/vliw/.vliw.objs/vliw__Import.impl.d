lib/vliw/import.ml: Dfg Hard Rtl
