lib/vliw/isa.mli: Import Op
