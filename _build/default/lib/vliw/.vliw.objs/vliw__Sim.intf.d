lib/vliw/sim.mli: Eval Graph Import Isa
