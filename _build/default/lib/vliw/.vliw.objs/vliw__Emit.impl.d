lib/vliw/emit.ml: Array Binding Graph Import Isa List Op Printf Rtl Schedule
