lib/vliw/isa.ml: Array Hashtbl Import List Op Printf
