lib/vliw/emit.mli: Binding Import Isa
