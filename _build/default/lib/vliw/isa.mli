open Import

(** A small VLIW target.

    Section 1 of the paper names "VLIW code generation" as a domain
    with the same phase-coupling disease; this backend closes the loop:
    a scheduled + bound design becomes a bundle program — one bundle
    per control step, one issue slot per functional unit — with a
    textual assembly syntax and an executable semantics. *)

type operand =
  | Reg of int
  | Imm of int
  | Mem of int  (** spill slot *)
  | Port of string  (** input port, read at issue *)

type destination =
  | To_reg of int
  | To_mem of int
  | To_port of string  (** output port *)
  | Discard  (** dead value *)

type instruction = {
  slot : int;  (** issue slot = functional-unit index *)
  op : Op.t;
  latency : int;  (** cycles until the destination is written *)
  dst : destination;
  srcs : operand list;
}

type bundle = instruction list
(** All instructions issued in one cycle; at most one per slot. *)

type program = {
  n_slots : int;
  n_registers : int;
  n_mem_slots : int;
  bundles : bundle array;
  inputs : string list;
  outputs : string list;
}

val validate : program -> (unit, string) result
(** Structural checks: slot indices in range and unique per bundle,
    register/memory indices in range, operand counts match op arity
    (output moves are unary), latencies positive for real ops. *)

val n_instructions : program -> int

val slot_utilisation : program -> float
(** Fraction of (bundle × slot) positions actually issuing — the
    classic VLIW density metric. *)
