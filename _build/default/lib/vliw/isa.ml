open Import

type operand =
  | Reg of int
  | Imm of int
  | Mem of int
  | Port of string

type destination =
  | To_reg of int
  | To_mem of int
  | To_port of string
  | Discard

type instruction = {
  slot : int;
  op : Op.t;
  latency : int;
  dst : destination;
  srcs : operand list;
}

type bundle = instruction list

type program = {
  n_slots : int;
  n_registers : int;
  n_mem_slots : int;
  bundles : bundle array;
  inputs : string list;
  outputs : string list;
}

let validate p =
  let problem = ref None in
  let record m = if !problem = None then problem := Some m in
  Array.iteri
    (fun cycle bundle ->
      let seen_slots = Hashtbl.create 8 in
      List.iter
        (fun i ->
          if i.slot < 0 || i.slot >= p.n_slots then
            record (Printf.sprintf "cycle %d: slot %d out of range" cycle i.slot);
          if Hashtbl.mem seen_slots i.slot then
            record (Printf.sprintf "cycle %d: slot %d double-issued" cycle i.slot);
          Hashtbl.replace seen_slots i.slot ();
          if i.latency < 1 then
            record (Printf.sprintf "cycle %d: non-positive latency" cycle);
          let expected =
            match i.op with
            | Op.Output _ -> 1 (* the value routed to the port *)
            | Op.Input _ -> 1 (* the port being sampled *)
            | op -> Op.arity op
          in
          if List.length i.srcs <> expected then
            record
              (Printf.sprintf "cycle %d: %s wants %d operands, has %d" cycle
                 (Op.to_string i.op) expected (List.length i.srcs));
          List.iter
            (fun operand ->
              match operand with
              | Reg r ->
                if r < 0 || r >= p.n_registers then
                  record (Printf.sprintf "cycle %d: register %d out of range" cycle r)
              | Mem m ->
                if m < 0 || m >= p.n_mem_slots then
                  record (Printf.sprintf "cycle %d: mem slot %d out of range" cycle m)
              | Imm _ -> ()
              | Port name ->
                if not (List.mem name p.inputs) then
                  record (Printf.sprintf "cycle %d: unknown port %s" cycle name))
            i.srcs;
          match i.dst with
          | To_reg r ->
            if r < 0 || r >= p.n_registers then
              record (Printf.sprintf "cycle %d: dst register %d out of range" cycle r)
          | To_mem m ->
            if m < 0 || m >= p.n_mem_slots then
              record (Printf.sprintf "cycle %d: dst mem %d out of range" cycle m)
          | To_port name ->
            if not (List.mem name p.outputs) then
              record (Printf.sprintf "cycle %d: unknown output port %s" cycle name)
          | Discard -> ())
        bundle)
    p.bundles;
  match !problem with None -> Ok () | Some m -> Error m

let n_instructions p =
  Array.fold_left (fun acc b -> acc + List.length b) 0 p.bundles

let slot_utilisation p =
  let cells = p.n_slots * Array.length p.bundles in
  if cells = 0 then 0.0
  else float_of_int (n_instructions p) /. float_of_int cells
