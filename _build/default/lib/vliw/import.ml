module Graph = Dfg.Graph
module Op = Dfg.Op
module Eval = Dfg.Eval
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module Binding = Rtl.Binding
module Fsm = Rtl.Fsm
