open Import

exception Parse_error of string

let operand_to_string = function
  | Isa.Reg r -> Printf.sprintf "r%d" r
  | Isa.Imm n -> Printf.sprintf "#%d" n
  | Isa.Mem m -> Printf.sprintf "m%d" m
  | Isa.Port p -> "$" ^ p

let destination_to_string = function
  | Isa.To_reg r -> Printf.sprintf "r%d" r
  | Isa.To_mem m -> Printf.sprintf "m%d" m
  | Isa.To_port p -> p
  | Isa.Discard -> "_"

let print (p : Isa.program) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line ".slots %d" p.Isa.n_slots;
  line ".registers %d" p.Isa.n_registers;
  line ".mem %d" p.Isa.n_mem_slots;
  line ".inputs %s" (String.concat " " p.Isa.inputs);
  line ".outputs %s" (String.concat " " p.Isa.outputs);
  Array.iteri
    (fun cycle bundle ->
      if bundle <> [] then begin
        line "cycle %d:" cycle;
        List.iter
          (fun (i : Isa.instruction) ->
            line "  s%d: %s <- %s %s @%d" i.Isa.slot
              (destination_to_string i.Isa.dst)
              (Op.to_string i.Isa.op)
              (String.concat ", " (List.map operand_to_string i.Isa.srcs))
              i.Isa.latency)
          bundle
      end)
    p.Isa.bundles;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let parse_operand lineno token =
  let n = String.length token in
  if n = 0 then fail lineno "empty operand"
  else
    match token.[0] with
    | 'r' ->
      (match int_of_string_opt (String.sub token 1 (n - 1)) with
      | Some r -> Isa.Reg r
      | None -> fail lineno ("bad register " ^ token))
    | '#' ->
      (match int_of_string_opt (String.sub token 1 (n - 1)) with
      | Some v -> Isa.Imm v
      | None -> fail lineno ("bad immediate " ^ token))
    | 'm' ->
      (match int_of_string_opt (String.sub token 1 (n - 1)) with
      | Some m -> Isa.Mem m
      | None -> fail lineno ("bad memory operand " ^ token))
    | '$' -> Isa.Port (String.sub token 1 (n - 1))
    | _ -> fail lineno ("unrecognised operand " ^ token)

let parse_destination lineno ~outputs token =
  let n = String.length token in
  if token = "_" then Isa.Discard
  else if List.mem token outputs then Isa.To_port token
  else if n > 1 && token.[0] = 'r' then
    match int_of_string_opt (String.sub token 1 (n - 1)) with
    | Some r -> Isa.To_reg r
    | None -> fail lineno ("bad destination " ^ token)
  else if n > 1 && token.[0] = 'm' then
    match int_of_string_opt (String.sub token 1 (n - 1)) with
    | Some m -> Isa.To_mem m
    | None -> fail lineno ("bad destination " ^ token)
  else fail lineno ("unrecognised destination " ^ token)

let words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

let parse text =
  let n_slots = ref 0 and n_registers = ref 0 and n_mem = ref 0 in
  let inputs = ref [] and outputs = ref [] in
  let bundles : (int, Isa.instruction list) Hashtbl.t = Hashtbl.create 32 in
  let current_cycle = ref (-1) in
  let max_cycle = ref (-1) in
  List.iteri
    (fun index raw ->
      let lineno = index + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '.' then begin
        match words line with
        | ".slots" :: [ n ] -> n_slots := int_of_string n
        | ".registers" :: [ n ] -> n_registers := int_of_string n
        | ".mem" :: [ n ] -> n_mem := int_of_string n
        | ".inputs" :: names -> inputs := names
        | ".outputs" :: names -> outputs := names
        | _ -> fail lineno ("bad directive " ^ line)
      end
      else if String.length line >= 6 && String.sub line 0 5 = "cycle" then begin
        match words line with
        | [ "cycle"; c ] when String.length c > 0 ->
          let c = String.sub c 0 (String.length c - 1) in
          (match int_of_string_opt c with
          | Some c ->
            current_cycle := c;
            max_cycle := max !max_cycle c
          | None -> fail lineno "bad cycle header")
        | _ -> fail lineno "bad cycle header"
      end
      else begin
        (* sN: dst <- op operands @lat *)
        if !current_cycle < 0 then fail lineno "instruction before any cycle";
        match String.index_opt line ':' with
        | None -> fail lineno "missing slot"
        | Some colon ->
          let slot_text = String.sub line 0 colon in
          let slot =
            if String.length slot_text > 1 && slot_text.[0] = 's' then
              match
                int_of_string_opt
                  (String.sub slot_text 1 (String.length slot_text - 1))
              with
              | Some s -> s
              | None -> fail lineno ("bad slot " ^ slot_text)
            else fail lineno ("bad slot " ^ slot_text)
          in
          let rest =
            String.trim
              (String.sub line (colon + 1) (String.length line - colon - 1))
          in
          (match String.index_opt rest '@' with
          | None -> fail lineno "missing latency"
          | Some at ->
            let latency =
              match
                int_of_string_opt
                  (String.trim
                     (String.sub rest (at + 1) (String.length rest - at - 1)))
              with
              | Some l -> l
              | None -> fail lineno "bad latency"
            in
            let body = String.trim (String.sub rest 0 at) in
            (* dst <- op operands *)
            let arrow =
              let rec find i =
                if i + 2 > String.length body then
                  fail lineno "missing <-"
                else if String.sub body i 2 = "<-" then i
                else find (i + 1)
              in
              find 0
            in
            let dst_text = String.trim (String.sub body 0 arrow) in
            let rhs =
              String.trim
                (String.sub body (arrow + 2) (String.length body - arrow - 2))
            in
            let op_text, operand_text =
              match String.index_opt rhs ' ' with
              | None -> (rhs, "")
              | Some sp ->
                ( String.sub rhs 0 sp,
                  String.trim
                    (String.sub rhs (sp + 1) (String.length rhs - sp - 1)) )
            in
            let op =
              match Op.of_string op_text with
              | Some op -> op
              | None -> fail lineno ("unknown op " ^ op_text)
            in
            let srcs =
              if operand_text = "" then []
              else
                List.map
                  (fun token -> parse_operand lineno (String.trim token))
                  (String.split_on_char ',' operand_text)
            in
            let dst = parse_destination lineno ~outputs:!outputs dst_text in
            let instruction = { Isa.slot; op; latency; dst; srcs } in
            Hashtbl.replace bundles !current_cycle
              ((match Hashtbl.find_opt bundles !current_cycle with
               | Some l -> l
               | None -> [])
              @ [ instruction ]))
      end)
    (String.split_on_char '\n' text);
  let total = !max_cycle + 1 in
  {
    Isa.n_slots = !n_slots;
    n_registers = !n_registers;
    n_mem_slots = !n_mem;
    bundles =
      Array.init (max total 0) (fun c ->
          match Hashtbl.find_opt bundles c with Some l -> l | None -> []);
    inputs = !inputs;
    outputs = !outputs;
  }
