open Import

(** Code generation: a scheduled and bound design becomes a VLIW
    bundle program.

    Bundle 0 loads the input ports; the operation scheduled at control
    step [c] issues in bundle [c + 1]. Functional units map one-to-one
    to issue slots; inputs, outputs and wire/move pass-throughs issue
    on extra "io" slots (as many as the widest cycle needs). Constants
    are immediate operands and cost nothing. *)

val run : Binding.t -> Isa.program
(** @raise Invalid_argument on a zero-delay resource operation (the
    machine has no combinational issue). The result always passes
    {!Isa.validate} (asserted in tests). *)
