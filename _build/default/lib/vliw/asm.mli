(** Textual assembly for the VLIW target.

    {v
      .slots 6
      .registers 8
      .mem 1
      .inputs x y
      .outputs out
      cycle 0:
        s4: r0 <- in(x) $x @1
      cycle 3:
        s2: r4 <- mul r0, #7 @2
        s0: m0 <- st r3 @1
        s5: out <- out(out) r4 @1
    v}

    Destinations are [rN], [mN], a declared output-port name or [_];
    sources are [rN], [#imm], [mN] or [$port]. [@"N"] is the latency. *)

exception Parse_error of string

val print : Isa.program -> string

val parse : string -> Isa.program
(** Inverse of {!print} ([parse (print p)] is structurally equal to
    [p], asserted by a round-trip property). @raise Parse_error with a
    line number on malformed input. *)
