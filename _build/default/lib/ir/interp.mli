(** Reference interpreters — the functional oracle for the whole flow:
    AST, SSA and lowered DFG must all compute the same outputs. *)

type env = (string * int) list

val run : Ast.program -> env -> (string * int) list
(** Outputs in declaration order. @raise Not_found for a missing
    input. Division by zero yields 0 (matching {!Dfg.Op.eval}, so
    speculative if-conversion is safe). *)

val run_ssa : Ssa.program -> env -> (string * int) list

val eval_expr : Ast.expr -> env -> int
